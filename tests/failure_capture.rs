//! End-to-end failure observability: a diverging conformance run must
//! leave behind a loadable, schema-versioned replay bundle plus per-layer
//! VCD waveforms, the bundle must replay byte-identically in-process, and
//! injected layer disagreements must be flagged at the first divergent
//! cycle/signal. Drives the engine through `rmul_drill` — the registry's
//! deliberately wrong drill design (its spec demands `acc == a*b + 1`).

use chicala::conformance::{self, replay_case, Config, Design, Layer};
use chicala::trace::vcd::parse_vcd;
use chicala::trace::{first_divergence, mark_pair, ReplayBundle, SCHEMA_VERSION};

/// One test (not several) so the `CHICALA_FAILURES_DIR` /
/// `CHICALA_TRACE_FAILURES` mutations can't race across test threads.
#[test]
fn drill_failure_captures_bundle_waveforms_and_replays_byte_identically() {
    let dir = std::env::temp_dir().join(format!(
        "chicala-failure-capture-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::env::set_var("CHICALA_FAILURES_DIR", &dir);

    let d = Design::by_name("rmul_drill").expect("drill design is registered");
    let cfg = Config {
        seed: 0xD111_0001,
        cases: 4,
        max_width: 8,
        layers: vec![Layer::Spec],
        ..Config::default()
    };
    let report = conformance::run_design(&d, &cfg);
    assert!(!report.ok(), "the drill spec must diverge");
    let failure = &report.failures[0];
    let bundle_path = failure
        .bundle
        .clone()
        .expect("a diverging case must emit a replay bundle");
    assert!(bundle_path.starts_with(&dir), "CHICALA_FAILURES_DIR is honoured");

    // The bundle loads and matches the failure it was captured from.
    let bundle = ReplayBundle::load(&bundle_path).expect("bundle loads");
    assert_eq!(bundle.schema, SCHEMA_VERSION);
    assert_eq!(bundle.kind, "conformance");
    assert_eq!(bundle.design, "rmul_drill");
    assert_eq!(bundle.layer, failure.layer.name());
    assert_eq!(bundle.case_seed, failure.case_seed);
    assert_eq!(bundle.max_width, failure.max_width);
    assert_eq!(bundle.message, failure.message);
    assert!(!bundle.inputs.is_empty(), "shrunk inputs are carried");
    assert!(bundle.replay_cmd.contains("--replay"), "{}", bundle.replay_cmd);
    assert!(bundle.replay_env.contains("CHICALA_SEED="), "{}", bundle.replay_env);

    // Every recorded layer waveform exists as a sibling and parses back.
    assert!(!bundle.vcd_files.is_empty(), "waveforms were written");
    for name in &bundle.vcd_files {
        let text = std::fs::read_to_string(dir.join(name)).expect("vcd exists");
        let t = parse_vcd(&text).expect("vcd parses");
        assert!(!t.signals.is_empty(), "{name}: no signals");
        assert!(!t.is_empty(), "{name}: no cycles");
    }

    // Replaying the bundle's seed reproduces the divergence byte for byte
    // (the contract `examples/replay.rs --bundle` checks via subprocess).
    let layer = Layer::parse(&bundle.layer).expect("layer parses");
    let replayed = replay_case(&d, layer, bundle.case_seed, bundle.max_width)
        .expect_err("the captured case still diverges");
    assert_eq!(replayed, bundle.message, "replay must reproduce byte-identically");

    // With capture gated off, the same divergence leaves no bundle behind.
    std::env::set_var("CHICALA_TRACE_FAILURES", "0");
    let report = conformance::run_design(&d, &cfg);
    std::env::remove_var("CHICALA_TRACE_FAILURES");
    assert!(!report.ok());
    assert!(
        report.failures[0].bundle.is_none(),
        "CHICALA_TRACE_FAILURES=0 must suppress capture"
    );

    std::env::remove_var("CHICALA_FAILURES_DIR");
    std::fs::remove_dir_all(&dir).ok();
}

/// Four healthy layers agree; corrupting one recorded value must flag
/// exactly the first divergent cycle/signal on both sides of the earliest
/// diverging pair, and the mark must survive the VCD round trip.
#[test]
fn injected_divergence_is_flagged_at_first_divergent_cycle_and_signal() {
    let d = Design::by_name("rmul").expect("registered");
    let case = conformance::gen_case(&d, 0x0BAD_5EED, 8);
    let (mut traces, clean) = conformance::capture_traces(&d, Layer::Cosim, &case);
    assert!(clean.is_none(), "a passing case must record agreeing layers");
    assert_eq!(traces.len(), 4, "all four executable layers recorded");

    // Corrupt one output sample mid-trace in the second layer.
    let sig = traces[1]
        .signals
        .iter()
        .position(|s| s.kind == chicala::trace::SignalKind::Output)
        .expect("an output signal");
    let cycle = traces[1].cycles.len() / 2;
    let name = traces[1].signals[sig].name.clone();
    traces[1].cycles[cycle][sig] += &chicala::bigint::BigInt::from(1u64);

    let (a, b) = traces.split_at_mut(1);
    let div = first_divergence(&a[0], &b[0]).expect("corruption must be seen");
    assert_eq!(div.cycle, cycle as u64, "first divergent cycle");
    assert_eq!(div.signal, name, "first divergent signal");
    let marked = mark_pair(&mut a[0], &mut b[0]).expect("pair diverges");
    assert_eq!(marked, div);
    assert_eq!(a[0].divergence.as_ref(), Some(&div), "reference side marked");
    assert_eq!(b[0].divergence.as_ref(), Some(&div), "divergent side marked");

    // The mark survives writing and re-parsing the waveform.
    let round = parse_vcd(&chicala::trace::vcd::write_vcd(&b[0])).expect("vcd parses");
    assert_eq!(round.divergence.as_ref(), Some(&div));
}
