//! Differential validation of the compiled simulation backend: for every
//! registered design, seeded cases run under `SimBackend::Both`, which
//! steps the slot-indexed VMs (`CompiledSim` / `SeqVm`) in lockstep with
//! the tree-walking interpreters and reports any disagreement on any
//! output or register of any cycle as a divergence. A green run is the
//! compiled backend's correctness certificate; the report-digest test
//! additionally pins worker-count independence and backend independence of
//! the green-run coverage stats.

use chicala::conformance::{
    self, all_designs, check_case_with, gen_case_for, Config, Layer, SimBackend,
};
use std::fmt::Write as _;

/// Cross-check every design on both differential layers the backend
/// drives, across a seeded spread of widths and stimuli.
#[test]
fn both_backend_agrees_on_every_design() {
    for (di, d) in all_designs().iter().enumerate() {
        for layer in [Layer::Cosim, Layer::Spec] {
            let mut rng = conformance::SplitMix64::new(0xC0DE_51D3 ^ (di as u64) << 8);
            for i in 0..10 {
                let case_seed = rng.next_u64();
                let case = gen_case_for(d, layer, case_seed, 24);
                check_case_with(d, layer, &case, SimBackend::Both).unwrap_or_else(|e| {
                    panic!(
                        "design `{}` layer `{layer}` case {i} (seed 0x{case_seed:016X}): {e}",
                        d.name
                    )
                });
            }
        }
    }
}

/// Wide widths overflow the sequential VM's `i128` envelope; the engine
/// must fall back to the interpreters per case, and `Both` mode must stay
/// green while doing so.
#[test]
fn wide_widths_fall_back_cleanly() {
    for d in all_designs().iter().take(2) {
        let case = gen_case_for(d, Layer::Cosim, 0x5EED_CAFE, 150);
        check_case_with(d, Layer::Cosim, &case, SimBackend::Both)
            .unwrap_or_else(|e| panic!("design `{}` at wide width: {e}", d.name));
    }
}

/// Canonical, timing-free rendering of a report (the timing fields are the
/// one thing scheduling and backend choice are allowed to change).
fn digest(report: &conformance::Report) -> String {
    let mut out = String::new();
    for ((design, layer), st) in &report.stats {
        writeln!(
            out,
            "{design} {layer} cases={} skipped={} widths={}..{} cycles={}",
            st.cases, st.skipped, st.min_width, st.max_width, st.cycles
        )
        .expect("write to string");
    }
    for f in &report.failures {
        writeln!(
            out,
            "FAIL {} {} seed=0x{:016X} cap={} case=({}) shrunk=({}) msg={}",
            f.design, f.layer, f.case_seed, f.max_width, f.case, f.shrunk, f.message
        )
        .expect("write to string");
    }
    out
}

/// One test (not several) so the `CHICALA_WORKERS` mutations can't race
/// against each other inside this binary.
#[test]
fn compiled_report_is_identical_across_workers_and_backends() {
    let cfg = |backend| Config {
        seed: 0xC0DE_D15C_0C0D_5EED,
        cases: 6,
        max_width: 16,
        layers: vec![Layer::Cosim, Layer::Spec],
        stop_at_first: true,
        backend,
    };
    // Compiled backend, 1 vs 8 workers: byte-identical report.
    let mut digests = Vec::new();
    for workers in ["1", "8"] {
        std::env::set_var("CHICALA_WORKERS", workers);
        let report = conformance::run_all(&cfg(SimBackend::Compiled));
        digests.push((workers, digest(&report)));
    }
    std::env::remove_var("CHICALA_WORKERS");
    let (_, baseline) = &digests[0];
    assert!(!baseline.is_empty(), "digest covers every design/layer cell");
    assert_eq!(
        &digests[1].1, baseline,
        "compiled-backend report diverged between 1 and 8 workers"
    );
    // Interp backend, same seed: a green run's coverage is a pure function
    // of the seed, so the digest must not depend on the backend either.
    let report = conformance::run_all(&cfg(SimBackend::Interp));
    assert_eq!(
        &digest(&report),
        baseline,
        "green-run report diverged between interp and compiled backends"
    );
}
