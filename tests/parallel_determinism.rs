//! Worker-count independence of the conformance engine: the same
//! `CHICALA_SEED` run must produce a byte-identical report at 1, 2, and 8
//! workers. Case generation and result folding are sequential in the
//! engine; only checking fans out — so everything observable (coverage
//! counts, width ranges, cycle totals, failures, replay seeds) is a pure
//! function of the seed. Wall-clock fields (`elapsed_ns`) are excluded
//! from the digest: they are the one thing scheduling is allowed to
//! change.

use chicala::conformance::{self, Config, Layer};
use std::fmt::Write as _;

/// Canonical, timing-free rendering of a report.
fn digest(report: &conformance::Report) -> String {
    let mut out = String::new();
    for ((design, layer), st) in &report.stats {
        writeln!(
            out,
            "{design} {layer} cases={} skipped={} widths={}..{} cycles={}",
            st.cases, st.skipped, st.min_width, st.max_width, st.cycles
        )
        .expect("write to string");
    }
    for f in &report.failures {
        writeln!(
            out,
            "FAIL {} {} seed=0x{:016X} cap={} case=({}) shrunk=({}) msg={}",
            f.design, f.layer, f.case_seed, f.max_width, f.case, f.shrunk, f.message
        )
        .expect("write to string");
    }
    out
}

/// One test (not three) so the `CHICALA_WORKERS` mutations can't race
/// against other tests in this binary.
#[test]
fn report_is_identical_at_1_2_and_8_workers() {
    let cfg = Config {
        seed: 0xD15C_0C0D_CA5E_5EED,
        cases: 6,
        max_width: 12,
        layers: Layer::ALL.to_vec(),
        stop_at_first: true,
        ..Config::default()
    };
    let mut digests = Vec::new();
    for workers in ["1", "2", "8"] {
        std::env::set_var("CHICALA_WORKERS", workers);
        let report = conformance::run_all(&cfg);
        digests.push((workers, digest(&report)));
    }
    std::env::remove_var("CHICALA_WORKERS");
    let (_, baseline) = &digests[0];
    assert!(!baseline.is_empty(), "digest covers every design/layer cell");
    for (workers, d) in &digests[1..] {
        assert_eq!(
            d, baseline,
            "conformance report diverged between 1 and {workers} workers"
        );
    }
}
