//! Experiment E3 (the paper's future-work validation, done here): for every
//! design, the generated sequential program agrees cycle-by-cycle with the
//! Chisel IR's reference interpreter, across random widths and inputs.

use chicala::bigint::BigInt;
use chicala::chisel::{elaborate, Module, Simulator};
use chicala::core::transform;
use chicala::seq::{SValue, SeqRunner};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn svalue_to_int(v: &SValue) -> BigInt {
    match v {
        SValue::Int(i) => i.clone(),
        SValue::Bool(b) => BigInt::from(*b),
        SValue::List(_) => panic!("scalar expected"),
    }
}

/// Runs both semantics side by side; panics with a description on the
/// first divergence.
fn cosim(
    m: &Module,
    len: i64,
    inputs: &[(&str, u64)],
    cycles: usize,
) -> Result<(), TestCaseError> {
    let bindings: chicala::chisel::Bindings =
        [("len".to_string(), len)].into_iter().collect();
    let em = elaborate(m, &bindings).expect("elaborates");
    let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
    let mask = if len >= 64 { u64::MAX } else { (1u64 << len) - 1 };
    let hw_inputs: BTreeMap<String, BigInt> = inputs
        .iter()
        .map(|(k, v)| (k.to_string(), BigInt::from(v & mask)))
        .collect();

    let out = transform(m).expect("transforms");
    let runner = SeqRunner::new(
        &out.program,
        [("len".to_string(), BigInt::from(len))].into_iter().collect(),
    );
    let sw_inputs: BTreeMap<String, SValue> = inputs
        .iter()
        .map(|(k, v)| (k.to_string(), SValue::Int(BigInt::from(v & mask))))
        .collect();
    let mut sw_regs = runner.init_regs(&BTreeMap::new()).expect("inits");

    for cycle in 0..cycles {
        let hw_out = sim.step(&hw_inputs).expect("hardware steps");
        let sw = runner
            .trans(&sw_inputs, &sw_regs)
            .unwrap_or_else(|e| panic!("{}: software step failed: {e}", m.name));
        for (name, hv) in &hw_out {
            let sv = svalue_to_int(&sw.outputs[name]);
            prop_assert_eq!(
                hv.clone(),
                sv,
                "{} cycle {} output {} (len={})",
                m.name,
                cycle,
                name,
                len
            );
        }
        for (name, svv) in &sw.regs {
            let hv = sim.reg(name).expect("register exists");
            let sv = svalue_to_int(svv);
            prop_assert_eq!(
                hv.clone(),
                sv,
                "{} cycle {} reg {} (len={})",
                m.name,
                cycle,
                name,
                len
            );
        }
        sw_regs = sw.regs;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rotate_cosim(len in 2i64..24, x in any::<u64>(), cycles in 1usize..60) {
        cosim(&chicala::designs::rotate::module(), len, &[("io_in", x)], cycles)?;
    }

    #[test]
    fn rmul_cosim(len in 1i64..16, a in any::<u64>(), b in any::<u64>(), cycles in 1usize..40) {
        cosim(&chicala::designs::rmul::module(), len, &[("io_a", a), ("io_b", b)], cycles)?;
    }

    #[test]
    fn rdiv_cosim(len in 1i64..16, n in any::<u64>(), d in 1u64..1000, cycles in 1usize..40) {
        cosim(&chicala::designs::rdiv::module(), len, &[("io_n", n), ("io_d", d)], cycles)?;
    }

    #[test]
    fn xdiv_cosim(len in 1i64..16, n in any::<u64>(), d in 1u64..1000, cycles in 1usize..40) {
        cosim(&chicala::designs::xdiv::module(), len, &[("io_n", n), ("io_d", d)], cycles)?;
    }

    #[test]
    fn xmul_cosim(len in 1i64..16, a in any::<u64>(), b in any::<u64>(), cycles in 1usize..40) {
        cosim(&chicala::designs::xmul::module(), len, &[("io_a", a), ("io_b", b)], cycles)?;
    }
}

/// The end-to-end functional results also match the mathematical spec at a
/// sample of widths (quick smoke on top of the per-cycle agreement).
#[test]
fn functional_results_match_reference() {
    for len in [1i64, 2, 3, 7, 8, 16] {
        let mask = (1u128 << len) - 1;
        let a = 0xDEAD_BEEF_u128 & mask;
        let b = 0x1234_5678_u128 & mask;
        let d = (b | 1) & mask;

        // R-multiplier.
        {
            let m = chicala::designs::rmul::module();
            let em = elaborate(&m, &[("len".to_string(), len)].into_iter().collect())
                .expect("elaborates");
            let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
            let inputs: BTreeMap<String, BigInt> = [
                ("io_a".to_string(), BigInt::from(a)),
                ("io_b".to_string(), BigInt::from(b)),
            ]
            .into_iter()
            .collect();
            for _ in 0..(len + 1) {
                sim.step(&inputs).expect("steps");
            }
            assert_eq!(sim.reg("acc").expect("acc").clone(), BigInt::from(a * b), "rmul len={len}");
        }

        // Both dividers.
        {
            let m = chicala::designs::rdiv::module();
            let em = elaborate(&m, &[("len".to_string(), len)].into_iter().collect())
                .expect("elaborates");
            let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
            let inputs: BTreeMap<String, BigInt> = [
                ("io_n".to_string(), BigInt::from(a)),
                ("io_d".to_string(), BigInt::from(d)),
            ]
            .into_iter()
            .collect();
            for _ in 0..(len + 1) {
                sim.step(&inputs).expect("steps");
            }
            assert_eq!(sim.reg("quot").expect("quot").clone(), BigInt::from(a / d), "rdiv len={len}");
            assert_eq!(sim.reg("rem").expect("rem").clone(), BigInt::from(a % d), "rdiv len={len}");
        }
    }
}
