//! Experiment E3 (the paper's future-work validation, done here): for every
//! design, the generated sequential program agrees cycle-by-cycle with the
//! Chisel IR's reference interpreter. A thin caller into the conformance
//! engine (`crates/conformance`), which owns case generation, the layer
//! drivers, shrinking, and seed replay — plus explicit boundary-width
//! tests at width 1 and width 64, the widths where `1u64 << len`-style
//! masks historically overflow.

use chicala::bigint::BigInt;
use chicala::conformance::{self, Case, Config, Layer};

/// Cosim layer over the whole registry (random widths, values, cycle
/// counts). Failures print a master seed (replay with `CHICALA_SEED=...`)
/// and a per-case seed plus a shrunk counterexample.
#[test]
fn cosim_layer_all_designs() {
    let cfg = Config { layers: vec![Layer::Cosim], cases: 24, max_width: 24, ..Config::default() };
    let report = conformance::run_all(&cfg);
    println!("{}", report.summary_table());
    for f in &report.failures {
        eprintln!("{f}");
    }
    assert!(report.ok(), "{} cosim divergence(s)", report.failures.len());
}

/// The end-to-end functional results also match the mathematical spec at a
/// fixed sample of widths — now including both mask boundaries: width 1
/// (the `(1 << len) - 1 == 0`-mask corner) and width 64 (where
/// `1u64 << 64` would overflow; the engine masks through `BigInt`, which
/// this test pins down).
#[test]
fn functional_results_match_reference() {
    for len in [1u64, 2, 3, 7, 8, 16, 63, 64] {
        for d in conformance::all_designs() {
            let len = len.max(d.min_width);
            // Deterministic stimuli derived from the old test's constants,
            // masked through BigInt so no primitive shift can overflow.
            let inputs: Vec<BigInt> = d
                .inputs
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    BigInt::from([0xDEAD_BEEF_u64, 0x1234_5679, 0xF0F0_F0F1][i % 3])
                        .to_unsigned(len)
                })
                .collect();
            let case = Case { width: len, cycles: (d.latency)(len), inputs };
            conformance::check_case(&d, Layer::Spec, &case)
                .unwrap_or_else(|e| panic!("{} at width {len}: {e}", d.name));
        }
    }
}

/// Minimum-width edge: every design must elaborate, run, and agree across
/// all three layers at its registered minimum width (1 for most designs;
/// 2 for rotate, whose `R(len-1, 1)` extract is empty at width 1 — a
/// boundary the conformance engine itself flushed out).
#[test]
fn width_one_edge_all_layers() {
    for d in conformance::all_designs() {
        let w = d.min_width;
        for (a, b) in [(0u64, 1u64), (1, 1)] {
            let inputs: Vec<BigInt> = d
                .inputs
                .iter()
                .enumerate()
                .map(|(i, _)| BigInt::from(if i == 0 { a } else { b }))
                .collect();
            let case = Case { width: w, cycles: (d.latency)(w) + 1, inputs };
            for layer in Layer::ALL {
                conformance::check_case(&d, layer, &case)
                    .unwrap_or_else(|e| panic!("{} width-{w} {layer}: {e}", d.name));
            }
        }
    }
}

/// Width-64 edge: the interpreter/program pair must agree exactly where a
/// `u64` mask computed as `(1 << len) - 1` would have overflowed. (The
/// gate layer is skipped here by design — a 64-bit netlist unroll is the
/// exponentially priced baseline, and the caps are reported, not silent.)
#[test]
fn width_64_edge_cosim_and_spec() {
    for d in conformance::all_designs() {
        let all_ones = BigInt::pow2(64) - BigInt::one();
        let inputs: Vec<BigInt> =
            d.inputs.iter().map(|_| all_ones.clone()).collect();
        let case = Case { width: 64, cycles: (d.latency)(64), inputs };
        for layer in [Layer::Cosim, Layer::Spec] {
            conformance::check_case(&d, layer, &case)
                .unwrap_or_else(|e| panic!("{} width-64 {layer}: {e}", d.name));
        }
    }
}
