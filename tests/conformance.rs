//! The full-registry conformance gate: every registered design, every
//! comparable layer pair, seeded and replayable. This is the integration
//! surface of `crates/conformance`; see README § "Conformance testing".
//!
//! Replay a failing run with `CHICALA_SEED=<master> cargo test -q --test
//! conformance`, or a single failing case with the CLI:
//! `cargo run --release --example conformance -- --design <name> --replay
//! 0x<case seed>`.

use chicala::conformance::{self, regressions, Config};

/// Committed regression corpus first: known-bad seeds from past failures
/// must stay fixed before any random exploration.
#[test]
fn committed_regressions_stay_green() {
    let failures = regressions::replay_all().expect("corpus is well-formed");
    assert!(
        failures.is_empty(),
        "{} committed regression(s) resurfaced:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The whole registry through all three layers. The summary table makes
/// coverage (and any cap-induced truncation) visible in the test output.
#[test]
fn all_designs_all_layers() {
    let cfg = Config::default();
    let report = conformance::run_all(&cfg);
    println!("master seed: 0x{:016X}", cfg.seed);
    println!("{}", report.summary_table());
    for f in &report.failures {
        eprintln!("{f}");
    }
    assert!(report.ok(), "{} conformance divergence(s)", report.failures.len());

    // Coverage floor: every (design, layer) cell must have actually run
    // cases — an empty cell means the registry and the engine drifted
    // apart, which must fail loudly rather than shrink coverage silently.
    for ((design, layer), st) in &report.stats {
        assert!(st.cases > 0, "no cases ran for {design}/{layer}");
    }
}
