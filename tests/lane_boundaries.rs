//! Directed interp-vs-compiled checks at the compiled VM's word-lane
//! boundaries. The slot VM packs values into 64-bit lanes, so widths 63,
//! 64, 65 (one lane, exactly one lane, two lanes) and 127, 128, 129 are
//! where carry propagation, masking, and lane-spill bugs live. Every
//! arithmetic/bitwise/shift operator is exercised with boundary operands
//! (0, 1, the lane edges, all-ones, the sign-position bit) plus seeded
//! random values, and the reference interpreter and the compiled VM must
//! agree bit-for-bit.

use chicala::bigint::BigInt;
use chicala::chisel::{
    compile, elaborate, Bindings, BinaryOp, ChiselType, CompiledSim, Expr, Module, ModuleBuilder,
    Simulator, UnaryOp,
};
use chicala::conformance::SplitMix64;
use std::collections::BTreeMap;

const WIDTHS: [u64; 6] = [63, 64, 65, 127, 128, 129];

/// One operator under test: its display name and the module wiring
/// `io_o := <op>(io_a, io_b)` with the natural (unclamped) result width.
struct OpCase {
    name: &'static str,
    build: fn() -> Module,
}

fn binop_module(name: &str, op: BinaryOp, expanding: bool) -> Module {
    let mut m = ModuleBuilder::new(name, &["len"]);
    let len = m.param("len");
    let a = m.input("io_a", ChiselType::uint(len.clone()));
    let b = m.input("io_b", ChiselType::uint(len.clone()));
    let out_w = if expanding { len.clone() * 2 } else { len };
    let o = m.output("io_o", ChiselType::uint(out_w));
    m.connect(o.lv(), Expr::Binop(op, Box::new(a.e()), Box::new(b.e())));
    m.build()
}

fn unop_module(name: &str, op: UnaryOp) -> Module {
    let mut m = ModuleBuilder::new(name, &["len"]);
    let len = m.param("len");
    let a = m.input("io_a", ChiselType::uint(len.clone()));
    let _b = m.input("io_b", ChiselType::uint(len.clone()));
    let o = m.output("io_o", ChiselType::uint(len));
    m.connect(o.lv(), Expr::Unop(op, Box::new(a.e())));
    m.build()
}

fn all_ops() -> Vec<OpCase> {
    vec![
        OpCase { name: "add", build: || binop_module("LaneAdd", BinaryOp::Add, false) },
        OpCase { name: "sub", build: || binop_module("LaneSub", BinaryOp::Sub, false) },
        OpCase { name: "mul", build: || binop_module("LaneMul", BinaryOp::Mul, true) },
        OpCase { name: "div", build: || binop_module("LaneDiv", BinaryOp::Div, false) },
        OpCase { name: "rem", build: || binop_module("LaneRem", BinaryOp::Rem, false) },
        OpCase { name: "and", build: || binop_module("LaneAnd", BinaryOp::And, false) },
        OpCase { name: "or", build: || binop_module("LaneOr", BinaryOp::Or, false) },
        OpCase { name: "xor", build: || binop_module("LaneXor", BinaryOp::Xor, false) },
        OpCase { name: "cat", build: || binop_module("LaneCat", BinaryOp::Cat, true) },
        OpCase { name: "shl", build: || binop_module("LaneShl", BinaryOp::Shl, false) },
        OpCase { name: "shr", build: || binop_module("LaneShr", BinaryOp::Shr, false) },
        OpCase { name: "neg", build: || unop_module("LaneNeg", UnaryOp::Neg) },
        OpCase { name: "not", build: || unop_module("LaneNot", UnaryOp::Not) },
    ]
}

/// Boundary operand values for width `w`: zero, small counts, every
/// 64-bit-lane edge below `w`, the top-bit region, and all-ones.
fn directed_values(w: u64) -> Vec<BigInt> {
    let top = BigInt::pow2(w) - BigInt::one();
    let mut vs = vec![
        BigInt::zero(),
        BigInt::one(),
        BigInt::from(2u64),
        BigInt::from(w),
        BigInt::pow2(w - 1) - BigInt::one(),
        BigInt::pow2(w - 1),
        BigInt::pow2(w - 1) + BigInt::one(),
        top.clone() - BigInt::one(),
        top,
    ];
    for lane in [63u64, 64, 65] {
        if lane < w {
            vs.push(BigInt::pow2(lane) - BigInt::one());
            vs.push(BigInt::pow2(lane));
            vs.push(BigInt::pow2(lane) + BigInt::one());
        }
    }
    vs
}

/// Seeded random `w`-bit values to pair with the directed set.
fn random_values(w: u64, n: usize, rng: &mut SplitMix64) -> Vec<BigInt> {
    (0..n).map(|_| rng.bits(w)).collect()
}

#[test]
fn every_op_agrees_across_lane_boundaries() {
    for op in all_ops() {
        let m = (op.build)();
        for w in WIDTHS {
            let bind: Bindings = [("len".to_string(), w as i64)].into_iter().collect();
            let em = elaborate(&m, &bind)
                .unwrap_or_else(|e| panic!("{} at {w}: elaborate: {e}", op.name));
            let cm = compile(&em)
                .unwrap_or_else(|e| panic!("{} at {w}: compile: {e}", op.name));
            let none = BTreeMap::new();
            let mut sim = Simulator::new(&em, &none).expect("simulator");
            let mut vm = CompiledSim::new(&cm, &none);

            let mut rng = SplitMix64::new(0x1A9E ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut a_vals = directed_values(w);
            a_vals.extend(random_values(w, 4, &mut rng));
            // Pair every directed `a` with a rotating selection of `b`s so
            // the cross product stays small but both operands see every
            // boundary value.
            let b_vals = a_vals.clone();
            for (i, a) in a_vals.iter().enumerate() {
                for j in 0..3usize {
                    let b = &b_vals[(i + j * 7 + 1) % b_vals.len()];
                    let inputs: BTreeMap<String, BigInt> = [
                        ("io_a".to_string(), a.clone()),
                        ("io_b".to_string(), b.clone()),
                    ]
                    .into_iter()
                    .collect();
                    let want = sim.step(&inputs).unwrap_or_else(|e| {
                        panic!("{} at {w}: interp a={a} b={b}: {e}", op.name)
                    });
                    let got = vm.step_map(&inputs);
                    assert_eq!(
                        want, got,
                        "{} diverges at width {w} with a={a} b={b}",
                        op.name
                    );
                }
            }
        }
    }
}

/// Division and remainder by zero are total (yield 0 and the dividend's
/// wrap respectively) and must agree across layers at every lane width.
#[test]
fn div_rem_by_zero_agree_at_boundaries() {
    for (name, op) in [("div", BinaryOp::Div), ("rem", BinaryOp::Rem)] {
        let m = binop_module("LaneDivZero", op, false);
        for w in WIDTHS {
            let bind: Bindings = [("len".to_string(), w as i64)].into_iter().collect();
            let em = elaborate(&m, &bind).expect("elaborates");
            let cm = compile(&em).expect("compiles");
            let none = BTreeMap::new();
            let mut sim = Simulator::new(&em, &none).expect("simulator");
            let mut vm = CompiledSim::new(&cm, &none);
            for a in directed_values(w) {
                let inputs: BTreeMap<String, BigInt> = [
                    ("io_a".to_string(), a.clone()),
                    ("io_b".to_string(), BigInt::zero()),
                ]
                .into_iter()
                .collect();
                let want = sim.step(&inputs).expect("interp");
                let got = vm.step_map(&inputs);
                assert_eq!(want, got, "{name} by zero diverges at width {w} with a={a}");
            }
        }
    }
}
