//! Integration surface of the verification service (`crates/serve`): the
//! persistent content-addressed store driven through the *real* prove,
//! VC-discharge, and conformance paths, plus the cross-process digest
//! stability the cache's soundness story leans on.
//!
//! The cache hooks are process-wide globals (`CacheHandle::install`), so
//! every test that installs one serializes on [`cache_lock`] and
//! uninstalls before releasing it.

use chicala::serve::{CacheHandle, Server, Store, STORE_SCHEMA};
use chicala::telemetry::{fnv64, JsonValue};
use chicala::trace::json;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Serializes the tests that install the global cache hooks.
fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fresh per-process store root under `target/`, pre-cleaned.
fn tmp_root(tag: &str) -> PathBuf {
    let p = PathBuf::from(format!(
        "target/chicala-serve-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Sends one line, asserts the envelope is ok, returns the `result`
/// serialization (the byte-comparable part of the response).
fn result_of(server: &Server, label: &str, line: &str) -> String {
    let resp = server.handle_line(line);
    let v = json::parse(&resp).unwrap_or_else(|e| panic!("{label}: bad JSON: {e}"));
    assert_eq!(
        json::get(&v, "ok"),
        Some(&JsonValue::Bool(true)),
        "{label}: request failed: {resp}"
    );
    json::get(&v, "result").expect("ok response carries result").to_string()
}

/// Entry files currently stored under `<root>/<kind>/`.
fn kind_entries(root: &Path, kind: &str) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(dir) = std::fs::read_dir(root.join(kind)) {
        for e in dir.flatten() {
            out.push(e.path());
        }
    }
    out.sort();
    out
}

const PROVE_LINE: &str = r#"{"op":"prove","design":"rmul","width":6}"#;
const CONF_LINE: &str = r#"{"op":"conformance","design":"rotate","seed":3,"cases":3,"max_width":8,"layers":"cosim,spec"}"#;

// ---------------------------------------------------------------------------
// Cross-process digest stability (satellite: CHICALA_CACHE_SELFTEST).
// ---------------------------------------------------------------------------

const SELFTEST_ENV: &str = "CHICALA_CACHE_SELFTEST";
const SELFTEST_PREFIX: &str = "SELFTEST-DIGEST ";

/// Child half of the selftest: inert unless [`SELFTEST_ENV`] is set. Runs
/// one prove and one conformance request through a server over a private
/// store, then prints every stored entry's `kind/digest` filename. The
/// filenames *are* the content digests, so byte-identical listings across
/// fresh processes mean the whole key pipeline (netlist cone transcript,
/// elaborated-module digest, report transcript) is free of run-to-run
/// nondeterminism — iteration order, layout, or address leakage.
#[test]
fn selftest_child_emit_digests() {
    if std::env::var(SELFTEST_ENV).is_err() {
        return;
    }
    let root = tmp_root("selftest");
    {
        let server = Server::new(Some(CacheHandle::new(Arc::new(Store::open(&root)))));
        result_of(&server, "selftest prove", r#"{"op":"prove","design":"rotate","width":4}"#);
        result_of(
            &server,
            "selftest conformance",
            r#"{"op":"conformance","design":"popcount","seed":1,"cases":2,"max_width":6,"layers":"cosim,spec"}"#,
        );
    }
    CacheHandle::uninstall_all();
    let mut names = Vec::new();
    for kind in ["prove", "vc", "program", "report"] {
        for path in kind_entries(&root, kind) {
            let file = path.file_name().unwrap().to_string_lossy().into_owned();
            names.push(format!("{kind}/{file}"));
        }
    }
    names.sort();
    for name in &names {
        println!("{SELFTEST_PREFIX}{name}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// 20 fresh processes, each computing the store digests from scratch, must
/// agree byte-for-byte. Catches any hash input that varies per process
/// (map iteration order, ASLR'd addresses, uninitialised padding).
#[test]
fn digests_are_stable_across_20_processes() {
    if std::env::var(SELFTEST_ENV).is_ok() {
        return;
    }
    let exe = std::env::current_exe().expect("test executable path");
    let children: Vec<_> = (0..20)
        .map(|i| {
            Command::new(&exe)
                .args(["selftest_child_emit_digests", "--exact", "--nocapture", "--test-threads", "1"])
                .env(SELFTEST_ENV, "1")
                .env_remove("CHICALA_CACHE")
                .env_remove("CHICALA_CACHE_DIR")
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn child {i}: {e}"))
        })
        .collect();
    let mut first: Option<Vec<String>> = None;
    for (i, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().unwrap_or_else(|e| panic!("child {i}: {e}"));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "selftest child {i} failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let digests: Vec<String> = stdout
            .lines()
            .filter_map(|l| l.strip_prefix(SELFTEST_PREFIX))
            .map(str::to_string)
            .collect();
        assert!(!digests.is_empty(), "child {i} emitted no digests:\n{stdout}");
        for kind in ["prove/", "program/", "report/"] {
            assert!(
                digests.iter().any(|d| d.starts_with(kind)),
                "child {i} stored no `{kind}` entry: {digests:?}"
            );
        }
        match &first {
            None => first = Some(digests),
            Some(f) => assert_eq!(&digests, f, "child {i} computed different digests"),
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-identity: a served artifact must be indistinguishable from fresh work.
// ---------------------------------------------------------------------------

/// Cold, warm (same store, fresh server), and control (empty store)
/// responses must be byte-identical, and the cold pass must actually
/// populate every artifact kind it exercises — a cache whose writes are
/// silently refused would still pass every equality check here, so the
/// population assertions are the regression guard for that failure mode.
#[test]
fn warm_and_fresh_responses_are_byte_identical() {
    let _guard = cache_lock();
    let persist = tmp_root("identity-persist");
    let control = tmp_root("identity-control");
    let labels_lines = [("prove", PROVE_LINE), ("conformance", CONF_LINE)];

    let store = Arc::new(Store::open(&persist));
    let cold: Vec<String> = {
        let server = Server::new(Some(CacheHandle::new(Arc::clone(&store))));
        labels_lines.iter().map(|(l, line)| result_of(&server, l, line)).collect()
    };
    assert!(store.stats().writes > 0, "cold pass wrote nothing to the store");
    for kind in ["prove", "program", "report"] {
        assert!(
            !kind_entries(&persist, kind).is_empty(),
            "cold pass left `{kind}/` empty — writes are being refused"
        );
    }

    // Warm: fresh server (empty batching memo, fresh pool) over the same
    // store — the persistence-only replay, as after a daemon restart.
    let store2 = Arc::new(Store::open(&persist));
    let server2 = Server::new(Some(CacheHandle::new(Arc::clone(&store2))));
    for ((label, line), cold) in labels_lines.iter().zip(&cold) {
        let warm = result_of(&server2, label, line);
        assert_eq!(&warm, cold, "{label}: warm result differs from cold");
    }
    assert!(store2.stats().hits > 0, "warm pass never hit the store");

    // Control: a server over an empty store recomputes everything; the
    // results must still match, or the cache changed an answer.
    let server3 = Server::new(Some(CacheHandle::new(Arc::new(Store::open(&control)))));
    for ((label, line), cold) in labels_lines.iter().zip(&cold) {
        let fresh = result_of(&server3, label, line);
        assert_eq!(&fresh, cold, "{label}: fresh result differs from cached");
    }

    CacheHandle::uninstall_all();
    let _ = std::fs::remove_dir_all(&persist);
    let _ = std::fs::remove_dir_all(&control);
}

// ---------------------------------------------------------------------------
// Robustness: corrupt entries are evicted and transparently re-proved.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Corruption {
    /// Half the file is gone (torn write, disk-full truncation).
    Truncate,
    /// One payload bit flipped (bit rot); the checksum must catch it.
    BitFlip,
    /// Valid framing and checksum, but a future schema version — a store
    /// from a newer build must read as a miss, not as garbage.
    WrongSchema,
}

fn corrupt(path: &Path, mode: Corruption) {
    let mut data = std::fs::read(path).expect("read entry");
    match mode {
        Corruption::Truncate => data.truncate(data.len() / 2),
        Corruption::BitFlip => {
            let at = data.len() - 12;
            data[at] ^= 0x40;
        }
        Corruption::WrongSchema => {
            // Layout: MAGIC (13 bytes) | schema u32 | ... | fnv64 checksum.
            data[13..17].copy_from_slice(&(STORE_SCHEMA + 1).to_le_bytes());
            let body_len = data.len() - 8;
            let check = fnv64(&data[..body_len]).to_le_bytes();
            data[body_len..].copy_from_slice(&check);
        }
    }
    std::fs::write(path, &data).expect("write corrupted entry");
}

/// Every corruption mode must be detected on read, evicted, and the
/// request transparently re-proved through the real gate-level prove path
/// with a byte-identical result — a cache bug may cost time, never
/// soundness. After each re-prove the entry must be healthy again (the
/// following clean request hits).
#[test]
fn corrupted_store_entries_are_evicted_and_reproved() {
    let _guard = cache_lock();
    let root = tmp_root("robust");
    let store = Arc::new(Store::open(&root));
    let server = Server::new(Some(CacheHandle::new(Arc::clone(&store))));

    let cold = result_of(&server, "cold", PROVE_LINE);
    let entries = kind_entries(&root, "prove");
    assert!(!entries.is_empty(), "prove pass stored no certificate");

    for mode in [Corruption::Truncate, Corruption::BitFlip, Corruption::WrongSchema] {
        for path in &kind_entries(&root, "prove") {
            corrupt(path, mode);
        }
        let before = store.stats();
        let reproved = result_of(&server, &format!("{mode:?} re-prove"), PROVE_LINE);
        assert_eq!(reproved, cold, "{mode:?}: re-proved result differs");
        let after = store.stats();
        assert!(
            after.evictions > before.evictions,
            "{mode:?}: corruption was not detected/evicted \
             (evictions {} -> {})",
            before.evictions,
            after.evictions
        );
        // The re-prove must also have healed the store.
        let hits_before = store.stats().hits;
        let healed = result_of(&server, &format!("{mode:?} healed"), PROVE_LINE);
        assert_eq!(healed, cold, "{mode:?}: healed result differs");
        assert!(
            store.stats().hits > hits_before,
            "{mode:?}: store was not repopulated after eviction"
        );
    }

    CacheHandle::uninstall_all();
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// VC discharge artifacts persist and re-hit across "restarts".
// ---------------------------------------------------------------------------

/// Discharges the cheap `obligation:*` VCs of the rotate spec twice over
/// one store: the first pass must persist proof markers, the second (with
/// a fresh env, as after a restart) must serve them from the store.
#[test]
fn vc_discharges_persist_in_the_store() {
    let _guard = cache_lock();
    let root = tmp_root("vc");
    let handle = CacheHandle::new(Arc::new(Store::open(&root)));
    handle.install();

    let discharge_obligations = |handle: &CacheHandle| -> usize {
        let vd = chicala::designs::verified_designs()
            .into_iter()
            .find(|d| d.name == "rotate")
            .expect("rotate is registered");
        let module = (vd.module)();
        let out = chicala::core::transform(&module).expect("transform rotate");
        let mut env = chicala::verify::Env::new();
        chicala::bvlib::install_bitvec(&mut env)
            .unwrap_or_else(|(n, e)| panic!("lemma {n}: {e}"));
        let spec = (vd.spec.expect("rotate has a spec"))();
        chicala::verify::prepare_env(&mut env, &spec).expect("prepare env");
        let vcs = chicala::verify::generate_vcs(&out.program, &spec, &out.obligations)
            .expect("generate vcs");
        let mut proved = 0;
        for vc in vcs.iter().filter(|vc| vc.name.starts_with("obligation:")) {
            let proof =
                spec.proofs.get(&vc.name).cloned().unwrap_or(chicala::verify::Proof::Auto);
            chicala::verify::discharge_vc(&env, vc, &proof)
                .unwrap_or_else(|e| panic!("VC {} failed: {e}", vc.name));
            proved += 1;
        }
        assert!(proved > 0, "rotate spec has no obligation VCs");
        let _ = handle;
        proved
    };

    let first = discharge_obligations(&handle);
    let stats = handle.stats();
    assert!(
        !kind_entries(&root, "vc").is_empty(),
        "no VC proof markers were persisted"
    );
    assert!(stats.writes > 0, "VC pass wrote nothing");

    let second = discharge_obligations(&handle);
    assert_eq!(first, second);
    assert!(
        handle.stats().hits > stats.hits,
        "second VC pass did not hit the persisted markers"
    );

    CacheHandle::uninstall_all();
    let _ = std::fs::remove_dir_all(&root);
}
