//! Property tests cross-checking BigInt arithmetic against i128, plus
//! beyond-i128 ring identities.

use chicala_bigint::BigInt;
use proptest::prelude::*;

fn b(x: i128) -> BigInt {
    BigInt::from(x)
}

proptest! {
    #[test]
    fn add_sub_mul_match_i128(x in -(1i128 << 62)..(1i128 << 62), y in -(1i128 << 62)..(1i128 << 62)) {
        prop_assert_eq!(b(x) + b(y), b(x + y));
        prop_assert_eq!(b(x) - b(y), b(x - y));
        prop_assert_eq!(b(x >> 32) * b(y >> 32), b((x >> 32) * (y >> 32)));
    }

    #[test]
    fn div_rem_matches_i128(x in any::<i128>(), y in any::<i128>()) {
        prop_assume!(y != 0);
        let (q, r) = b(x).div_rem(&b(y));
        // i128::MIN / -1 overflows the primitive; BigInt must still be right.
        if !(x == i128::MIN && y == -1) {
            prop_assert_eq!(q, b(x / y));
            prop_assert_eq!(r, b(x % y));
        } else {
            prop_assert_eq!(q, -BigInt::from(i128::MIN));
        }
    }

    #[test]
    fn euclid_identity_beyond_i128(xs in proptest::collection::vec(any::<u64>(), 1..6),
                                   ys in proptest::collection::vec(any::<u64>(), 1..4)) {
        let x = xs.iter().fold(BigInt::zero(), |acc, &l| (acc << 64) + BigInt::from(l));
        let y = ys.iter().fold(BigInt::zero(), |acc, &l| (acc << 64) + BigInt::from(l));
        prop_assume!(!y.is_zero());
        let (q, r) = x.div_rem(&y);
        prop_assert_eq!(&q * &y + &r, x.clone());
        prop_assert!(r.abs() < y.abs());
    }

    #[test]
    fn mod_floor_in_range(x in any::<i128>(), w in 1u64..200) {
        let m = x >> 1; // stay clear of i128::MIN edge for the reference below
        let u = b(m).to_unsigned(w);
        prop_assert!(u >= BigInt::zero());
        prop_assert!(u < BigInt::pow2(w));
        // (u - m) divisible by 2^w
        prop_assert!(((u - b(m)).mod_floor(&BigInt::pow2(w))).is_zero());
    }

    #[test]
    fn shifts_match_division(x in 0i128..(1 << 100), s in 0u64..90) {
        prop_assert_eq!(b(x) << s, b(x) * BigInt::pow2(s));
        prop_assert_eq!(b(x) >> s, b(x).div_floor(&BigInt::pow2(s)));
    }

    #[test]
    fn bitwise_match_i128(x in 0i128..i128::MAX, y in 0i128..i128::MAX) {
        prop_assert_eq!(b(x) & b(y), b(x & y));
        prop_assert_eq!(b(x) | b(y), b(x | y));
        prop_assert_eq!(b(x) ^ b(y), b(x ^ y));
    }

    #[test]
    fn display_parse_roundtrip(xs in proptest::collection::vec(any::<u64>(), 0..5), neg in any::<bool>()) {
        let mut x = xs.iter().fold(BigInt::zero(), |acc, &l| (acc << 64) + BigInt::from(l));
        if neg { x = -x; }
        let s = x.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), x);
    }

    #[test]
    fn signed_unsigned_views_are_inverse(x in any::<i64>(), w in 1u64..80) {
        let s = b(x as i128).to_signed(w);
        prop_assert_eq!(s.to_unsigned(w), b(x as i128).to_unsigned(w));
        prop_assert!(s < BigInt::pow2(w - 1));
        prop_assert!(s >= -BigInt::pow2(w - 1));
    }
}
