//! Seeded property tests cross-checking BigInt arithmetic against i128,
//! plus beyond-i128 ring identities. Randomness comes from a local
//! splitmix64 so the suite is hermetic and every failure replays from the
//! fixed per-test seed (printed in the assertion message as `case N`).

use chicala_bigint::BigInt;

const CASES: usize = 512;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn i128_full(&mut self) -> i128 {
        ((self.next() as i128) << 64) | self.next() as i128
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn b(x: i128) -> BigInt {
    BigInt::from(x)
}

#[test]
fn add_sub_mul_match_i128() {
    let mut rng = Rng(1);
    for case in 0..CASES {
        // Stay within ±2^62 so x+y and the shifted products fit in i128.
        let x = rng.i128_full() % (1i128 << 62);
        let y = rng.i128_full() % (1i128 << 62);
        assert_eq!(b(x) + b(y), b(x + y), "case {case}: {x} + {y}");
        assert_eq!(b(x) - b(y), b(x - y), "case {case}: {x} - {y}");
        assert_eq!(
            b(x >> 32) * b(y >> 32),
            b((x >> 32) * (y >> 32)),
            "case {case}: product"
        );
    }
}

#[test]
fn div_rem_matches_i128() {
    let mut rng = Rng(2);
    for case in 0..CASES {
        let x = rng.i128_full();
        let y = rng.i128_full();
        if y == 0 {
            continue;
        }
        let (q, r) = b(x).div_rem(&b(y));
        assert_eq!(q, b(x / y), "case {case}: {x} / {y}");
        assert_eq!(r, b(x % y), "case {case}: {x} % {y}");
    }
    // i128::MIN / -1 overflows the primitive; BigInt must still be right.
    let (q, _) = b(i128::MIN).div_rem(&b(-1));
    assert_eq!(q, -BigInt::from(i128::MIN));
}

#[test]
fn euclid_identity_beyond_i128() {
    let mut rng = Rng(3);
    for case in 0..CASES {
        let xlimbs = 1 + rng.below(5) as usize;
        let ylimbs = 1 + rng.below(3) as usize;
        let x = (0..xlimbs).fold(BigInt::zero(), |acc, _| (acc << 64) + BigInt::from(rng.next()));
        let y = (0..ylimbs).fold(BigInt::zero(), |acc, _| (acc << 64) + BigInt::from(rng.next()));
        if y.is_zero() {
            continue;
        }
        let (q, r) = x.div_rem(&y);
        assert_eq!(&q * &y + &r, x.clone(), "case {case}: euclid identity");
        assert!(r.abs() < y.abs(), "case {case}: remainder bound");
    }
}

#[test]
fn mod_floor_in_range() {
    let mut rng = Rng(4);
    for case in 0..CASES {
        let m = rng.i128_full() >> 1; // stay clear of the i128::MIN edge
        let w = 1 + rng.below(199);
        let u = b(m).to_unsigned(w);
        assert!(u >= BigInt::zero(), "case {case}");
        assert!(u < BigInt::pow2(w), "case {case}");
        // (u - m) divisible by 2^w.
        assert!(
            ((u - b(m)).mod_floor(&BigInt::pow2(w))).is_zero(),
            "case {case}: congruence mod 2^{w}"
        );
    }
}

#[test]
fn shifts_match_division() {
    let mut rng = Rng(5);
    for case in 0..CASES {
        let x = rng.i128_full().rem_euclid(1i128 << 100);
        let s = rng.below(90);
        assert_eq!(b(x) << s, b(x) * BigInt::pow2(s), "case {case}: shl");
        assert_eq!(b(x) >> s, b(x).div_floor(&BigInt::pow2(s)), "case {case}: shr");
    }
}

#[test]
fn bitwise_match_i128() {
    let mut rng = Rng(6);
    for case in 0..CASES {
        let x = rng.i128_full() & i128::MAX;
        let y = rng.i128_full() & i128::MAX;
        assert_eq!(b(x) & b(y), b(x & y), "case {case}: and");
        assert_eq!(b(x) | b(y), b(x | y), "case {case}: or");
        assert_eq!(b(x) ^ b(y), b(x ^ y), "case {case}: xor");
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = Rng(7);
    for case in 0..CASES {
        let limbs = rng.below(5) as usize;
        let mut x =
            (0..limbs).fold(BigInt::zero(), |acc, _| (acc << 64) + BigInt::from(rng.next()));
        if rng.below(2) == 1 {
            x = -x;
        }
        let s = x.to_string();
        assert_eq!(s.parse::<BigInt>().unwrap(), x, "case {case}: {s}");
    }
}

#[test]
fn signed_unsigned_views_are_inverse() {
    let mut rng = Rng(8);
    for case in 0..CASES {
        let x = rng.next() as i64;
        let w = 1 + rng.below(79);
        let s = b(x as i128).to_signed(w);
        assert_eq!(
            s.to_unsigned(w),
            b(x as i128).to_unsigned(w),
            "case {case}: same bits (x={x}, w={w})"
        );
        assert!(s < BigInt::pow2(w - 1), "case {case}: upper bound");
        assert!(s >= -BigInt::pow2(w - 1), "case {case}: lower bound");
    }
}
