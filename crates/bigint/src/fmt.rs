//! Formatting impls: decimal `Display`, plus `LowerHex`/`UpperHex`/`Binary`
//! for the bit-vector-flavoured uses (C-NUM-FMT).

use crate::{limbs, BigInt};
use std::fmt;

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeated short division by the largest power of ten in a limb.
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut mag = self.mag.clone();
        let mut groups: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = limbs::div_rem_limb(&mag, CHUNK);
            groups.push(r);
            mag = q;
        }
        let mut s = groups.last().map(|g| g.to_string()).unwrap_or_default();
        for g in groups.iter().rev().skip(1) {
            s.push_str(&format!("{g:019}"));
        }
        f.pad_integral(!self.is_negative(), "", &s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

fn fmt_radix(
    x: &BigInt,
    f: &mut fmt::Formatter<'_>,
    prefix: &str,
    digit: impl Fn(&[u64]) -> (String, u64),
) -> fmt::Result {
    if x.is_zero() {
        return f.pad_integral(true, prefix, "0");
    }
    let (s, _) = digit(&x.mag);
    f.pad_integral(!x.is_negative(), prefix, &s)
}

impl fmt::LowerHex for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(self, f, "0x", |mag| {
            let mut s = format!("{:x}", mag.last().expect("nonzero"));
            for l in mag.iter().rev().skip(1) {
                s.push_str(&format!("{l:016x}"));
            }
            (s, 16)
        })
    }
}

impl fmt::UpperHex for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(self, f, "0x", |mag| {
            let mut s = format!("{:X}", mag.last().expect("nonzero"));
            for l in mag.iter().rev().skip(1) {
                s.push_str(&format!("{l:016X}"));
            }
            (s, 16)
        })
    }
}

impl fmt::Binary for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_radix(self, f, "0b", |mag| {
            let mut s = format!("{:b}", mag.last().expect("nonzero"));
            for l in mag.iter().rev().skip(1) {
                s.push_str(&format!("{l:064b}"));
            }
            (s, 2)
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::BigInt;

    #[test]
    fn decimal_display() {
        assert_eq!(BigInt::zero().to_string(), "0");
        assert_eq!(BigInt::from(-12345).to_string(), "-12345");
        assert_eq!(BigInt::pow2(64).to_string(), "18446744073709551616");
        assert_eq!(
            BigInt::pow2(128).to_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn hex_and_binary() {
        assert_eq!(format!("{:x}", BigInt::from(255)), "ff");
        assert_eq!(format!("{:X}", BigInt::from(255)), "FF");
        assert_eq!(format!("{:#x}", BigInt::from(255)), "0xff");
        assert_eq!(format!("{:b}", BigInt::from(10)), "1010");
        assert_eq!(format!("{:x}", BigInt::pow2(68)), "100000000000000000");
        assert_eq!(format!("{:x}", -BigInt::from(16)), "-10");
        assert_eq!(format!("{:b}", BigInt::zero()), "0");
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in ["0", "-1", "987654321098765432109876543210", "-340282366920938463463374607431768211456"] {
            let x: BigInt = s.parse().unwrap();
            assert_eq!(x.to_string(), s);
        }
    }
}
