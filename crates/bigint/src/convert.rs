//! Conversions between [`BigInt`] and primitive integers / strings.

use crate::{BigInt, Sign};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(x: $t) -> BigInt {
                BigInt::from_sign_magnitude(Sign::Plus, vec![x as u64])
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(x: $t) -> BigInt {
                let sign = if x < 0 { Sign::Minus } else { Sign::Plus };
                BigInt::from_sign_magnitude(sign, vec![(x as i128).unsigned_abs() as u64])
            }
        }
    )*};
}

from_signed!(i8, i16, i32, i64, isize);

impl From<u128> for BigInt {
    fn from(x: u128) -> BigInt {
        BigInt::from_sign_magnitude(Sign::Plus, vec![x as u64, (x >> 64) as u64])
    }
}

impl From<i128> for BigInt {
    fn from(x: i128) -> BigInt {
        let sign = if x < 0 { Sign::Minus } else { Sign::Plus };
        let m = x.unsigned_abs();
        BigInt::from_sign_magnitude(sign, vec![m as u64, (m >> 64) as u64])
    }
}

impl From<bool> for BigInt {
    fn from(x: bool) -> BigInt {
        if x {
            BigInt::one()
        } else {
            BigInt::zero()
        }
    }
}

/// Error returned when a [`BigInt`] does not fit the requested primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TryFromBigIntError;

impl fmt::Display for TryFromBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value out of range for the target integer type")
    }
}

impl Error for TryFromBigIntError {}

impl TryFrom<&BigInt> for i128 {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<i128, TryFromBigIntError> {
        if x.mag.len() > 2 {
            return Err(TryFromBigIntError);
        }
        let lo = x.mag.first().copied().unwrap_or(0) as u128;
        let hi = x.mag.get(1).copied().unwrap_or(0) as u128;
        let m = (hi << 64) | lo;
        match x.sign {
            Sign::Plus if m <= i128::MAX as u128 => Ok(m as i128),
            Sign::Minus if m <= i128::MAX as u128 + 1 => Ok((m as i128).wrapping_neg()),
            _ => Err(TryFromBigIntError),
        }
    }
}

impl TryFrom<&BigInt> for u64 {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<u64, TryFromBigIntError> {
        if x.is_negative() || x.mag.len() > 1 {
            return Err(TryFromBigIntError);
        }
        Ok(x.mag.first().copied().unwrap_or(0))
    }
}

impl TryFrom<&BigInt> for u128 {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<u128, TryFromBigIntError> {
        if x.is_negative() || x.mag.len() > 2 {
            return Err(TryFromBigIntError);
        }
        let lo = x.mag.first().copied().unwrap_or(0) as u128;
        let hi = x.mag.get(1).copied().unwrap_or(0) as u128;
        Ok((hi << 64) | lo)
    }
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "empty string is not a valid integer"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer literal"),
        }
    }
}

impl Error for ParseBigIntError {}

impl BigInt {
    /// Parses a string in the given radix (2, 10, or 16). A leading `-` is
    /// accepted; underscores are ignored as digit separators.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigIntError`] on an empty string or an invalid digit.
    ///
    /// # Panics
    ///
    /// Panics if `radix` is not 2, 10, or 16.
    pub fn from_str_radix(s: &str, radix: u32) -> Result<BigInt, ParseBigIntError> {
        assert!(matches!(radix, 2 | 10 | 16), "unsupported radix {radix}");
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let mut acc = BigInt::zero();
        let base = BigInt::from(radix);
        let mut any = false;
        for c in digits.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(radix).ok_or(ParseBigIntError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = acc * base.clone() + BigInt::from(d);
            any = true;
        }
        if !any {
            return Err(ParseBigIntError { kind: ParseErrorKind::Empty });
        }
        Ok(if neg { -acc } else { acc })
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    /// Parses a decimal literal, accepting `0x`/`0b` prefixes for hex/binary.
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let v = if let Some(hex) = body.strip_prefix("0x") {
            BigInt::from_str_radix(hex, 16)?
        } else if let Some(bin) = body.strip_prefix("0b") {
            BigInt::from_str_radix(bin, 2)?
        } else {
            BigInt::from_str_radix(body, 10)?
        };
        Ok(if neg { -v } else { v })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        for x in [0i128, 1, -1, i64::MAX as i128, i64::MIN as i128, i128::MAX, i128::MIN] {
            let b = BigInt::from(x);
            assert_eq!(i128::try_from(&b), Ok(x), "{x}");
        }
        assert_eq!(u64::try_from(&BigInt::from(u64::MAX)), Ok(u64::MAX));
        assert!(u64::try_from(&BigInt::from(-1)).is_err());
        assert!(u64::try_from(&BigInt::pow2(64)).is_err());
        assert!(i128::try_from(&BigInt::pow2(127)).is_err());
        assert_eq!(i128::try_from(&-BigInt::pow2(127)), Ok(i128::MIN));
        assert_eq!(u128::try_from(&BigInt::pow2(127)), Ok(1u128 << 127));
    }

    #[test]
    fn parsing() {
        assert_eq!("0".parse::<BigInt>().unwrap(), BigInt::zero());
        assert_eq!("-42".parse::<BigInt>().unwrap(), BigInt::from(-42));
        assert_eq!("0xff".parse::<BigInt>().unwrap(), BigInt::from(255));
        assert_eq!("0b1010".parse::<BigInt>().unwrap(), BigInt::from(10));
        assert_eq!("-0x10".parse::<BigInt>().unwrap(), BigInt::from(-16));
        assert_eq!("1_000_000".parse::<BigInt>().unwrap(), BigInt::from(1_000_000));
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        let huge = "123456789012345678901234567890".parse::<BigInt>().unwrap();
        assert_eq!(huge.to_string(), "123456789012345678901234567890");
    }

    #[test]
    fn bool_conversion() {
        assert_eq!(BigInt::from(true), BigInt::one());
        assert_eq!(BigInt::from(false), BigInt::zero());
    }
}
