//! Low-level unsigned magnitude arithmetic on little-endian `u64` limb
//! vectors. All functions expect normalised inputs (no trailing zero limbs)
//! unless stated otherwise, and return normalised outputs.

use std::cmp::Ordering;

/// Removes trailing zero limbs in place.
pub(crate) fn trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

/// Compares two magnitudes.
pub(crate) fn cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `a + b`.
pub(crate) fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &l) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (t, c1) = l.overflowing_add(s);
        let (t, c2) = t.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out.push(t);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; requires `a >= b`.
pub(crate) fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp(a, b) != Ordering::Less, "limb sub underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &x) in a.iter().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (t, b1) = x.overflowing_sub(s);
        let (t, b2) = t.overflowing_sub(borrow);
        borrow = (b1 as u64) + (b2 as u64);
        out.push(t);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

/// Schoolbook `a * b`.
pub(crate) fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let t = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// `a << bits`.
pub(crate) fn shl(a: &[u64], bits: u64) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut out = vec![0u64; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &x in a {
            out.push((x << bit_shift) | carry);
            carry = x >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    trim(&mut out);
    out
}

/// `a >> bits` (logical; drops low bits).
pub(crate) fn shr(a: &[u64], bits: u64) -> Vec<u64> {
    let limb_shift = (bits / 64) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % 64) as u32;
    let mut out: Vec<u64> = if bit_shift == 0 {
        a[limb_shift..].to_vec()
    } else {
        let src = &a[limb_shift..];
        let mut v = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            v.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
        v
    };
    trim(&mut out);
    out
}

/// Divides by a single limb; returns `(quotient, remainder)`.
pub(crate) fn div_rem_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    debug_assert!(d != 0, "division by zero limb");
    let mut q = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    trim(&mut q);
    (q, rem as u64)
}

/// Long division `a / b`; returns `(quotient, remainder)`.
///
/// Uses single-limb short division when possible and binary long division
/// otherwise. Magnitudes in this workspace stay small (a few hundred bits),
/// so the binary path's O(n·bits) cost is acceptable.
pub(crate) fn div_rem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero");
    match cmp(a, b) {
        Ordering::Less => return (Vec::new(), a.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if b.len() == 1 {
        let (q, r) = div_rem_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    let a_bits = bit_len(a);
    let b_bits = bit_len(b);
    let mut quot = vec![0u64; a.len()];
    // Seed the remainder with the top b_bits-1 bits of a, then bring down one
    // bit at a time.
    let seed = b_bits - 1;
    let mut rem = shr(a, a_bits - seed);
    let mut i = a_bits - seed;
    while i > 0 {
        i -= 1;
        rem = shl(&rem, 1);
        if get_bit(a, i) {
            if rem.is_empty() {
                rem.push(1);
            } else {
                rem[0] |= 1;
            }
        }
        if cmp(&rem, b) != Ordering::Less {
            rem = sub(&rem, b);
            quot[(i / 64) as usize] |= 1u64 << (i % 64);
        }
    }
    trim(&mut quot);
    (quot, rem)
}

/// Number of significant bits (0 for the empty magnitude).
pub(crate) fn bit_len(a: &[u64]) -> u64 {
    match a.last() {
        None => 0,
        Some(&top) => (a.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
    }
}

/// Bit `i` of the magnitude (false beyond the top).
pub(crate) fn get_bit(a: &[u64], i: u64) -> bool {
    let limb = (i / 64) as usize;
    match a.get(limb) {
        None => false,
        Some(&l) => (l >> (i % 64)) & 1 == 1,
    }
}

/// Pointwise binary operation, zero-extending the shorter input.
pub(crate) fn zip_bits(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) -> Vec<u64> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(a.get(i).copied().unwrap_or(0), b.get(i).copied().unwrap_or(0)));
    }
    trim(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u128) -> Vec<u64> {
        let mut m = vec![x as u64, (x >> 64) as u64];
        trim(&mut m);
        m
    }

    #[test]
    fn add_carries_across_limbs() {
        assert_eq!(add(&[u64::MAX], &[1]), vec![0, 1]);
        assert_eq!(add(&[u64::MAX, u64::MAX], &[1]), vec![0, 0, 1]);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        assert_eq!(sub(&[0, 1], &[1]), vec![u64::MAX]);
        assert_eq!(sub(&[5, 7], &[5, 7]), Vec::<u64>::new());
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [(0u128, 0u128), (7, 9), (u64::MAX as u128, 2), (1 << 63, 1 << 2)];
        for (a, b) in cases {
            assert_eq!(mul(&v(a), &v(b)), v(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn shifts_roundtrip() {
        let a = vec![0xdead_beef_u64, 0x1234];
        for s in [0u64, 1, 13, 64, 65, 100] {
            assert_eq!(shr(&shl(&a, s), s), a, "shift {s}");
        }
    }

    #[test]
    fn div_rem_long() {
        // (2^130 + 12345) / (2^65 + 1)
        let a = add(&shl(&[1], 130), &[12345]);
        let b = add(&shl(&[1], 65), &[1]);
        let (q, r) = div_rem(&a, &b);
        let back = add(&mul(&q, &b), &r);
        assert_eq!(back, a);
        assert!(cmp(&r, &b) == Ordering::Less);
    }

    #[test]
    fn div_rem_by_limb() {
        let a = vec![17, 0, 1];
        let (q, r) = div_rem(&a, &[3]);
        let mut back = add(&mul(&q, &[3]), &r);
        trim(&mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn bit_len_and_get_bit() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[0, 1]), 65);
        assert!(get_bit(&[0b101], 0));
        assert!(!get_bit(&[0b101], 1));
        assert!(get_bit(&[0, 1], 64));
        assert!(!get_bit(&[1], 999));
    }
}
