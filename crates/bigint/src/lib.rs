//! Arbitrary-precision signed integers for modelling Chisel bit-vectors.
//!
//! The DAC'24 paper models Chisel `UInt`/`SInt` values as *bounded
//! mathematical integers* (Scala's `BigInt` plus a width) rather than as SMT
//! bit-vectors, because the verified designs are parameterized by bit width.
//! This crate is the Rust stand-in for Scala's `BigInt`: a sign-magnitude
//! arbitrary-precision integer with exactly the operations the rest of the
//! workspace needs — ring arithmetic, truncating and flooring division,
//! powers of two, shifts, bit access, and bitwise operations on non-negative
//! values.
//!
//! # Examples
//!
//! ```
//! use chicala_bigint::BigInt;
//!
//! let a = BigInt::from(1u64 << 62) * BigInt::from(12345);
//! let b = BigInt::pow2(40);
//! let (q, r) = a.div_rem(&b);
//! assert_eq!(&q * &b + &r, a);
//! assert!(r >= BigInt::zero() && r < b);
//! ```

mod arith;
mod bits;
mod convert;
mod fmt;
mod limbs;

use std::cmp::Ordering;

/// Sign of a [`BigInt`]. Zero is always represented with [`Sign::Plus`] and
/// an empty magnitude.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Non-negative values.
    Plus,
    /// Strictly negative values.
    Minus,
}

/// A signed arbitrary-precision integer.
///
/// Representation: sign + little-endian base-2⁶⁴ magnitude with no trailing
/// zero limbs; the value zero is `(Plus, [])`. This invariant is maintained
/// by every constructor and operation.
///
/// # Examples
///
/// ```
/// use chicala_bigint::BigInt;
/// let x: BigInt = "340282366920938463463374607431768211456".parse()?; // 2^128
/// assert_eq!(x, BigInt::pow2(128));
/// # Ok::<(), chicala_bigint::ParseBigIntError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: Vec<u64>,
}

impl BigInt {
    /// The value `0`.
    ///
    /// ```
    /// # use chicala_bigint::BigInt;
    /// assert!(BigInt::zero().is_zero());
    /// ```
    pub fn zero() -> Self {
        BigInt { sign: Sign::Plus, mag: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt { sign: Sign::Plus, mag: vec![1] }
    }

    /// `2^exp`, the workhorse of the integer bit-vector model (the paper's
    /// `Pow2`).
    ///
    /// ```
    /// # use chicala_bigint::BigInt;
    /// assert_eq!(BigInt::pow2(0), BigInt::from(1));
    /// assert_eq!(BigInt::pow2(65), BigInt::from(2) * BigInt::from(u64::MAX) + BigInt::from(2));
    /// ```
    pub fn pow2(exp: u64) -> Self {
        let limb = (exp / 64) as usize;
        let off = exp % 64;
        let mut mag = vec![0u64; limb + 1];
        mag[limb] = 1u64 << off;
        BigInt { sign: Sign::Plus, mag }
    }

    /// Builds a value from a sign and little-endian magnitude, normalising.
    pub fn from_sign_magnitude(sign: Sign, mut mag: Vec<u64>) -> Self {
        limbs::trim(&mut mag);
        if mag.is_empty() {
            return BigInt::zero();
        }
        BigInt { sign, mag }
    }

    /// Whether the value is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Whether the value is `1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag == [1]
    }

    /// Whether the value is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Whether the value is even.
    #[inline]
    pub fn is_even(&self) -> bool {
        self.mag.first().is_none_or(|l| l & 1 == 0)
    }

    /// Sign of the value; zero reports [`Sign::Plus`].
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt { sign: Sign::Plus, mag: self.mag.clone() }
    }

    /// Little-endian limbs of the magnitude (no trailing zeros).
    #[inline]
    pub fn magnitude(&self) -> &[u64] {
        &self.mag
    }

    fn cmp_value(&self, other: &Self) -> Ordering {
        if let Some(ord) = arith::cmp_single(self, other) {
            return ord;
        }
        self.cmp_value_general(other)
    }

    pub(crate) fn cmp_value_general(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Plus, Sign::Minus) => Ordering::Greater,
            (Sign::Minus, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => limbs::cmp(&self.mag, &other.mag),
            (Sign::Minus, Sign::Minus) => limbs::cmp(&other.mag, &self.mag),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

pub use convert::ParseBigIntError;
pub use convert::TryFromBigIntError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalised() {
        let z = BigInt::from_sign_magnitude(Sign::Minus, vec![0, 0]);
        assert!(z.is_zero());
        assert_eq!(z.sign(), Sign::Plus);
        assert_eq!(z, BigInt::zero());
    }

    #[test]
    fn pow2_limb_boundaries() {
        for e in [0u64, 1, 63, 64, 65, 127, 128, 200] {
            let p = BigInt::pow2(e);
            assert_eq!(p.bit_len(), e + 1, "pow2({e})");
            assert!(p.bit(e));
            if e > 0 {
                assert!(!p.bit(e - 1));
            }
        }
    }

    #[test]
    fn ordering_across_signs() {
        let neg = -BigInt::from(5);
        let pos = BigInt::from(3);
        assert!(neg < pos);
        assert!(neg < BigInt::zero());
        assert!(pos > BigInt::zero());
        assert!(-BigInt::from(7) < -BigInt::from(3));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(BigInt::default(), BigInt::zero());
    }

    #[test]
    fn even_odd() {
        assert!(BigInt::zero().is_even());
        assert!(!BigInt::from(7).is_even());
        assert!(BigInt::from(10).is_even());
        assert!(!(-BigInt::from(3)).is_even());
    }
}
