//! Bit-level views of [`BigInt`]: bit length, bit access, shifts, bitwise
//! operations, and the width-bounded two's-complement conversions used to
//! model `UInt`/`SInt` signals.

use crate::{limbs, BigInt, Sign};
use std::ops::{BitAnd, BitOr, BitXor, Shl, Shr};

impl BigInt {
    /// Number of significant bits of the magnitude; `0` for zero.
    ///
    /// ```
    /// # use chicala_bigint::BigInt;
    /// assert_eq!(BigInt::from(0b1011).bit_len(), 4);
    /// assert_eq!(BigInt::zero().bit_len(), 0);
    /// ```
    pub fn bit_len(&self) -> u64 {
        limbs::bit_len(&self.mag)
    }

    /// Bit `i` of the magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `self` is negative: callers must first map into an unsigned
    /// representation with [`BigInt::to_unsigned`].
    pub fn bit(&self, i: u64) -> bool {
        assert!(!self.is_negative(), "bit access on a negative value; use to_unsigned first");
        limbs::get_bit(&self.mag, i)
    }

    /// Returns a copy with bit `i` forced to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is negative.
    pub fn with_bit(&self, i: u64, value: bool) -> BigInt {
        assert!(!self.is_negative(), "bit update on a negative value; use to_unsigned first");
        let limb = (i / 64) as usize;
        let mut mag = self.mag.clone();
        if mag.len() <= limb {
            mag.resize(limb + 1, 0);
        }
        if value {
            mag[limb] |= 1u64 << (i % 64);
        } else {
            mag[limb] &= !(1u64 << (i % 64));
        }
        BigInt::from_sign_magnitude(Sign::Plus, mag)
    }

    /// Interprets the low `width` bits of this (possibly negative) integer as
    /// an unsigned value: `self mod 2^width`, always in `[0, 2^width)`. This
    /// is how an `SInt` payload is viewed as raw bits.
    ///
    /// ```
    /// # use chicala_bigint::BigInt;
    /// assert_eq!(BigInt::from(-1).to_unsigned(4), BigInt::from(15));
    /// assert_eq!(BigInt::from(19).to_unsigned(4), BigInt::from(3));
    /// ```
    pub fn to_unsigned(&self, width: u64) -> BigInt {
        self.mod_floor(&BigInt::pow2(width))
    }

    /// Interprets the low `width` bits as a two's-complement signed value in
    /// `[-2^(width-1), 2^(width-1))`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn to_signed(&self, width: u64) -> BigInt {
        assert!(width > 0, "signed reinterpretation needs width > 0");
        let u = self.to_unsigned(width);
        let half = BigInt::pow2(width - 1);
        if u < half {
            u
        } else {
            u - BigInt::pow2(width)
        }
    }

    /// Number of one bits in the magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `self` is negative.
    pub fn count_ones(&self) -> u64 {
        assert!(!self.is_negative(), "popcount on a negative value; use to_unsigned first");
        self.mag.iter().map(|l| l.count_ones() as u64).sum()
    }
}

fn nonneg(x: &BigInt, op: &str) {
    assert!(
        !x.is_negative(),
        "bitwise {op} on a negative value; map through to_unsigned(width) first"
    );
}

macro_rules! bitwise {
    ($trait:ident, $method:ident, $name:literal, $f:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                nonneg(self, $name);
                nonneg(rhs, $name);
                BigInt::from_sign_magnitude(Sign::Plus, limbs::zip_bits(&self.mag, &rhs.mag, $f))
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

bitwise!(BitAnd, bitand, "and", |a, b| a & b);
bitwise!(BitOr, bitor, "or", |a, b| a | b);
bitwise!(BitXor, bitxor, "xor", |a, b| a ^ b);

impl BigInt {
    /// Bitwise NOT within `width` bits: `2^width - 1 - (self mod 2^width)`.
    pub fn not_within(&self, width: u64) -> BigInt {
        BigInt::pow2(width) - BigInt::one() - self.to_unsigned(width)
    }
}

impl Shl<u64> for &BigInt {
    type Output = BigInt;
    fn shl(self, bits: u64) -> BigInt {
        BigInt::from_sign_magnitude(self.sign, limbs::shl(&self.mag, bits))
    }
}

impl Shl<u64> for BigInt {
    type Output = BigInt;
    fn shl(self, bits: u64) -> BigInt {
        &self << bits
    }
}

impl Shr<u64> for &BigInt {
    type Output = BigInt;
    fn shr(self, bits: u64) -> BigInt {
        // Arithmetic shift: floor division by 2^bits, so -1 >> k == -1.
        self.div_floor(&BigInt::pow2(bits))
    }
}

impl Shr<u64> for BigInt {
    type Output = BigInt;
    fn shr(self, bits: u64) -> BigInt {
        &self >> bits
    }
}

#[cfg(test)]
mod tests {
    use crate::BigInt;

    fn b(x: i128) -> BigInt {
        BigInt::from(x)
    }

    #[test]
    fn bit_access_and_update() {
        let x = b(0b1010);
        assert!(x.bit(1) && x.bit(3));
        assert!(!x.bit(0) && !x.bit(2) && !x.bit(100));
        assert_eq!(x.with_bit(0, true), b(0b1011));
        assert_eq!(x.with_bit(3, false), b(0b0010));
        assert_eq!(x.with_bit(70, true), b(0b1010) + BigInt::pow2(70));
    }

    #[test]
    fn twos_complement_views() {
        assert_eq!(b(-1).to_unsigned(8), b(255));
        assert_eq!(b(255).to_signed(8), b(-1));
        assert_eq!(b(127).to_signed(8), b(127));
        assert_eq!(b(128).to_signed(8), b(-128));
        assert_eq!(b(-300).to_unsigned(8).to_signed(8), b(-300 + 256));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(b(0b1100) & b(0b1010), b(0b1000));
        assert_eq!(b(0b1100) | b(0b1010), b(0b1110));
        assert_eq!(b(0b1100) ^ b(0b1010), b(0b0110));
        assert_eq!(b(0b0101).not_within(4), b(0b1010));
    }

    #[test]
    #[should_panic(expected = "bitwise and")]
    fn bitwise_on_negative_panics() {
        let _ = b(-1) & b(1);
    }

    #[test]
    fn shifts() {
        assert_eq!(b(5) << 3, b(40));
        assert_eq!(b(40) >> 3, b(5));
        assert_eq!(b(41) >> 3, b(5));
        // Arithmetic right shift on negatives rounds toward -inf.
        assert_eq!(b(-1) >> 5, b(-1));
        assert_eq!(b(-41) >> 3, b(-6));
        assert_eq!(b(-5) << 2, b(-20));
    }

    #[test]
    fn count_ones() {
        assert_eq!(BigInt::zero().count_ones(), 0);
        assert_eq!(b(0b1011).count_ones(), 3);
        assert_eq!((BigInt::pow2(100) - BigInt::one()).count_ones(), 100);
    }
}
