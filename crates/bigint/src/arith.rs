//! Signed ring arithmetic and division for [`BigInt`].

use crate::{limbs, BigInt, Sign};
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

impl BigInt {
    /// Truncating division with remainder, matching Scala's `BigInt` (and
    /// Rust's primitive) semantics: the quotient rounds toward zero and the
    /// remainder takes the dividend's sign.
    ///
    /// ```
    /// # use chicala_bigint::BigInt;
    /// let (q, r) = BigInt::from(-7).div_rem(&BigInt::from(2));
    /// assert_eq!((q, r), (BigInt::from(-3), BigInt::from(-1)));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        assert!(!divisor.is_zero(), "division by zero");
        let (q_mag, r_mag) = limbs::div_rem(&self.mag, &divisor.mag);
        let q_sign = if self.sign == divisor.sign { Sign::Plus } else { Sign::Minus };
        (
            BigInt::from_sign_magnitude(q_sign, q_mag),
            BigInt::from_sign_magnitude(self.sign, r_mag),
        )
    }

    /// Flooring division: rounds toward negative infinity. On non-negative
    /// operands this coincides with [`BigInt::div_rem`]; it is the division
    /// the paper's integer bit-vector lemmas are stated over.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_floor(&self, divisor: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(divisor);
        if r.is_zero() || (r.is_negative() == divisor.is_negative()) {
            q
        } else {
            q - BigInt::one()
        }
    }

    /// Flooring remainder: always has the divisor's sign (non-negative for a
    /// positive divisor, e.g. `Pow2(w)`).
    ///
    /// ```
    /// # use chicala_bigint::BigInt;
    /// assert_eq!(BigInt::from(-1).mod_floor(&BigInt::pow2(4)), BigInt::from(15));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn mod_floor(&self, divisor: &BigInt) -> BigInt {
        let (_, r) = self.div_rem(divisor);
        if r.is_zero() || (r.is_negative() == divisor.is_negative()) {
            r
        } else {
            r + divisor.clone()
        }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }
}

/// The signed value of `x` when its magnitude fits one limb. `|x| < 2^64`,
/// so the result is exact in `i128` and any sum/difference of two such
/// values is too.
#[inline]
fn single_limb(x: &BigInt) -> Option<i128> {
    if x.mag.len() <= 1 {
        let m = x.mag.first().copied().unwrap_or(0) as i128;
        Some(if x.sign == Sign::Minus { -m } else { m })
    } else {
        None
    }
}

/// Single-limb comparison fast path; `None` when either operand spills past
/// one limb. Used by `Ord for BigInt`.
#[inline]
pub(crate) fn cmp_single(a: &BigInt, b: &BigInt) -> Option<Ordering> {
    Some(single_limb(a)?.cmp(&single_limb(b)?))
}

#[inline]
fn add_signed(a: &BigInt, b: &BigInt) -> BigInt {
    if let (Some(x), Some(y)) = (single_limb(a), single_limb(b)) {
        return BigInt::from(x + y);
    }
    add_signed_general(a, b)
}

pub(crate) fn add_signed_general(a: &BigInt, b: &BigInt) -> BigInt {
    if a.sign == b.sign {
        return BigInt::from_sign_magnitude(a.sign, limbs::add(&a.mag, &b.mag));
    }
    match limbs::cmp(&a.mag, &b.mag) {
        Ordering::Equal => BigInt::zero(),
        Ordering::Greater => BigInt::from_sign_magnitude(a.sign, limbs::sub(&a.mag, &b.mag)),
        Ordering::Less => BigInt::from_sign_magnitude(b.sign, limbs::sub(&b.mag, &a.mag)),
    }
}

#[inline]
fn sub_signed(a: &BigInt, b: &BigInt) -> BigInt {
    if let (Some(x), Some(y)) = (single_limb(a), single_limb(b)) {
        return BigInt::from(x - y);
    }
    add_signed_general(a, &-b.clone())
}

#[inline]
fn mul_signed(a: &BigInt, b: &BigInt) -> BigInt {
    let sign = if a.sign == b.sign { Sign::Plus } else { Sign::Minus };
    // Magnitude product of two single limbs fits u128 exactly.
    if a.mag.len() <= 1 && b.mag.len() <= 1 {
        let p = a.mag.first().copied().unwrap_or(0) as u128
            * b.mag.first().copied().unwrap_or(0) as u128;
        return BigInt::from_sign_magnitude(sign, vec![p as u64, (p >> 64) as u64]);
    }
    BigInt::from_sign_magnitude(sign, limbs::mul(&a.mag, &b.mag))
}

#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn mul_signed_general(a: &BigInt, b: &BigInt) -> BigInt {
    let sign = if a.sign == b.sign { Sign::Plus } else { Sign::Minus };
    BigInt::from_sign_magnitude(sign, limbs::mul(&a.mag, &b.mag))
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            self
        } else {
            let sign = match self.sign {
                Sign::Plus => Sign::Minus,
                Sign::Minus => Sign::Plus,
            };
            BigInt { sign, mag: self.mag }
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                let f: fn(&BigInt, &BigInt) -> BigInt = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_signed);
forward_binop!(Sub, sub, sub_signed);
forward_binop!(Mul, mul, mul_signed);
forward_binop!(Div, div, |a: &BigInt, b: &BigInt| a.div_rem(b).0);
forward_binop!(Rem, rem, |a: &BigInt, b: &BigInt| a.div_rem(b).1);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use crate::BigInt;

    fn b(x: i128) -> BigInt {
        BigInt::from(x)
    }

    #[test]
    fn signed_addition_all_sign_combos() {
        for (x, y) in [(5i128, 3), (5, -3), (-5, 3), (-5, -3), (3, -5), (-3, 5), (0, -7)] {
            assert_eq!(b(x) + b(y), b(x + y), "{x} + {y}");
            assert_eq!(b(x) - b(y), b(x - y), "{x} - {y}");
        }
    }

    #[test]
    fn signed_multiplication() {
        for (x, y) in [(5i128, 3), (5, -3), (-5, 3), (-5, -3), (0, -7)] {
            assert_eq!(b(x) * b(y), b(x * y), "{x} * {y}");
        }
    }

    #[test]
    fn truncating_division_matches_primitive() {
        for (x, y) in [(7i128, 2), (-7, 2), (7, -2), (-7, -2), (6, 3), (-6, 3)] {
            let (q, r) = b(x).div_rem(&b(y));
            assert_eq!(q, b(x / y), "{x} / {y}");
            assert_eq!(r, b(x % y), "{x} % {y}");
        }
    }

    #[test]
    fn floor_division() {
        assert_eq!(b(-7).div_floor(&b(2)), b(-4));
        assert_eq!(b(-7).mod_floor(&b(2)), b(1));
        assert_eq!(b(7).div_floor(&b(2)), b(3));
        assert_eq!(b(7).mod_floor(&b(-2)), b(-1));
        assert_eq!(b(-8).div_floor(&b(2)), b(-4));
        assert_eq!(b(-8).mod_floor(&b(2)), b(0));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(1).div_rem(&BigInt::zero());
    }

    #[test]
    fn pow() {
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(3).pow(5), b(243));
        assert_eq!(b(2).pow(100), BigInt::pow2(100));
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
    }

    #[test]
    fn assign_ops() {
        let mut x = b(10);
        x += &b(5);
        x -= &b(3);
        x *= &b(2);
        assert_eq!(x, b(24));
    }

    /// Values that straddle every interesting single-limb boundary: small,
    /// around `2^32`, around the one-limb/two-limb edge at `2^64`, and their
    /// negations.
    fn boundary_values() -> Vec<BigInt> {
        let mut out = Vec::new();
        let mags: &[u128] = &[
            0,
            1,
            2,
            3,
            7,
            255,
            256,
            (1 << 32) - 1,
            1 << 32,
            (1 << 32) + 1,
            u64::MAX as u128 - 1,
            u64::MAX as u128,
            u64::MAX as u128 + 1,
            u64::MAX as u128 + 2,
            (u64::MAX as u128) * 3,
        ];
        for &m in mags {
            out.push(BigInt::from(m));
            out.push(-BigInt::from(m));
        }
        out
    }

    #[test]
    fn single_limb_add_sub_match_general_path() {
        for x in boundary_values() {
            for y in boundary_values() {
                let general_add = super::add_signed_general(&x, &y);
                assert_eq!(&x + &y, general_add, "{x} + {y}");
                let general_sub = super::add_signed_general(&x, &-y.clone());
                assert_eq!(&x - &y, general_sub, "{x} - {y}");
            }
        }
    }

    #[test]
    fn single_limb_mul_matches_general_path() {
        for x in boundary_values() {
            for y in boundary_values() {
                assert_eq!(&x * &y, super::mul_signed_general(&x, &y), "{x} * {y}");
            }
        }
    }

    #[test]
    fn single_limb_cmp_matches_general_path() {
        for x in boundary_values() {
            for y in boundary_values() {
                assert_eq!(x.cmp(&y), x.cmp_value_general(&y), "{x} cmp {y}");
            }
        }
    }

    #[test]
    fn exhaustive_small_values_against_i128_ground_truth() {
        for x in -65i128..=65 {
            for y in -65i128..=65 {
                assert_eq!(b(x) + b(y), b(x + y), "{x} + {y}");
                assert_eq!(b(x) - b(y), b(x - y), "{x} - {y}");
                assert_eq!(b(x) * b(y), b(x * y), "{x} * {y}");
                assert_eq!(b(x).cmp(&b(y)), x.cmp(&y), "{x} cmp {y}");
            }
        }
    }
}
