//! Symbolic typing of IR expressions: width (as a [`PExpr`] over the module
//! parameters) and signedness.
//!
//! These rules must agree exactly with the concrete evaluation rules of
//! `chicala_chisel`'s interpreter — the co-simulation tests enforce this.

use chicala_chisel::{
    Accessor, BinaryOp, ChiselType, Expr, FuncDef, Module, PExpr, SignalRef, UnaryOp,
};
use std::collections::BTreeMap;
use std::fmt;

/// The symbolic type of an expression: a ground shape (scalar or list) with
/// parameter-dependent width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum STy {
    /// Scalar bit-vector.
    Ground {
        /// Width over the parameters.
        width: PExpr,
        /// Signedness.
        signed: bool,
    },
    /// Boolean.
    Bool,
    /// Vector (becomes a Scala list).
    Vec {
        /// Element type.
        elem: Box<STy>,
        /// Length over the parameters.
        len: PExpr,
    },
    /// Bundle (flattened before expressions can have this type; only
    /// signals carry it).
    Bundle(Vec<(String, STy)>),
}

impl STy {
    /// The width of a ground type; booleans report width 1.
    pub fn width(&self) -> Option<PExpr> {
        match self {
            STy::Ground { width, .. } => Some(width.clone()),
            STy::Bool => Some(PExpr::Const(1)),
            _ => None,
        }
    }

    /// Whether the type is signed.
    pub fn is_signed(&self) -> bool {
        matches!(self, STy::Ground { signed: true, .. })
    }

    /// Converts a declared Chisel type.
    pub fn from_chisel(ty: &ChiselType) -> STy {
        match ty {
            ChiselType::UInt(w) => STy::Ground { width: w.clone(), signed: false },
            ChiselType::SInt(w) => STy::Ground { width: w.clone(), signed: true },
            ChiselType::Bool => STy::Bool,
            ChiselType::Vec(elem, len) => {
                STy::Vec { elem: Box::new(STy::from_chisel(elem)), len: len.clone() }
            }
            ChiselType::Bundle(fields) => STy::Bundle(
                fields.iter().map(|(n, t)| (n.clone(), STy::from_chisel(t))).collect(),
            ),
        }
    }
}

/// Typing errors: unsupported constructs or unresolvable references.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// A typing context: declared signals (plus locals) and functions.
pub struct TypeCtx<'m> {
    module: &'m Module,
    /// Extra bindings (function arguments and locals during function
    /// typing).
    pub locals: BTreeMap<String, STy>,
}

impl<'m> TypeCtx<'m> {
    /// Context for a module body.
    pub fn new(module: &'m Module) -> TypeCtx<'m> {
        TypeCtx { module, locals: BTreeMap::new() }
    }

    /// Context for a function body: arguments and locals bound.
    pub fn for_func(module: &'m Module, func: &FuncDef) -> TypeCtx<'m> {
        let mut locals = BTreeMap::new();
        for (n, t) in &func.args {
            locals.insert(n.clone(), STy::from_chisel(t));
        }
        for d in &func.locals {
            locals.insert(d.name.clone(), STy::from_chisel(&d.ty));
        }
        TypeCtx { module, locals }
    }

    /// Looks up a module-local function definition.
    pub fn module_func(&self, name: &str) -> Option<&'m FuncDef> {
        self.module.func(name)
    }

    fn signal_ty(&self, base: &str) -> Result<STy, TypeError> {
        if let Some(t) = self.locals.get(base) {
            return Ok(t.clone());
        }
        self.module
            .decl(base)
            .map(|d| STy::from_chisel(&d.ty))
            .ok_or_else(|| TypeError(format!("unknown signal `{base}`")))
    }

    /// Type of a (possibly partial) signal reference.
    pub fn ref_ty(&self, r: &SignalRef) -> Result<STy, TypeError> {
        let mut ty = self.signal_ty(&r.base)?;
        for acc in &r.path {
            ty = match (acc, ty) {
                (Accessor::Field(f), STy::Bundle(fields)) => fields
                    .into_iter()
                    .find(|(n, _)| n == f)
                    .map(|(_, t)| t)
                    .ok_or_else(|| TypeError(format!("no field `{f}` on `{}`", r.base)))?,
                (Accessor::Index(_), STy::Vec { elem, .. }) => *elem,
                _ => return Err(TypeError(format!("bad accessor on `{}`", r.base))),
            };
        }
        Ok(ty)
    }

    /// Type of an expression.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError`] for references that do not resolve, aggregate
    /// values in scalar positions, or unsupported operand shapes.
    pub fn expr_ty(&self, e: &Expr) -> Result<STy, TypeError> {
        let ground = |ty: &STy| -> Result<(PExpr, bool), TypeError> {
            match ty {
                STy::Ground { width, signed } => Ok((width.clone(), *signed)),
                STy::Bool => Ok((PExpr::Const(1), false)),
                _ => Err(TypeError("aggregate in scalar position".into())),
            }
        };
        Ok(match e {
            Expr::LitU { value, width } => {
                let w = match width {
                    Some(w) => w.clone(),
                    None => match value {
                        PExpr::Const(c) => {
                            PExpr::Const((64 - (*c).max(0).leading_zeros() as i64).max(1))
                        }
                        // Width-free parameter-dependent literals occur as
                        // vector indices and loop bounds, where only the
                        // value matters; `v + 1` bits always fits `v >= 0`.
                        v => (v.clone() + 1).simplify(),
                    },
                };
                STy::Ground { width: w, signed: false }
            }
            Expr::LitS { value: _, width } => {
                let w = width.clone().ok_or_else(|| {
                    TypeError("signed literals need an explicit width".into())
                })?;
                STy::Ground { width: w, signed: true }
            }
            Expr::LitB(_) => STy::Bool,
            Expr::Ref(r) => self.ref_ty(r)?,
            Expr::Unop(op, a) => {
                let at = self.expr_ty(a)?;
                match op {
                    UnaryOp::Not | UnaryOp::Neg => at,
                    UnaryOp::LogicNot
                    | UnaryOp::OrR
                    | UnaryOp::AndR
                    | UnaryOp::XorR
                    | UnaryOp::AsBool => STy::Bool,
                    UnaryOp::AsUInt => {
                        let (w, _) = ground(&at)?;
                        STy::Ground { width: w, signed: false }
                    }
                    UnaryOp::AsSInt => {
                        let (w, _) = ground(&at)?;
                        STy::Ground { width: w, signed: true }
                    }
                }
            }
            Expr::Binop(op, a, b) => {
                let at = self.expr_ty(a)?;
                let bt = self.expr_ty(b)?;
                if op.is_predicate() {
                    return Ok(STy::Bool);
                }
                let (wa, sa) = ground(&at)?;
                let (wb, sb) = ground(&bt)?;
                let signed = sa && sb;
                let wmax = PExpr::Max(Box::new(wa.clone()), Box::new(wb.clone())).simplify();
                match op {
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::And | BinaryOp::Or
                    | BinaryOp::Xor => STy::Ground { width: wmax, signed },
                    BinaryOp::Mul => {
                        STy::Ground { width: (wa + wb).simplify(), signed }
                    }
                    BinaryOp::Div => STy::Ground { width: wa, signed },
                    BinaryOp::Rem => STy::Ground {
                        width: PExpr::Min(Box::new(wa), Box::new(wb)).simplify(),
                        signed,
                    },
                    BinaryOp::Cat => {
                        STy::Ground { width: (wa + wb).simplify(), signed: false }
                    }
                    BinaryOp::Shl | BinaryOp::Shr => STy::Ground { width: wa, signed: sa },
                    _ => unreachable!("predicates handled above"),
                }
            }
            Expr::Mux(_, t, f) => {
                let tt = self.expr_ty(t)?;
                let ft = self.expr_ty(f)?;
                if tt == STy::Bool && ft == STy::Bool {
                    return Ok(STy::Bool);
                }
                let (wt, st) = ground(&tt)?;
                let (wf, sf) = ground(&ft)?;
                STy::Ground {
                    width: PExpr::Max(Box::new(wt), Box::new(wf)).simplify(),
                    signed: st && sf,
                }
            }
            Expr::Extract { hi, lo, .. } => {
                if hi == lo {
                    STy::Bool
                } else {
                    STy::Ground {
                        width: (hi.clone() - lo.clone() + 1).simplify(),
                        signed: false,
                    }
                }
            }
            Expr::BitAt { .. } => STy::Bool,
            Expr::ShlP { arg, amount } => {
                let (w, s) = ground(&self.expr_ty(arg)?)?;
                STy::Ground { width: (w + amount.clone()).simplify(), signed: s }
            }
            Expr::ShrP { arg, amount } => {
                let (w, s) = ground(&self.expr_ty(arg)?)?;
                if s {
                    STy::Ground { width: w, signed: true }
                } else {
                    STy::Ground {
                        width: PExpr::Max(
                            Box::new((w - amount.clone()).simplify()),
                            Box::new(PExpr::Const(1)),
                        )
                        .simplify(),
                        signed: false,
                    }
                }
            }
            Expr::Fill { times, arg } => {
                let (w, _) = ground(&self.expr_ty(arg)?)?;
                STy::Ground { width: (times.clone() * w).simplify(), signed: false }
            }
            Expr::Call { func, args } => {
                let f = self
                    .module
                    .func(func)
                    .ok_or_else(|| TypeError(format!("unknown function `{func}`")))?;
                if f.args.len() != args.len() {
                    return Err(TypeError(format!(
                        "function `{func}` expects {} args, got {}",
                        f.args.len(),
                        args.len()
                    )));
                }
                STy::from_chisel(&f.ret)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_chisel::examples::rotate_example;

    #[test]
    fn rotate_example_types() {
        let m = rotate_example();
        let ctx = TypeCtx::new(&m);
        let len = PExpr::param("len");
        assert_eq!(
            ctx.expr_ty(&Expr::sig("R")).unwrap(),
            STy::Ground { width: len.clone(), signed: false }
        );
        // Cat(R(0), R(len-1, 1)) : UInt(1 + (len-1)) — widths are symbolic.
        let rot = Expr::sig("R").bit(0).cat(Expr::sig("R").bits(len.clone() - 1, 1));
        let ty = ctx.expr_ty(&rot).unwrap();
        match ty {
            STy::Ground { width, signed: false } => {
                assert_eq!(width.eval_with(&[("len", 8)]).unwrap(), 8);
            }
            other => panic!("unexpected type {other:?}"),
        }
        assert_eq!(ctx.expr_ty(&Expr::sig("state")).unwrap(), STy::Bool);
    }

    #[test]
    fn literal_widths() {
        let m = rotate_example();
        let ctx = TypeCtx::new(&m);
        assert_eq!(
            ctx.expr_ty(&Expr::lit(5)).unwrap(),
            STy::Ground { width: PExpr::Const(3), signed: false }
        );
        assert_eq!(
            ctx.expr_ty(&Expr::lit(0)).unwrap(),
            STy::Ground { width: PExpr::Const(1), signed: false }
        );
        // Width-free parameter literals (vector indices, loop bounds) get
        // a value-dependent nominal width.
        assert_eq!(
            ctx.expr_ty(&Expr::LitU { value: PExpr::param("len"), width: None }).unwrap(),
            STy::Ground { width: PExpr::param("len") + 1, signed: false }
        );
    }

    #[test]
    fn mul_widths_add() {
        let m = rotate_example();
        let ctx = TypeCtx::new(&m);
        let e = Expr::Binop(
            BinaryOp::Mul,
            Box::new(Expr::sig("R")),
            Box::new(Expr::sig("R")),
        );
        match ctx.expr_ty(&e).unwrap() {
            STy::Ground { width, .. } => {
                assert_eq!(width.eval_with(&[("len", 8)]).unwrap(), 16);
            }
            other => panic!("unexpected type {other:?}"),
        }
    }
}
