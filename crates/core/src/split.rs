//! Statement splitting (§2.3): `when`/`otherwise` blocks are broken into
//! single-connect units so the reordering pass can move each connect
//! independently; adjacent units are re-merged after reordering.

use chicala_chisel::{Expr, LValue, PExpr, Stmt};

/// One guard on a unit: a `when` condition with a polarity (`true` for the
/// `when` branch, `false` for `otherwise`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Guard {
    /// The branch condition.
    pub cond: Expr,
    /// Whether the unit sits in the `when` (true) or `otherwise` (false)
    /// branch.
    pub polarity: bool,
}

/// An atomic schedulable unit produced by splitting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Unit {
    /// A single connect under a stack of guards.
    Assign {
        /// Enclosing `when` guards, outermost first.
        guards: Vec<Guard>,
        /// Connect target.
        lhs: LValue,
        /// Connect source.
        rhs: Expr,
        /// Source position (for stable reordering).
        origin: usize,
    },
    /// A generator loop, kept whole at this level; its body is split and
    /// reordered independently (like function bodies, §2.3).
    Loop {
        /// Enclosing guards.
        guards: Vec<Guard>,
        /// Loop variable.
        var: String,
        /// Inclusive lower bound.
        start: PExpr,
        /// Exclusive upper bound.
        end: PExpr,
        /// Split body units.
        body: Vec<Unit>,
        /// Source position.
        origin: usize,
    },
}

impl Unit {
    /// Source position of the unit.
    pub fn origin(&self) -> usize {
        match self {
            Unit::Assign { origin, .. } | Unit::Loop { origin, .. } => *origin,
        }
    }

    /// Guards of the unit.
    pub fn guards(&self) -> &[Guard] {
        match self {
            Unit::Assign { guards, .. } | Unit::Loop { guards, .. } => guards,
        }
    }

    /// Base names of signals written by this unit.
    pub fn writes(&self) -> Vec<String> {
        match self {
            Unit::Assign { lhs, .. } => vec![lhs.base.clone()],
            Unit::Loop { body, .. } => {
                let mut out = Vec::new();
                for u in body {
                    for w in u.writes() {
                        if !out.contains(&w) {
                            out.push(w);
                        }
                    }
                }
                out
            }
        }
    }

    /// Base names of signals read by this unit (guards included).
    pub fn reads(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |names: Vec<String>| {
            for n in names {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        };
        match self {
            Unit::Assign { guards, rhs, .. } => {
                for g in guards {
                    push(g.cond.reads());
                }
                push(rhs.reads());
            }
            Unit::Loop { guards, body, .. } => {
                for g in guards {
                    push(g.cond.reads());
                }
                for u in body {
                    push(u.reads());
                }
            }
        }
        out
    }
}

/// Splits statements into atomic units. `origin` numbering follows a
/// pre-order walk, so source order is recoverable.
pub fn split(stmts: &[Stmt]) -> Vec<Unit> {
    split_from(stmts, 0)
}

/// Like [`split`], with origins starting at `offset` (used to schedule node
/// definitions ahead of the body).
pub fn split_from(stmts: &[Stmt], offset: usize) -> Vec<Unit> {
    let mut units = Vec::new();
    let mut counter = offset;
    split_into(stmts, &mut Vec::new(), &mut units, &mut counter);
    units
}

fn split_into(stmts: &[Stmt], guards: &mut Vec<Guard>, out: &mut Vec<Unit>, counter: &mut usize) {
    for s in stmts {
        match s {
            Stmt::Connect { lhs, rhs } => {
                let origin = *counter;
                *counter += 1;
                out.push(Unit::Assign {
                    guards: guards.clone(),
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                    origin,
                });
            }
            Stmt::When { cond, then_body, else_body } => {
                guards.push(Guard { cond: cond.clone(), polarity: true });
                split_into(then_body, guards, out, counter);
                guards.pop();
                guards.push(Guard { cond: cond.clone(), polarity: false });
                split_into(else_body, guards, out, counter);
                guards.pop();
            }
            Stmt::For { var, start, end, body } => {
                let origin = *counter;
                *counter += 1;
                let mut inner = Vec::new();
                split_into(body, &mut Vec::new(), &mut inner, counter);
                out.push(Unit::Loop {
                    guards: guards.clone(),
                    var: var.clone(),
                    start: start.clone(),
                    end: end.clone(),
                    body: inner,
                    origin,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_chisel::examples::rotate_example;

    #[test]
    fn rotate_example_splits_into_five_plus_two_units() {
        // Listing 1's when-otherwise holds 4 connects + 1 nested when with
        // 1 connect; plus the two trailing connects: 7 assign units total.
        let m = rotate_example();
        let units = split(&m.body);
        assert_eq!(units.len(), 7);
        // The nested `state := true.B` carries two guards.
        let nested = units
            .iter()
            .find(|u| match u {
                Unit::Assign { guards, lhs, .. } => lhs.base == "state" && guards.len() == 2,
                _ => false,
            })
            .expect("nested state connect exists");
        assert!(!nested.guards()[0].polarity, "inside the otherwise branch");
        assert!(nested.guards()[1].polarity);
    }

    #[test]
    fn reads_and_writes() {
        let m = rotate_example();
        let units = split(&m.body);
        let first = &units[0]; // R := io_in under when(io_ready)
        assert_eq!(first.writes(), vec!["R".to_string()]);
        let reads = first.reads();
        assert!(reads.contains(&"io_ready".to_string()));
        assert!(reads.contains(&"io_in".to_string()));
    }
}
