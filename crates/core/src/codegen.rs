//! Code generation: reordered units → the sequential program (`Trans` body,
//! helper functions, variable declarations), with Chisel bit-vector
//! operations expanded into explicit integer arithmetic over `Pow2`.
//!
//! Every signal is represented by its *raw-bits value*, a non-negative
//! integer in `[0, 2^width)`; signed interpretation is inlined where an
//! operator is sign-sensitive. This is the integer view of the paper's
//! Listing 3.

use crate::split::{Guard, Unit};
use crate::typing::{STy, TypeCtx, TypeError};
use chicala_chisel::{
    Accessor, BinaryOp, ChiselType, Expr, LAccessor, LValue, PExpr, SignalRef, UnaryOp,
};
use chicala_seq::{SBinop, SCmp, SExpr, SStmt};
use std::fmt;

/// Errors raised during code generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodegenError {
    /// A typing error in the source module.
    Type(String),
    /// An operation outside the transformable subset.
    Unsupported(String),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::Type(m) => write!(f, "typing: {m}"),
            CodegenError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<TypeError> for CodegenError {
    fn from(e: TypeError) -> Self {
        CodegenError::Type(e.0)
    }
}

/// Converts a parameter expression to a sequential-language expression.
pub fn p2s(p: &PExpr) -> SExpr {
    match p {
        PExpr::Const(c) => SExpr::int(*c),
        PExpr::Param(n) | PExpr::Var(n) => SExpr::var(n.clone()),
        PExpr::Add(a, b) => p2s(a).add(p2s(b)),
        PExpr::Sub(a, b) => p2s(a).sub(p2s(b)),
        PExpr::Mul(a, b) => p2s(a).mul(p2s(b)),
        PExpr::Div(a, b) => p2s(a).div(p2s(b)),
        PExpr::Max(a, b) => {
            let (a, b) = (p2s(a), p2s(b));
            a.clone().cmp(SCmp::Ge, b.clone()).ite(a, b)
        }
        PExpr::Min(a, b) => {
            let (a, b) = (p2s(a), p2s(b));
            a.clone().cmp(SCmp::Le, b.clone()).ite(a, b)
        }
    }
}

/// A translated expression with its source type.
#[derive(Clone, Debug)]
pub struct TExpr {
    /// The sequential expression.
    pub s: SExpr,
    /// The symbolic source type.
    pub ty: STy,
}

impl TExpr {
    /// Coerces to an integer expression (booleans become `if b 1 else 0`).
    pub fn as_int(self) -> Result<SExpr, CodegenError> {
        match self.ty {
            STy::Bool => Ok(self.s.ite(SExpr::int(1), SExpr::int(0))),
            STy::Ground { .. } => Ok(self.s),
            _ => Err(CodegenError::Type("aggregate used as a scalar".into())),
        }
    }

    /// Coerces to a boolean expression (1-bit integers compare against 1).
    pub fn as_bool(self) -> Result<SExpr, CodegenError> {
        match self.ty {
            STy::Bool => Ok(self.s),
            STy::Ground { .. } => Ok(self.s.eq(SExpr::int(1))),
            _ => Err(CodegenError::Type("aggregate used as a boolean".into())),
        }
    }

    fn width(&self) -> Result<PExpr, CodegenError> {
        self.ty
            .width()
            .ok_or_else(|| CodegenError::Type("aggregate has no width".into()))
    }
}

/// The signed reinterpretation of raw bits `x` of width `w`:
/// `if (x < 2^(w-1)) x else x - 2^w`.
fn to_signed(x: SExpr, w: &PExpr) -> SExpr {
    x.clone()
        .cmp(SCmp::Lt, SExpr::pow2(p2s(&(w.clone() - 1))))
        .ite(x.clone(), x.sub(SExpr::pow2(p2s(w))))
}

/// Expression translator over a typing context.
pub struct Translator<'m> {
    /// Typing context (module body or function body).
    pub ctx: TypeCtx<'m>,
    /// Side conditions collected during translation (literal-fit
    /// obligations).
    pub obligations: Vec<SExpr>,
}

impl<'m> Translator<'m> {
    /// Creates a translator.
    pub fn new(ctx: TypeCtx<'m>) -> Translator<'m> {
        Translator { ctx, obligations: Vec::new() }
    }

    /// Flattened variable name for a reference's bundle-field prefix.
    fn flat_name(base: &str, fields: &[String]) -> String {
        let mut name = base.to_string();
        for f in fields {
            name = format!("{name}_{f}");
        }
        name
    }

    /// Translates an expression.
    ///
    /// # Errors
    ///
    /// Returns [`CodegenError`] for constructs outside the transformable
    /// subset (e.g. `xorR`, signed division, wide `Fill`).
    pub fn tr(&mut self, e: &Expr) -> Result<TExpr, CodegenError> {
        let ty = self.ctx.expr_ty(e)?;
        let s = match e {
            Expr::LitU { value, width } => {
                let v = p2s(value);
                if let Some(w) = width {
                    // Side condition: the literal fits its declared width.
                    self.obligations.push(
                        SExpr::int(0)
                            .cmp(SCmp::Le, v.clone())
                            .and(v.clone().cmp(SCmp::Lt, SExpr::pow2(p2s(w)))),
                    );
                }
                v
            }
            Expr::LitS { value, width } => {
                let v = p2s(value);
                let w = width.as_ref().expect("typing enforced an explicit width");
                self.obligations.push(
                    SExpr::int(0).sub(SExpr::pow2(p2s(&(w.clone() - 1))))
                        .cmp(SCmp::Le, v.clone())
                        .and(v.clone().cmp(SCmp::Lt, SExpr::pow2(p2s(&(w.clone() - 1))))),
                );
                // Raw bits of the (possibly negative) value.
                v.imod(SExpr::pow2(p2s(w)))
            }
            Expr::LitB(b) => SExpr::BoolConst(*b),
            Expr::Ref(r) => return self.tr_ref(r),
            Expr::Unop(op, a) => return self.tr_unop(*op, a, ty),
            Expr::Binop(op, a, b) => return self.tr_binop(*op, a, b, ty),
            Expr::Mux(c, t, f) => {
                let c = self.tr(c)?.as_bool()?;
                let tv = self.tr(t)?;
                let fv = self.tr(f)?;
                if ty == STy::Bool {
                    c.ite(tv.as_bool()?, fv.as_bool()?)
                } else {
                    c.ite(tv.as_int()?, fv.as_int()?)
                }
            }
            Expr::Extract { arg, hi, lo } => {
                let a = self.tr(arg)?.as_int()?;
                let shifted = a.div_pow2(p2s(lo));
                if hi == lo {
                    shifted.imod(SExpr::int(2)).eq(SExpr::int(1))
                } else {
                    shifted.mod_pow2(p2s(&(hi.clone() - lo.clone() + 1)))
                }
            }
            Expr::BitAt { arg, index } => {
                let a = self.tr(arg)?.as_int()?;
                let i = self.tr(index)?.as_int()?;
                a.div_pow2(i).imod(SExpr::int(2)).eq(SExpr::int(1))
            }
            Expr::ShlP { arg, amount } => {
                let a = self.tr(arg)?.as_int()?;
                a.mul(SExpr::pow2(p2s(amount)))
            }
            Expr::ShrP { arg, amount } => {
                let av = self.tr(arg)?;
                let signed = av.ty.is_signed();
                let w = av.width()?;
                let a = av.as_int()?;
                if signed {
                    to_signed(a, &w).div_pow2(p2s(amount)).mod_pow2(p2s(&w))
                } else {
                    a.div_pow2(p2s(amount))
                }
            }
            Expr::Fill { times, arg } => {
                let av = self.tr(arg)?;
                let w = av.width()?;
                if w != PExpr::Const(1) {
                    return Err(CodegenError::Unsupported(
                        "Fill is only transformable on 1-bit operands".into(),
                    ));
                }
                let a = av.as_int()?;
                a.mul(SExpr::pow2(p2s(times)).sub(SExpr::int(1)))
            }
            Expr::Call { func, args } => {
                let f = self
                    .ctx
                    .module_func_arg_types(func)
                    .ok_or_else(|| CodegenError::Type(format!("unknown function `{func}`")))?;
                let mut sargs = Vec::new();
                for (arg, aty) in args.iter().zip(f) {
                    let t = self.tr(arg)?;
                    sargs.push(match aty {
                        STy::Bool => t.as_bool()?,
                        STy::Ground { .. } => t.as_int()?,
                        _ => t.s,
                    });
                }
                SExpr::Call(func.clone(), sargs)
            }
        };
        Ok(TExpr { s, ty })
    }

    fn tr_ref(&mut self, r: &SignalRef) -> Result<TExpr, CodegenError> {
        let ty = self.ctx.ref_ty(r)?;
        // Split path into leading fields and trailing indices.
        let mut fields = Vec::new();
        let mut indices: Vec<&Expr> = Vec::new();
        for acc in &r.path {
            match acc {
                Accessor::Field(f) => {
                    if !indices.is_empty() {
                        return Err(CodegenError::Unsupported(
                            "field access after vector indexing".into(),
                        ));
                    }
                    fields.push(f.clone());
                }
                Accessor::Index(i) => indices.push(i),
            }
        }
        let mut s = SExpr::var(Self::flat_name(&r.base, &fields));
        for i in indices {
            let iv = self.tr(i)?.as_int()?;
            s = SExpr::ListGet(Box::new(s), Box::new(iv));
        }
        // List elements are stored as integers; expose booleans as
        // comparisons so downstream coercions work uniformly.
        if ty == STy::Bool && !r.path.iter().any(|a| matches!(a, Accessor::Index(_))) {
            return Ok(TExpr { s, ty });
        }
        if ty == STy::Bool {
            return Ok(TExpr { s: s.eq(SExpr::int(1)), ty });
        }
        Ok(TExpr { s, ty })
    }

    fn tr_unop(&mut self, op: UnaryOp, a: &Expr, ty: STy) -> Result<TExpr, CodegenError> {
        let av = self.tr(a)?;
        let w = av.ty.width();
        let s = match op {
            UnaryOp::Not => {
                let w = w.ok_or_else(|| CodegenError::Type("~ on aggregate".into()))?;
                SExpr::pow2(p2s(&w)).sub(SExpr::int(1)).sub(av.as_int()?)
            }
            UnaryOp::LogicNot => av.as_bool()?.not(),
            UnaryOp::Neg => {
                let w = w.ok_or_else(|| CodegenError::Type("neg on aggregate".into()))?;
                SExpr::pow2(p2s(&w)).sub(av.as_int()?).mod_pow2(p2s(&w))
            }
            UnaryOp::OrR => av.as_int()?.cmp(SCmp::Ne, SExpr::int(0)),
            UnaryOp::AndR => {
                let w = w.ok_or_else(|| CodegenError::Type("andR on aggregate".into()))?;
                av.as_int()?.eq(SExpr::pow2(p2s(&w)).sub(SExpr::int(1)))
            }
            UnaryOp::XorR => {
                return Err(CodegenError::Unsupported("xorR is outside the subset".into()))
            }
            UnaryOp::AsUInt | UnaryOp::AsSInt => av.as_int()?,
            UnaryOp::AsBool => av.as_bool()?,
        };
        Ok(TExpr { s, ty })
    }

    fn tr_binop(
        &mut self,
        op: BinaryOp,
        a: &Expr,
        b: &Expr,
        ty: STy,
    ) -> Result<TExpr, CodegenError> {
        let av = self.tr(a)?;
        let bv = self.tr(b)?;
        let s = match op {
            BinaryOp::LogicAnd => av.as_bool()?.and(bv.as_bool()?),
            BinaryOp::LogicOr => av.as_bool()?.or(bv.as_bool()?),
            BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt
            | BinaryOp::Ge => {
                // Compare interpreted values: signed operands through the
                // two's-complement view.
                let interp = |t: TExpr| -> Result<SExpr, CodegenError> {
                    if t.ty.is_signed() {
                        let w = t.width()?;
                        Ok(to_signed(t.as_int()?, &w))
                    } else {
                        t.as_int()
                    }
                };
                if av.ty == STy::Bool && bv.ty == STy::Bool && matches!(op, BinaryOp::Eq | BinaryOp::Neq)
                {
                    let (x, y) = (av.as_bool()?, bv.as_bool()?);
                    let eq = x.clone().and(y.clone()).or(x.not().and(y.not()));
                    if op == BinaryOp::Eq {
                        eq
                    } else {
                        eq.not()
                    }
                } else {
                    let (x, y) = (interp(av)?, interp(bv)?);
                    let cmp = match op {
                        BinaryOp::Eq => SCmp::Eq,
                        BinaryOp::Neq => SCmp::Ne,
                        BinaryOp::Lt => SCmp::Lt,
                        BinaryOp::Le => SCmp::Le,
                        BinaryOp::Gt => SCmp::Gt,
                        _ => SCmp::Ge,
                    };
                    x.cmp(cmp, y)
                }
            }
            BinaryOp::Add | BinaryOp::Sub => {
                let w = ty.width().ok_or_else(|| CodegenError::Type("+/- on aggregate".into()))?;
                let (x, y) = (av.as_int()?, bv.as_int()?);
                let raw = if op == BinaryOp::Add { x.add(y) } else { x.sub(y) };
                raw.mod_pow2(p2s(&w))
            }
            BinaryOp::Mul => {
                let signed = av.ty.is_signed() && bv.ty.is_signed();
                let w = ty.width().ok_or_else(|| CodegenError::Type("* on aggregate".into()))?;
                if signed {
                    let (wa, wb) = (av.width()?, bv.width()?);
                    let x = to_signed(av.as_int()?, &wa);
                    let y = to_signed(bv.as_int()?, &wb);
                    x.mul(y).mod_pow2(p2s(&w))
                } else {
                    av.as_int()?.mul(bv.as_int()?)
                }
            }
            BinaryOp::Div => {
                if av.ty.is_signed() || bv.ty.is_signed() {
                    return Err(CodegenError::Unsupported(
                        "signed division is outside the subset".into(),
                    ));
                }
                let (x, y) = (av.as_int()?, bv.as_int()?);
                y.clone()
                    .eq(SExpr::int(0))
                    .ite(SExpr::int(0), x.div(y))
            }
            BinaryOp::Rem => {
                if av.ty.is_signed() || bv.ty.is_signed() {
                    return Err(CodegenError::Unsupported(
                        "signed remainder is outside the subset".into(),
                    ));
                }
                let w = ty.width().ok_or_else(|| CodegenError::Type("% on aggregate".into()))?;
                let (x, y) = (av.as_int()?, bv.as_int()?);
                y.clone()
                    .eq(SExpr::int(0))
                    .ite(x.clone().mod_pow2(p2s(&w)), x.imod(y))
            }
            BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => {
                if av.ty == STy::Bool && bv.ty == STy::Bool {
                    let (x, y) = (av.as_bool()?, bv.as_bool()?);
                    match op {
                        BinaryOp::And => x.and(y),
                        BinaryOp::Or => x.or(y),
                        _ => {
                            // Boolean xor: x != y.
                            x.clone().and(y.clone().not()).or(x.not().and(y))
                        }
                    }
                } else {
                    let sop = match op {
                        BinaryOp::And => SBinop::BitAnd,
                        BinaryOp::Or => SBinop::BitOr,
                        _ => SBinop::BitXor,
                    };
                    SExpr::Binop(sop, Box::new(av.as_int()?), Box::new(bv.as_int()?))
                }
            }
            BinaryOp::Cat => {
                let wb = bv.width()?;
                av.as_int()?
                    .mul(SExpr::pow2(p2s(&wb)))
                    .add(bv.as_int()?)
            }
            BinaryOp::Shl => {
                let w = av.width()?;
                av.as_int()?.mul(SExpr::pow2(bv.as_int()?)).mod_pow2(p2s(&w))
            }
            BinaryOp::Shr => {
                let signed = av.ty.is_signed();
                let w = av.width()?;
                let k = bv.as_int()?;
                if signed {
                    to_signed(av.as_int()?, &w).div(SExpr::pow2(k)).mod_pow2(p2s(&w))
                } else {
                    av.as_int()?.div(SExpr::pow2(k))
                }
            }
        };
        Ok(TExpr { s, ty })
    }

    /// Translates a connect into an assignment (possibly a nested list
    /// update), clamping the value to the target's width when the widths are
    /// not syntactically equal.
    /// Translates one connect. When the (flattened) target is listed in
    /// `reg_names` the assignment is retargeted to the register's
    /// next-state copy, and for indexed targets the update chain *reads*
    /// the accumulated next-state receiver — but reads of the register
    /// inside the user's right-hand side always denote the pre-cycle
    /// value, exactly as in the reference interpreter.
    pub fn tr_assign(
        &mut self,
        lhs: &LValue,
        rhs: &Expr,
        reg_names: &[String],
    ) -> Result<SStmt, CodegenError> {
        // Resolve the target type along the full path.
        let mut rref = SignalRef::new(lhs.base.clone());
        for acc in &lhs.path {
            rref = match acc {
                LAccessor::Field(f) => rref.field(f.clone()),
                LAccessor::Index(i) => {
                    rref.index(Expr::LitU { value: i.clone(), width: None })
                }
            };
        }
        let target_ty = self.ctx.ref_ty(&rref)?;

        // Split the path into field prefix and index suffix.
        let mut fields = Vec::new();
        let mut indices: Vec<PExpr> = Vec::new();
        for acc in &lhs.path {
            match acc {
                LAccessor::Field(f) => {
                    if !indices.is_empty() {
                        return Err(CodegenError::Unsupported(
                            "field access after vector indexing in connect target".into(),
                        ));
                    }
                    fields.push(f.clone());
                }
                LAccessor::Index(i) => indices.push(i.clone()),
            }
        }
        let rv = self.tr(rhs)?;
        let value = self.coerce_connect(rv, &target_ty, !indices.is_empty())?;
        let name = Self::flat_name(&lhs.base, &fields);
        let target =
            if reg_names.contains(&name) { chicala_seq::next_name(&name) } else { name };
        if indices.is_empty() {
            return Ok(SStmt::Assign { name: target, rhs: value });
        }
        // v(i)(j) := e  ⟶  v := v.updated(i, v(i).updated(j, e))
        let rhs = build_list_update(SExpr::var(target.clone()), &indices, value);
        Ok(SStmt::Assign { name: target, rhs })
    }

    /// Coerces a translated value to the connect target's representation.
    /// List elements are always stored as integers (`in_list`), scalar
    /// booleans as booleans.
    fn coerce_connect(
        &mut self,
        rv: TExpr,
        target: &STy,
        in_list: bool,
    ) -> Result<SExpr, CodegenError> {
        match target {
            STy::Bool if in_list => Ok(rv.as_bool()?.ite(SExpr::int(1), SExpr::int(0))),
            STy::Bool => rv.as_bool(),
            STy::Ground { width, .. } => {
                let rhs_w = rv.ty.width();
                let v = rv.as_int()?;
                Ok(match rhs_w {
                    Some(w) if &w == width => v,
                    _ => v.mod_pow2(p2s(width)),
                })
            }
            STy::Vec { .. } => Ok(rv.s),
            STy::Bundle(_) => Err(CodegenError::Unsupported(
                "whole-bundle connects must be expanded before codegen".into(),
            )),
        }
    }

    /// Translates a guard stack into a boolean condition.
    pub fn tr_guards(&mut self, guards: &[Guard]) -> Result<Option<SExpr>, CodegenError> {
        let mut acc: Option<SExpr> = None;
        for g in guards {
            let mut c = self.tr(&g.cond)?.as_bool()?;
            if !g.polarity {
                c = c.not();
            }
            acc = Some(match acc {
                None => c,
                Some(prev) => prev.and(c),
            });
        }
        Ok(acc)
    }
}

fn build_list_update(list: SExpr, indices: &[PExpr], value: SExpr) -> SExpr {
    let i = p2s(&indices[0]);
    if indices.len() == 1 {
        SExpr::ListSet(Box::new(list), Box::new(i), Box::new(value))
    } else {
        let inner = SExpr::ListGet(Box::new(list.clone()), Box::new(i.clone()));
        let updated_inner = build_list_update(inner, &indices[1..], value);
        SExpr::ListSet(Box::new(list), Box::new(i), Box::new(updated_inner))
    }
}

/// A merged statement tree: units regrouped into `if`/`else` nests when
/// adjacent units share their outermost guard condition (§2.3's merging).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Merged {
    /// A single connect.
    Assign {
        /// Target.
        lhs: LValue,
        /// Source.
        rhs: Expr,
    },
    /// A merged conditional.
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then_b: Vec<Merged>,
        /// False branch.
        else_b: Vec<Merged>,
    },
    /// A generator loop (body merged recursively).
    Loop {
        /// Loop variable.
        var: String,
        /// Inclusive lower bound.
        start: PExpr,
        /// Exclusive upper bound.
        end: PExpr,
        /// Body.
        body: Vec<Merged>,
    },
}

/// Merges ordered units into nested conditionals. With `enable` false each
/// unit keeps its own guard nest (the ablation mode).
pub fn merge(units: &[Unit], enable: bool) -> Vec<Merged> {
    merge_level(units, 0, enable)
}

fn strip_guard(u: &Unit) -> Unit {
    match u {
        Unit::Assign { guards, lhs, rhs, origin } => Unit::Assign {
            guards: guards[1..].to_vec(),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            origin: *origin,
        },
        Unit::Loop { guards, var, start, end, body, origin } => Unit::Loop {
            guards: guards[1..].to_vec(),
            var: var.clone(),
            start: start.clone(),
            end: end.clone(),
            body: body.clone(),
            origin: *origin,
        },
    }
}

fn merge_level(units: &[Unit], _depth: usize, enable: bool) -> Vec<Merged> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < units.len() {
        let u = &units[i];
        match u.guards().first() {
            None => {
                out.push(match u {
                    Unit::Assign { lhs, rhs, .. } => {
                        Merged::Assign { lhs: lhs.clone(), rhs: rhs.clone() }
                    }
                    Unit::Loop { var, start, end, body, .. } => Merged::Loop {
                        var: var.clone(),
                        start: start.clone(),
                        end: end.clone(),
                        body: merge_level(body, 0, enable),
                    },
                });
                i += 1;
            }
            Some(g0) => {
                let cond = g0.cond.clone();
                // Collect the maximal run sharing this outermost condition.
                let mut j = i;
                while j < units.len()
                    && units[j].guards().first().map(|g| &g.cond) == Some(&cond)
                    && (enable || j == i)
                {
                    j += 1;
                }
                let run = &units[i..j];
                let (mut trues, mut falses) = (Vec::new(), Vec::new());
                for u in run {
                    let stripped = strip_guard(u);
                    if u.guards()[0].polarity {
                        trues.push(stripped);
                    } else {
                        falses.push(stripped);
                    }
                }
                out.push(Merged::If {
                    cond,
                    then_b: merge_level(&trues, 0, enable),
                    else_b: merge_level(&falses, 0, enable),
                });
                i = j;
            }
        }
    }
    out
}

impl TypeCtx<'_> {
    /// Argument types of a module-local function, if it exists.
    pub fn module_func_arg_types(&self, name: &str) -> Option<Vec<STy>> {
        self.module_func(name)
            .map(|f| f.args.iter().map(|(_, t)| STy::from_chisel(t)).collect())
    }
}

/// Flattens a declared type to `(flattened name, metadata)` pairs mirroring
/// the name mangling used for references (`base_field`); vectors stay whole
/// (they become lists).
pub fn flatten_decl(name: &str, ty: &ChiselType) -> Vec<(String, ChiselType)> {
    match ty {
        ChiselType::Bundle(fields) => {
            let mut out = Vec::new();
            for (f, fty) in fields {
                out.extend(flatten_decl(&format!("{name}_{f}"), fty));
            }
            out
        }
        _ => vec![(name.to_string(), ty.clone())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split;
    use chicala_chisel::examples::rotate_example;
    use chicala_chisel::Stmt;

    #[test]
    fn merge_rebuilds_if_else() {
        // when(c){a := x}, when(c){}.otherwise{b := y} splits into two units
        // with opposite polarities; merging produces one If.
        let m = rotate_example();
        let units = split(&m.body);
        let merged = merge(&units, true);
        // First unit block is the big when: it merges into a single If with
        // both branches, followed by the two trailing connects.
        assert_eq!(merged.len(), 3);
        match &merged[0] {
            Merged::If { then_b, else_b, .. } => {
                assert_eq!(then_b.len(), 2);
                assert_eq!(else_b.len(), 3); // R, cnt, nested If
                assert!(matches!(else_b[2], Merged::If { .. }));
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn merge_disabled_keeps_units_separate() {
        let m = rotate_example();
        let units = split(&m.body);
        let merged = merge(&units, false);
        // 5 guarded units stay separate + 2 plain connects.
        assert_eq!(merged.len(), 7);
    }

    #[test]
    fn translate_rotate_rhs() {
        let m = rotate_example();
        let mut tr = Translator::new(TypeCtx::new(&m));
        // Cat(R(0), R(len-1, 1)) →
        //   (if-bit * Pow2(len-1)) + extract
        let len = PExpr::param("len");
        let e = Expr::sig("R").bit(0).cat(Expr::sig("R").bits(len.clone() - 1, 1));
        let t = tr.tr(&e).expect("translates");
        let s = t.s.to_string();
        assert!(s.contains("Pow2"), "uses Pow2: {s}");
        assert!(s.contains("(R / Pow2(1))"), "extract as division: {s}");
    }

    #[test]
    fn assign_clamps_when_widths_differ() {
        let m = rotate_example();
        let mut tr = Translator::new(TypeCtx::new(&m));
        // cnt := cnt + 1.U(len.W): both sides width len → no extra clamp
        // beyond the addition's own mod.
        let len = PExpr::param("len");
        let rhs = Expr::Binop(
            BinaryOp::Add,
            Box::new(Expr::sig("cnt")),
            Box::new(Expr::lit_u(1, len)),
        );
        let s = tr.tr_assign(&LValue::new("cnt"), &rhs, &[]).expect("translates");
        match s {
            SStmt::Assign { name, rhs } => {
                assert_eq!(name, "cnt");
                let txt = rhs.to_string();
                assert_eq!(txt.matches("% Pow2(len)").count(), 1, "single clamp: {txt}");
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn list_update_nesting() {
        let v = build_list_update(
            SExpr::var("v"),
            &[PExpr::Const(1), PExpr::Const(2)],
            SExpr::int(9),
        );
        assert_eq!(v.to_string(), "v.updated(1, v(1).updated(2, 9))");
    }

    #[test]
    fn loops_survive_merging() {
        let stmts = vec![Stmt::For {
            var: "i".into(),
            start: PExpr::Const(0),
            end: PExpr::param("n"),
            body: vec![Stmt::Connect {
                lhs: LValue::new("v").index(PExpr::var("i")),
                rhs: Expr::lit(0),
            }],
        }];
        let units = split(&stmts);
        let merged = merge(&units, true);
        assert!(matches!(&merged[0], Merged::Loop { body, .. } if body.len() == 1));
    }
}
