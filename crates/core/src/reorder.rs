//! Dependency analysis and stable topological reordering (§2.3).
//!
//! Edges are built from four dependency scenarios:
//! (i) successive connects to the same signal keep their order
//!     (last-connect-wins);
//! (ii) a unit *using* a combinational signal depends on that signal's last
//!      connect (registers are exempt: reading a register reads the previous
//!      cycle's value);
//! (iii) definitions precede references (node definitions are scheduled as
//!       ordinary units);
//! (iv) guard conditions count as uses (their reads are part of each unit's
//!      read set).
//!
//! The sort is stable: among ready units, the smallest source position runs
//! first, so independent statements keep their source order.

use crate::split::Unit;
use chicala_chisel::{Module, SignalKind};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// Error raised when the dependency graph is cyclic (macro-level condition
/// (3) of §2.4 is violated).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircularDependencyError {
    /// Signals written by the units stuck on the cycle.
    pub signals: Vec<String>,
}

impl fmt::Display for CircularDependencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circular signal dependency through: {}", self.signals.join(", "))
    }
}

impl std::error::Error for CircularDependencyError {}

/// How a signal behaves for dependency purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalClass {
    /// Wire, output, or node: reads see this cycle's final value.
    Combinational,
    /// Register: reads see the previous cycle's value.
    Register,
    /// Input: never written.
    Input,
}

/// Classifier for signal base names; the module body and function bodies
/// need different contexts.
pub trait Classify {
    /// Classifies a base name; `None` for unknown names (treated as inputs,
    /// e.g. function arguments).
    fn classify(&self, base: &str) -> Option<SignalClass>;
}

/// Classifier over a module's declarations.
pub struct ModuleClassifier<'m> {
    module: &'m Module,
}

impl<'m> ModuleClassifier<'m> {
    /// Creates a classifier for `module`.
    pub fn new(module: &'m Module) -> Self {
        ModuleClassifier { module }
    }
}

impl Classify for ModuleClassifier<'_> {
    fn classify(&self, base: &str) -> Option<SignalClass> {
        self.module.decl(base).map(|d| match d.kind {
            SignalKind::Input => SignalClass::Input,
            SignalKind::Reg { .. } => SignalClass::Register,
            SignalKind::Output | SignalKind::Wire | SignalKind::Node(_) => {
                SignalClass::Combinational
            }
        })
    }
}

/// Classifier for function bodies: locals are combinational, everything
/// else (arguments) is treated as an input.
pub struct FuncClassifier {
    locals: BTreeSet<String>,
}

impl FuncClassifier {
    /// Creates a classifier with the given local names.
    pub fn new(locals: impl IntoIterator<Item = String>) -> Self {
        FuncClassifier { locals: locals.into_iter().collect() }
    }
}

impl Classify for FuncClassifier {
    fn classify(&self, base: &str) -> Option<SignalClass> {
        if self.locals.contains(base) {
            Some(SignalClass::Combinational)
        } else {
            None
        }
    }
}

/// Reorders `units` topologically (stable), per the dependency scenarios.
///
/// # Errors
///
/// Returns [`CircularDependencyError`] if the dependencies are cyclic.
pub fn reorder(units: Vec<Unit>, classify: &dyn Classify) -> Result<Vec<Unit>, CircularDependencyError> {
    let n = units.len();
    let mut succs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut preds: Vec<usize> = vec![0; n];

    // Writer lists per signal, in source order.
    let mut writers: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| units[i].origin());
    for &i in &order {
        for w in units[i].writes() {
            writers.entry(w).or_default().push(i);
        }
    }

    let add_edge = |from: usize, to: usize, succs: &mut Vec<BTreeSet<usize>>, preds: &mut Vec<usize>| {
        if from != to && succs[from].insert(to) {
            preds[to] += 1;
        }
    };

    // (i) write-write order per signal.
    for ws in writers.values() {
        for pair in ws.windows(2) {
            add_edge(pair[0], pair[1], &mut succs, &mut preds);
        }
    }

    // (ii)/(iv): each use of a combinational signal depends on its last
    // connect.
    for (i, u) in units.iter().enumerate() {
        for r in u.reads() {
            let class = classify.classify(&r).unwrap_or(SignalClass::Input);
            if class != SignalClass::Combinational {
                continue;
            }
            if let Some(ws) = writers.get(&r) {
                if let Some(&last) = ws.last() {
                    add_edge(last, i, &mut succs, &mut preds);
                }
            }
        }
    }

    // Stable Kahn: ready units by source position.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::new();
    for i in 0..n {
        if preds[i] == 0 {
            heap.push(Reverse((units[i].origin(), i)));
        }
    }
    let mut out_idx = Vec::with_capacity(n);
    while let Some(Reverse((_, i))) = heap.pop() {
        out_idx.push(i);
        for &j in &succs[i] {
            preds[j] -= 1;
            if preds[j] == 0 {
                heap.push(Reverse((units[j].origin(), j)));
            }
        }
    }
    if out_idx.len() != n {
        let stuck: BTreeSet<usize> = (0..n).filter(|i| !out_idx.contains(i)).collect();
        let mut signals = Vec::new();
        for i in stuck {
            for w in units[i].writes() {
                if !signals.contains(&w) {
                    signals.push(w);
                }
            }
        }
        return Err(CircularDependencyError { signals });
    }
    let mut slots: Vec<Option<Unit>> = units.into_iter().map(Some).collect();
    Ok(out_idx
        .into_iter()
        .map(|i| slots[i].take().expect("each index emitted once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::split;
    use chicala_chisel::examples::rotate_example;
    use chicala_chisel::{Expr, LValue, Stmt};

    #[test]
    fn rotate_example_hoists_ready_connect() {
        // io_ready := state must move before the when(io_ready) block
        // (the paper's motivating reordering).
        let m = rotate_example();
        let units = split(&m.body);
        let cls = ModuleClassifier::new(&m);
        let ordered = reorder(units, &cls).expect("acyclic");
        let pos_ready_connect = ordered
            .iter()
            .position(|u| matches!(u, Unit::Assign { lhs, .. } if lhs.base == "io_ready"))
            .expect("present");
        let first_guarded = ordered
            .iter()
            .position(|u| !u.guards().is_empty())
            .expect("guarded units exist");
        assert!(
            pos_ready_connect < first_guarded,
            "io_ready := state must precede all units guarded by io_ready"
        );
    }

    #[test]
    fn registers_do_not_create_use_edges() {
        // R := R + something is fine: reading R reads last cycle's value.
        let m = rotate_example();
        let units = split(&m.body);
        let cls = ModuleClassifier::new(&m);
        assert!(reorder(units, &cls).is_ok());
    }

    #[test]
    fn cyclic_wires_detected() {
        // a := b; b := a with a, b wires is a combinational cycle.
        use chicala_chisel::{ChiselType, ModuleBuilder};
        let mut mb = ModuleBuilder::new("Cyc", &[]);
        let a = mb.wire("a", ChiselType::Bool);
        let b = mb.wire("b", ChiselType::Bool);
        mb.connect(a.lv(), b.e());
        mb.connect(b.lv(), a.e());
        let m = mb.build();
        let units = split(&m.body);
        let cls = ModuleClassifier::new(&m);
        let err = reorder(units, &cls).expect_err("cycle");
        assert!(err.signals.contains(&"a".to_string()));
        assert!(err.signals.contains(&"b".to_string()));
    }

    #[test]
    fn stable_order_without_dependencies() {
        let stmts = vec![
            Stmt::Connect { lhs: LValue::new("x"), rhs: Expr::lit(1) },
            Stmt::Connect { lhs: LValue::new("y"), rhs: Expr::lit(2) },
            Stmt::Connect { lhs: LValue::new("z"), rhs: Expr::lit(3) },
        ];
        let units = split(&stmts);
        let cls = FuncClassifier::new(["x".to_string(), "y".to_string(), "z".to_string()]);
        let ordered = reorder(units, &cls).expect("acyclic");
        let bases: Vec<_> = ordered
            .iter()
            .map(|u| match u {
                Unit::Assign { lhs, .. } => lhs.base.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(bases, vec!["x", "y", "z"]);
    }

    #[test]
    fn last_connect_wins_order_preserved() {
        let stmts = vec![
            Stmt::Connect { lhs: LValue::new("x"), rhs: Expr::lit(1) },
            Stmt::Connect { lhs: LValue::new("x"), rhs: Expr::lit(2) },
        ];
        let units = split(&stmts);
        let cls = FuncClassifier::new(["x".to_string()]);
        let ordered = reorder(units, &cls).expect("acyclic");
        match (&ordered[0], &ordered[1]) {
            (Unit::Assign { rhs: r1, .. }, Unit::Assign { rhs: r2, .. }) => {
                assert_eq!(r1.to_string(), "1.U");
                assert_eq!(r2.to_string(), "2.U");
            }
            _ => panic!("expected two assigns"),
        }
    }
}
