//! The Chisel-to-sequential transformation — the paper's primary
//! contribution.
//!
//! [`transform`] turns a parameterized Chisel module (from
//! [`chicala_chisel`]) into a sequential software simulator (a
//! [`chicala_seq::SeqProgram`]) with the `Trans` / `Run` / `Init` structure
//! of the paper's Listing 2, preserving the bit-width parameters so the
//! program — and hence the hardware — can be verified *for all bit widths
//! at once*. The pipeline is:
//!
//! 1. applicability checking against the §2.4 subset ([`check_module`]);
//! 2. statement splitting of `when` blocks into single-connect units;
//! 3. dependency analysis and stable topological reordering (§2.3);
//! 4. re-merging of adjacent units into `if`/`else` nests;
//! 5. code generation into explicit integer arithmetic over `Pow2`
//!    (bit-vectors become bounded mathematical integers, §2.1).
//!
//! # Examples
//!
//! ```
//! use chicala_chisel::examples::rotate_example;
//! use chicala_core::transform;
//!
//! let out = transform(&rotate_example())?;
//! let text = out.program.to_string();
//! assert!(text.contains("def Trans(ins: Inputs, regs: Regs)"));
//! // The reordering moved `io_ready := state` ahead of the if that tests it.
//! let ready_pos = text.find("io_ready := state").expect("present");
//! let if_pos = text.find("if (io_ready)").expect("present");
//! assert!(ready_pos < if_pos);
//! # Ok::<(), chicala_core::TransformError>(())
//! ```

mod check;
mod codegen;
mod reorder;
mod split;
mod typing;

pub use check::{check_module, CheckReport};
pub use codegen::{flatten_decl, merge, p2s, CodegenError, Merged, TExpr, Translator};
pub use reorder::{
    reorder, CircularDependencyError, Classify, FuncClassifier, ModuleClassifier, SignalClass,
};
pub use split::{split, split_from, Guard, Unit};
pub use typing::{STy, TypeCtx, TypeError};

use chicala_chisel::{ChiselType, LValue, Module, SignalKind, Stmt};
use chicala_seq::{next_name, SExpr, SFunc, SStmt, SeqProgram, SeqVarDecl};
use chicala_telemetry as telemetry;
use std::fmt;

/// Options controlling the transformation (the ablation switches).
#[derive(Clone, Copy, Debug)]
pub struct TransformOptions {
    /// Run the applicability checker first.
    pub check: bool,
    /// Reorder statements by dependency (§2.3). Disabling this reproduces
    /// the naive source-order transformation, which is *incorrect* for
    /// modules with forward combinational dependencies.
    pub reorder: bool,
    /// Re-merge adjacent split units into `if`/`else` nests.
    pub merge: bool,
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions { check: true, reorder: true, merge: true }
    }
}

/// Errors raised by the transformation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransformError {
    /// The module is outside the transformable subset.
    Rejected(Vec<String>),
    /// Circular signal dependencies (macro condition 3).
    Cycle(CircularDependencyError),
    /// Code generation failure.
    Codegen(CodegenError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Rejected(v) => {
                write!(f, "module rejected by the applicability checker: {}", v.join("; "))
            }
            TransformError::Cycle(e) => write!(f, "{e}"),
            TransformError::Codegen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<CircularDependencyError> for TransformError {
    fn from(e: CircularDependencyError) -> Self {
        TransformError::Cycle(e)
    }
}

impl From<CodegenError> for TransformError {
    fn from(e: CodegenError) -> Self {
        TransformError::Codegen(e)
    }
}

/// The transformation result: the generated program plus side conditions
/// (literal-fit obligations) the verifier should discharge.
#[derive(Clone, Debug)]
pub struct TransformOutput {
    /// The generated sequential program.
    pub program: SeqProgram,
    /// Boolean side conditions over the parameters (e.g. `(len-1).U(len.W)`
    /// fits) to be assumed/checked during verification.
    pub obligations: Vec<SExpr>,
}

/// Transforms `module` with default options.
///
/// # Errors
///
/// See [`transform_with`].
pub fn transform(module: &Module) -> Result<TransformOutput, TransformError> {
    transform_with(module, TransformOptions::default())
}

/// Transforms `module` into a sequential program.
///
/// # Errors
///
/// Returns [`TransformError::Rejected`] if the applicability check fails,
/// [`TransformError::Cycle`] on circular combinational dependencies, and
/// [`TransformError::Codegen`] for constructs outside the subset.
pub fn transform_with(
    module: &Module,
    opts: TransformOptions,
) -> Result<TransformOutput, TransformError> {
    let _span = telemetry::span!("transform:{}", module.name);
    if opts.check {
        let _s = telemetry::span!("check");
        let report = check_module(module);
        if !report.is_ok() {
            return Err(TransformError::Rejected(report.violations));
        }
    }

    // Node definitions are scheduled as ordinary units, ahead of the body.
    let node_stmts: Vec<Stmt> = module
        .decls
        .iter()
        .filter_map(|d| match &d.kind {
            SignalKind::Node(e) => Some(Stmt::Connect {
                lhs: LValue::new(d.name.clone()),
                rhs: e.clone(),
            }),
            _ => None,
        })
        .collect();
    let split_span = telemetry::span!("split");
    let node_units = split(&node_stmts);
    let body_units = split_from(&module.body, node_units.len());
    let mut units = node_units;
    units.extend(body_units);
    split_span.finish();
    telemetry::counter("transform.units", units.len() as u64);

    let ordered = if opts.reorder {
        let _s = telemetry::span!("reorder");
        reorder(units, &ModuleClassifier::new(module))?
    } else {
        units
    };
    let merged = merge(&ordered, opts.merge);

    let _codegen_span = telemetry::span!("codegen");

    let mut tr = Translator::new(TypeCtx::new(module));

    // Variable declarations and `Trans` prologue (Listing 2 lines 6–10).
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut regs = Vec::new();
    let mut prologue: Vec<SStmt> = Vec::new();
    for d in &module.decls {
        for (name, ty) in flatten_decl(&d.name, &d.ty) {
            let width = width_meta(&ty);
            match &d.kind {
                SignalKind::Input => {
                    inputs.push(SeqVarDecl { name, width, init: None });
                }
                SignalKind::Output => {
                    prologue.push(SStmt::Let { name: name.clone(), init: default_value(&ty) });
                    outputs.push(SeqVarDecl { name, width, init: None });
                }
                SignalKind::Wire | SignalKind::Node(_) => {
                    prologue.push(SStmt::Let { name: name.clone(), init: default_value(&ty) });
                }
                SignalKind::Reg { init } => {
                    prologue.push(SStmt::Let {
                        name: next_name(&name),
                        init: SExpr::var(name.clone()),
                    });
                    let init = match init {
                        Some(e) => {
                            let ity = STy::from_chisel(&ty);
                            let t = tr.tr(e)?;
                            Some(match ity {
                                STy::Bool => t.as_bool()?,
                                _ => t.as_int()?,
                            })
                        }
                        None => None,
                    };
                    regs.push(SeqVarDecl { name, width, init });
                }
            }
        }
    }

    // Translate the merged body; connects to registers retarget `r_next`.
    let reg_names: Vec<String> = regs.iter().map(|r| r.name.clone()).collect();
    let mut body = translate_merged(&merged, &mut tr, &reg_names)?;
    let mut trans = prologue;
    trans.append(&mut body);

    // Helper functions: reorder each body independently (§2.3).
    let mut funcs = Vec::new();
    for f in &module.funcs {
        funcs.push(translate_func(module, f, opts)?);
    }

    let program = SeqProgram {
        name: module.name.clone(),
        params: module.params.clone(),
        inputs,
        outputs,
        regs,
        trans,
        timeout: None,
        funcs,
    };
    telemetry::counter("transform.stmts_generated", program.trans.len() as u64);
    telemetry::counter("transform.obligations", tr.obligations.len() as u64);
    Ok(TransformOutput { program, obligations: tr.obligations })
}

fn width_meta(ty: &ChiselType) -> Option<SExpr> {
    match ty {
        ChiselType::UInt(w) | ChiselType::SInt(w) => Some(p2s(w)),
        _ => None,
    }
}

fn default_value(ty: &ChiselType) -> SExpr {
    match ty {
        ChiselType::UInt(_) | ChiselType::SInt(_) => SExpr::int(0),
        ChiselType::Bool => SExpr::BoolConst(false),
        ChiselType::Vec(elem, len) => {
            let inner = match elem.as_ref() {
                // List elements are stored as integers.
                ChiselType::Bool => SExpr::int(0),
                other => default_value(other),
            };
            SExpr::ListFill(Box::new(p2s(len)), Box::new(inner))
        }
        ChiselType::Bundle(_) => unreachable!("bundles are flattened before defaults"),
    }
}

fn translate_merged(
    nodes: &[Merged],
    tr: &mut Translator<'_>,
    reg_names: &[String],
) -> Result<Vec<SStmt>, TransformError> {
    let mut out = Vec::new();
    for n in nodes {
        match n {
            Merged::Assign { lhs, rhs } => {
                // Register targets are retargeted to their next-state copy
                // inside `tr_assign`; reads of the register in the RHS keep
                // denoting the pre-cycle value (a blanket rename here would
                // make `r := f(...); r := g(r)` read the *pending* value,
                // diverging from the interpreter).
                out.push(tr.tr_assign(lhs, rhs, reg_names)?);
            }
            Merged::If { cond, then_b, else_b } => {
                let c = tr.tr(cond)?.as_bool()?;
                out.push(SStmt::If {
                    cond: c,
                    then_body: translate_merged(then_b, tr, reg_names)?,
                    else_body: translate_merged(else_b, tr, reg_names)?,
                });
            }
            Merged::Loop { var, start, end, body } => {
                out.push(SStmt::For {
                    var: var.clone(),
                    start: p2s(start),
                    end: p2s(end),
                    invariants: Vec::new(),
                    body: translate_merged(body, tr, reg_names)?,
                });
            }
        }
    }
    Ok(out)
}

fn translate_func(
    module: &Module,
    f: &chicala_chisel::FuncDef,
    opts: TransformOptions,
) -> Result<SFunc, TransformError> {
    // Node locals become leading units, like module-level nodes.
    let node_stmts: Vec<Stmt> = f
        .locals
        .iter()
        .filter_map(|d| match &d.kind {
            SignalKind::Node(e) => {
                Some(Stmt::Connect { lhs: LValue::new(d.name.clone()), rhs: e.clone() })
            }
            _ => None,
        })
        .collect();
    let node_units = split(&node_stmts);
    let body_units = split_from(&f.body, node_units.len());
    let mut units = node_units;
    units.extend(body_units);
    let ordered = if opts.reorder {
        let cls = FuncClassifier::new(f.locals.iter().map(|d| d.name.clone()));
        reorder(units, &cls)?
    } else {
        units
    };
    let merged = merge(&ordered, opts.merge);
    let mut tr = Translator::new(TypeCtx::for_func(module, f));
    let mut body: Vec<SStmt> = f
        .locals
        .iter()
        .flat_map(|d| {
            flatten_decl(&d.name, &d.ty).into_iter().map(|(name, ty)| SStmt::Let {
                name,
                init: default_value(&ty),
            })
        })
        .collect();
    body.extend(translate_merged(&merged, &mut tr, &[])?);
    let ret_ty = STy::from_chisel(&f.ret);
    let result = {
        let t = tr.tr(&f.result)?;
        match ret_ty {
            STy::Bool => t.as_bool()?,
            STy::Ground { .. } => t.as_int()?,
            _ => t.s,
        }
    };
    Ok(SFunc {
        name: f.name.clone(),
        params: f.args.iter().map(|(n, _)| n.clone()).collect(),
        requires: Vec::new(),
        ensures: Vec::new(),
        body,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_chisel::examples::rotate_example;

    #[test]
    fn transform_rotate_example_matches_listing2_shape() {
        let out = transform(&rotate_example()).expect("transforms");
        let p = &out.program;
        assert_eq!(p.params, vec!["len".to_string()]);
        assert_eq!(p.inputs.len(), 1);
        assert_eq!(p.outputs.len(), 2);
        assert_eq!(p.regs.len(), 3);
        // Register inits: state=true, cnt=0, R uninitialised.
        let state = p.regs.iter().find(|r| r.name == "state").expect("state");
        assert_eq!(state.init, Some(SExpr::BoolConst(true)));
        let r = p.regs.iter().find(|r| r.name == "R").expect("R");
        assert_eq!(r.init, None);
        let text = p.to_string();
        // io_ready := state precedes the if (reordering), and the split
        // units were re-merged into a single if/else.
        let ready = text.find("io_ready := state").expect("present");
        let iff = text.find("if (io_ready)").expect("present");
        assert!(ready < iff, "reordered:\n{text}");
        assert!(text.contains("} else {"), "merged:\n{text}");
    }

    #[test]
    fn reorder_disabled_keeps_source_order() {
        let out = transform_with(
            &rotate_example(),
            TransformOptions { reorder: false, ..Default::default() },
        )
        .expect("transforms");
        let text = out.program.to_string();
        let ready = text.find("io_ready := state").expect("present");
        let iff = text.find("if (io_ready)").expect("present");
        assert!(iff < ready, "no reordering:\n{text}");
    }

    #[test]
    fn rejected_module_reports_violations() {
        use chicala_chisel::{ChiselType, ModuleBuilder};
        let mut mb = ModuleBuilder::new("Bad", &["w"]);
        let w = mb.param("w");
        let a = mb.input("a", ChiselType::uint(w));
        let y = mb.output("y", ChiselType::Bool);
        mb.connect(y.lv(), a.e().xor_r());
        match transform(&mb.build()) {
            Err(TransformError::Rejected(v)) => assert!(v[0].contains("xorR")),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn obligations_cover_literals() {
        let out = transform(&rotate_example()).expect("transforms");
        // (len-1).U(len.W) and 1.U(len.W), 0.U(len.W) produce fit
        // obligations.
        assert!(!out.obligations.is_empty());
        let txt: Vec<String> = out.obligations.iter().map(|o| o.to_string()).collect();
        assert!(txt.iter().any(|t| t.contains("(len - 1)")), "{txt:?}");
    }
}
