//! The applicability checker: the macro- and micro-level conditions of
//! §2.4 that delimit the transformable subset of Chisel programs.
//!
//! Several conditions hold *by construction* of the IR (single global
//! clock, no module/bundle inheritance, statically identifiable connect
//! targets, no `while` loops, module-global signal scopes); the remaining
//! ones are checked here. Circular signal dependencies (macro condition 3)
//! are detected by the reordering pass itself.

use chicala_chisel::{ChiselType, Expr, Module, SignalKind, Stmt, UnaryOp};

/// Result of checking a module against the transformable subset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Human-readable violations; empty means the module is accepted.
    pub violations: Vec<String>,
}

impl CheckReport {
    /// Whether the module satisfies all checked conditions.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn bundle_is_pure(name: &str, ty: &ChiselType, out: &mut Vec<String>) {
    match ty {
        ChiselType::Bundle(fields) => {
            for (f, fty) in fields {
                match fty {
                    ChiselType::Bundle(_) => out.push(format!(
                        "bundle `{name}` nests bundle field `{f}` (micro condition 3)"
                    )),
                    ChiselType::Vec(elem, _) => {
                        if matches!(**elem, ChiselType::Bundle(_)) {
                            out.push(format!(
                                "bundle `{name}` field `{f}` is a vector of bundles (micro condition 3)"
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        ChiselType::Vec(elem, _) => {
            if matches!(**elem, ChiselType::Bundle(_)) {
                out.push(format!("vector `{name}` has bundle elements (micro condition 3)"));
            }
            bundle_is_pure(name, elem, out);
        }
        _ => {}
    }
}

fn scan_expr(e: &Expr, where_: &str, out: &mut Vec<String>) {
    match e {
        Expr::Unop(UnaryOp::XorR, _) => {
            out.push(format!("xorR used in {where_} is outside the transformable subset"))
        }
        Expr::Unop(_, a) => scan_expr(a, where_, out),
        Expr::Binop(op, a, b) => {
            if matches!(op, chicala_chisel::BinaryOp::Div | chicala_chisel::BinaryOp::Rem) {
                // Signed division is rejected during codegen, where types are
                // known; nothing to do here.
            }
            scan_expr(a, where_, out);
            scan_expr(b, where_, out);
        }
        Expr::Mux(c, t, f) => {
            scan_expr(c, where_, out);
            scan_expr(t, where_, out);
            scan_expr(f, where_, out);
        }
        Expr::Extract { arg, .. }
        | Expr::ShlP { arg, .. }
        | Expr::ShrP { arg, .. }
        | Expr::Fill { arg, .. } => scan_expr(arg, where_, out),
        Expr::BitAt { arg, index } => {
            scan_expr(arg, where_, out);
            scan_expr(index, where_, out);
        }
        Expr::Call { args, .. } => {
            for a in args {
                scan_expr(a, where_, out);
            }
        }
        Expr::Ref(_) | Expr::LitU { .. } | Expr::LitS { .. } | Expr::LitB(_) => {}
    }
}

fn scan_stmts(stmts: &[Stmt], where_: &str, out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Connect { rhs, .. } => scan_expr(rhs, where_, out),
            Stmt::When { cond, then_body, else_body } => {
                scan_expr(cond, where_, out);
                scan_stmts(then_body, where_, out);
                scan_stmts(else_body, where_, out);
            }
            Stmt::For { body, .. } => scan_stmts(body, where_, out),
        }
    }
}

fn stmt_reads_and_writes(stmts: &[Stmt], reads: &mut Vec<String>, writes: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Connect { lhs, rhs } => {
                if !writes.contains(&lhs.base) {
                    writes.push(lhs.base.clone());
                }
                for r in rhs.reads() {
                    if !reads.contains(&r) {
                        reads.push(r);
                    }
                }
            }
            Stmt::When { cond, then_body, else_body } => {
                for r in cond.reads() {
                    if !reads.contains(&r) {
                        reads.push(r);
                    }
                }
                stmt_reads_and_writes(then_body, reads, writes);
                stmt_reads_and_writes(else_body, reads, writes);
            }
            Stmt::For { body, .. } => stmt_reads_and_writes(body, reads, writes),
        }
    }
}

/// Checks `module` against the transformable subset.
///
/// # Examples
///
/// ```
/// let m = chicala_chisel::examples::rotate_example();
/// assert!(chicala_core::check_module(&m).is_ok());
/// ```
pub fn check_module(module: &Module) -> CheckReport {
    let mut violations = Vec::new();

    // Micro (3): bundles are pure and contain only ground/vec-of-ground
    // fields.
    for d in &module.decls {
        bundle_is_pure(&d.name, &d.ty, &mut violations);
    }

    // Micro (5): functions are combinational — they only mention their own
    // arguments and locals, never module signals (in particular, never
    // registers).
    for f in &module.funcs {
        let mut allowed: Vec<String> = f.args.iter().map(|(n, _)| n.clone()).collect();
        allowed.extend(f.locals.iter().map(|d| d.name.clone()));
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        stmt_reads_and_writes(&f.body, &mut reads, &mut writes);
        for r in f.result.reads() {
            if !reads.contains(&r) {
                reads.push(r);
            }
        }
        for name in reads.iter().chain(writes.iter()) {
            if !allowed.contains(name) && module.func(name).is_none() {
                violations.push(format!(
                    "function `{}` mentions module signal `{name}` (micro condition 5)",
                    f.name
                ));
            }
        }
        for w in &writes {
            if f.args.iter().any(|(n, _)| n == w) {
                violations.push(format!(
                    "function `{}` connects to its argument `{w}` (micro condition 2)",
                    f.name
                ));
            }
        }
    }

    // Subset prescan: constructs codegen cannot express.
    scan_stmts(&module.body, "the module body", &mut violations);
    for f in &module.funcs {
        scan_stmts(&f.body, &format!("function `{}`", f.name), &mut violations);
        scan_expr(&f.result, &format!("function `{}`", f.name), &mut violations);
    }
    for d in &module.decls {
        if let SignalKind::Node(e) = &d.kind {
            scan_expr(e, &format!("node `{}`", d.name), &mut violations);
        }
    }

    // Connects must target wires, outputs, or registers.
    check_targets(&module.body, module, &mut violations);

    CheckReport { violations }
}

fn check_targets(stmts: &[Stmt], module: &Module, out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Connect { lhs, .. } => match module.decl(&lhs.base).map(|d| &d.kind) {
                Some(SignalKind::Input) => {
                    out.push(format!("connect drives input `{}`", lhs.base))
                }
                Some(SignalKind::Node(_)) => {
                    out.push(format!("connect drives node `{}`", lhs.base))
                }
                None => out.push(format!("connect drives undeclared signal `{}`", lhs.base)),
                _ => {}
            },
            Stmt::When { then_body, else_body, .. } => {
                check_targets(then_body, module, out);
                check_targets(else_body, module, out);
            }
            Stmt::For { body, .. } => check_targets(body, module, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_chisel::examples::rotate_example;
    use chicala_chisel::{ChiselType, Expr, ModuleBuilder, PExpr};

    #[test]
    fn rotate_example_accepted() {
        assert!(check_module(&rotate_example()).is_ok());
    }

    #[test]
    fn function_touching_register_rejected() {
        let mut mb = ModuleBuilder::new("Bad", &["w"]);
        let w = mb.param("w");
        let _r = mb.reg("r", ChiselType::uint(w.clone()));
        mb.func("f", vec![], ChiselType::uint(w), |_| Expr::sig("r"));
        let m = mb.build();
        let rep = check_module(&m);
        assert!(!rep.is_ok());
        assert!(rep.violations[0].contains("micro condition 5"));
    }

    #[test]
    fn xorr_rejected() {
        let mut mb = ModuleBuilder::new("Bad", &["w"]);
        let w = mb.param("w");
        let a = mb.input("a", ChiselType::uint(w));
        let y = mb.output("y", ChiselType::Bool);
        mb.connect(y.lv(), a.e().xor_r());
        let rep = check_module(&mb.build());
        assert!(rep.violations.iter().any(|v| v.contains("xorR")));
    }

    #[test]
    fn driving_input_rejected() {
        let mut mb = ModuleBuilder::new("Bad", &["w"]);
        let w = mb.param("w");
        let a = mb.input("a", ChiselType::uint(w));
        mb.connect(a.lv(), Expr::lit(0));
        let rep = check_module(&mb.build());
        assert!(rep.violations.iter().any(|v| v.contains("drives input")));
    }

    #[test]
    fn impure_bundle_rejected() {
        let mut mb = ModuleBuilder::new("Bad", &["w"]);
        let inner = ChiselType::Bundle(vec![("x".into(), ChiselType::Bool)]);
        let outer = ChiselType::Bundle(vec![("nested".into(), inner)]);
        let _ = mb.input("io", outer);
        let rep = check_module(&mb.build());
        assert!(rep.violations.iter().any(|v| v.contains("micro condition 3")));
        let _ = PExpr::Const(0);
    }
}
