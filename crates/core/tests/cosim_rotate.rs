//! Co-simulation of the rotate running example: the generated sequential
//! program must agree, cycle by cycle, with the Chisel IR's reference
//! interpreter (the paper's future-work validation, experiment E3).
//!
//! Random-stimulus coverage lives in the conformance engine
//! (`crates/conformance`); this file keeps what the engine cannot express:
//! the transformation-*option* ablations (`reorder`, `merge`), which need
//! `transform_with` rather than the default pipeline.

use chicala_bigint::BigInt;
use chicala_chisel::{elaborate, examples::rotate_example, Simulator};
use chicala_conformance::{check_case, Design, Layer, SplitMix64};
use chicala_core::{transform_with, TransformOptions};
use chicala_seq::{SValue, SeqRunner};
use std::collections::BTreeMap;

fn svalue_to_int(v: &SValue) -> BigInt {
    match v {
        SValue::Int(i) => i.clone(),
        SValue::Bool(b) => BigInt::from(*b),
        SValue::List(_) => panic!("scalar expected"),
    }
}

/// Runs both semantics for `cycles` cycles under explicit transform
/// options and compares outputs and registers after every cycle. The
/// conformance engine always uses the default options, so the ablations
/// below need this local driver.
fn cosim_rotate(len: i64, input: u64, cycles: usize, opts: TransformOptions) -> Result<(), String> {
    let m = rotate_example();
    // Hardware reference.
    let bindings: chicala_chisel::Bindings = [("len".to_string(), len)].into_iter().collect();
    let em = elaborate(&m, &bindings).map_err(|e| e.to_string())?;
    let mut sim = Simulator::new(&em, &BTreeMap::new()).map_err(|e| e.to_string())?;
    let masked = BigInt::from(input).to_unsigned(len as u64);
    let hw_inputs: BTreeMap<String, BigInt> =
        [("io_in".to_string(), masked.clone())].into_iter().collect();

    // Generated software simulator.
    let out = transform_with(&m, opts).map_err(|e| e.to_string())?;
    let runner = SeqRunner::new(
        &out.program,
        [("len".to_string(), BigInt::from(len))].into_iter().collect(),
    );
    let sw_inputs: BTreeMap<String, SValue> =
        [("io_in".to_string(), SValue::Int(masked))].into_iter().collect();
    let mut sw_regs = runner.init_regs(&BTreeMap::new()).map_err(|e| e.to_string())?;

    for cycle in 0..cycles {
        let hw_out = sim.step(&hw_inputs).map_err(|e| e.to_string())?;
        let sw = runner.trans(&sw_inputs, &sw_regs).map_err(|e| e.to_string())?;
        for (name, hv) in &hw_out {
            let sv = svalue_to_int(&sw.outputs[name]);
            if *hv != sv {
                return Err(format!(
                    "cycle {cycle}: output {name}: hw={hv} sw={sv} (len={len}, in={input})"
                ));
            }
        }
        for (name, sv) in &sw.regs {
            let hv = sim.reg(name).expect("register exists");
            let sv = svalue_to_int(sv);
            if *hv != sv {
                return Err(format!(
                    "cycle {cycle}: reg {name}: hw={hv} sw={sv} (len={len}, in={input})"
                ));
            }
        }
        sw_regs = sw.regs;
    }
    Ok(())
}

#[test]
fn rotate_agrees_at_small_widths() {
    for len in 2..=10i64 {
        let input = 0b1011_0110_1101u64 & ((1 << len) - 1);
        cosim_rotate(len, input, 2 * len as usize + 3, TransformOptions::default())
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn rotate_disagrees_without_reordering() {
    // Without reordering, the if tests io_ready *before* it is assigned
    // from state, so the generated program reads the stale default (false)
    // and never latches the input: the two semantics must diverge.
    let opts = TransformOptions { reorder: false, ..Default::default() };
    let any_mismatch = (2..=6i64).any(|len| cosim_rotate(len, 0b101, 8, opts).is_err());
    assert!(any_mismatch, "reordering ablation should break co-simulation");
}

/// Random-stimulus cosim for rotate, driven through the conformance
/// engine's case generator and checker (replacing the old in-file
/// proptest loop; the engine owns seeds, masks, and shrinking).
#[test]
fn rotate_cosim_random() {
    let d = Design::by_name("rotate").expect("registered");
    let mut rng = SplitMix64::new(chicala_conformance::seed_from_env(0x0C41_707A));
    for i in 0..48 {
        let case_seed = rng.next_u64();
        let case = chicala_conformance::gen_case(&d, case_seed, 32);
        check_case(&d, Layer::Cosim, &case)
            .unwrap_or_else(|e| panic!("case {i} (seed 0x{case_seed:016X}): {e}"));
    }
}

/// Disabling merging must NOT change semantics (only code shape): the
/// merge-ablation cosim, over seeded random widths and inputs.
#[test]
fn rotate_cosim_merge_ablation() {
    let mut rng = SplitMix64::new(chicala_conformance::seed_from_env(0x4D45_5247));
    for i in 0..32 {
        let len = rng.range(2, 16) as i64;
        let input = rng.next_u64();
        let opts = TransformOptions { merge: false, ..Default::default() };
        cosim_rotate(len, input, 2 * len as usize + 2, opts)
            .unwrap_or_else(|e| panic!("case {i}: {e}"));
    }
}
