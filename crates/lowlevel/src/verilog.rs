//! Word-level Verilog emission from elaborated modules — the role FIRRTL's
//! Verilog emitter plays for Chisel, and the source of the `#Verilog`
//! column in the paper's Table 1 (line counts at a concrete bit width).

use chicala_chisel::{BinaryOp, ElabKind, ElabModule, Expr, PExpr, SignalRef, UnaryOp};
use std::fmt::Write;

fn pexpr(m: &ElabModule, p: &PExpr) -> i64 {
    p.eval(&m.bindings).expect("elaborated expressions have concrete parameters")
}

fn vexpr(m: &ElabModule, e: &Expr, out: &mut String) {
    match e {
        Expr::LitU { value, width } => {
            let v = pexpr(m, value);
            match width {
                Some(w) => {
                    let _ = write!(out, "{}'d{}", pexpr(m, w), v);
                }
                None => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        Expr::LitS { value, width } => {
            let v = pexpr(m, value);
            let w = width.as_ref().map(|w| pexpr(m, w)).unwrap_or(64);
            if v < 0 {
                let _ = write!(out, "-{}'sd{}", w, -v);
            } else {
                let _ = write!(out, "{w}'sd{v}");
            }
        }
        Expr::LitB(b) => {
            let _ = write!(out, "1'b{}", if *b { 1 } else { 0 });
        }
        Expr::Ref(SignalRef { base, .. }) => {
            let _ = write!(out, "{}", base.replace('$', "_"));
        }
        Expr::Unop(op, a) => {
            let sym = match op {
                UnaryOp::Not => "~",
                UnaryOp::LogicNot => "!",
                UnaryOp::Neg => "-",
                UnaryOp::OrR => "|",
                UnaryOp::AndR => "&",
                UnaryOp::XorR => "^",
                UnaryOp::AsUInt | UnaryOp::AsSInt | UnaryOp::AsBool => "",
            };
            let _ = write!(out, "{sym}(");
            vexpr(m, a, out);
            let _ = write!(out, ")");
        }
        Expr::Binop(op, a, b) => {
            if *op == BinaryOp::Cat {
                let _ = write!(out, "{{");
                vexpr(m, a, out);
                let _ = write!(out, ", ");
                vexpr(m, b, out);
                let _ = write!(out, "}}");
                return;
            }
            let sym = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::Rem => "%",
                BinaryOp::And => "&",
                BinaryOp::Or => "|",
                BinaryOp::Xor => "^",
                BinaryOp::LogicAnd => "&&",
                BinaryOp::LogicOr => "||",
                BinaryOp::Eq => "==",
                BinaryOp::Neq => "!=",
                BinaryOp::Lt => "<",
                BinaryOp::Le => "<=",
                BinaryOp::Gt => ">",
                BinaryOp::Ge => ">=",
                BinaryOp::Shl => "<<",
                BinaryOp::Shr => ">>",
                BinaryOp::Cat => unreachable!("handled above"),
            };
            let _ = write!(out, "(");
            vexpr(m, a, out);
            let _ = write!(out, " {sym} ");
            vexpr(m, b, out);
            let _ = write!(out, ")");
        }
        Expr::Mux(c, t, f) => {
            let _ = write!(out, "(");
            vexpr(m, c, out);
            let _ = write!(out, " ? ");
            vexpr(m, t, out);
            let _ = write!(out, " : ");
            vexpr(m, f, out);
            let _ = write!(out, ")");
        }
        Expr::Extract { arg, hi, lo } => {
            vexpr(m, arg, out);
            let (hi, lo) = (pexpr(m, hi), pexpr(m, lo));
            if hi == lo {
                let _ = write!(out, "[{hi}]");
            } else {
                let _ = write!(out, "[{hi}:{lo}]");
            }
        }
        Expr::BitAt { arg, index } => {
            vexpr(m, arg, out);
            let _ = write!(out, "[");
            vexpr(m, index, out);
            let _ = write!(out, "]");
        }
        Expr::ShlP { arg, amount } => {
            let _ = write!(out, "(");
            vexpr(m, arg, out);
            let _ = write!(out, " << {})", pexpr(m, amount));
        }
        Expr::ShrP { arg, amount } => {
            let _ = write!(out, "(");
            vexpr(m, arg, out);
            let _ = write!(out, " >> {})", pexpr(m, amount));
        }
        Expr::Fill { times, arg } => {
            let _ = write!(out, "{{{}{{", pexpr(m, times));
            vexpr(m, arg, out);
            let _ = write!(out, "}}}}");
        }
        Expr::Call { func, .. } => {
            let _ = write!(out, "/* unelaborated call {func} */ 0");
        }
    }
}

/// Emits word-level Verilog for an elaborated module.
///
/// # Examples
///
/// ```
/// use chicala_chisel::{examples, elaborate};
/// let m = examples::rotate_example();
/// let em = elaborate(&m, &[("len".to_string(), 64i64)].into_iter().collect())?;
/// let text = chicala_lowlevel::emit_verilog(&em);
/// assert!(text.contains("module Example("));
/// assert!(text.contains("always @(posedge clock)"));
/// # Ok::<(), chicala_chisel::ElabError>(())
/// ```
pub fn emit_verilog(m: &ElabModule) -> String {
    let mut out = String::new();
    let mut ports: Vec<String> = vec!["clock".into(), "reset".into()];
    ports.extend(m.input_names().iter().map(|n| n.replace('$', "_")));
    ports.extend(m.output_names().iter().map(|n| n.replace('$', "_")));
    let _ = writeln!(out, "module {}(", m.name);
    for (i, p) in ports.iter().enumerate() {
        let comma = if i + 1 == ports.len() { "" } else { "," };
        let _ = writeln!(out, "  {p}{comma}");
    }
    let _ = writeln!(out, ");");
    let _ = writeln!(out, "  input clock;");
    let _ = writeln!(out, "  input reset;");
    for s in &m.signals {
        let name = s.name.replace('$', "_");
        let range = if s.width > 1 {
            format!("[{}:0] ", s.width - 1)
        } else {
            String::new()
        };
        match &s.kind {
            ElabKind::Input => {
                let _ = writeln!(out, "  input {range}{name};");
            }
            ElabKind::Output => {
                let _ = writeln!(out, "  output {range}{name};");
            }
            ElabKind::Reg { .. } => {
                let _ = writeln!(out, "  reg {range}{name};");
            }
            ElabKind::Wire => {
                let _ = writeln!(out, "  wire {range}{name};");
            }
        }
    }
    // Combinational assignments.
    for s in &m.signals {
        if matches!(s.kind, ElabKind::Output | ElabKind::Wire) {
            if let Some(d) = m.drivers.get(&s.name) {
                let mut rhs = String::new();
                vexpr(m, d, &mut rhs);
                let _ = writeln!(out, "  assign {} = {};", s.name.replace('$', "_"), rhs);
            }
        }
    }
    // Sequential block.
    let regs: Vec<_> = m
        .signals
        .iter()
        .filter(|s| matches!(s.kind, ElabKind::Reg { .. }))
        .collect();
    if !regs.is_empty() {
        let _ = writeln!(out, "  always @(posedge clock) begin");
        for s in &regs {
            let name = s.name.replace('$', "_");
            if let ElabKind::Reg { init: Some(init) } = &s.kind {
                let mut iv = String::new();
                vexpr(m, init, &mut iv);
                let _ = writeln!(out, "    if (reset) begin");
                let _ = writeln!(out, "      {name} <= {iv};");
                let _ = writeln!(out, "    end else begin");
                if let Some(d) = m.drivers.get(&s.name) {
                    let mut rhs = String::new();
                    vexpr(m, d, &mut rhs);
                    let _ = writeln!(out, "      {name} <= {rhs};");
                }
                let _ = writeln!(out, "    end");
            } else if let Some(d) = m.drivers.get(&s.name) {
                let mut rhs = String::new();
                vexpr(m, d, &mut rhs);
                let _ = writeln!(out, "    {name} <= {rhs};");
            }
        }
        let _ = writeln!(out, "  end");
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Non-blank line count of the emitted Verilog (Table 1's `#Verilog`).
pub fn verilog_loc(m: &ElabModule) -> usize {
    emit_verilog(m).lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_chisel::{elaborate, examples};

    #[test]
    fn rotate_emits_plausible_verilog() {
        let m = examples::rotate_example();
        let em = elaborate(&m, &[("len".to_string(), 8i64)].into_iter().collect())
            .expect("elaborates");
        let text = emit_verilog(&em);
        assert!(text.contains("module Example("), "{text}");
        assert!(text.contains("input [7:0] io_in;"), "{text}");
        assert!(text.contains("output io_ready;"), "{text}");
        assert!(text.contains("reg [7:0] R;"), "{text}");
        assert!(text.contains("always @(posedge clock)"), "{text}");
        assert!(verilog_loc(&em) > 15);
    }
}
