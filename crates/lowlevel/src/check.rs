//! Per-bit-width formal checking: symbolic unrolling of an elaborated
//! sequential design over a [`BitKit`] (BDDs for proof, netlists for
//! inspection) — the low-level baseline whose cost grows with the bit
//! width, motivating the paper's width-parametric approach.

use crate::aig::{from_netlist, Aig, AigNode, AigRef, AIG_FALSE, AIG_TRUE};
use crate::bitblast::{clamp, BitKit, BlastError, Blaster, Word};
use crate::cnf::tseitin_pg;
use crate::netlist::{Gate, Net, Netlist};
use crate::opt::{OptProfile, PassManager};
use chicala_chisel::{ElabKind, ElabModule};
use chicala_sat::{SatResult, Solver};
use chicala_telemetry as telemetry;
use std::collections::BTreeMap;

/// Final symbolic state after unrolling.
#[derive(Clone, Debug)]
pub struct UnrolledState<B> {
    /// Register words after the last cycle.
    pub regs: BTreeMap<String, Word<B>>,
    /// Output words of the last cycle.
    pub outputs: BTreeMap<String, Word<B>>,
}

/// Symbolically unrolls `em` for `cycles` clock ticks with the given input
/// words held constant and the given initial register words (registers with
/// reset expressions use those instead).
///
/// # Errors
///
/// Propagates [`BlastError`] from the expression blaster.
pub fn unroll<K: BitKit>(
    em: &ElabModule,
    kit: &mut K,
    inputs: &BTreeMap<String, Word<K::Bit>>,
    init_regs: &BTreeMap<String, Word<K::Bit>>,
    cycles: usize,
) -> Result<UnrolledState<K::Bit>, BlastError> {
    let _span = telemetry::span!("unroll:{}x{}", em.name, cycles);
    // Initial register state.
    let mut regs: BTreeMap<String, Word<K::Bit>> = BTreeMap::new();
    for s in &em.signals {
        if let ElabKind::Reg { init } = &s.kind {
            let w = match init {
                Some(e) => {
                    let mut blaster = Blaster::<K>::new(em, inputs.clone());
                    let word = blaster.expr(kit, e)?;
                    clamp(kit, &word, s.width as usize, s.signed)
                }
                None => match init_regs.get(&s.name) {
                    Some(w) => clamp(kit, w, s.width as usize, s.signed),
                    None => Word {
                        bits: vec![kit.constant(false); s.width as usize],
                        signed: s.signed,
                    },
                },
            };
            regs.insert(s.name.clone(), w);
        }
    }
    let mut outputs = BTreeMap::new();
    for _ in 0..cycles {
        let mut leaves = inputs.clone();
        leaves.extend(regs.iter().map(|(k, v)| (k.clone(), v.clone())));
        let mut blaster = Blaster::<K>::new(em, leaves);
        // Outputs of this cycle.
        outputs.clear();
        for name in em.output_names() {
            let w = blaster.signal(kit, &name)?;
            outputs.insert(name, w);
        }
        // Next registers (from drivers, reading current regs).
        let mut next = BTreeMap::new();
        for s in &em.signals {
            if matches!(s.kind, ElabKind::Reg { .. }) {
                let d = em
                    .drivers
                    .get(&s.name)
                    .ok_or_else(|| BlastError::UnknownSignal(s.name.clone()))?
                    .clone();
                let w = blaster.expr(kit, &d)?;
                next.insert(s.name.clone(), clamp(kit, &w, s.width as usize, s.signed));
            }
        }
        regs = next;
    }
    if let Some(size) = kit.size_hint() {
        telemetry::record("bitblast.kit_size", size as u64);
    }
    Ok(UnrolledState { regs, outputs })
}

/// Creates fresh input words over a kit with a caller-controlled bit
/// factory (e.g. BDD variables in a chosen order).
pub fn fresh_inputs<K: BitKit>(
    em: &ElabModule,
    mut fresh: impl FnMut(&str, usize, &mut K) -> K::Bit,
    kit: &mut K,
) -> BTreeMap<String, Word<K::Bit>> {
    let mut out = BTreeMap::new();
    for s in &em.signals {
        if s.kind == ElabKind::Input {
            let bits = (0..s.width as usize).map(|i| fresh(&s.name, i, kit)).collect();
            out.insert(s.name.clone(), Word { bits, signed: s.signed });
        }
    }
    out
}

/// Bitwise equivalence of two words in a BDD manager: returns the BDD of
/// "words are equal" (zero-extending the shorter).
pub fn words_equal(
    bdd: &mut crate::bdd::Bdd,
    a: &Word<crate::bdd::Ref>,
    b: &Word<crate::bdd::Ref>,
) -> crate::bdd::Ref {
    let _span = telemetry::span!("words_equal");
    let w = a.width().max(b.width());
    let mut acc = crate::bdd::TRUE;
    for i in 0..w {
        let x = a.bits.get(i).copied().unwrap_or(crate::bdd::FALSE);
        let y = b.bits.get(i).copied().unwrap_or(crate::bdd::FALSE);
        let eq = bdd.iff(x, y);
        acc = bdd.and(acc, eq);
    }
    acc
}

/// Gate-level proof backend selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Monolithic ROBDD evaluation of the property net (exhaustive
    /// truth-table-style, wins at small widths).
    Bdd,
    /// AIG + Tseitin + CDCL SAT miter (wins once BDDs blow up).
    Sat,
    /// BDD at or below [`AUTO_SAT_CROSSOVER_WIDTH`], SAT above it.
    Auto,
}

/// The width crossover of [`Backend::Auto`]: the old per-design BDD
/// ceilings bottomed out at 6 (Booth `xmul`), so at or below this width the
/// BDD is still the cheaper exhaustive engine and above it the SAT miter
/// takes over.
pub const AUTO_SAT_CROSSOVER_WIDTH: usize = 6;

impl Backend {
    /// Reads the `CHICALA_GATE_BACKEND` override (`bdd` | `sat` | `auto`,
    /// case-insensitive); unset or unrecognised values yield `None`.
    pub fn from_env() -> Option<Backend> {
        match std::env::var("CHICALA_GATE_BACKEND").ok()?.to_ascii_lowercase().as_str() {
            "bdd" => Some(Backend::Bdd),
            "sat" => Some(Backend::Sat),
            "auto" => Some(Backend::Auto),
            _ => None,
        }
    }

    /// The concrete engine for a property at design width `width`.
    pub fn resolve(self, width: usize) -> Backend {
        match self {
            Backend::Auto => {
                if width <= AUTO_SAT_CROSSOVER_WIDTH {
                    Backend::Bdd
                } else {
                    Backend::Sat
                }
            }
            b => b,
        }
    }
}

/// Outcome of [`prove_net`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveResult {
    /// The property net is the constant true: equivalence holds for every
    /// input assignment at this width.
    Proved {
        /// The engine that closed the proof.
        backend: Backend,
    },
    /// A violating assignment over the netlist's `Input` nets (nets absent
    /// from the map are don't-cares; callers default them to false).
    Counterexample {
        /// The engine that found the assignment.
        backend: Backend,
        /// Input net values of the violating assignment.
        inputs: BTreeMap<Net, bool>,
    },
}

impl ProveResult {
    /// Whether the property was proved.
    pub fn is_proved(&self) -> bool {
        matches!(self, ProveResult::Proved { .. })
    }
}

/// Proves that the single-bit property net `root` is constant-true over
/// all assignments to the netlist's primary inputs, or produces a
/// counterexample assignment.
///
/// `width` drives the [`Backend::Auto`] crossover; `var_order` fixes the
/// BDD variable order for input nets (interleaving the operands of an
/// arithmetic miter keeps BDDs polynomial where a bad order explodes) —
/// input nets missing from it are ordered after the listed ones.
///
/// The self-certifying AIG optimizer ([`crate::opt`]) runs ahead of both
/// engines under the environment profile ([`OptProfile::from_env`]:
/// `CHICALA_OPT`, `CHICALA_OPT_CERT`); [`prove_net_with`] takes the
/// profile explicitly.
pub fn prove_net(
    nl: &Netlist,
    root: Net,
    backend: Backend,
    width: usize,
    var_order: &[Net],
) -> ProveResult {
    prove_net_with(nl, root, backend, width, var_order, OptProfile::from_env())
}

/// [`prove_net`] with an explicit optimizer profile — the entry point the
/// A/B bench uses to measure the optimizer's effect and the certification
/// gates use to force `CertMode::Full`.
///
/// When a certified pass application *fails* its equivalence miter the
/// optimizer's whole output is quarantined (discarded) and the proof is
/// re-run on the unoptimized cone by the raw engines, so an optimizer bug
/// can cost time but never soundness.
pub fn prove_net_with(
    nl: &Netlist,
    root: Net,
    backend: Backend,
    width: usize,
    var_order: &[Net],
    opt: OptProfile,
) -> ProveResult {
    // Content-addressed certificate cache (when installed): the key is the
    // canonical obligation transcript, so a hit is the *same* obligation
    // proved earlier — serve its result. Cached counterexamples are
    // re-evaluated against the live netlist before being trusted.
    let key = if crate::cache::prove_cache_installed() {
        let key = crate::cache::prove_key(nl, root, backend, width, var_order, opt);
        if let Some(result) = crate::cache::cached_prove(&key, nl, root) {
            return result;
        }
        Some(key)
    } else {
        None
    };
    let result = prove_net_uncached(nl, root, backend, width, var_order, opt);
    if let Some(key) = &key {
        crate::cache::store_prove(key, &result);
    }
    result
}

fn prove_net_uncached(
    nl: &Netlist,
    root: Net,
    backend: Backend,
    width: usize,
    var_order: &[Net],
    opt: OptProfile,
) -> ProveResult {
    let resolved = backend.resolve(width);
    if !opt.enabled {
        return match resolved {
            Backend::Bdd => prove_net_bdd(nl, root, var_order),
            _ => prove_net_sat(nl, root),
        };
    }
    let _span = telemetry::span!("prove_net:opt");
    let (aig, roots, input_map) = from_netlist(nl, &[root]);
    telemetry::record("prove.aig_nodes", aig.and_count() as u64);
    // Structural hashing alone closes many miters at lowering time (both
    // sides hash to the same node, so the equivalence folds to a
    // constant). There is nothing left to optimize *or* prove — skip the
    // pipeline instead of paying it for a no-op.
    if roots[0] == AIG_TRUE {
        return ProveResult::Proved { backend: resolved };
    }
    if roots[0] == AIG_FALSE {
        return ProveResult::Counterexample { backend: resolved, inputs: BTreeMap::new() };
    }
    let pm = PassManager::standard(width, opt.cert);
    let out = match pm.run(aig, roots) {
        Ok(out) => out,
        Err(failure) => {
            // A pass failed its own certificate: never use its output.
            telemetry::counter("opt.cert.failed", 1);
            let _ = failure;
            return match resolved {
                Backend::Bdd => prove_net_bdd(nl, root, var_order),
                _ => prove_net_sat(nl, root),
            };
        }
    };
    telemetry::record("prove.aig_nodes_opt", out.aig.and_count() as u64);
    let aroot = out.roots[0];
    // Input nets, followed through the lowering and the whole pass
    // pipeline to their final edges (absent: swept, a don't-care).
    let final_inputs: Vec<(Net, AigRef)> = input_map
        .iter()
        .filter_map(|(net, r)| Aig::map_edge(&out.map, *r).map(|e| (*net, e)))
        .collect();
    if aroot == AIG_TRUE {
        return ProveResult::Proved { backend: resolved };
    }
    if aroot == AIG_FALSE {
        return ProveResult::Counterexample { backend: resolved, inputs: BTreeMap::new() };
    }
    match resolved {
        Backend::Bdd => {
            // Honour the requested input order on the optimized graph.
            let node_of_net: BTreeMap<Net, u32> =
                final_inputs.iter().map(|(n, e)| (*n, e.node())).collect();
            let order: Vec<u32> =
                var_order.iter().filter_map(|n| node_of_net.get(n).copied()).collect();
            match aig_bdd_cex(&out.aig, aroot, &order) {
                None => ProveResult::Proved { backend: Backend::Bdd },
                Some(model) => {
                    let inputs = final_inputs
                        .iter()
                        .filter_map(|(net, e)| {
                            model.get(&e.node()).map(|&b| (*net, b ^ e.is_compl()))
                        })
                        .collect();
                    ProveResult::Counterexample { backend: Backend::Bdd, inputs }
                }
            }
        }
        _ => {
            let mut solver = Solver::new();
            let enc = tseitin_pg(&out.aig, !aroot, &mut solver);
            solver.add_clause(&[enc.lit]);
            telemetry::record("prove.cnf_clauses", solver.num_clauses() as u64);
            match solver.solve() {
                SatResult::Unsat => ProveResult::Proved { backend: Backend::Sat },
                SatResult::Sat(model) => {
                    let inputs = final_inputs
                        .iter()
                        .map(|(net, e)| {
                            let v = enc.var_of_node.get(&e.node());
                            (*net, v.is_some_and(|v| model[*v as usize]) ^ e.is_compl())
                        })
                        .collect();
                    ProveResult::Counterexample { backend: Backend::Sat, inputs }
                }
            }
        }
    }
}

/// BDD tautology check of an AIG edge: `None` when `root` is constant
/// true, otherwise a falsifying assignment over the graph's input node
/// ids. `var_order` lists input node ids to order first.
fn aig_bdd_cex(aig: &Aig, root: AigRef, var_order: &[u32]) -> Option<BTreeMap<u32, bool>> {
    let mut bdd = crate::bdd::Bdd::new();
    let mut var_of_node: BTreeMap<u32, u32> = BTreeMap::new();
    for (i, &n) in var_order.iter().enumerate() {
        var_of_node.insert(n, i as u32);
    }
    let mut next_var = var_order.len() as u32;
    let mut refs: Vec<crate::bdd::Ref> = Vec::with_capacity(aig.len());
    for i in 0..aig.len() as u32 {
        let r = match aig.node(AigRef::from_node(i)) {
            AigNode::Const => crate::bdd::FALSE,
            AigNode::Input => {
                let v = *var_of_node.entry(i).or_insert_with(|| {
                    let v = next_var;
                    next_var += 1;
                    v
                });
                bdd.var(v)
            }
            AigNode::And(x, y) => {
                let vx = refs[x.node() as usize];
                let vx = if x.is_compl() { bdd.not(vx) } else { vx };
                let vy = refs[y.node() as usize];
                let vy = if y.is_compl() { bdd.not(vy) } else { vy };
                bdd.and(vx, vy)
            }
        };
        refs.push(r);
    }
    telemetry::record("prove.bdd_nodes", bdd.node_count() as u64);
    let r = refs[root.node() as usize];
    let r = if root.is_compl() { bdd.not(r) } else { r };
    if bdd.is_true(r) {
        return None;
    }
    let nr = bdd.not(r);
    let sat = bdd.any_sat(nr).expect("non-true BDD has a falsifying assignment");
    let node_of_var: BTreeMap<u32, u32> = var_of_node.iter().map(|(n, v)| (*v, *n)).collect();
    Some(
        sat.into_iter()
            .filter_map(|(v, b)| node_of_var.get(&v).map(|n| (*n, b)))
            .collect(),
    )
}

/// BDD engine: evaluates the cone of `root` topologically into a fresh
/// manager and checks the result for tautology.
pub fn prove_net_bdd(nl: &Netlist, root: Net, var_order: &[Net]) -> ProveResult {
    let _span = telemetry::span!("prove_net:bdd");
    let mut bdd = crate::bdd::Bdd::new();
    // Mark the cone so dead netlist regions cost nothing.
    let mut in_cone = vec![false; nl.len()];
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_cone[n.0 as usize], true) {
            continue;
        }
        match nl.gate(n) {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Gate::Not(a) => stack.push(a),
            Gate::Const(_) | Gate::Input => {}
        }
    }
    // Input net -> BDD variable index, honouring the requested order.
    let mut var_of_net: BTreeMap<Net, u32> = BTreeMap::new();
    for (i, &n) in var_order.iter().enumerate() {
        var_of_net.insert(n, i as u32);
    }
    let mut next_var = var_order.len() as u32;
    let mut refs: Vec<crate::bdd::Ref> = Vec::with_capacity(nl.len());
    for (i, &cone) in in_cone.iter().enumerate() {
        let net = Net(i as u32);
        let r = if !cone {
            crate::bdd::FALSE // placeholder, never read
        } else {
            match nl.gate(net) {
                Gate::Const(b) => bdd.constant(b),
                Gate::Input => {
                    let v = *var_of_net.entry(net).or_insert_with(|| {
                        let v = next_var;
                        next_var += 1;
                        v
                    });
                    bdd.var(v)
                }
                Gate::And(a, b) => {
                    let (x, y) = (refs[a.0 as usize], refs[b.0 as usize]);
                    bdd.and(x, y)
                }
                Gate::Or(a, b) => {
                    let (x, y) = (refs[a.0 as usize], refs[b.0 as usize]);
                    bdd.or(x, y)
                }
                Gate::Xor(a, b) => {
                    let (x, y) = (refs[a.0 as usize], refs[b.0 as usize]);
                    bdd.xor(x, y)
                }
                Gate::Not(a) => {
                    let x = refs[a.0 as usize];
                    bdd.not(x)
                }
            }
        };
        refs.push(r);
    }
    telemetry::record("prove.bdd_nodes", bdd.node_count() as u64);
    let r = refs[root.0 as usize];
    if bdd.is_true(r) {
        return ProveResult::Proved { backend: Backend::Bdd };
    }
    // A violating assignment is a satisfying assignment of ¬root.
    let nr = bdd.not(r);
    let sat = bdd.any_sat(nr).expect("non-true BDD has a falsifying assignment");
    let net_of_var: BTreeMap<u32, Net> = var_of_net.iter().map(|(n, v)| (*v, *n)).collect();
    let inputs = sat
        .into_iter()
        .filter_map(|(v, b)| net_of_var.get(&v).map(|n| (*n, b)))
        .collect();
    ProveResult::Counterexample { backend: Backend::Bdd, inputs }
}

/// SAT engine: lowers the cone to an AIG (constant propagation, structural
/// hashing, 2-level rewriting), Tseitin-encodes the surviving miter, and
/// runs the CDCL solver on its negation.
pub fn prove_net_sat(nl: &Netlist, root: Net) -> ProveResult {
    let _span = telemetry::span!("prove_net:sat");
    let (aig, roots, input_map) = from_netlist(nl, &[root]);
    telemetry::record("prove.aig_and_requests", aig.and_requests);
    telemetry::record("prove.aig_nodes", aig.and_count() as u64);
    let aroot = roots[0];
    if aroot == AIG_TRUE {
        // The rewriting front-end already closed the proof.
        return ProveResult::Proved { backend: Backend::Sat };
    }
    if aroot == AIG_FALSE {
        // Property is constantly false: any assignment violates it.
        return ProveResult::Counterexample { backend: Backend::Sat, inputs: BTreeMap::new() };
    }
    let mut solver = Solver::new();
    // Plaisted–Greenbaum, seeded from the edge actually asserted (the
    // property's negation): single-polarity nodes get 1–2 clauses, not 3.
    let enc = tseitin_pg(&aig, !aroot, &mut solver);
    solver.add_clause(&[enc.lit]);
    telemetry::record("prove.cnf_clauses", solver.num_clauses() as u64);
    let result = solver.solve();
    let st = solver.stats();
    telemetry::counter("sat.decisions", st.decisions);
    telemetry::counter("sat.conflicts", st.conflicts);
    telemetry::counter("sat.propagations", st.propagations);
    telemetry::counter("sat.learned_clauses", st.learned_clauses);
    telemetry::counter("sat.restarts", st.restarts);
    match result {
        SatResult::Unsat => ProveResult::Proved { backend: Backend::Sat },
        SatResult::Sat(model) => {
            let inputs = input_map
                .iter()
                .map(|(net, aref)| {
                    let var = enc.var_of_node.get(&aref.node());
                    // Inputs outside the encoded cone are don't-cares.
                    (*net, var.is_some_and(|v| model[*v as usize]))
                })
                .collect();
            ProveResult::Counterexample { backend: Backend::Sat, inputs }
        }
    }
}

/// Builds the implication `assumptions → property` as a single net:
/// the standard shape of a conditional equivalence obligation (e.g.
/// "divisor nonzero implies quotient/remainder match").
pub fn implies_net(nl: &mut Netlist, assumptions: &[Net], property: Net) -> Net {
    let mut pre = nl.constant(true);
    for &a in assumptions {
        pre = nl.and(pre, a);
    }
    let npre = nl.not(pre);
    nl.or(npre, property)
}

/// Bitwise equality of two netlist words as a single net (zero-extending
/// the shorter side) — the miter-building counterpart of [`words_equal`].
pub fn nets_equal(nl: &mut Netlist, a: &Word<Net>, b: &Word<Net>) -> Net {
    let w = a.width().max(b.width());
    let zero = nl.constant(false);
    let mut acc = nl.constant(true);
    for i in 0..w {
        let x = a.bits.get(i).copied().unwrap_or(zero);
        let y = b.bits.get(i).copied().unwrap_or(zero);
        let ne = nl.xor(x, y);
        let eq = nl.not(ne);
        acc = nl.and(acc, eq);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;
    use crate::bitblast::{add_words, constant_word};
    use chicala_chisel::{elaborate, examples};
    use chicala_bigint::BigInt;

    #[test]
    fn rotate_unrolls_to_identity_bdd() {
        // After 1 + len cycles the rotate register equals the input — as a
        // *theorem over all inputs* at this width, proved by BDD.
        let len = 5usize;
        let m = examples::rotate_example();
        let em = elaborate(&m, &[("len".to_string(), len as i64)].into_iter().collect())
            .expect("elaborates");
        let mut bdd = Bdd::new();
        let inputs = fresh_inputs(&em, |_, i, b: &mut Bdd| b.var(i as u32), &mut bdd);
        let st = unroll(&em, &mut bdd, &inputs, &BTreeMap::new(), len + 1)
            .expect("unrolls");
        let eq = words_equal(&mut bdd, &st.regs["R"], &inputs["io_in"]);
        assert!(bdd.is_true(eq), "rotate identity fails at width {len}");
    }

    #[test]
    fn rotate_wrong_cycle_count_fails() {
        let len = 5usize;
        let m = examples::rotate_example();
        let em = elaborate(&m, &[("len".to_string(), len as i64)].into_iter().collect())
            .expect("elaborates");
        let mut bdd = Bdd::new();
        let inputs = fresh_inputs(&em, |_, i, b: &mut Bdd| b.var(i as u32), &mut bdd);
        let st = unroll(&em, &mut bdd, &inputs, &BTreeMap::new(), len).expect("unrolls");
        let eq = words_equal(&mut bdd, &st.regs["R"], &inputs["io_in"]);
        assert!(!bdd.is_true(eq), "one cycle short must not be the identity");
    }

    #[test]
    fn prove_net_backends_agree_on_adder_commutativity() {
        // a + b == b + a at width 6, proved by both engines.
        let mut nl = crate::netlist::Netlist::new();
        let w = 6usize;
        let a = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let b = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let ab = add_words(&mut nl, &a, &b, w);
        let ba = add_words(&mut nl, &b, &a, w);
        let eq = nets_equal(&mut nl, &ab, &ba);
        let order: Vec<crate::netlist::Net> = (0..w)
            .flat_map(|i| [a.bits[i], b.bits[i]])
            .collect();
        assert!(prove_net(&nl, eq, Backend::Bdd, w, &order).is_proved());
        assert!(prove_net(&nl, eq, Backend::Sat, w, &order).is_proved());
        assert!(prove_net(&nl, eq, Backend::Auto, w, &order).is_proved());
    }

    #[test]
    fn prove_net_counterexamples_are_real() {
        // a + b == a - b is falsifiable; both engines must return an
        // assignment that actually falsifies the net.
        let mut nl = crate::netlist::Netlist::new();
        let w = 4usize;
        let a = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let b = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let sum = add_words(&mut nl, &a, &b, w);
        // a - b = a + ~b + 1.
        let nb = Word {
            bits: b.bits.iter().map(|&x| nl.not(x)).collect::<Vec<_>>(),
            signed: false,
        };
        let sum1 = add_words(&mut nl, &a, &nb, w);
        let one = constant_word(&mut nl, &BigInt::one(), w, false);
        let diff = add_words(&mut nl, &sum1, &one, w);
        let eq = nets_equal(&mut nl, &sum, &diff);
        for backend in [Backend::Bdd, Backend::Sat] {
            match prove_net(&nl, eq, backend, w, &[]) {
                ProveResult::Proved { .. } => panic!("{backend:?}: a+b == a-b is not valid"),
                ProveResult::Counterexample { inputs, .. } => {
                    let vals = nl.eval(&|net| inputs.get(&net).copied().unwrap_or(false));
                    assert!(
                        !vals[eq.0 as usize],
                        "{backend:?} returned a non-falsifying counterexample"
                    );
                }
            }
        }
    }

    #[test]
    fn optimized_and_raw_paths_agree() {
        // The same obligations, proved with the optimizer forced on (full
        // certification) and forced off, must agree — and counterexamples
        // from the optimized path must falsify the *original* netlist.
        let mut nl = crate::netlist::Netlist::new();
        let w = 5usize;
        let a = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let b = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let ab = add_words(&mut nl, &a, &b, w);
        let ba = add_words(&mut nl, &b, &a, w);
        let valid = nets_equal(&mut nl, &ab, &ba);
        let shifted = crate::bitblast::add_words(&mut nl, &ab, &a.clone(), w);
        let invalid = nets_equal(&mut nl, &ab, &shifted); // fails when a ≠ 0
        for backend in [Backend::Bdd, Backend::Sat] {
            let opt = prove_net_with(&nl, valid, backend, w, &[], crate::opt::OptProfile::full_cert());
            let raw = prove_net_with(&nl, valid, backend, w, &[], crate::opt::OptProfile::off());
            assert!(opt.is_proved(), "{backend:?} optimized");
            assert!(raw.is_proved(), "{backend:?} raw");
            match prove_net_with(&nl, invalid, backend, w, &[], crate::opt::OptProfile::full_cert())
            {
                ProveResult::Proved { .. } => panic!("{backend:?}: a+b == a+b+a is not valid"),
                ProveResult::Counterexample { inputs, .. } => {
                    let vals = nl.eval(&|net| inputs.get(&net).copied().unwrap_or(false));
                    assert!(
                        !vals[invalid.0 as usize],
                        "{backend:?}: optimized-path counterexample must be real"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_backend_crossover_picks_engines_by_width() {
        assert_eq!(Backend::Auto.resolve(AUTO_SAT_CROSSOVER_WIDTH), Backend::Bdd);
        assert_eq!(Backend::Auto.resolve(AUTO_SAT_CROSSOVER_WIDTH + 1), Backend::Sat);
        assert_eq!(Backend::Bdd.resolve(64), Backend::Bdd);
        assert_eq!(Backend::Sat.resolve(1), Backend::Sat);
    }

    #[test]
    fn implies_net_shape() {
        let mut nl = crate::netlist::Netlist::new();
        let a = nl.input();
        let p = nl.input();
        let imp = implies_net(&mut nl, &[a], p);
        for bits in 0..4u32 {
            let vals = nl.eval(&|net| {
                if net == a {
                    bits & 1 == 1
                } else {
                    bits & 2 == 2
                }
            });
            let want = (bits & 1 != 1) || (bits & 2 == 2);
            assert_eq!(vals[imp.0 as usize], want);
        }
    }

    #[test]
    fn word_arithmetic_against_reference() {
        // add_words in the BDD kit agrees with integer addition on
        // constants.
        let mut bdd = Bdd::new();
        let a = constant_word(&mut bdd, &BigInt::from(13), 6, false);
        let b = constant_word(&mut bdd, &BigInt::from(25), 6, false);
        let s = add_words(&mut bdd, &a, &b, 6);
        let expect = constant_word(&mut bdd, &BigInt::from(38), 6, false);
        let eq = words_equal(&mut bdd, &s, &expect);
        assert!(bdd.is_true(eq));
    }
}
