//! Per-bit-width formal checking: symbolic unrolling of an elaborated
//! sequential design over a [`BitKit`] (BDDs for proof, netlists for
//! inspection) — the low-level baseline whose cost grows with the bit
//! width, motivating the paper's width-parametric approach.

use crate::bitblast::{clamp, BitKit, BlastError, Blaster, Word};
use chicala_chisel::{ElabKind, ElabModule};
use chicala_telemetry as telemetry;
use std::collections::BTreeMap;

/// Final symbolic state after unrolling.
#[derive(Clone, Debug)]
pub struct UnrolledState<B> {
    /// Register words after the last cycle.
    pub regs: BTreeMap<String, Word<B>>,
    /// Output words of the last cycle.
    pub outputs: BTreeMap<String, Word<B>>,
}

/// Symbolically unrolls `em` for `cycles` clock ticks with the given input
/// words held constant and the given initial register words (registers with
/// reset expressions use those instead).
///
/// # Errors
///
/// Propagates [`BlastError`] from the expression blaster.
pub fn unroll<K: BitKit>(
    em: &ElabModule,
    kit: &mut K,
    inputs: &BTreeMap<String, Word<K::Bit>>,
    init_regs: &BTreeMap<String, Word<K::Bit>>,
    cycles: usize,
) -> Result<UnrolledState<K::Bit>, BlastError> {
    let _span = telemetry::span!("unroll:{}x{}", em.name, cycles);
    // Initial register state.
    let mut regs: BTreeMap<String, Word<K::Bit>> = BTreeMap::new();
    for s in &em.signals {
        if let ElabKind::Reg { init } = &s.kind {
            let w = match init {
                Some(e) => {
                    let mut blaster = Blaster::<K>::new(em, inputs.clone());
                    let word = blaster.expr(kit, e)?;
                    clamp(kit, &word, s.width as usize, s.signed)
                }
                None => match init_regs.get(&s.name) {
                    Some(w) => clamp(kit, w, s.width as usize, s.signed),
                    None => Word {
                        bits: vec![kit.constant(false); s.width as usize],
                        signed: s.signed,
                    },
                },
            };
            regs.insert(s.name.clone(), w);
        }
    }
    let mut outputs = BTreeMap::new();
    for _ in 0..cycles {
        let mut leaves = inputs.clone();
        leaves.extend(regs.iter().map(|(k, v)| (k.clone(), v.clone())));
        let mut blaster = Blaster::<K>::new(em, leaves);
        // Outputs of this cycle.
        outputs.clear();
        for name in em.output_names() {
            let w = blaster.signal(kit, &name)?;
            outputs.insert(name, w);
        }
        // Next registers (from drivers, reading current regs).
        let mut next = BTreeMap::new();
        for s in &em.signals {
            if matches!(s.kind, ElabKind::Reg { .. }) {
                let d = em
                    .drivers
                    .get(&s.name)
                    .ok_or_else(|| BlastError::UnknownSignal(s.name.clone()))?
                    .clone();
                let w = blaster.expr(kit, &d)?;
                next.insert(s.name.clone(), clamp(kit, &w, s.width as usize, s.signed));
            }
        }
        regs = next;
    }
    if let Some(size) = kit.size_hint() {
        telemetry::record("bitblast.kit_size", size as u64);
    }
    Ok(UnrolledState { regs, outputs })
}

/// Creates fresh input words over a kit with a caller-controlled bit
/// factory (e.g. BDD variables in a chosen order).
pub fn fresh_inputs<K: BitKit>(
    em: &ElabModule,
    mut fresh: impl FnMut(&str, usize, &mut K) -> K::Bit,
    kit: &mut K,
) -> BTreeMap<String, Word<K::Bit>> {
    let mut out = BTreeMap::new();
    for s in &em.signals {
        if s.kind == ElabKind::Input {
            let bits = (0..s.width as usize).map(|i| fresh(&s.name, i, kit)).collect();
            out.insert(s.name.clone(), Word { bits, signed: s.signed });
        }
    }
    out
}

/// Bitwise equivalence of two words in a BDD manager: returns the BDD of
/// "words are equal" (zero-extending the shorter).
pub fn words_equal(
    bdd: &mut crate::bdd::Bdd,
    a: &Word<crate::bdd::Ref>,
    b: &Word<crate::bdd::Ref>,
) -> crate::bdd::Ref {
    let _span = telemetry::span!("words_equal");
    let w = a.width().max(b.width());
    let mut acc = crate::bdd::TRUE;
    for i in 0..w {
        let x = a.bits.get(i).copied().unwrap_or(crate::bdd::FALSE);
        let y = b.bits.get(i).copied().unwrap_or(crate::bdd::FALSE);
        let eq = bdd.iff(x, y);
        acc = bdd.and(acc, eq);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bdd::Bdd;
    use crate::bitblast::{add_words, constant_word};
    use chicala_chisel::{elaborate, examples};
    use chicala_bigint::BigInt;

    #[test]
    fn rotate_unrolls_to_identity_bdd() {
        // After 1 + len cycles the rotate register equals the input — as a
        // *theorem over all inputs* at this width, proved by BDD.
        let len = 5usize;
        let m = examples::rotate_example();
        let em = elaborate(&m, &[("len".to_string(), len as i64)].into_iter().collect())
            .expect("elaborates");
        let mut bdd = Bdd::new();
        let inputs = fresh_inputs(&em, |_, i, b: &mut Bdd| b.var(i as u32), &mut bdd);
        let st = unroll(&em, &mut bdd, &inputs, &BTreeMap::new(), len + 1)
            .expect("unrolls");
        let eq = words_equal(&mut bdd, &st.regs["R"], &inputs["io_in"]);
        assert!(bdd.is_true(eq), "rotate identity fails at width {len}");
    }

    #[test]
    fn rotate_wrong_cycle_count_fails() {
        let len = 5usize;
        let m = examples::rotate_example();
        let em = elaborate(&m, &[("len".to_string(), len as i64)].into_iter().collect())
            .expect("elaborates");
        let mut bdd = Bdd::new();
        let inputs = fresh_inputs(&em, |_, i, b: &mut Bdd| b.var(i as u32), &mut bdd);
        let st = unroll(&em, &mut bdd, &inputs, &BTreeMap::new(), len).expect("unrolls");
        let eq = words_equal(&mut bdd, &st.regs["R"], &inputs["io_in"]);
        assert!(!bdd.is_true(eq), "one cycle short must not be the identity");
    }

    #[test]
    fn word_arithmetic_against_reference() {
        // add_words in the BDD kit agrees with integer addition on
        // constants.
        let mut bdd = Bdd::new();
        let a = constant_word(&mut bdd, &BigInt::from(13), 6, false);
        let b = constant_word(&mut bdd, &BigInt::from(25), 6, false);
        let s = add_words(&mut bdd, &a, &b, 6);
        let expect = constant_word(&mut bdd, &BigInt::from(38), 6, false);
        let eq = words_equal(&mut bdd, &s, &expect);
        assert!(bdd.is_true(eq));
    }
}
