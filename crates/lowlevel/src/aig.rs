//! And-inverter graphs: the intermediate form of the SAT equivalence
//! backend.
//!
//! A [`Netlist`] cone is lowered to 2-input AND gates with complement
//! edges. Three simplifications run *during construction*, so structurally
//! similar design/golden pairs collapse before any CNF is emitted:
//!
//! * **constant propagation** — unrolled sequential designs carry constant
//!   counter registers, so muxes and indexed shifts fold to plain wiring;
//! * **structural hashing** — identical `(lhs, rhs)` AND gates are shared
//!   (commutatively normalised), merging the common substructure of a
//!   miter's two halves;
//! * **2-level rewriting** — the Brummayer–Biere one-level/two-level rules
//!   (idempotence, contradiction, subsumption, substitution) catch the
//!   redundancies hashing alone cannot see.
//!
//! The result feeds [`crate::cnf`] for Tseitin encoding.

use crate::netlist::{Gate, Net, Netlist};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-xor hasher for the strash table. AND keys are two dense
/// 32-bit edge ids, so a single 64-bit multiply mixes them better per
/// cycle than the DoS-resistant default hasher — and the strash lookup is
/// the inner loop of every netlist lowering.
#[derive(Default)]
pub(crate) struct MixHasher(u64);

impl Hasher for MixHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type MixBuild = BuildHasherDefault<MixHasher>;

/// An AIG edge: node index with a complement bit in the LSB.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigRef(u32);

/// The constant-false edge (node 0, uncomplemented).
pub const AIG_FALSE: AigRef = AigRef(0);
/// The constant-true edge (node 0, complemented).
pub const AIG_TRUE: AigRef = AigRef(1);

impl AigRef {
    /// The node index this edge points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    pub fn is_compl(self) -> bool {
        self.0 & 1 == 1
    }

    fn make(node: u32, compl_: bool) -> AigRef {
        AigRef(node << 1 | compl_ as u32)
    }

    /// The uncomplemented edge of a node index.
    pub(crate) fn from_node(n: u32) -> AigRef {
        AigRef::make(n, false)
    }
}

impl std::ops::Not for AigRef {
    type Output = AigRef;

    fn not(self) -> AigRef {
        AigRef(self.0 ^ 1)
    }
}

/// An AIG node. Node 0 is always the constant-false node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The constant node (index 0 only).
    Const,
    /// A primary input.
    Input,
    /// A 2-input AND over two edges.
    And(AigRef, AigRef),
}

/// An and-inverter graph under construction.
#[derive(Clone, Debug)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigRef, AigRef), u32, MixBuild>,
    /// AND requests received (before hashing/rewriting) — the "pre" side
    /// of the structural-hashing telemetry.
    pub and_requests: u64,
}

impl Default for Aig {
    fn default() -> Aig {
        Aig::new()
    }
}

impl Aig {
    /// An empty graph (just the constant node).
    pub fn new() -> Aig {
        Aig { nodes: vec![AigNode::Const], strash: HashMap::default(), and_requests: 0 }
    }

    /// Creates a fresh primary input.
    pub fn input(&mut self) -> AigRef {
        let n = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input);
        AigRef::make(n, false)
    }

    /// The node behind an edge.
    pub fn node(&self, r: AigRef) -> AigNode {
        self.nodes[r.node() as usize]
    }

    /// Total nodes (constant and inputs included).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph holds only the constant node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of AND nodes (the size measure reported to telemetry).
    pub fn and_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, AigNode::And(_, _))).count()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, AigNode::Input)).count()
    }

    /// If `r` is an (uncomplemented) AND edge, its children.
    pub(crate) fn and_children(&self, r: AigRef) -> Option<(AigRef, AigRef)> {
        if r.is_compl() {
            return None;
        }
        match self.nodes[r.node() as usize] {
            AigNode::And(x, y) => Some((x, y)),
            _ => None,
        }
    }

    /// Conjunction with constant propagation, one/two-level rewriting, and
    /// structural hashing.
    pub fn and(&mut self, a: AigRef, b: AigRef) -> AigRef {
        self.and_requests += 1;
        // Constant and unit rules.
        if a == AIG_FALSE || b == AIG_FALSE || a == !b {
            return AIG_FALSE;
        }
        if a == AIG_TRUE {
            return b;
        }
        if b == AIG_TRUE || a == b {
            return a;
        }
        // One-level rules against AND children (Brummayer–Biere O1/O2):
        // contradiction and idempotence looking one level down.
        if let Some((x, y)) = self.and_children(a) {
            if b == !x || b == !y {
                return AIG_FALSE; // (x∧y)∧¬x
            }
            if b == x || b == y {
                return a; // (x∧y)∧x
            }
        }
        if let Some((x, y)) = self.and_children(b) {
            if a == !x || a == !y {
                return AIG_FALSE;
            }
            if a == x || a == y {
                return b;
            }
        }
        // Two-level rules across two AND children.
        if let (Some((x, y)), Some((u, v))) = (self.and_children(a), self.and_children(b)) {
            // Contradiction: (x∧y)∧(u∧v) with a complementary pair.
            if x == !u || x == !v || y == !u || y == !v {
                return AIG_FALSE;
            }
            // Subsumption: identical children mean one side implies the
            // other's obligations are already met.
            if (x == u && y == v) || (x == v && y == u) {
                return a;
            }
        }
        // Substitution: ¬(x∧y) ∧ x  =  x ∧ ¬y (strictly smaller support).
        if a.is_compl() {
            if let Some((x, y)) = self.and_children(!a) {
                if b == x {
                    return self.and(b, !y);
                }
                if b == y {
                    return self.and(b, !x);
                }
            }
        }
        if b.is_compl() {
            if let Some((x, y)) = self.and_children(!b) {
                if a == x {
                    return self.and(a, !y);
                }
                if a == y {
                    return self.and(a, !x);
                }
            }
        }
        // Structural hashing with commutative normalisation.
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&n) = self.strash.get(&key) {
            return AigRef::make(n, false);
        }
        let n = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(key.0, key.1));
        self.strash.insert(key, n);
        AigRef::make(n, false)
    }

    /// Disjunction via De Morgan.
    pub fn or(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let x = self.and(!a, !b);
        !x
    }

    /// Exclusive or: (a ∨ b) ∧ ¬(a ∧ b).
    pub fn xor(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let ab = self.and(a, b);
        let o = self.or(a, b);
        self.and(o, !ab)
    }

    /// Evaluates an edge under an input assignment (indexed by node id).
    pub fn eval(&self, r: AigRef, inputs: &dyn Fn(u32) -> bool) -> bool {
        let mut values: Vec<bool> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            let v = match n {
                AigNode::Const => false,
                AigNode::Input => inputs(i as u32),
                AigNode::And(x, y) => {
                    let vx = values[x.node() as usize] ^ x.is_compl();
                    let vy = values[y.node() as usize] ^ y.is_compl();
                    vx && vy
                }
            };
            values.push(v);
        }
        values[r.node() as usize] ^ r.is_compl()
    }

    /// Maps an edge through an old-node → new-edge map, carrying the
    /// complement bit across. `None` when the node was swept.
    pub fn map_edge(map: &HashMap<u32, AigRef>, r: AigRef) -> Option<AigRef> {
        map.get(&r.node()).map(|&m| if r.is_compl() { !m } else { m })
    }

    /// The cone-of-influence marks for `roots` (indexed by node id).
    pub(crate) fn cone(&self, roots: &[AigRef]) -> Vec<bool> {
        let mut in_cone = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|r| r.node()).collect();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut in_cone[n as usize], true) {
                continue;
            }
            if let AigNode::And(x, y) = self.nodes[n as usize] {
                stack.push(x.node());
                stack.push(y.node());
            }
        }
        in_cone
    }

    /// The shared skeleton of [`Aig::rehash`] and every optimizer pass:
    /// rebuilds the cone of `roots` bottom-up into a fresh graph, emitting
    /// each AND through `emit(out, old_node, x, y, map)` (children already
    /// mapped into the new graph; `map` is the in-progress old-node →
    /// new-edge mapping, so chain-collecting passes can follow arbitrary old
    /// edges across), then garbage-collects nodes the emission left
    /// orphaned — a pass that folds a parent to a constant or substitutes a
    /// cheaper edge strands the children it already rebuilt, and without the
    /// sweep those dead nodes (and their strash entries) would accumulate
    /// across a pass pipeline.
    ///
    /// Returns the new graph, the mapped roots, and the old-node → new-edge
    /// mapping (entries whose rebuilt node was swept are dropped).
    pub(crate) fn rebuild_with<F>(
        &self,
        roots: &[AigRef],
        mut emit: F,
    ) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>)
    where
        F: FnMut(&mut Aig, u32, AigRef, AigRef, &HashMap<u32, AigRef>) -> AigRef,
    {
        let mut out = Aig::new();
        let mut map: HashMap<u32, AigRef> = HashMap::new();
        map.insert(0, AIG_FALSE);
        let in_cone = self.cone(roots);
        // Nodes are in topological order by construction.
        for (i, n) in self.nodes.iter().enumerate() {
            if !in_cone[i] {
                continue;
            }
            let new = match n {
                AigNode::Const => AIG_FALSE,
                AigNode::Input => out.input(),
                AigNode::And(x, y) => {
                    let ex = Aig::map_edge(&map, *x).expect("child precedes parent");
                    let ey = Aig::map_edge(&map, *y).expect("child precedes parent");
                    emit(&mut out, i as u32, ex, ey, &map)
                }
            };
            map.insert(i as u32, new);
        }
        let new_roots: Vec<AigRef> = roots
            .iter()
            .map(|r| Aig::map_edge(&map, *r).expect("root is in its own cone"))
            .collect();
        // Dead-node sweep: compact to the cone of the new roots and compose
        // the mapping through the compaction.
        let (out, new_roots, compact) = out.compact(&new_roots);
        let map = map
            .into_iter()
            .filter_map(|(old, e)| Aig::map_edge(&compact, e).map(|m| (old, m)))
            .collect();
        (out, new_roots, map)
    }

    /// Pure renumbering restricted to the cone of `roots`: copies live nodes
    /// in order without re-running the rewriting front-end (so it cannot
    /// orphan anything new), rebuilding the strash over the survivors.
    fn compact(&self, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        let in_cone = self.cone(roots);
        let mut out = Aig::new();
        let mut map: HashMap<u32, AigRef> = HashMap::new();
        map.insert(0, AIG_FALSE);
        for (i, n) in self.nodes.iter().enumerate() {
            if !in_cone[i] {
                continue;
            }
            let new = match n {
                AigNode::Const => AIG_FALSE,
                AigNode::Input => out.input(),
                AigNode::And(x, y) => {
                    let ex = Aig::map_edge(&map, *x).expect("child precedes parent");
                    let ey = Aig::map_edge(&map, *y).expect("child precedes parent");
                    let key = if ex <= ey { (ex, ey) } else { (ey, ex) };
                    debug_assert!(
                        ex.node() != 0 && ey.node() != 0,
                        "constant children should have folded before compaction"
                    );
                    let n = out.nodes.len() as u32;
                    out.nodes.push(AigNode::And(key.0, key.1));
                    out.strash.insert(key, n);
                    AigRef::from_node(n)
                }
            };
            map.insert(i as u32, new);
        }
        let new_roots = roots
            .iter()
            .map(|r| Aig::map_edge(&map, *r).expect("root is in its own cone"))
            .collect();
        (out, new_roots, map)
    }

    /// Whether every AND node is inside the cone of `roots` — the
    /// no-orphans invariant [`Aig::rebuild_with`]'s sweep establishes.
    pub fn no_orphans(&self, roots: &[AigRef]) -> bool {
        let in_cone = self.cone(roots);
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| !matches!(n, AigNode::And(_, _)) || in_cone[i])
    }

    /// Rebuilds the graph bottom-up through [`Aig::and`], restricted to the
    /// cone of `roots`. Because every AND is re-issued through the rewriting
    /// and hashing front-end, node counts never increase and a second
    /// rehash is a fixpoint (`rehash(rehash(g)) == rehash(g)` node-for-node,
    /// the idempotence property the tests pin down). Nodes orphaned by the
    /// replayed rewriting are garbage-collected ([`Aig::rebuild_with`]).
    ///
    /// Returns the new graph, the mapped roots, and the old-node → new-edge
    /// mapping (so callers can follow inputs across).
    pub fn rehash(&self, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        self.rebuild_with(roots, |out, _, ex, ey, _| out.and(ex, ey))
    }
}

/// Lowers the cone of `roots` in a [`Netlist`] to an AIG.
///
/// Returns the graph, the AIG edges of the requested roots, and the mapping
/// from netlist `Input` nets (those inside the cone) to their AIG input
/// nodes — the key for decoding SAT counterexample models back into design
/// input values.
pub fn from_netlist(nl: &Netlist, roots: &[Net]) -> (Aig, Vec<AigRef>, HashMap<Net, AigRef>) {
    let mut aig = Aig::new();
    // Netlist ids are dense, so the net → edge map is a flat vector (the
    // lowering visits every cone net once; hashing here would dominate).
    let mut map: Vec<AigRef> = vec![AIG_FALSE; nl.len()];
    let mut inputs: HashMap<Net, AigRef> = HashMap::new();
    // Mark the cone of influence so untouched netlist regions cost nothing.
    let mut in_cone = vec![false; nl.len()];
    let mut stack: Vec<Net> = roots.to_vec();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_cone[n.0 as usize], true) {
            continue;
        }
        match nl.gate(n) {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Gate::Not(a) => stack.push(a),
            Gate::Const(_) | Gate::Input => {}
        }
    }
    for i in 0..nl.len() {
        if !in_cone[i] {
            continue;
        }
        let net = Net(i as u32);
        let r = match nl.gate(net) {
            Gate::Const(b) => {
                if b {
                    AIG_TRUE
                } else {
                    AIG_FALSE
                }
            }
            Gate::Input => {
                let r = aig.input();
                inputs.insert(net, r);
                r
            }
            Gate::And(a, b) => {
                let (x, y) = (map[a.0 as usize], map[b.0 as usize]);
                aig.and(x, y)
            }
            Gate::Or(a, b) => {
                let (x, y) = (map[a.0 as usize], map[b.0 as usize]);
                aig.or(x, y)
            }
            Gate::Xor(a, b) => {
                let (x, y) = (map[a.0 as usize], map[b.0 as usize]);
                aig.xor(x, y)
            }
            Gate::Not(a) => !map[a.0 as usize],
        };
        map[i] = r;
    }
    let root_refs = roots.iter().map(|r| map[r.0 as usize]).collect();
    (aig, root_refs, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitblast::BitKit;

    #[test]
    fn constants_and_units() {
        let mut g = Aig::new();
        let x = g.input();
        assert_eq!(g.and(x, AIG_FALSE), AIG_FALSE);
        assert_eq!(g.and(AIG_TRUE, x), x);
        assert_eq!(g.and(x, x), x);
        assert_eq!(g.and(x, !x), AIG_FALSE);
        assert_eq!(g.and_count(), 0, "unit rules build no nodes");
    }

    #[test]
    fn strash_shares_commuted_ands() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        assert_eq!(g.and(x, y), g.and(y, x));
        assert_eq!(g.and_count(), 1);
        assert!(g.and_requests >= 2);
    }

    #[test]
    fn two_level_rules_fold() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let xy = g.and(x, y);
        // (x∧y)∧¬x = false; (x∧y)∧x = x∧y.
        assert_eq!(g.and(xy, !x), AIG_FALSE);
        assert_eq!(g.and(xy, x), xy);
        // Substitution: ¬(x∧y)∧x = x∧¬y.
        let sub = g.and(!xy, x);
        let expect = g.and(x, !y);
        assert_eq!(sub, expect);
        // Two-level contradiction: (x∧y)∧(¬x∧y) = false.
        let nxy = g.and(!x, y);
        assert_eq!(g.and(xy, nxy), AIG_FALSE);
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let r = g.xor(x, y);
        for bits in 0..4u32 {
            let vx = bits & 1 == 1;
            let vy = bits & 2 == 2;
            let want = vx ^ vy;
            let got = g.eval(r, &|n| {
                if n == x.node() {
                    vx
                } else {
                    vy
                }
            });
            assert_eq!(got, want, "xor({vx},{vy})");
        }
    }

    #[test]
    fn rehash_is_idempotent_and_nonincreasing() {
        // Build a deliberately redundant graph by bypassing high-level
        // sharing: duplicate logic built in different orders.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let abc1 = g.and(ab, c);
        let bc = g.and(b, c);
        let abc2 = g.and(a, bc);
        let both = g.and(abc1, abc2);
        let roots = [both, abc1, abc2];
        let n0 = g.and_count();
        let (g1, r1, _) = g.rehash(&roots);
        let n1 = g1.and_count();
        assert!(n1 <= n0, "rehash must not grow the graph ({n0} -> {n1})");
        let (g2, r2, _) = g1.rehash(&r1);
        let n2 = g2.and_count();
        assert_eq!(n1, n2, "hash(hash(g)) == hash(g) node count");
        // And the roots keep their relative structure: a second rehash is
        // the identity on edges (same construction order, same rules).
        let (g3, r3, _) = g2.rehash(&r2);
        assert_eq!(g3.and_count(), n2);
        assert_eq!(r3, r2);
    }

    #[test]
    fn rebuild_sweeps_orphans_and_their_strash_entries() {
        // A pass-style rebuild that folds one child to a constant strands
        // the sibling it already rebuilt: n1' = a∧b is emitted, then
        // n2' = n1'∧false folds to false, orphaning n1'. The sweep must
        // remove it (and its strash entry) rather than let pipelines
        // accumulate dead nodes.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let n1 = g.and(a, b);
        let n2 = g.and(n1, c);
        let (out, roots, map) = g.rebuild_with(&[n2], |out, old, ex, ey, _| {
            // "Rewrite rule": the c input is learned constant-false.
            let ey = if old == n2.node() { AIG_FALSE } else { ey };
            out.and(ex, ey)
        });
        assert_eq!(roots[0], AIG_FALSE);
        assert_eq!(out.and_count(), 0, "orphaned a∧b must be swept");
        assert_eq!(out.strash.len(), 0, "no dead strash entries");
        assert!(out.no_orphans(&roots));
        // The orphaned node's map entry is dropped, not dangling.
        assert!(!map.contains_key(&n1.node()));
    }

    #[test]
    fn rehash_establishes_no_orphans() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let side = g.and(a, c); // outside the rehash cone
        let _ = side;
        let (g1, r1, _) = g.rehash(&[abc]);
        assert!(g1.no_orphans(&r1), "rehash output has no dead AND nodes");
        assert_eq!(g1.and_count(), 2, "only the cone survives");
        // Idempotence holds through the sweep.
        let (g2, r2, _) = g1.rehash(&r1);
        assert_eq!(g2.and_count(), g1.and_count());
        assert_eq!(r2, r1);
        assert!(g2.no_orphans(&r2));
    }

    #[test]
    fn netlist_lowering_preserves_semantics() {
        // A full adder netlist lowered to AIG agrees gate-for-gate.
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let (s, co) = nl.full_add(a, b, c);
        let (aig, roots, inputs) = from_netlist(&nl, &[s, co]);
        for bits in 0..8u32 {
            let assign = |net: Net| -> bool {
                if net == a {
                    bits & 1 == 1
                } else if net == b {
                    bits & 2 == 2
                } else {
                    bits & 4 == 4
                }
            };
            let vals = nl.eval(&assign);
            for (k, root) in roots.iter().enumerate() {
                let got = aig.eval(*root, &|node| {
                    let net = inputs
                        .iter()
                        .find(|(_, r)| r.node() == node)
                        .map(|(n, _)| *n)
                        .expect("input node maps back");
                    assign(net)
                });
                let want = vals[[s, co][k].0 as usize];
                assert_eq!(got, want, "root {k} at input {bits:03b}");
            }
        }
    }

    #[test]
    fn constant_propagation_collapses_constant_cones() {
        // Feeding constants through a netlist cone must fold to a constant
        // edge — the property that makes unrolled counters free.
        let mut nl = Netlist::new();
        let t = nl.constant(true);
        let f = nl.constant(false);
        let x = nl.input();
        let a = nl.or(t, x); // true
        let b = nl.and(f, x); // false
        let r = nl.xor(a, b); // true
        let (aig, roots, _) = from_netlist(&nl, &[r]);
        assert_eq!(roots[0], AIG_TRUE);
        assert_eq!(aig.and_count(), 0);
    }
}
