//! Content-addressed caching hook for gate-level proofs.
//!
//! [`prove_net_with`](crate::check::prove_net_with) is the single entry
//! point for every formal gate proof in the pipeline, which makes it the
//! natural seam for a persistent proof cache: identical obligations (same
//! property cone, same engine, same optimizer profile) always produce the
//! same [`ProveResult`], so a certificate proved once can be served
//! forever.
//!
//! This crate cannot depend on the service crate (the service depends on
//! the conformance registry, which depends on this crate), so the store is
//! injected: `chicala-serve`'s `CacheHandle` implements [`ProveCache`] and
//! installs itself via [`set_prove_cache`]. With no cache installed every
//! call proves from scratch, exactly as before.
//!
//! Soundness posture — a cache bug may cost time, never soundness:
//!
//! * the key is the **complete canonical transcript** of the proof
//!   obligation (cone gates by net id, root, resolved backend, width,
//!   variable order, optimizer profile, schema version), and the store
//!   layer re-verifies the full transcript bytes on every read, so a
//!   digest collision cannot alias two obligations;
//! * a cached **counterexample** is re-evaluated against the live netlist
//!   before being served — if it no longer falsifies the property the
//!   entry is treated as a miss and the proof re-runs;
//! * undecodable payloads are misses, never errors.

use crate::check::{Backend, ProveResult};
use crate::netlist::{Gate, Net, Netlist};
use crate::opt::{CertMode, OptProfile};
use chicala_telemetry as telemetry;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::{Arc, RwLock};

/// Bumped whenever the key transcript or payload encoding changes shape,
/// so stale stores self-invalidate instead of being misread.
pub const PROVE_KEY_SCHEMA: u32 = 1;

/// A content-addressed store for gate-level proof certificates.
///
/// `key` is the canonical obligation transcript; `digest` is its 128-bit
/// FNV-1a (precomputed by the caller so stores can use it as the address).
/// Implementations must only return a payload previously stored under a
/// byte-identical key.
pub trait ProveCache: Send + Sync {
    /// Returns the stored payload for an identical key, if any.
    fn lookup(&self, key: &[u8], digest: u128) -> Option<Vec<u8>>;
    /// Persists `payload` under `key`. Failures must be silent (a cache
    /// that cannot write is just a cache that never hits).
    fn store(&self, key: &[u8], digest: u128, payload: &[u8]);
}

static PROVE_CACHE: RwLock<Option<Arc<dyn ProveCache>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide proof cache.
pub fn set_prove_cache(cache: Option<Arc<dyn ProveCache>>) {
    *PROVE_CACHE.write().expect("prove cache slot") = cache;
}

fn prove_cache() -> Option<Arc<dyn ProveCache>> {
    PROVE_CACHE.read().expect("prove cache slot").clone()
}

/// The canonical key transcript of one proof obligation, plus its digest.
pub struct ProveKey {
    /// Canonical transcript bytes (self-describing, schema-versioned).
    pub bytes: Vec<u8>,
    /// 128-bit FNV-1a of `bytes` — the store address.
    pub digest: u128,
}

/// Builds the canonical obligation key for [`prove_net_with`] inputs.
///
/// Only the cone of `root` enters the transcript (dead netlist regions
/// cannot affect the verdict), written in net-id order — deterministic
/// because gate ids are allocation-ordered and [`Netlist`] stores them in
/// a `Vec`, never iterating its structural-hash map.
///
/// `var_order` and the optimizer profile are part of the key even though
/// they cannot change the verdict: they *can* change which counterexample
/// is found, and cached responses must be byte-identical to fresh ones.
///
/// [`prove_net_with`]: crate::check::prove_net_with
pub fn prove_key(
    nl: &Netlist,
    root: Net,
    backend: Backend,
    width: usize,
    var_order: &[Net],
    opt: OptProfile,
) -> ProveKey {
    let mut bytes = Vec::with_capacity(64 + nl.len() * 5);
    bytes.extend_from_slice(b"chicala-prove");
    bytes.extend_from_slice(&PROVE_KEY_SCHEMA.to_le_bytes());
    bytes.push(match backend.resolve(width) {
        Backend::Bdd => 0,
        Backend::Sat => 1,
        Backend::Auto => unreachable!("resolve never yields Auto"),
    });
    bytes.extend_from_slice(&(width as u64).to_le_bytes());
    bytes.push(opt.enabled as u8);
    bytes.push(match opt.cert {
        CertMode::Off => 0,
        CertMode::Sampled => 1,
        CertMode::Full => 2,
    });
    bytes.extend_from_slice(&root.0.to_le_bytes());
    bytes.extend_from_slice(&(var_order.len() as u32).to_le_bytes());
    for n in var_order {
        bytes.extend_from_slice(&n.0.to_le_bytes());
    }
    // Cone transcript in net-id order.
    let mut in_cone = vec![false; nl.len()];
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_cone[n.0 as usize], true) {
            continue;
        }
        match nl.gate(n) {
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Gate::Not(a) => stack.push(a),
            Gate::Const(_) | Gate::Input => {}
        }
    }
    for (i, &cone) in in_cone.iter().enumerate() {
        if !cone {
            continue;
        }
        let net = Net(i as u32);
        bytes.extend_from_slice(&net.0.to_le_bytes());
        match nl.gate(net) {
            Gate::Const(b) => {
                bytes.push(0);
                bytes.push(b as u8);
            }
            Gate::Input => bytes.push(1),
            Gate::And(a, b) => {
                bytes.push(2);
                bytes.extend_from_slice(&a.0.to_le_bytes());
                bytes.extend_from_slice(&b.0.to_le_bytes());
            }
            Gate::Or(a, b) => {
                bytes.push(3);
                bytes.extend_from_slice(&a.0.to_le_bytes());
                bytes.extend_from_slice(&b.0.to_le_bytes());
            }
            Gate::Xor(a, b) => {
                bytes.push(4);
                bytes.extend_from_slice(&a.0.to_le_bytes());
                bytes.extend_from_slice(&b.0.to_le_bytes());
            }
            Gate::Not(a) => {
                bytes.push(5);
                bytes.extend_from_slice(&a.0.to_le_bytes());
            }
        }
    }
    let mut h = telemetry::Fnv128::new();
    h.write(&bytes);
    ProveKey { digest: h.finish128(), bytes }
}

/// Encodes a [`ProveResult`] as a stable payload.
pub fn encode_result(r: &ProveResult) -> Vec<u8> {
    let mut out = Vec::new();
    let backend_tag = |b: &Backend| match b {
        Backend::Bdd => 0u8,
        Backend::Sat => 1,
        Backend::Auto => 2,
    };
    match r {
        ProveResult::Proved { backend } => {
            out.push(0);
            out.push(backend_tag(backend));
        }
        ProveResult::Counterexample { backend, inputs } => {
            out.push(1);
            out.push(backend_tag(backend));
            out.extend_from_slice(&(inputs.len() as u32).to_le_bytes());
            for (net, val) in inputs {
                out.extend_from_slice(&net.0.to_le_bytes());
                out.push(*val as u8);
            }
        }
    }
    out
}

/// Decodes a payload written by [`encode_result`]. `None` on any
/// malformed input (trailing bytes included) — malformed means miss.
pub fn decode_result(bytes: &[u8]) -> Option<ProveResult> {
    let backend_of = |t: u8| match t {
        0 => Some(Backend::Bdd),
        1 => Some(Backend::Sat),
        2 => Some(Backend::Auto),
        _ => None,
    };
    match *bytes.first()? {
        0 => {
            if bytes.len() != 2 {
                return None;
            }
            Some(ProveResult::Proved { backend: backend_of(bytes[1])? })
        }
        1 => {
            if bytes.len() < 6 {
                return None;
            }
            let backend = backend_of(bytes[1])?;
            let n = u32::from_le_bytes(bytes[2..6].try_into().ok()?) as usize;
            if bytes.len() != 6 + n * 5 {
                return None;
            }
            let mut inputs = BTreeMap::new();
            for i in 0..n {
                let at = 6 + i * 5;
                let net = Net(u32::from_le_bytes(bytes[at..at + 4].try_into().ok()?));
                let val = match bytes[at + 4] {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                inputs.insert(net, val);
            }
            Some(ProveResult::Counterexample { backend, inputs })
        }
        _ => None,
    }
}

/// Cache-side of [`prove_net_with`]: returns a cached result for this
/// obligation if one is stored and sound to serve.
pub(crate) fn cached_prove(key: &ProveKey, nl: &Netlist, root: Net) -> Option<ProveResult> {
    let cache = prove_cache()?;
    let payload = match cache.lookup(&key.bytes, key.digest) {
        Some(p) => p,
        None => {
            telemetry::counter("cache.prove.miss", 1);
            return None;
        }
    };
    let result = match decode_result(&payload) {
        Some(r) => r,
        None => {
            telemetry::counter("cache.prove.undecodable", 1);
            return None;
        }
    };
    // Defense in depth: a counterexample is cheap to re-check against the
    // live netlist; never serve one that does not actually falsify.
    if let ProveResult::Counterexample { inputs, .. } = &result {
        let vals = nl.eval(&|net| inputs.get(&net).copied().unwrap_or(false));
        if vals[root.0 as usize] {
            telemetry::counter("cache.prove.stale_cex", 1);
            return None;
        }
    }
    telemetry::counter("cache.prove.hit", 1);
    Some(result)
}

/// Store-side of [`prove_net_with`]: persists a freshly computed result.
pub(crate) fn store_prove(key: &ProveKey, result: &ProveResult) {
    if let Some(cache) = prove_cache() {
        cache.store(&key.bytes, key.digest, &encode_result(result));
    }
}

/// Whether a prove cache is currently installed (used to skip key
/// construction entirely on the uncached path).
pub(crate) fn prove_cache_installed() -> bool {
    PROVE_CACHE.read().expect("prove cache slot").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adder_miter() -> (Netlist, Net, Vec<Net>) {
        use crate::bitblast::add_words;
        use crate::bitblast::Word;
        let mut nl = Netlist::new();
        let w = 4usize;
        let a = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let b = Word { bits: (0..w).map(|_| nl.input()).collect::<Vec<_>>(), signed: false };
        let ab = add_words(&mut nl, &a, &b, w);
        let ba = add_words(&mut nl, &b, &a, w);
        let eq = crate::check::nets_equal(&mut nl, &ab, &ba);
        let order: Vec<Net> = (0..w).flat_map(|i| [a.bits[i], b.bits[i]]).collect();
        (nl, eq, order)
    }

    #[test]
    fn key_is_deterministic_and_input_sensitive() {
        let (nl, root, order) = adder_miter();
        let k1 = prove_key(&nl, root, Backend::Sat, 4, &order, OptProfile::off());
        let k2 = prove_key(&nl, root, Backend::Sat, 4, &order, OptProfile::off());
        assert_eq!(k1.bytes, k2.bytes);
        assert_eq!(k1.digest, k2.digest);
        // Every key input must move the digest.
        let kw = prove_key(&nl, root, Backend::Sat, 5, &order, OptProfile::off());
        assert_ne!(k1.digest, kw.digest, "width");
        let kb = prove_key(&nl, root, Backend::Bdd, 4, &order, OptProfile::off());
        assert_ne!(k1.digest, kb.digest, "backend");
        let ko = prove_key(&nl, root, Backend::Sat, 4, &[], OptProfile::off());
        assert_ne!(k1.digest, ko.digest, "var order");
        let kp = prove_key(&nl, root, Backend::Sat, 4, &order, OptProfile::full_cert());
        assert_ne!(k1.digest, kp.digest, "opt profile");
    }

    #[test]
    fn auto_resolves_before_keying() {
        // Auto at width 4 and explicit Bdd at width 4 are the same
        // obligation — they must share a certificate.
        let (nl, root, order) = adder_miter();
        let ka = prove_key(&nl, root, Backend::Auto, 4, &order, OptProfile::off());
        let kb = prove_key(&nl, root, Backend::Bdd, 4, &order, OptProfile::off());
        assert_eq!(ka.bytes, kb.bytes);
    }

    #[test]
    fn result_roundtrip() {
        let proved = ProveResult::Proved { backend: Backend::Sat };
        assert_eq!(decode_result(&encode_result(&proved)), Some(proved));
        let cex = ProveResult::Counterexample {
            backend: Backend::Bdd,
            inputs: [(Net(3), true), (Net(7), false)].into_iter().collect(),
        };
        assert_eq!(decode_result(&encode_result(&cex)), Some(cex));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(decode_result(&[]), None);
        assert_eq!(decode_result(&[9]), None);
        assert_eq!(decode_result(&[0, 7]), None, "bad backend tag");
        let mut cex = encode_result(&ProveResult::Counterexample {
            backend: Backend::Sat,
            inputs: [(Net(1), true)].into_iter().collect(),
        });
        cex.pop();
        assert_eq!(decode_result(&cex), None, "truncated");
        let proved = encode_result(&ProveResult::Proved { backend: Backend::Bdd });
        let mut trailing = proved.clone();
        trailing.push(0);
        assert_eq!(decode_result(&trailing), None, "trailing bytes");
    }
}
