//! A reduced ordered binary decision diagram (ROBDD) package — the
//! classic engine of low-level per-bit-width verification (Bryant-style),
//! used as the baseline the paper's high-level approach is compared
//! against: its cost grows steeply with bit width, while one parametric
//! proof covers all widths.

use std::collections::HashMap;

/// A BDD node reference (complement edges are not used; constants are the
/// two distinguished nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

/// The false terminal.
pub const FALSE: Ref = Ref(0);
/// The true terminal.
pub const TRUE: Ref = Ref(1);

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Default bound on the if-then-else memo table; see
/// [`Bdd::ite_cache_limit`].
pub const DEFAULT_ITE_CACHE_LIMIT: usize = 1 << 20;

/// A BDD manager with a fixed variable order (variable index = level).
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    /// Entry bound for the `ite` memo table. The table is pure
    /// memoization, so when an insert would exceed the bound the table is
    /// cleared — results stay identical, memory stays bounded on long
    /// equivalence-check runs.
    pub ite_cache_limit: usize,
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

impl Bdd {
    /// An empty manager.
    pub fn new() -> Bdd {
        let mut b = Bdd {
            nodes: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            ite_cache_limit: DEFAULT_ITE_CACHE_LIMIT,
        };
        // Slots 0 and 1 are the terminals; their stored fields are unused.
        b.nodes.push(Node { var: u32::MAX, lo: FALSE, hi: FALSE });
        b.nodes.push(Node { var: u32::MAX, lo: TRUE, hi: TRUE });
        b
    }

    /// Drops every node and cache entry, returning the manager to its
    /// freshly-constructed state. `Ref`s obtained before the reset are
    /// invalidated; call this between independent checks (e.g. per
    /// bit-width sweeps) so the unique table cannot grow across them.
    pub fn reset(&mut self) {
        self.nodes.truncate(2);
        self.unique.clear();
        self.unique.shrink_to_fit();
        self.ite_cache.clear();
        self.ite_cache.shrink_to_fit();
    }

    /// Current entry count of the `ite` memo table (bounded by
    /// [`Bdd::ite_cache_limit`]).
    pub fn ite_cache_len(&self) -> usize {
        self.ite_cache.len()
    }

    /// Number of live nodes (size measure for the blow-up experiment).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `var`.
    pub fn var(&mut self, var: u32) -> Ref {
        self.mk(var, FALSE, TRUE)
    }

    /// A constant.
    pub fn constant(&self, v: bool) -> Ref {
        if v {
            TRUE
        } else {
            FALSE
        }
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn level(&self, r: Ref) -> u32 {
        if r == TRUE || r == FALSE {
            u32::MAX
        } else {
            self.nodes[r.0 as usize].var
        }
    }

    fn cofactors(&self, r: Ref, var: u32) -> (Ref, Ref) {
        if r == TRUE || r == FALSE {
            return (r, r);
        }
        let n = self.nodes[r.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// If-then-else, the universal connective.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let var = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.cofactors(f, var);
        let (g0, g1) = self.cofactors(g, var);
        let (h0, h1) = self.cofactors(h, var);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(var, lo, hi);
        if self.ite_cache.len() >= self.ite_cache_limit {
            self.ite_cache.clear();
        }
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        self.ite(a, b, FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        self.ite(a, TRUE, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    /// Negation.
    pub fn not(&mut self, a: Ref) -> Ref {
        self.ite(a, FALSE, TRUE)
    }

    /// Biconditional.
    pub fn iff(&mut self, a: Ref, b: Ref) -> Ref {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// Whether the function is the constant true (tautology check — the
    /// equivalence-checking primitive).
    pub fn is_true(&self, r: Ref) -> bool {
        r == TRUE
    }

    /// Evaluates under a variable assignment.
    pub fn eval(&self, mut r: Ref, assignment: &dyn Fn(u32) -> bool) -> bool {
        loop {
            if r == TRUE {
                return true;
            }
            if r == FALSE {
                return false;
            }
            let n = self.nodes[r.0 as usize];
            r = if assignment(n.var) { n.hi } else { n.lo };
        }
    }

    /// One satisfying assignment, if any (partial: variables not on the
    /// path may take either value).
    pub fn any_sat(&self, r: Ref) -> Option<Vec<(u32, bool)>> {
        if r == FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = r;
        while cur != TRUE {
            let n = self.nodes[cur.0 as usize];
            if n.lo != FALSE {
                out.push((n.var, false));
                cur = n.lo;
            } else {
                out.push((n.var, true));
                cur = n.hi;
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut b = Bdd::new();
        let x = b.var(0);
        assert_ne!(x, TRUE);
        assert_ne!(x, FALSE);
        let nx = b.not(x);
        let back = b.not(nx);
        assert_eq!(back, x);
    }

    #[test]
    fn boolean_algebra() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        // x & y == !(!x | !y)
        let lhs = b.and(x, y);
        let nx = b.not(x);
        let ny = b.not(y);
        let or = b.or(nx, ny);
        let rhs = b.not(or);
        assert_eq!(lhs, rhs);
        // x ^ x == false
        assert_eq!(b.xor(x, x), FALSE);
        // (x <-> y) & x -> y (tautology)
        let iff = b.iff(x, y);
        let ax = b.and(iff, x);
        let imp_body = b.not(ax);
        let taut = b.or(imp_body, y);
        assert!(b.is_true(taut));
    }

    #[test]
    fn canonical_equality_of_equivalent_functions() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let z = b.var(2);
        // (x & y) | (x & z) == x & (y | z)
        let xy = b.and(x, y);
        let xz = b.and(x, z);
        let lhs = b.or(xy, xz);
        let yz = b.or(y, z);
        let rhs = b.and(x, yz);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_cache_stays_bounded() {
        let mut b = Bdd::new();
        b.ite_cache_limit = 8;
        let vars: Vec<Ref> = (0..12).map(|i| b.var(i)).collect();
        // Build a chain of distinct ite calls; the memo table must never
        // exceed the limit, and results must stay correct.
        let mut acc = vars[0];
        for chunk in vars.windows(2) {
            acc = b.ite(acc, chunk[0], chunk[1]);
            assert!(b.ite_cache_len() <= 8);
        }
        let x = b.var(0);
        assert_eq!(b.xor(x, x), FALSE);
    }

    #[test]
    fn reset_reclaims_nodes() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let _ = b.and(x, y);
        assert!(b.node_count() > 2);
        b.reset();
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.ite_cache_len(), 0);
        // The manager is fully usable after a reset.
        let x = b.var(0);
        let nx = b.not(x);
        assert_eq!(b.not(nx), x);
    }

    #[test]
    fn sat_and_eval() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        let sat = b.any_sat(f).expect("satisfiable");
        assert!(sat.contains(&(0, true)) && sat.contains(&(1, true)));
        assert!(b.eval(f, &|_| true));
        assert!(!b.eval(f, &|v| v == 0));
        assert!(b.any_sat(FALSE).is_none());
    }
}
