//! Tseitin CNF emission: encodes an [`Aig`] cone into a
//! [`chicala_sat::Solver`].
//!
//! Each AND node in the cone of the requested root gets a fresh solver
//! variable with the standard three clauses
//! `(¬n ∨ x) (¬n ∨ y) (¬x ∨ ¬y ∨ n)`; inputs get plain variables.
//! Encoding is restricted to the cone of influence, so dead logic in the
//! graph costs no clauses.

use crate::aig::{Aig, AigNode, AigRef};
use chicala_sat::{Lit, Solver, Var};
use std::collections::HashMap;

/// The result of encoding one root: its literal plus the node → variable
/// map (needed to decode counterexample models back to AIG inputs).
#[derive(Debug)]
pub struct CnfRoot {
    /// Literal equivalent to the root edge.
    pub lit: Lit,
    /// Solver variable for each encoded AIG node (by node index).
    pub var_of_node: HashMap<u32, Var>,
}

/// Encodes the cone of `root` into `solver`, returning the root literal.
///
/// Constant roots short-circuit: a fresh variable is constrained to the
/// constant so the caller can uniformly assert `lit` or `¬lit`.
pub fn tseitin(aig: &Aig, root: AigRef, solver: &mut Solver) -> CnfRoot {
    let mut var_of_node: HashMap<u32, Var> = HashMap::new();
    // Cone of influence, in (topological) node order.
    let mut in_cone = vec![false; aig.len()];
    let mut stack = vec![root.node()];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_cone[n as usize], true) {
            continue;
        }
        if let AigNode::And(x, y) = aig.node(AigRef::from_node(n)) {
            stack.push(x.node());
            stack.push(y.node());
        }
    }
    let lit_of = |var_of_node: &HashMap<u32, Var>, r: AigRef| -> Lit {
        let v = var_of_node[&r.node()];
        if r.is_compl() {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    };
    for i in 0..aig.len() as u32 {
        if !in_cone[i as usize] {
            continue;
        }
        let v = solver.new_var();
        var_of_node.insert(i, v);
        match aig.node(AigRef::from_node(i)) {
            AigNode::Const => {
                // Node 0 is the false constant.
                solver.add_clause(&[Lit::neg(v)]);
            }
            AigNode::Input => {}
            AigNode::And(x, y) => {
                let lx = lit_of(&var_of_node, x);
                let ly = lit_of(&var_of_node, y);
                let ln = Lit::pos(v);
                solver.add_clause(&[!ln, lx]);
                solver.add_clause(&[!ln, ly]);
                solver.add_clause(&[!lx, !ly, ln]);
            }
        }
    }
    CnfRoot { lit: lit_of(&var_of_node, root), var_of_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AIG_TRUE;
    use chicala_sat::SatResult;

    #[test]
    fn encodes_and_gate_faithfully() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let r = g.and(x, y);
        // r must be satisfiable, and every model sets both inputs.
        let mut s = Solver::new();
        let enc = tseitin(&g, r, &mut s);
        s.add_clause(&[enc.lit]);
        match s.solve() {
            SatResult::Sat(m) => {
                let vx = enc.var_of_node[&x.node()];
                let vy = enc.var_of_node[&y.node()];
                assert!(m[vx as usize] && m[vy as usize]);
            }
            SatResult::Unsat => panic!("x∧y is satisfiable"),
        }
        // ¬r ∧ x ∧ y is unsatisfiable.
        let mut s = Solver::new();
        let enc = tseitin(&g, r, &mut s);
        s.add_clause(&[!enc.lit]);
        let vx = enc.var_of_node[&x.node()];
        let vy = enc.var_of_node[&y.node()];
        s.add_clause(&[Lit::pos(vx)]);
        s.add_clause(&[Lit::pos(vy)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_miter_is_unsat_for_equal_functions() {
        // Build (a xor b) two ways; the miter of the two copies must be
        // UNSAT: structural hashing already makes them the same edge, so
        // the miter is the constant false.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x1 = g.xor(a, b);
        let x2 = g.xor(b, a);
        let miter = g.xor(x1, x2);
        assert_eq!(miter, crate::aig::AIG_FALSE, "strash collapses the miter");
        let mut s = Solver::new();
        let enc = tseitin(&g, miter, &mut s);
        s.add_clause(&[enc.lit]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn constant_roots_round_trip() {
        let g = Aig::new();
        let mut s = Solver::new();
        let enc = tseitin(&g, AIG_TRUE, &mut s);
        s.add_clause(&[enc.lit]);
        assert!(matches!(s.solve(), SatResult::Sat(_)));
        let mut s = Solver::new();
        let enc = tseitin(&g, crate::aig::AIG_FALSE, &mut s);
        s.add_clause(&[enc.lit]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
