//! Tseitin CNF emission: encodes an [`Aig`] cone into a
//! [`chicala_sat::Solver`].
//!
//! [`tseitin`] is the classic full encoding: each AND node in the cone of
//! the requested root gets a fresh solver variable with the standard three
//! clauses `(¬n ∨ x) (¬n ∨ y) (¬x ∨ ¬y ∨ n)`; inputs get plain variables.
//! Encoding is restricted to the cone of influence, so dead logic in the
//! graph costs no clauses.
//!
//! [`tseitin_pg`] is the polarity-aware Plaisted–Greenbaum refinement the
//! SAT prove path uses: polarities are seeded from the edge the caller
//! will assert and pushed down through complement edges, and each node
//! only receives the implication clauses its polarities require —
//! `(¬n ∨ x) (¬n ∨ y)` where the node occurs positively, `(¬x ∨ ¬y ∨ n)`
//! where it occurs negatively. Single-polarity nodes (the vast majority of
//! a miter cone) cost one or two clauses instead of three, models still
//! project soundly onto the input variables, and nodes the AIG front-end
//! folded to constants never reach the encoder at all.

use crate::aig::{Aig, AigNode, AigRef};
use chicala_sat::{Lit, Solver, Var};
use std::collections::HashMap;

/// The result of encoding one root: its literal plus the node → variable
/// map (needed to decode counterexample models back to AIG inputs).
#[derive(Debug)]
pub struct CnfRoot {
    /// Literal equivalent to the root edge.
    pub lit: Lit,
    /// Solver variable for each encoded AIG node (by node index).
    pub var_of_node: HashMap<u32, Var>,
}

/// Encodes the cone of `root` into `solver`, returning the root literal.
///
/// Constant roots short-circuit: a fresh variable is constrained to the
/// constant so the caller can uniformly assert `lit` or `¬lit`.
pub fn tseitin(aig: &Aig, root: AigRef, solver: &mut Solver) -> CnfRoot {
    let mut var_of_node: HashMap<u32, Var> = HashMap::new();
    // Cone of influence, in (topological) node order.
    let mut in_cone = vec![false; aig.len()];
    let mut stack = vec![root.node()];
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_cone[n as usize], true) {
            continue;
        }
        if let AigNode::And(x, y) = aig.node(AigRef::from_node(n)) {
            stack.push(x.node());
            stack.push(y.node());
        }
    }
    let lit_of = |var_of_node: &HashMap<u32, Var>, r: AigRef| -> Lit {
        let v = var_of_node[&r.node()];
        if r.is_compl() {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    };
    for i in 0..aig.len() as u32 {
        if !in_cone[i as usize] {
            continue;
        }
        let v = solver.new_var();
        var_of_node.insert(i, v);
        match aig.node(AigRef::from_node(i)) {
            AigNode::Const => {
                // Node 0 is the false constant.
                solver.add_clause(&[Lit::neg(v)]);
            }
            AigNode::Input => {}
            AigNode::And(x, y) => {
                let lx = lit_of(&var_of_node, x);
                let ly = lit_of(&var_of_node, y);
                let ln = Lit::pos(v);
                solver.add_clause(&[!ln, lx]);
                solver.add_clause(&[!ln, ly]);
                solver.add_clause(&[!lx, !ly, ln]);
            }
        }
    }
    CnfRoot { lit: lit_of(&var_of_node, root), var_of_node }
}

/// Polarity marks: bit 0 = occurs positively, bit 1 = occurs negatively.
const POS: u8 = 1;
const NEG: u8 = 2;

/// Plaisted–Greenbaum encoding of the cone of `root`, where `root` is the
/// edge the caller intends to **assert** (add as a unit clause). Nodes
/// only get the implication clauses their occurrence polarities demand, so
/// single-polarity nodes cost 1–2 clauses against full Tseitin's 3.
///
/// The resulting formula is equisatisfiable with the asserted root, and a
/// model's values on *input* variables always extend to the asserted
/// constraint — counterexample decoding is unchanged. Internal node
/// variables of the model are only constrained in the asserted direction,
/// so callers must not read them as circuit values (the prove path only
/// reads inputs).
pub fn tseitin_pg(aig: &Aig, root: AigRef, solver: &mut Solver) -> CnfRoot {
    let mut pol = vec![0u8; aig.len()];
    let seed = if root.is_compl() { NEG } else { POS };
    let mut stack: Vec<(u32, u8)> = vec![(root.node(), seed)];
    while let Some((n, p)) = stack.pop() {
        if pol[n as usize] & p != 0 {
            continue;
        }
        pol[n as usize] |= p;
        if let AigNode::And(x, y) = aig.node(AigRef::from_node(n)) {
            for e in [x, y] {
                let cp = if e.is_compl() { p ^ (POS | NEG) } else { p };
                stack.push((e.node(), cp));
            }
        }
    }
    let mut var_of_node: HashMap<u32, Var> = HashMap::new();
    let lit_of = |var_of_node: &HashMap<u32, Var>, r: AigRef| -> Lit {
        let v = var_of_node[&r.node()];
        if r.is_compl() {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    };
    for i in 0..aig.len() as u32 {
        let p = pol[i as usize];
        if p == 0 {
            continue;
        }
        let v = solver.new_var();
        var_of_node.insert(i, v);
        match aig.node(AigRef::from_node(i)) {
            AigNode::Const => {
                // Node 0 is the false constant; pin it in both polarities
                // (one unit clause — cheaper than reasoning about which
                // direction the cone needs).
                solver.add_clause(&[Lit::neg(v)]);
            }
            AigNode::Input => {}
            AigNode::And(x, y) => {
                let lx = lit_of(&var_of_node, x);
                let ly = lit_of(&var_of_node, y);
                let ln = Lit::pos(v);
                if p & POS != 0 {
                    solver.add_clause(&[!ln, lx]);
                    solver.add_clause(&[!ln, ly]);
                }
                if p & NEG != 0 {
                    solver.add_clause(&[!lx, !ly, ln]);
                }
            }
        }
    }
    CnfRoot { lit: lit_of(&var_of_node, root), var_of_node }
}

/// Per-call emission statistics from [`CnfFrame::encode`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FrameStats {
    /// Clauses pushed into the solver by this call.
    pub new_clauses: u64,
    /// Clauses already in the solver that this cone needs (emitted by an
    /// earlier call for the same node/polarity) — the reuse the sweep wins.
    pub reused_clauses: u64,
    /// Fresh solver variables allocated by this call.
    pub new_vars: u64,
    /// Cone nodes whose encoding was already complete for the polarities
    /// this root demands.
    pub reused_nodes: u64,
}

/// A persistent Plaisted–Greenbaum encoding session over one growing
/// [`Aig`]: the node → variable map and the per-node emitted polarities
/// survive across calls, so encoding the width-`w` miter cone after its
/// width-`(w−1)` sibling only pays for the nodes (and polarities) the new
/// cone adds. This is the CNF side of `sweep::IncrementalProver`.
///
/// Soundness: every emitted clause is a polarity-subset of full Tseitin,
/// i.e. a valid implication of the circuit semantics, and is never
/// retracted. A node first seen positively and later also negatively gets
/// the missing implication topped up; the union is still (at most) the
/// full Tseitin encoding of the node.
#[derive(Default)]
pub struct CnfFrame {
    /// Solver variable per AIG node index (dense; `NO_VAR` = unassigned).
    vars: Vec<Var>,
    /// Polarities already emitted per node ([`POS`] | [`NEG`] bits).
    pol: Vec<u8>,
    /// Per-call visit stamps so reuse accounting counts each node once.
    stamp: Vec<u32>,
    clock: u32,
}

const NO_VAR: Var = u32::MAX;

impl CnfFrame {
    /// An empty frame.
    pub fn new() -> CnfFrame {
        CnfFrame::default()
    }

    /// The solver variable of an encoded node, if any call encoded it.
    pub fn var_of(&self, node: u32) -> Option<Var> {
        match self.vars.get(node as usize) {
            Some(&v) if v != NO_VAR => Some(v),
            _ => None,
        }
    }

    /// The solver literal of an AIG edge whose node is encoded.
    pub fn lit_of(&self, r: AigRef) -> Option<Lit> {
        let v = self.var_of(r.node())?;
        Some(if r.is_compl() { Lit::neg(v) } else { Lit::pos(v) })
    }

    /// Encodes the cone of `root` — the edge the caller will assert —
    /// into `solver`, reusing everything earlier calls emitted. Returns
    /// the root literal and the reuse accounting.
    ///
    /// `solver` must be the same instance across all calls on one frame
    /// (variables are allocated from it and remembered).
    pub fn encode(&mut self, aig: &Aig, root: AigRef, solver: &mut Solver) -> (Lit, FrameStats) {
        let n = aig.len();
        if self.vars.len() < n {
            self.vars.resize(n, NO_VAR);
            self.pol.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        self.clock += 1;
        let mut stats = FrameStats::default();
        // Pass 1: polarity DFS from the asserted edge, collecting the
        // (node, added-polarity) pairs this cone newly requires. Marking
        // before descent keeps the walk linear on shared nodes.
        let mut newly: Vec<(u32, u8)> = Vec::new();
        let seed = if root.is_compl() { NEG } else { POS };
        let mut stack: Vec<(u32, u8)> = vec![(root.node(), seed)];
        while let Some((i, p)) = stack.pop() {
            let have = self.pol[i as usize];
            let missing = p & !have;
            if self.stamp[i as usize] != self.clock {
                self.stamp[i as usize] = self.clock;
                // Reuse accounting: clauses this cone needs that already
                // exist (counted once per node per call).
                if let AigNode::And(_, _) = aig.node(AigRef::from_node(i)) {
                    let kept = p & have;
                    if kept & POS != 0 {
                        stats.reused_clauses += 2;
                    }
                    if kept & NEG != 0 {
                        stats.reused_clauses += 1;
                    }
                    if missing == 0 {
                        stats.reused_nodes += 1;
                    }
                }
            }
            if missing == 0 {
                continue;
            }
            self.pol[i as usize] |= missing;
            newly.push((i, missing));
            if let AigNode::And(x, y) = aig.node(AigRef::from_node(i)) {
                for e in [x, y] {
                    let cp = if e.is_compl() { missing ^ (POS | NEG) } else { missing };
                    stack.push((e.node(), cp));
                }
            }
        }
        // Pass 2: emit in ascending node order (children of a hash-consed
        // AIG always precede parents, so their variables exist by the time
        // a parent's clauses reference them).
        newly.sort_unstable_by_key(|&(i, _)| i);
        for &(i, added) in &newly {
            let fresh = self.vars[i as usize] == NO_VAR;
            if fresh {
                self.vars[i as usize] = solver.new_var();
                stats.new_vars += 1;
            }
            let v = self.vars[i as usize];
            match aig.node(AigRef::from_node(i)) {
                AigNode::Const => {
                    // Node 0 is the false constant; pin it once.
                    if fresh {
                        solver.add_clause(&[Lit::neg(v)]);
                        stats.new_clauses += 1;
                    }
                }
                AigNode::Input => {}
                AigNode::And(x, y) => {
                    let lx = self.lit_of(x).expect("child encoded first");
                    let ly = self.lit_of(y).expect("child encoded first");
                    let ln = Lit::pos(v);
                    if added & POS != 0 {
                        solver.add_clause(&[!ln, lx]);
                        solver.add_clause(&[!ln, ly]);
                        stats.new_clauses += 2;
                    }
                    if added & NEG != 0 {
                        solver.add_clause(&[!lx, !ly, ln]);
                        stats.new_clauses += 1;
                    }
                }
            }
        }
        let lit = self.lit_of(root).expect("root encoded");
        (lit, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AIG_TRUE;
    use chicala_sat::SatResult;

    #[test]
    fn encodes_and_gate_faithfully() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let r = g.and(x, y);
        // r must be satisfiable, and every model sets both inputs.
        let mut s = Solver::new();
        let enc = tseitin(&g, r, &mut s);
        s.add_clause(&[enc.lit]);
        match s.solve() {
            SatResult::Sat(m) => {
                let vx = enc.var_of_node[&x.node()];
                let vy = enc.var_of_node[&y.node()];
                assert!(m[vx as usize] && m[vy as usize]);
            }
            SatResult::Unsat => panic!("x∧y is satisfiable"),
        }
        // ¬r ∧ x ∧ y is unsatisfiable.
        let mut s = Solver::new();
        let enc = tseitin(&g, r, &mut s);
        s.add_clause(&[!enc.lit]);
        let vx = enc.var_of_node[&x.node()];
        let vy = enc.var_of_node[&y.node()];
        s.add_clause(&[Lit::pos(vx)]);
        s.add_clause(&[Lit::pos(vy)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_miter_is_unsat_for_equal_functions() {
        // Build (a xor b) two ways; the miter of the two copies must be
        // UNSAT: structural hashing already makes them the same edge, so
        // the miter is the constant false.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x1 = g.xor(a, b);
        let x2 = g.xor(b, a);
        let miter = g.xor(x1, x2);
        assert_eq!(miter, crate::aig::AIG_FALSE, "strash collapses the miter");
        let mut s = Solver::new();
        let enc = tseitin(&g, miter, &mut s);
        s.add_clause(&[enc.lit]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pg_emits_strictly_fewer_clauses_on_single_polarity_cones() {
        // A deep xor chain seen through one root polarity: most nodes are
        // single-polarity, so Plaisted–Greenbaum must beat full Tseitin's
        // 3-clauses-per-AND. (A/B on the same graph and root.)
        let mut g = Aig::new();
        let mut acc = g.input();
        for _ in 0..10 {
            let x = g.input();
            acc = g.xor(acc, x);
        }
        let mut full = Solver::new();
        let _ = tseitin(&g, acc, &mut full);
        let mut pg = Solver::new();
        let _ = tseitin_pg(&g, acc, &mut pg);
        assert!(
            pg.num_clauses() < full.num_clauses(),
            "PG {} clauses vs full Tseitin {}",
            pg.num_clauses(),
            full.num_clauses()
        );
    }

    #[test]
    fn pg_and_full_tseitin_agree_on_random_cones() {
        // Pseudo-random dags: for each root polarity, the PG encoding must
        // be satisfiable exactly when the function (exhaustively evaluated)
        // has a satisfying assignment, and returned models must evaluate
        // to the asserted value on the original graph.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..20 {
            let mut g = Aig::new();
            let inputs: Vec<AigRef> = (0..6).map(|_| g.input()).collect();
            let mut pool = inputs.clone();
            for _ in 0..30 {
                let a = pool[(rng() % pool.len() as u64) as usize];
                let b = pool[(rng() % pool.len() as u64) as usize];
                let a = if rng() % 2 == 0 { !a } else { a };
                let n = match rng() % 3 {
                    0 => g.and(a, b),
                    1 => g.or(a, b),
                    _ => g.xor(a, b),
                };
                pool.push(n);
            }
            let base = *pool.last().expect("nonempty");
            for root in [base, !base] {
                if root.node() == 0 {
                    continue; // constant cones are covered elsewhere
                }
                let truly_sat = (0..64u32)
                    .any(|bits| g.eval(root, &|n| bits >> (n - 1) & 1 == 1));
                let mut s = Solver::new();
                let enc = tseitin_pg(&g, root, &mut s);
                s.add_clause(&[enc.lit]);
                match s.solve() {
                    SatResult::Sat(m) => {
                        assert!(truly_sat, "case {case}: PG found a model of an unsat cone");
                        // The model's *input* values must satisfy the root.
                        let val = g.eval(root, &|n| {
                            enc.var_of_node
                                .get(&n)
                                .is_some_and(|v| m[*v as usize])
                        });
                        assert!(val, "case {case}: PG model does not satisfy the root");
                    }
                    SatResult::Unsat => {
                        assert!(!truly_sat, "case {case}: PG missed a satisfying assignment");
                    }
                }
            }
        }
    }

    #[test]
    fn frame_agrees_with_oneshot_pg_on_growing_cones() {
        // One frame + one solver encode a sequence of roots over a growing
        // random dag; each query (under an activation guard) must agree
        // with a fresh PG encoding, and overlapping cones must reuse.
        let mut seed = 0x853C49E6748FEA9Bu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..10 {
            let mut g = Aig::new();
            let inputs: Vec<AigRef> = (0..6).map(|_| g.input()).collect();
            let mut pool = inputs.clone();
            let mut frame = CnfFrame::new();
            let mut s = Solver::new();
            let mut total_reused = 0u64;
            for step in 0..8 {
                for _ in 0..8 {
                    let a = pool[(rng() % pool.len() as u64) as usize];
                    let b = pool[(rng() % pool.len() as u64) as usize];
                    let a = if rng() % 2 == 0 { !a } else { a };
                    let n = match rng() % 3 {
                        0 => g.and(a, b),
                        1 => g.or(a, b),
                        _ => g.xor(a, b),
                    };
                    pool.push(n);
                }
                let base = *pool.last().expect("nonempty");
                let root = if rng() % 2 == 0 { base } else { !base };
                if root.node() == 0 {
                    continue;
                }
                let (lit, fstats) = frame.encode(&g, root, &mut s);
                total_reused += fstats.reused_clauses;
                let act = s.new_var();
                s.add_clause(&[Lit::neg(act), lit]);
                let inc_sat =
                    matches!(s.solve_assuming(&[Lit::pos(act)]), SatResult::Sat(_));
                s.add_clause(&[Lit::neg(act)]);
                let mut fresh = Solver::new();
                let enc = tseitin_pg(&g, root, &mut fresh);
                fresh.add_clause(&[enc.lit]);
                let oneshot_sat = matches!(fresh.solve(), SatResult::Sat(_));
                assert_eq!(
                    inc_sat, oneshot_sat,
                    "case {case} step {step}: frame and one-shot PG disagree"
                );
            }
            assert!(total_reused > 0, "case {case}: growing cones never reused a clause");
        }
    }

    #[test]
    fn frame_polarity_topup_stays_sound() {
        // Encode a node positively first, then demand the negative
        // polarity through a second root: the topped-up encoding must
        // constrain both directions (x∧y asserted true then false).
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let n = g.and(x, y);
        let mut frame = CnfFrame::new();
        let mut s = Solver::new();
        let (pos_lit, first) = frame.encode(&g, n, &mut s);
        assert!(first.new_clauses > 0);
        let (neg_lit, second) = frame.encode(&g, !n, &mut s);
        assert_eq!(neg_lit, !pos_lit, "same node, complementary edges");
        assert_eq!(second.new_clauses, 1, "negative polarity tops up one implication");
        assert_eq!(second.new_vars, 0, "all three variables already exist");
        // n asserted: x and y must both hold.
        let a1 = s.new_var();
        s.add_clause(&[Lit::neg(a1), pos_lit]);
        match s.solve_assuming(&[Lit::pos(a1)]) {
            SatResult::Sat(m) => {
                let vx = frame.var_of(x.node()).expect("x encoded");
                let vy = frame.var_of(y.node()).expect("y encoded");
                assert!(m[vx as usize] && m[vy as usize]);
            }
            SatResult::Unsat => panic!("x∧y satisfiable"),
        }
        s.add_clause(&[Lit::neg(a1)]);
        // ¬n asserted along with x, y: unsatisfiable.
        let a2 = s.new_var();
        s.add_clause(&[Lit::neg(a2), neg_lit]);
        let vx = frame.var_of(x.node()).expect("x");
        let vy = frame.var_of(y.node()).expect("y");
        s.add_clause(&[Lit::neg(a2), Lit::pos(vx)]);
        s.add_clause(&[Lit::neg(a2), Lit::pos(vy)]);
        assert_eq!(s.solve_assuming(&[Lit::pos(a2)]), SatResult::Unsat);
    }

    #[test]
    fn constant_roots_round_trip() {
        let g = Aig::new();
        let mut s = Solver::new();
        let enc = tseitin(&g, AIG_TRUE, &mut s);
        s.add_clause(&[enc.lit]);
        assert!(matches!(s.solve(), SatResult::Sat(_)));
        let mut s = Solver::new();
        let enc = tseitin(&g, crate::aig::AIG_FALSE, &mut s);
        s.add_clause(&[enc.lit]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
