//! Incremental width-sweep proving: one CDCL session per design family.
//!
//! The per-(design, width) prove path pays a cold solver, a fresh Tseitin
//! encoding, and re-learns clauses its width-(w−1) sibling already derived.
//! This module amortizes the family three ways:
//!
//! 1. **One session AIG with shared inputs.** Truncated arithmetic is
//!    width-monotone: the low result bits of the width-`w` cone are the
//!    *same hash-consed nodes* as the width-`(w+1)` cone's, so encoding
//!    width `w+1` after `w` only pays for the new top slice
//!    ([`crate::cnf::CnfFrame`] tracks what is already in the solver).
//! 2. **Assumption-based retirement.** Each width's root assertion is
//!    guarded by a fresh activation literal and solved with
//!    [`chicala_sat::Solver::solve_assuming`]; retiring the width is one
//!    unit clause. Definition clauses are valid implications and stay
//!    forever; learnt clauses that depended on a guarded root carry its
//!    `¬act` literal and die with it, so exactly the width-independent
//!    lineage survives — together with variable activities and phases.
//! 3. **Proven-root lemmas.** A width proved UNSAT means the definition
//!    clauses entail its root; the root is asserted as a unit lemma, which
//!    hands the width-`(w+1)` query the whole low-bit equivalence for free.
//!
//! [`prove_net_sweep`] drives a netlist family through the session and
//! guarantees **byte-identical results** to the one-shot
//! [`prove_net_with`] path: proved widths are reported with the resolved
//! backend tag, and any counterexample is re-derived by the one-shot
//! engine itself (the session verdict only routes). [`prove_net_sweep_scheduled`]
//! adds the `par::StealPool` race: widths below the `Auto` crossover are
//! claimed by whichever of the BDD pool job or the ascending SAT session
//! gets there first; the loser is cancelled. Either way the reported bytes
//! are the same, so worker count never changes a report.

use crate::aig::{Aig, AigNode, AigRef, AIG_FALSE, AIG_TRUE};
use crate::check::{prove_net_with, Backend, ProveResult};
use crate::cnf::CnfFrame;
use crate::netlist::{Gate, Net, Netlist};
use crate::opt::OptProfile;
use chicala_sat::{Lit, SatResult, Solver};
use chicala_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Per-width session telemetry (the warm-vs-cold story of one sweep).
#[derive(Clone, Debug, Default)]
pub struct WidthProbe {
    /// The design width this probe covers.
    pub width: u64,
    /// The root folded to a constant at lowering; no solving happened.
    pub folded: bool,
    /// Clauses newly emitted for this width's cone.
    pub new_clauses: u64,
    /// Clauses already resident from earlier widths that this cone reuses.
    pub reused_clauses: u64,
    /// Conflicts the solver spent on this width.
    pub conflicts: u64,
    /// Wall-clock nanoseconds of the assumption solve.
    pub solve_ns: u64,
    /// Whether the proved root was asserted as a lemma for later widths.
    pub lemma: bool,
}

/// Aggregate statistics of one incremental sweep session.
#[derive(Clone, Debug, Default)]
pub struct SweepStats {
    /// Widths driven through the session.
    pub widths: u64,
    /// Widths closed structurally (constant root, no SAT call).
    pub folded: u64,
    /// Widths that reached the incremental solver.
    pub sat_calls: u64,
    /// Total clauses emitted across the session.
    pub new_clauses: u64,
    /// Total clause reuse across the session (see [`WidthProbe`]).
    pub reused_clauses: u64,
    /// Proven roots asserted as unit lemmas.
    pub lemmas: u64,
    /// Sweep-vs-oneshot disagreements caught by the A/B tripwire. Always 0
    /// for a sound session; the injected-bug drill makes it fire.
    pub divergences: u64,
    /// Per-width probes in sweep order.
    pub per_width: Vec<WidthProbe>,
}

/// The session's raw verdict for one width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepVerdict {
    /// The root is valid at this width.
    Proved,
    /// A falsifying assignment over the session AIG's input *nodes*
    /// (absent nodes are don't-cares).
    Counterexample(BTreeMap<u32, bool>),
}

/// An incremental prover over one growing session [`Aig`].
///
/// The caller builds each width's property cone into [`IncrementalProver::aig`]
/// (sharing input nodes across widths wherever the family allows) and asks
/// [`IncrementalProver::prove_root`] per width, ascending. All solver state
/// persists between calls.
pub struct IncrementalProver {
    /// The session graph; build width cones here with shared inputs.
    pub aig: Aig,
    solver: Solver,
    frame: CnfFrame,
    /// Session statistics, updated by every [`IncrementalProver::prove_root`].
    pub stats: SweepStats,
    drill_unguarded: bool,
}

impl Default for IncrementalProver {
    fn default() -> IncrementalProver {
        IncrementalProver::new()
    }
}

impl IncrementalProver {
    /// A fresh session.
    pub fn new() -> IncrementalProver {
        IncrementalProver {
            aig: Aig::new(),
            solver: Solver::new(),
            frame: CnfFrame::new(),
            stats: SweepStats::default(),
            drill_unguarded: false,
        }
    }

    /// **Soundness drill only**: asserts width roots *without* their
    /// activation guard, deliberately retaining a width-dependent clause
    /// across retirement. A later falsifiable width is then wrongly
    /// reported proved — which the sweep-vs-oneshot A/B must catch. Never
    /// enable outside tests.
    pub fn set_drill_unguarded(&mut self, on: bool) {
        self.drill_unguarded = on;
    }

    /// Proves that the edge `root` (built in [`IncrementalProver::aig`]) is
    /// constant-true at `width`, reusing all prior session state.
    pub fn prove_root(&mut self, width: u64, root: AigRef) -> SweepVerdict {
        self.stats.widths += 1;
        let mut probe = WidthProbe { width, ..WidthProbe::default() };
        if root == AIG_TRUE {
            self.stats.folded += 1;
            probe.folded = true;
            self.stats.per_width.push(probe);
            return SweepVerdict::Proved;
        }
        if root == AIG_FALSE {
            self.stats.folded += 1;
            probe.folded = true;
            self.stats.per_width.push(probe);
            return SweepVerdict::Counterexample(BTreeMap::new());
        }
        // Encode the cone of ¬root (we search for a counterexample); only
        // the slice new to this width costs clauses.
        let (cex_lit, fstats) = self.frame.encode(&self.aig, !root, &mut self.solver);
        probe.new_clauses = fstats.new_clauses;
        probe.reused_clauses = fstats.reused_clauses;
        self.stats.new_clauses += fstats.new_clauses;
        self.stats.reused_clauses += fstats.reused_clauses;
        telemetry::counter("sweep.new_clauses", fstats.new_clauses);
        telemetry::counter("sweep.reused_clauses", fstats.reused_clauses);
        let act = self.solver.new_var();
        if self.drill_unguarded {
            // Drill: the root assertion outlives the width. Unsound on
            // purpose; see `set_drill_unguarded`.
            self.solver.add_clause(&[cex_lit]);
        } else {
            self.solver.add_clause(&[Lit::neg(act), cex_lit]);
        }
        self.stats.sat_calls += 1;
        let before = self.solver.stats().conflicts;
        let start = Instant::now();
        let result = self.solver.solve_assuming(&[Lit::pos(act)]);
        probe.solve_ns = start.elapsed().as_nanos() as u64;
        probe.conflicts = self.solver.stats().conflicts - before;
        telemetry::record("sweep.solve_ns", probe.solve_ns);
        telemetry::record("sweep.conflicts", probe.conflicts);
        let verdict = match result {
            SatResult::Unsat => {
                // Retire the width and keep its theorem: UNSAT of
                // defs ∧ ¬root under act means the (permanent, valid)
                // definition clauses entail root — asserting it is sound
                // and primes every later width that contains this root as
                // a structural prefix.
                self.solver.add_clause(&[Lit::neg(act)]);
                if !self.drill_unguarded {
                    // The ¬root query only emitted the refutation-side
                    // polarities; top up the assertion side so the lemma
                    // unit-propagates down the shared cone (pinning every
                    // low-bit equivalence for the next width).
                    let (root_lit, topup) = self.frame.encode(&self.aig, root, &mut self.solver);
                    self.stats.new_clauses += topup.new_clauses;
                    probe.new_clauses += topup.new_clauses;
                    self.solver.add_clause(&[root_lit]);
                    self.stats.lemmas += 1;
                    probe.lemma = true;
                }
                SweepVerdict::Proved
            }
            SatResult::Sat(model) => {
                self.solver.add_clause(&[Lit::neg(act)]);
                let mut inputs = BTreeMap::new();
                for i in 0..self.aig.len() as u32 {
                    if let AigNode::Input = self.aig.node(AigRef::from_node(i)) {
                        if let Some(v) = self.frame.var_of(i) {
                            inputs.insert(i, model[v as usize]);
                        }
                    }
                }
                SweepVerdict::Counterexample(inputs)
            }
        };
        self.stats.per_width.push(probe);
        verdict
    }
}

/// One width of a sweepable netlist family: the property net `root` must
/// be constant-true over `nl`'s inputs. Families that share one
/// hash-consed kit across widths (see
/// `conformance::formal_gate_obligation_shared`) get real incremental
/// reuse; families with per-width kits still get the session solver.
pub struct SweepItem<'a> {
    /// The netlist holding this width's cone (shared or per-width).
    pub nl: &'a Netlist,
    /// The single-bit property net.
    pub root: Net,
    /// The design width (drives the `Auto` backend crossover).
    pub width: u64,
    /// BDD variable order for the small-width engine.
    pub var_order: Vec<Net>,
}

/// One width's outcome: byte-identical to what `prove_net_with` returns
/// for the same obligation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// The design width.
    pub width: u64,
    /// The (one-shot-identical) prove result.
    pub result: ProveResult,
}

/// A completed sweep: per-width outcomes plus session statistics.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Outcomes in the caller's item order.
    pub outcomes: Vec<SweepOutcome>,
    /// Session statistics.
    pub stats: SweepStats,
}

impl SweepReport {
    /// Whether every width was proved.
    pub fn all_proved(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_proved())
    }
}

/// Incremental lowering state: a dense net → edge map over one shared
/// kit, so each width's cone only lowers the nets the previous widths
/// have not.
struct LowerSession {
    map: Vec<AigRef>,
    done: Vec<bool>,
    inputs: BTreeMap<Net, AigRef>,
}

impl LowerSession {
    fn new() -> LowerSession {
        LowerSession { map: Vec::new(), done: Vec::new(), inputs: BTreeMap::new() }
    }

    fn lower(&mut self, nl: &Netlist, root: Net, aig: &mut Aig) -> AigRef {
        if self.map.len() < nl.len() {
            self.map.resize(nl.len(), AIG_FALSE);
            self.done.resize(nl.len(), false);
        }
        // Collect the not-yet-lowered cone; hash-consed net ids are dense
        // and topological, so ascending order is emission order.
        let mut order: Vec<u32> = Vec::new();
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            let i = n.0 as usize;
            if self.done[i] {
                continue;
            }
            self.done[i] = true;
            order.push(n.0);
            match nl.gate(n) {
                Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Gate::Not(a) => stack.push(a),
                Gate::Const(_) | Gate::Input => {}
            }
        }
        order.sort_unstable();
        for i in order {
            let net = Net(i);
            let r = match nl.gate(net) {
                Gate::Const(b) => {
                    if b {
                        AIG_TRUE
                    } else {
                        AIG_FALSE
                    }
                }
                Gate::Input => {
                    let r = aig.input();
                    self.inputs.insert(net, r);
                    r
                }
                Gate::And(a, b) => {
                    let (x, y) = (self.map[a.0 as usize], self.map[b.0 as usize]);
                    aig.and(x, y)
                }
                Gate::Or(a, b) => {
                    let (x, y) = (self.map[a.0 as usize], self.map[b.0 as usize]);
                    aig.or(x, y)
                }
                Gate::Xor(a, b) => {
                    let (x, y) = (self.map[a.0 as usize], self.map[b.0 as usize]);
                    aig.xor(x, y)
                }
                Gate::Not(a) => !self.map[a.0 as usize],
            };
            self.map[i as usize] = r;
        }
        self.map[root.0 as usize]
    }
}

/// The `ProveSweep` entry point: proves a whole width family through one
/// incremental session, with results **byte-identical** to calling
/// [`prove_net_with`] per width.
///
/// Items should be ascending in width (the session's reuse is built for
/// that order). Consecutive items sharing the *same* `&Netlist` reuse one
/// lowering session (real structural reuse); a change of kit starts a
/// fresh lowering map but keeps the solver session.
///
/// `verify_ab` additionally re-proves every width one-shot and counts any
/// disagreement in [`SweepStats::divergences`], reporting the one-shot
/// result — this is the A/B tripwire the drill and CI rely on.
pub fn prove_net_sweep(
    items: &[SweepItem<'_>],
    backend: Backend,
    opt: OptProfile,
    verify_ab: bool,
) -> SweepReport {
    prove_sweep_inner(items, backend, opt, verify_ab, false)
}

/// [`prove_net_sweep`] with the injected-bug drill enabled (test use
/// only): width roots are retained unguarded, so a later SAT width is
/// wrongly reported proved and `verify_ab` must record a divergence.
pub fn prove_net_sweep_drill(
    items: &[SweepItem<'_>],
    backend: Backend,
    opt: OptProfile,
    verify_ab: bool,
) -> SweepReport {
    prove_sweep_inner(items, backend, opt, verify_ab, true)
}

fn prove_sweep_inner(
    items: &[SweepItem<'_>],
    backend: Backend,
    opt: OptProfile,
    verify_ab: bool,
    drill: bool,
) -> SweepReport {
    let _span = telemetry::span!("prove_net_sweep");
    let mut session = IncrementalProver::new();
    session.set_drill_unguarded(drill);
    let mut lower = LowerSession::new();
    let mut last_kit: *const Netlist = std::ptr::null();
    let mut outcomes = Vec::with_capacity(items.len());
    for item in items {
        let resolved = backend.resolve(item.width as usize);
        let result = if resolved == Backend::Bdd {
            // Below the crossover the one-shot BDD engine is already the
            // cheapest path and its bytes are the contract.
            session.stats.widths += 1;
            prove_net_with(item.nl, item.root, backend, item.width as usize, &item.var_order, opt)
        } else {
            if !std::ptr::eq(last_kit, item.nl) {
                lower = LowerSession::new();
                last_kit = item.nl;
            }
            let aroot = lower.lower(item.nl, item.root, &mut session.aig);
            match session.prove_root(item.width, aroot) {
                SweepVerdict::Proved => ProveResult::Proved { backend: resolved },
                SweepVerdict::Counterexample(_) => {
                    // Byte-identity: the one-shot engine derives the
                    // reported counterexample itself.
                    let oneshot = prove_net_with(
                        item.nl,
                        item.root,
                        backend,
                        item.width as usize,
                        &item.var_order,
                        opt,
                    );
                    if oneshot.is_proved() {
                        // Session found a spurious model: soundness bug.
                        session.stats.divergences += 1;
                        telemetry::counter("sweep.divergences", 1);
                    }
                    oneshot
                }
            }
        };
        let result = if verify_ab {
            let oneshot = prove_net_with(
                item.nl,
                item.root,
                backend,
                item.width as usize,
                &item.var_order,
                opt,
            );
            if oneshot != result {
                session.stats.divergences += 1;
                telemetry::counter("sweep.divergences", 1);
            }
            oneshot
        } else {
            result
        };
        outcomes.push(SweepOutcome { width: item.width, result });
    }
    SweepReport { outcomes, stats: session.stats }
}

/// The process-wide sweep scheduler pool, sized like every other pool by
/// `CHICALA_WORKERS` (or available parallelism).
pub fn sweep_pool() -> &'static chicala_par::StealPool {
    static POOL: OnceLock<chicala_par::StealPool> = OnceLock::new();
    POOL.get_or_init(chicala_par::StealPool::with_default_workers)
}

/// [`prove_net_sweep`] scheduled through a [`chicala_par::StealPool`]:
/// widths at or below the `Auto` crossover are raced — a BDD pool job and
/// the ascending SAT session both try to claim each one, and the loser is
/// cancelled (never runs). Because proved widths are tag-normalized and
/// counterexamples are always re-derived one-shot, the report is
/// byte-identical to [`prove_net_with`] per width at any worker count.
///
/// Jobs need owned data, so the small-width netlists are cloned into the
/// race; at crossover widths (≤ 6) the kits are tiny.
pub fn prove_net_sweep_scheduled(
    pool: &chicala_par::StealPool,
    items: &[SweepItem<'_>],
    backend: Backend,
    opt: OptProfile,
    verify_ab: bool,
) -> SweepReport {
    let _span = telemetry::span!("prove_net_sweep_scheduled");
    // Race claims: one per item, first claimant proves the width.
    let claims: Arc<Vec<AtomicBool>> =
        Arc::new(items.iter().map(|_| AtomicBool::new(false)).collect());
    let mut handles: Vec<Option<chicala_par::JobHandle<Option<ProveResult>>>> =
        Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        if backend.resolve(item.width as usize) != Backend::Bdd {
            handles.push(None);
            continue;
        }
        let claims = Arc::clone(&claims);
        let nl: Netlist = (*item.nl).clone();
        let (root, width, var_order) = (item.root, item.width, item.var_order.clone());
        handles.push(Some(pool.submit(10, move || {
            if claims[i].swap(true, Ordering::SeqCst) {
                return None; // the session got here first: cancelled
            }
            Some(prove_net_with(&nl, root, backend, width as usize, &var_order, opt))
        })));
    }
    // The SAT session runs on the caller thread, ascending; it claims any
    // crossover width the BDD job has not started yet.
    let mut session = IncrementalProver::new();
    let mut lower = LowerSession::new();
    let mut last_kit: *const Netlist = std::ptr::null();
    let mut inline: Vec<Option<ProveResult>> = vec![None; items.len()];
    for (i, item) in items.iter().enumerate() {
        let resolved = backend.resolve(item.width as usize);
        if resolved == Backend::Bdd && claims[i].swap(true, Ordering::SeqCst) {
            continue; // BDD job owns it
        }
        if !std::ptr::eq(last_kit, item.nl) {
            lower = LowerSession::new();
            last_kit = item.nl;
        }
        if resolved == Backend::Bdd {
            session.stats.widths += 1;
        }
        let aroot = lower.lower(item.nl, item.root, &mut session.aig);
        let result = match session.prove_root(item.width, aroot) {
            SweepVerdict::Proved => ProveResult::Proved { backend: resolved },
            SweepVerdict::Counterexample(_) => {
                let oneshot = prove_net_with(
                    item.nl,
                    item.root,
                    backend,
                    item.width as usize,
                    &item.var_order,
                    opt,
                );
                if oneshot.is_proved() {
                    session.stats.divergences += 1;
                    telemetry::counter("sweep.divergences", 1);
                }
                oneshot
            }
        };
        inline[i] = Some(result);
    }
    let mut outcomes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let from_race = handles[i].as_ref().and_then(|h| h.join());
        let result = match (inline[i].take(), from_race) {
            (Some(r), _) => r,
            (None, Some(r)) => r,
            (None, None) => unreachable!("every width has exactly one claimant"),
        };
        let result = if verify_ab {
            let oneshot = prove_net_with(
                item.nl,
                item.root,
                backend,
                item.width as usize,
                &item.var_order,
                opt,
            );
            if oneshot != result {
                session.stats.divergences += 1;
            }
            oneshot
        } else {
            result
        };
        outcomes.push(SweepOutcome { width: item.width, result });
    }
    SweepReport { outcomes, stats: session.stats }
}

/// Hard arithmetic width families for the sweep bench and fuzz tests:
/// identities that strash does **not** fold (the two sides build their
/// result through structurally different carry networks), so the CDCL
/// engine does real, superlinearly growing work per width — exactly the
/// shape the incremental session amortizes. The multiplier identities
/// grow superexponentially (the new top column dominates, capping the
/// family-level speedup near the top width's warm/cold ratio); the adder
/// identities grow gently, so pinning the low bits collapses each new
/// width to a local carry argument and the sweep wins asymptotically.
pub mod family {
    use super::*;

    /// Ripple full-adder sum of two bit vectors, truncated to `w` bits.
    pub fn add_bits(g: &mut Aig, a: &[AigRef], b: &[AigRef], w: usize) -> Vec<AigRef> {
        let mut out = Vec::with_capacity(w);
        let mut carry = AIG_FALSE;
        for i in 0..w {
            let ai = a.get(i).copied().unwrap_or(AIG_FALSE);
            let bi = b.get(i).copied().unwrap_or(AIG_FALSE);
            let s1 = g.xor(ai, bi);
            out.push(g.xor(s1, carry));
            let c1 = g.and(ai, bi);
            let c2 = g.and(s1, carry);
            carry = g.or(c1, c2);
        }
        out
    }

    /// Shift-add product of two bit vectors, truncated to `w` bits.
    pub fn mul_bits(g: &mut Aig, a: &[AigRef], b: &[AigRef], w: usize) -> Vec<AigRef> {
        let mut acc = vec![AIG_FALSE; w];
        for (i, &bi) in b.iter().enumerate().take(w) {
            let mut carry = AIG_FALSE;
            for j in i..w {
                let pp = g.and(a[j - i], bi);
                let s1 = g.xor(acc[j], pp);
                let sum = g.xor(s1, carry);
                let c1 = g.and(acc[j], pp);
                let c2 = g.and(s1, carry);
                carry = g.or(c1, c2);
                acc[j] = sum;
            }
        }
        acc
    }

    /// Conjunction of per-bit equivalences, built low bit first so the
    /// width-`w` miter is a structural prefix of the width-`(w+1)` one.
    pub fn equal_bits(g: &mut Aig, xs: &[AigRef], ys: &[AigRef]) -> AigRef {
        let mut m = AIG_TRUE;
        for (&x, &y) in xs.iter().zip(ys) {
            let eq = g.xor(x, y);
            m = g.and(m, !eq);
        }
        m
    }

    /// Commutativity miter: `a*b == b*a` at width `w` (mod 2^w).
    pub fn mulcomm_root(g: &mut Aig, a: &[AigRef], b: &[AigRef], w: usize) -> AigRef {
        let ab = mul_bits(g, &a[..w], &b[..w], w);
        let ba = mul_bits(g, &b[..w], &a[..w], w);
        equal_bits(g, &ab, &ba)
    }

    /// Distributivity miter: `(a+b)*c == a*c + b*c` at width `w` (mod 2^w).
    pub fn muldist_root(g: &mut Aig, a: &[AigRef], b: &[AigRef], c: &[AigRef], w: usize) -> AigRef {
        let s = add_bits(g, &a[..w], &b[..w], w);
        let lhs = mul_bits(g, &s, &c[..w], w);
        let ac = mul_bits(g, &a[..w], &c[..w], w);
        let bc = mul_bits(g, &b[..w], &c[..w], w);
        let rhs = add_bits(g, &ac, &bc, w);
        equal_bits(g, &lhs, &rhs)
    }

    /// Increment miter: `a*(b+1) == a*b + a` at width `w` (mod 2^w).
    pub fn mulinc_root(g: &mut Aig, a: &[AigRef], b: &[AigRef], w: usize) -> AigRef {
        let one: Vec<AigRef> = std::iter::once(AIG_TRUE)
            .chain(std::iter::repeat(AIG_FALSE))
            .take(w)
            .collect();
        let b1 = add_bits(g, &b[..w], &one, w);
        let lhs = mul_bits(g, &a[..w], &b1, w);
        let ab = mul_bits(g, &a[..w], &b[..w], w);
        let rhs = add_bits(g, &ab, &a[..w], w);
        equal_bits(g, &lhs, &rhs)
    }

    /// Associativity miter: `(a+b)+c == a+(b+c)` at width `w` (mod 2^w).
    /// The two carry chains differ structurally, so strash cannot fold the
    /// miter, but per-width warm work is a local carry argument once the
    /// lower bits are pinned — the sweep's best case.
    pub fn addassoc_root(g: &mut Aig, a: &[AigRef], b: &[AigRef], c: &[AigRef], w: usize) -> AigRef {
        let ab = add_bits(g, &a[..w], &b[..w], w);
        let lhs = add_bits(g, &ab, &c[..w], w);
        let bc = add_bits(g, &b[..w], &c[..w], w);
        let rhs = add_bits(g, &a[..w], &bc, w);
        equal_bits(g, &lhs, &rhs)
    }

    /// Carry-save identity miter: `a+b == (a^b) + 2*(a&b)` at width `w`.
    pub fn addxor_root(g: &mut Aig, a: &[AigRef], b: &[AigRef], w: usize) -> AigRef {
        let lhs = add_bits(g, &a[..w], &b[..w], w);
        let x: Vec<AigRef> = (0..w).map(|i| g.xor(a[i], b[i])).collect();
        let and2: Vec<AigRef> = (0..w).map(|i| g.and(a[i], b[i])).collect();
        let shifted: Vec<AigRef> =
            std::iter::once(AIG_FALSE).chain(and2.iter().copied()).take(w).collect();
        let rhs = add_bits(g, &x, &shifted, w);
        equal_bits(g, &lhs, &rhs)
    }

    /// Round-trip miter: `(a+1)-1 == a` at width `w` (subtraction as
    /// addition of the all-ones two's complement of 1).
    pub fn incdec_root(g: &mut Aig, a: &[AigRef], w: usize) -> AigRef {
        let one: Vec<AigRef> = std::iter::once(AIG_TRUE)
            .chain(std::iter::repeat(AIG_FALSE))
            .take(w)
            .collect();
        let inc = add_bits(g, &a[..w], &one, w);
        let ones: Vec<AigRef> = vec![AIG_TRUE; w];
        let dec = add_bits(g, &inc, &ones, w);
        equal_bits(g, &dec, &a[..w])
    }
}

#[cfg(test)]
mod tests {
    use super::family::*;
    use super::*;

    /// Drives one hard family through a session and through per-width cold
    /// solves; verdicts must agree (all proved) and the session must spend
    /// strictly fewer conflicts.
    fn ab_family(build: impl Fn(&mut Aig, &[AigRef], usize) -> AigRef, max_w: usize) {
        let mut session = IncrementalProver::new();
        let inputs: Vec<AigRef> = (0..3 * max_w).map(|_| session.aig.input()).collect();
        let mut warm_conflicts = 0u64;
        for w in 2..=max_w {
            let root = build(&mut session.aig, &inputs, w);
            if w >= 4 {
                // Tiny widths may still strash-fold; the interesting part
                // of the family must not.
                assert_ne!(root, AIG_TRUE, "family must not fold (w={w})");
            }
            assert_eq!(session.prove_root(w as u64, root), SweepVerdict::Proved, "w={w}");
            warm_conflicts += session.stats.per_width.last().unwrap().conflicts;
        }
        let mut cold_conflicts = 0u64;
        for w in 2..=max_w {
            let mut g = Aig::new();
            let inputs: Vec<AigRef> = (0..3 * max_w).map(|_| g.input()).collect();
            let root = build(&mut g, &inputs, w);
            let mut s = Solver::new();
            let enc = crate::cnf::tseitin_pg(&g, !root, &mut s);
            s.add_clause(&[enc.lit]);
            assert_eq!(s.solve(), SatResult::Unsat, "cold w={w}");
            cold_conflicts += s.stats().conflicts;
        }
        assert!(
            warm_conflicts < cold_conflicts,
            "session must reuse work: warm {warm_conflicts} vs cold {cold_conflicts} conflicts"
        );
        assert!(session.stats.reused_clauses > 0, "later widths must reuse clauses");
        assert!(session.stats.lemmas > 0, "proved roots must become lemmas");
    }

    #[test]
    fn mulcomm_session_beats_cold_solves() {
        ab_family(|g, inp, w| mulcomm_root(g, &inp[..w], &inp[6..6 + w], w), 6);
    }

    #[test]
    fn muldist_session_beats_cold_solves() {
        ab_family(
            |g, inp, w| muldist_root(g, &inp[..w], &inp[5..5 + w], &inp[10..10 + w], w),
            5,
        );
    }

    #[test]
    fn mulinc_session_beats_cold_solves() {
        ab_family(|g, inp, w| mulinc_root(g, &inp[..w], &inp[6..6 + w], w), 6);
    }

    #[test]
    fn addassoc_session_beats_cold_solves() {
        ab_family(
            |g, inp, w| addassoc_root(g, &inp[..w], &inp[10..10 + w], &inp[20..20 + w], w),
            10,
        );
    }

    #[test]
    fn addxor_session_beats_cold_solves() {
        ab_family(|g, inp, w| addxor_root(g, &inp[..w], &inp[12..12 + w], w), 12);
    }

    #[test]
    fn incdec_session_beats_cold_solves() {
        ab_family(|g, inp, w| incdec_root(g, &inp[..w], w), 16);
    }

    #[test]
    fn session_finds_counterexamples_and_recovers() {
        // A falsifiable width (a*b == b*a+1) between two valid ones: the
        // session must report a genuine model and keep proving afterwards.
        let mut session = IncrementalProver::new();
        let w = 4;
        let a: Vec<AigRef> = (0..w).map(|_| session.aig.input()).collect();
        let b: Vec<AigRef> = (0..w).map(|_| session.aig.input()).collect();
        let good = mulcomm_root(&mut session.aig, &a, &b, 3);
        assert_eq!(session.prove_root(3, good), SweepVerdict::Proved);
        // Broken claim: a*b == b*a + 1 (never true when a*b == b*a).
        let (ab, ba, one) = {
            let g = &mut session.aig;
            let ab = mul_bits(g, &a, &b, w);
            let ba = mul_bits(g, &b, &a, w);
            let one: Vec<AigRef> = std::iter::once(AIG_TRUE)
                .chain(std::iter::repeat(AIG_FALSE))
                .take(w)
                .collect();
            (ab, ba, one)
        };
        let ba1 = add_bits(&mut session.aig, &ba, &one, w);
        let bad = equal_bits(&mut session.aig, &ab, &ba1);
        match session.prove_root(4, bad) {
            SweepVerdict::Counterexample(model) => {
                // Any assignment falsifies; check the model really does.
                let val = session.aig.eval(bad, &|n| model.get(&n).copied().unwrap_or(false));
                assert!(!val, "reported model must falsify the bad root");
            }
            SweepVerdict::Proved => panic!("a*b == b*a+1 is falsifiable"),
        }
        let good4 = mulcomm_root(&mut session.aig, &a, &b, w);
        assert_eq!(session.prove_root(4, good4), SweepVerdict::Proved, "session recovers");
    }

    #[test]
    fn drill_unguarded_retention_is_caught_by_ab() {
        // The injected bug: unguarded root retention poisons the solver,
        // so a falsifiable later width reports Proved. The netlist-level
        // A/B (verify_ab) must catch exactly this.
        let mut session = IncrementalProver::new();
        session.set_drill_unguarded(true);
        let w = 3;
        let a: Vec<AigRef> = (0..w).map(|_| session.aig.input()).collect();
        let b: Vec<AigRef> = (0..w).map(|_| session.aig.input()).collect();
        let good = mulcomm_root(&mut session.aig, &a, &b, w);
        assert_eq!(session.prove_root(3, good), SweepVerdict::Proved);
        // A trivially falsifiable claim: a0 (an input) is constant-true.
        let falsifiable = a[0];
        match session.prove_root(4, falsifiable) {
            SweepVerdict::Proved => {} // the drill's wrong answer, as designed
            SweepVerdict::Counterexample(_) => {
                panic!("drill failed to poison the session — unguarded clause was not retained")
            }
        }
    }
}
