//! Balanced restructuring of AND and XOR chains.
//!
//! Arithmetic miters are full of operator chains that the two halves
//! associate differently — a left-fold of partial products on one side, a
//! right-fold (or a reversed loop) on the other. Structural hashing cannot
//! merge `((a∧b)∧c)` with `(a∧(b∧c))`, so the chains survive to the SAT
//! engine as disjoint cones. This pass flattens maximal single-fanout
//! AND chains (OR chains arrive as AND chains by De Morgan) and XOR
//! chains (recognised from their 3-AND lowering) into leaf multisets,
//! normalises them (sorting, idempotence/cancellation, parity), and
//! rebuilds each as a *leaf-sorted balanced tree* — both halves of a miter
//! then rebuild into the identical tree and strash merges them node for
//! node.
//!
//! Chains are only flattened through interior nodes with no other fanout
//! (counting root references), so shared subterms keep their sharing; a
//! rebuild that loses sharing anyway is caught by the pass manager's
//! node-count budget.

use super::Pass;
use crate::aig::{Aig, AigNode, AigRef, AIG_FALSE, AIG_TRUE};
use std::collections::HashMap;

/// The chain-balancing pass.
#[derive(Default)]
pub struct Balance;

/// Per-node facts about the *old* graph the pass consults while emitting.
struct OldFacts {
    /// Fanout count per node (AND parents within the cone + root uses).
    refs: Vec<u32>,
    /// `Some((p, q))` when the node is the top AND of an XOR lowering
    /// `¬(p∧q) ∧ ¬(¬p∧¬q)` — i.e. the node computes `p ⊕ q`.
    xor_ops: Vec<Option<(AigRef, AigRef)>>,
}

impl OldFacts {
    fn build(aig: &Aig, roots: &[AigRef]) -> OldFacts {
        let in_cone = aig.cone(roots);
        let mut refs = vec![0u32; aig.len()];
        let mut xor_ops = vec![None; aig.len()];
        for (i, &cone) in in_cone.iter().enumerate() {
            if !cone {
                continue;
            }
            let r = AigRef::from_node(i as u32);
            if let AigNode::And(c1, c2) = aig.node(r) {
                refs[c1.node() as usize] += 1;
                refs[c2.node() as usize] += 1;
                if c1.is_compl() && c2.is_compl() {
                    if let (Some((p, q)), Some((u, v))) =
                        (aig.and_children(!c1), aig.and_children(!c2))
                    {
                        if (u == !p && v == !q) || (u == !q && v == !p) {
                            xor_ops[i] = Some((p, q));
                        }
                    }
                }
            }
        }
        for r in roots {
            refs[r.node() as usize] += 1;
        }
        OldFacts { refs, xor_ops }
    }

    /// Whether a chain may be flattened *through* this old edge: an
    /// uncomplemented AND used nowhere else.
    fn inlinable(&self, aig: &Aig, e: AigRef) -> bool {
        !e.is_compl()
            && matches!(aig.node(e), AigNode::And(_, _))
            && self.refs[e.node() as usize] == 1
    }
}

/// Collects the AND-chain leaves of old edge `e` (old edges out).
fn and_leaves(aig: &Aig, facts: &OldFacts, e: AigRef, out: &mut Vec<AigRef>) {
    // Do not dissolve an XOR lowering into its raw NAND legs — the XOR
    // balancer owns that shape.
    if facts.inlinable(aig, e) && facts.xor_ops[e.node() as usize].is_none() {
        if let Some((x, y)) = aig.and_children(e) {
            and_leaves(aig, facts, x, out);
            and_leaves(aig, facts, y, out);
            return;
        }
    }
    out.push(e);
}

/// Collects the XOR-chain leaves under old edge `e`, folding edge
/// complements into the running parity.
fn xor_leaves(facts: &OldFacts, e: AigRef, out: &mut Vec<AigRef>, parity: &mut bool) {
    *parity ^= e.is_compl();
    let plain = if e.is_compl() { !e } else { e };
    if let Some((p, q)) = facts.xor_ops[plain.node() as usize] {
        // A sub-XOR's node is referenced by both NAND legs of its parent,
        // so "no other fanout" is exactly two references.
        if facts.refs[plain.node() as usize] <= 2 {
            xor_leaves(facts, p, out, parity);
            xor_leaves(facts, q, out, parity);
            return;
        }
    }
    out.push(plain);
}

/// Maps old leaf edges into the new graph and reduces them as a balanced
/// sorted tree under `op`.
fn balanced<F>(
    leaves: &[AigRef],
    map: &HashMap<u32, AigRef>,
    out: &mut Aig,
    unit: AigRef,
    mut op: F,
) -> AigRef
where
    F: FnMut(&mut Aig, AigRef, AigRef) -> AigRef,
{
    let mut layer: Vec<AigRef> = leaves
        .iter()
        .map(|&l| Aig::map_edge(map, l).expect("chain leaf precedes its chain top"))
        .collect();
    // Sorting by new edge id makes both miter halves produce the same
    // layer, and puts duplicate / complementary leaves adjacent where the
    // front-end rules cancel them.
    layer.sort_unstable();
    if layer.is_empty() {
        return unit;
    }
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 { op(out, pair[0], pair[1]) } else { pair[0] });
        }
        layer = next;
    }
    layer[0]
}

impl Pass for Balance {
    fn name(&self) -> &'static str {
        "balance"
    }

    fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        let facts = OldFacts::build(aig, roots);
        aig.rebuild_with(roots, |out, old, ex, ey, map| {
            let old_ref = AigRef::from_node(old);
            if let Some((p, q)) = facts.xor_ops[old as usize] {
                // Treat this node as a chain *top*: flatten its operands
                // and rebuild the whole XOR chain balanced.
                let mut leaves = Vec::new();
                let mut parity = false;
                xor_leaves(&facts, p, &mut leaves, &mut parity);
                xor_leaves(&facts, q, &mut leaves, &mut parity);
                let base = balanced(&leaves, map, out, AIG_FALSE, |g, a, b| g.xor(a, b));
                return if parity { !base } else { base };
            }
            // Plain AND: flatten the maximal single-fanout chain this node
            // tops (every AND is a candidate top — its own fanout doesn't
            // matter, only its children's). Interior chain nodes reach
            // here too, but their partial rebuilds are orphaned and swept
            // once the top node re-ands the full leaf set.
            if let Some((x, y)) = aig.and_children(old_ref) {
                let mut leaves = Vec::new();
                and_leaves(aig, &facts, x, &mut leaves);
                and_leaves(aig, &facts, y, &mut leaves);
                if leaves.len() > 2 {
                    return balanced(&leaves, map, out, AIG_TRUE, |g, a, b| g.and(a, b));
                }
            }
            out.and(ex, ey)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_and(g: &mut Aig, items: &[AigRef], left: bool) -> AigRef {
        if left {
            items[1..].iter().fold(items[0], |acc, &x| g.and(acc, x))
        } else {
            let mut acc = *items.last().expect("nonempty");
            for &x in items[..items.len() - 1].iter().rev() {
                acc = g.and(x, acc);
            }
            acc
        }
    }

    fn chain_xor(g: &mut Aig, items: &[AigRef], left: bool) -> AigRef {
        if left {
            items[1..].iter().fold(items[0], |acc, &x| g.xor(acc, x))
        } else {
            let mut acc = *items.last().expect("nonempty");
            for &x in items[..items.len() - 1].iter().rev() {
                acc = g.xor(x, acc);
            }
            acc
        }
    }

    #[test]
    fn differently_associated_and_chains_merge() {
        let mut g = Aig::new();
        let ins: Vec<AigRef> = (0..6).map(|_| g.input()).collect();
        let l = chain_and(&mut g, &ins, true);
        let r = chain_and(&mut g, &ins, false);
        assert_ne!(l, r, "strash alone must not merge the associations");
        let (out, roots, _) = Balance.run(&g, &[l, r]);
        assert_eq!(roots[0], roots[1], "balanced rebuilds collapse into one tree");
        assert_eq!(out.and_count(), 5, "one 6-leaf tree: {out:?}");
    }

    #[test]
    fn differently_associated_xor_chains_merge() {
        let mut g = Aig::new();
        let ins: Vec<AigRef> = (0..5).map(|_| g.input()).collect();
        let l = chain_xor(&mut g, &ins, true);
        let r = chain_xor(&mut g, &ins, false);
        assert_ne!(l, r);
        let n0 = g.and_count();
        let (out, roots, _) = Balance.run(&g, &[l, r]);
        assert_eq!(roots[0], roots[1], "xor chains rebuild identically");
        assert!(out.and_count() < n0, "{} -> {}", n0, out.and_count());
    }

    #[test]
    fn xor_cancellation_and_parity() {
        // x ⊕ y ⊕ x = y, and ¬(x ⊕ y) ⊕ x folds through parity to ¬y.
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let a = g.xor(x, y);
        let b = g.xor(a, x);
        let (out, roots, map) = Balance.run(&g, &[b]);
        let ny = Aig::map_edge(&map, y).expect("y survives");
        assert_eq!(roots[0], ny, "x⊕y⊕x = y; got {:?} in {out:?}", roots[0]);
        let mut g2 = Aig::new();
        let x2 = g2.input();
        let y2 = g2.input();
        let a2 = g2.xor(x2, y2);
        let b2 = g2.xor(!a2, x2);
        let (_, roots2, map2) = Balance.run(&g2, &[b2]);
        let ny2 = Aig::map_edge(&map2, y2).expect("y survives");
        assert_eq!(roots2[0], !ny2, "¬(x⊕y)⊕x = ¬y");
    }

    #[test]
    fn shared_interior_nodes_are_not_dissolved() {
        // The interior a∧b has a second fanout, so flattening must stop
        // there and the sharing survive.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let (out, roots, map) = Balance.run(&g, &[abc, ab]);
        let nab = Aig::map_edge(&map, ab).expect("shared node survives");
        assert_eq!(roots[1], nab);
        assert_eq!(out.and_count(), 2, "no duplication of the shared cone");
    }

    #[test]
    fn semantics_preserved_on_mixed_chains() {
        let mut g = Aig::new();
        let ins: Vec<AigRef> = (0..6).map(|_| g.input()).collect();
        let l = chain_xor(&mut g, &ins[..4], true);
        let r = chain_and(&mut g, &ins[2..], false);
        let root = g.and(l, !r);
        let (out, roots, map) = Balance.run(&g, &[root]);
        let inv: HashMap<u32, u32> = (1..=6u32)
            .filter_map(|i| map.get(&i).map(|e| (e.node(), i)))
            .collect();
        for bits in 0..64u32 {
            let want = g.eval(root, &|n| bits >> (n - 1) & 1 == 1);
            let got = out.eval(roots[0], &|n| bits >> (inv[&n] - 1) & 1 == 1);
            assert_eq!(got, want, "assignment {bits:06b}");
        }
    }
}
