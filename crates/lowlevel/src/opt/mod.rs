//! The self-certifying AIG optimizer: a pass framework that shrinks miter
//! cones *before* they reach the BDD or SAT engine, where every pass
//! application can prove its own correctness with the very backends it is
//! accelerating.
//!
//! The pipeline ([`PassManager::standard`]) runs four passes to a fixpoint
//! under a node-count-must-not-grow budget:
//!
//! * [`Sweep`] — constant propagation plus dangling-node garbage
//!   collection (a cone-restricted [`Aig::rehash`]);
//! * [`Rewrite`] — strash-aware local rewriting extending the
//!   Brummayer–Biere one/two-level rules to 3-input shapes (shared-child
//!   absorption, NAND substitution, resolution);
//! * [`Balance`] — flattens AND and XOR chains and rebuilds them as
//!   leaf-sorted balanced trees, so the two halves of a miter that
//!   associate the same reduction differently collapse into one subgraph;
//! * [`Resub`] — cut-based resubstitution: enumerates ≤4-input cuts with
//!   truth tables and replaces any node that recomputes a function some
//!   earlier node already provides.
//!
//! The self-certifying part: after each accepted pass application the
//! manager can emit an equivalence miter between the pre- and post-pass
//! graphs over the shared primary inputs and discharge it with the raw
//! (unoptimized) BDD/SAT engines — the same "verify the artifact, not the
//! tool" stance the kernel takes for arithmetic proofs. The
//! `CHICALA_OPT_CERT` knob (`off` | `sampled` | `full`) trades
//! certification cost against coverage; `sampled` (the default) certifies
//! a deterministic subset of applications.

mod balance;
mod cert;
mod resub;
mod rewrite;
mod sweep;

pub use balance::Balance;
pub use cert::{certify, CertFailure};
pub use resub::Resub;
pub use rewrite::Rewrite;
pub use sweep::Sweep;

use crate::aig::{Aig, AigRef};
use chicala_telemetry as telemetry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How many pass applications the `sampled` certification mode lets
/// through between certified ones (deterministic, process-wide).
const SAMPLE_PERIOD: u64 = 8;

/// Certification policy for pass applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertMode {
    /// Trust the passes (fastest; the drill tests still certify manually).
    Off,
    /// Certify a deterministic 1-in-[`SAMPLE_PERIOD`] subset of pass
    /// applications — cheap continuous spot checks.
    Sampled,
    /// Certify every accepted pass application (what CI's smoke gate and
    /// the bench run under).
    Full,
}

impl CertMode {
    /// Reads `CHICALA_OPT_CERT` (`off` | `sampled` | `full`,
    /// case-insensitive); unset or unrecognised values yield `Sampled`.
    pub fn from_env() -> CertMode {
        match std::env::var("CHICALA_OPT_CERT")
            .map(|v| v.to_ascii_lowercase())
            .as_deref()
        {
            Ok("off") => CertMode::Off,
            Ok("full") => CertMode::Full,
            _ => CertMode::Sampled,
        }
    }
}

/// Whether the optimizer runs at all, and how it certifies itself — the
/// knob the prove paths and the A/B bench share.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptProfile {
    /// Run the pass pipeline ahead of the proof engines.
    pub enabled: bool,
    /// Certification policy for accepted pass applications.
    pub cert: CertMode,
}

impl OptProfile {
    /// `CHICALA_OPT` (`off` disables; anything else, or unset, enables)
    /// plus [`CertMode::from_env`].
    pub fn from_env() -> OptProfile {
        let enabled = !matches!(
            std::env::var("CHICALA_OPT").map(|v| v.to_ascii_lowercase()).as_deref(),
            Ok("off") | Ok("0")
        );
        OptProfile { enabled, cert: CertMode::from_env() }
    }

    /// Optimizer disabled (the raw-engine baseline of the A/B bench).
    pub fn off() -> OptProfile {
        OptProfile { enabled: false, cert: CertMode::Off }
    }

    /// Optimizer on with every application certified.
    pub fn full_cert() -> OptProfile {
        OptProfile { enabled: true, cert: CertMode::Full }
    }
}

/// One rewriting pass over an [`Aig`] cone.
///
/// A pass is a *pure function of the graph*: it rebuilds the cone of
/// `roots` into a fresh graph and returns it with the mapped roots and the
/// old-node → new-edge mapping (inputs follow across through the map;
/// entries for swept nodes are absent). Implementations usually go through
/// the crate's rebuild skeleton, which garbage-collects orphaned nodes, so
/// a pass never has to reason about its own dead wood.
pub trait Pass {
    /// Stable name (telemetry keys, stats, certification messages).
    fn name(&self) -> &'static str;

    /// Rebuilds the cone of `roots`.
    fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>);
}

/// What one pass application did (telemetry-facing).
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass name.
    pub pass: &'static str,
    /// Fixpoint round (0-based).
    pub round: usize,
    /// AND count before the pass.
    pub nodes_in: usize,
    /// AND count after the pass (post garbage collection).
    pub nodes_out: usize,
    /// Whether the result was kept (`false`: the node-count budget
    /// rejected a growing rewrite and the input graph was kept).
    pub accepted: bool,
    /// `Some(true)` when this application's pre/post equivalence miter was
    /// emitted and proved; `None` when certification was skipped.
    pub certified: Option<bool>,
}

/// The optimized graph plus everything needed to keep using it in a proof.
#[derive(Debug)]
pub struct OptOutcome {
    /// The optimized graph.
    pub aig: Aig,
    /// The roots, mapped into [`OptOutcome::aig`].
    pub roots: Vec<AigRef>,
    /// Original node id → final edge (absent: swept). Input decoding for
    /// counterexamples follows original input nodes through here.
    pub map: HashMap<u32, AigRef>,
    /// Per-pass telemetry, in application order.
    pub stats: Vec<PassStats>,
}

impl OptOutcome {
    /// Number of pass applications whose certification miter was proved.
    pub fn certified_count(&self) -> usize {
        self.stats.iter().filter(|s| s.certified == Some(true)).count()
    }
}

/// Runs a pass sequence to a fixpoint under a node-count-must-not-grow
/// budget, certifying accepted applications per [`CertMode`].
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Certification policy.
    pub cert: CertMode,
    /// Design width — drives the BDD/SAT crossover of the certification
    /// miter's `Backend::Auto` discharge.
    pub width: usize,
    /// Fixpoint cap: rounds stop when the node count stops shrinking or
    /// after this many rounds, whichever is first.
    pub max_rounds: usize,
}

static CERT_TICK: AtomicU64 = AtomicU64::new(0);

impl PassManager {
    /// An empty manager (add passes with [`PassManager::with_pass`]).
    pub fn new(width: usize, cert: CertMode) -> PassManager {
        PassManager { passes: Vec::new(), cert, width, max_rounds: 4 }
    }

    /// Appends a pass to the pipeline.
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> PassManager {
        self.passes.push(pass);
        self
    }

    /// The standard pipeline: sweep → rewrite → balance → resub.
    pub fn standard(width: usize, cert: CertMode) -> PassManager {
        PassManager::new(width, cert)
            .with_pass(Box::new(Sweep))
            .with_pass(Box::new(Rewrite))
            .with_pass(Box::new(Balance))
            .with_pass(Box::new(Resub))
    }

    fn should_certify(&self) -> bool {
        match self.cert {
            CertMode::Off => false,
            CertMode::Full => true,
            CertMode::Sampled => {
                CERT_TICK.fetch_add(1, Ordering::Relaxed).is_multiple_of(SAMPLE_PERIOD)
            }
        }
    }

    /// Runs the pipeline over `aig`.
    ///
    /// # Errors
    ///
    /// [`CertFailure`] when a certified pass application's pre/post miter
    /// is *not* a tautology — the pass miscompiled the cone. The failure
    /// carries the falsifying input assignment; the graph that produced it
    /// is discarded, never used.
    pub fn run(&self, mut aig: Aig, mut roots: Vec<AigRef>) -> Result<OptOutcome, CertFailure> {
        let _span = telemetry::span!("opt:pipeline");
        // Identity mapping over the original graph; composed through every
        // accepted pass so callers can still find their inputs.
        let mut map: HashMap<u32, AigRef> =
            (0..aig.len() as u32).map(|i| (i, AigRef::from_node(i))).collect();
        let mut stats = Vec::new();
        for round in 0..self.max_rounds {
            let round_start = aig.and_count();
            for pass in &self.passes {
                let _pspan = telemetry::span!("opt:{}", pass.name());
                let nodes_in = aig.and_count();
                let (next, next_roots, pass_map) = pass.run(&aig, &roots);
                let nodes_out = next.and_count();
                // The budget: a pass whose (garbage-collected) result grew
                // is rejected wholesale — pipelines only ever shrink.
                let accepted = nodes_out <= nodes_in;
                let mut certified = None;
                if accepted {
                    if self.should_certify() {
                        certify(&aig, &roots, &next, &next_roots, &pass_map, self.width)
                            .map_err(|f| f.for_pass(pass.name()))?;
                        telemetry::counter("opt.cert.proved", 1);
                        certified = Some(true);
                    }
                    map = map
                        .into_iter()
                        .filter_map(|(o, e)| Aig::map_edge(&pass_map, e).map(|m| (o, m)))
                        .collect();
                    telemetry::record(
                        &format!("opt.{}.nodes_saved", pass.name()),
                        (nodes_in - nodes_out) as u64,
                    );
                    aig = next;
                    roots = next_roots;
                } else {
                    telemetry::counter("opt.pass.rejected", 1);
                }
                stats.push(PassStats {
                    pass: pass.name(),
                    round,
                    nodes_in,
                    nodes_out,
                    accepted,
                    certified,
                });
            }
            if aig.and_count() >= round_start {
                break;
            }
        }
        Ok(OptOutcome { aig, roots, map, stats })
    }
}

/// A deliberately unsound rewrite for the injected-bug drill: on the
/// 3-input shape `(x∧y) ∧ ¬(x∧v)` it returns `x∧y` outright, which *looks*
/// like the sound substitution `(x∧y) ∧ ¬(x∧v) = x∧y∧¬v` ([`Rewrite`]'s R2
/// rule) but drops the `¬v` guard. Never part of any shipped pipeline — it
/// exists so tests can prove the certification miter actually catches a
/// miscompiling pass (the same discipline as the registry's `rmul_drill`
/// design and the fuzzer's `flatten_whens_dropping_guards` drill).
pub struct DropGuardRewrite;

/// The buggy half of [`DropGuardRewrite`]: `true` when `nand_side`'s
/// NAND shares a grandchild with `and_side`'s AND.
fn shares_nand_grandchild(out: &Aig, and_side: AigRef, nand_side: AigRef) -> bool {
    if !nand_side.is_compl() {
        return false;
    }
    match (out.and_children(and_side), out.and_children(!nand_side)) {
        (Some((x, y)), Some((u, v))) => u == x || u == y || v == x || v == y,
        _ => false,
    }
}

impl Pass for DropGuardRewrite {
    fn name(&self) -> &'static str {
        "drop_guard_rewrite"
    }

    fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        aig.rebuild_with(roots, |out, _, ex, ey, _| {
            if shares_nand_grandchild(out, ex, ey) {
                return ex; // BUG: the ¬other-grandchild guard is dropped.
            }
            if shares_nand_grandchild(out, ey, ex) {
                return ey; // BUG: same dropped guard, mirrored.
            }
            out.and(ex, ey)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::{AIG_FALSE, AIG_TRUE};

    /// A miter-shaped graph: two structurally different builds of the same
    /// 4-bit conjunction-of-xors, combined with an equivalence check that
    /// only the optimizer (not plain strash) can fold to constant true.
    fn sample_graph() -> (Aig, Vec<AigRef>) {
        let mut g = Aig::new();
        let ins: Vec<AigRef> = (0..6).map(|_| g.input()).collect();
        // Side 1: left-fold.
        let mut lhs = AIG_TRUE;
        for w in ins.windows(2) {
            let x = g.xor(w[0], w[1]);
            lhs = g.and(lhs, x);
        }
        // Side 2: right-fold of the same pairs, reversed order.
        let mut rhs = AIG_TRUE;
        for w in ins.windows(2).rev() {
            let x = g.xor(w[1], w[0]);
            rhs = g.and(x, rhs);
        }
        let miter = g.xor(lhs, rhs);
        (g, vec![!miter])
    }

    #[test]
    fn standard_pipeline_shrinks_and_certifies() {
        let (g, roots) = sample_graph();
        let n0 = g.and_count();
        let pm = PassManager::standard(4, CertMode::Full);
        let out = pm.run(g, roots).expect("all certification miters prove");
        assert!(out.aig.and_count() <= n0);
        assert!(out.certified_count() > 0, "full mode certifies every accepted pass");
        assert!(out.aig.no_orphans(&out.roots));
        // The miter of two equal functions must fold to constant true.
        assert_eq!(out.roots[0], AIG_TRUE, "optimizer closes the toy miter structurally");
    }

    #[test]
    fn pipeline_preserves_semantics_on_random_graphs() {
        // Pseudo-random AND/XOR/NOT dags, checked by exhaustive evaluation
        // (8 inputs -> 256 assignments) against the optimized rebuild.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..24 {
            let mut g = Aig::new();
            let inputs: Vec<AigRef> = (0..8).map(|_| g.input()).collect();
            let mut pool = inputs.clone();
            for _ in 0..60 {
                let a = pool[(rng() % pool.len() as u64) as usize];
                let b = pool[(rng() % pool.len() as u64) as usize];
                let a = if rng() % 2 == 0 { !a } else { a };
                let b = if rng() % 2 == 0 { !b } else { b };
                let n = match rng() % 3 {
                    0 => g.and(a, b),
                    1 => g.or(a, b),
                    _ => g.xor(a, b),
                };
                pool.push(n);
            }
            let root = *pool.last().expect("nonempty");
            let pm = PassManager::standard(8, CertMode::Full);
            let n0 = g.and_count();
            // Original input ids are 1..=8 (created first). Cone-restricted
            // rebuilds may drop unused inputs, so evaluation maps each
            // surviving graph's input nodes back to the original ids.
            let inverse = |map: &HashMap<u32, AigRef>| -> HashMap<u32, u32> {
                (1..=8u32)
                    .filter_map(|i| map.get(&i).map(|e| (e.node(), i)))
                    .collect()
            };
            let (gref, rref, mref) = g.rehash(&[root]);
            let inv_ref = inverse(&mref);
            let out = pm.run(g, vec![root]).expect("certification proves");
            assert!(out.aig.and_count() <= n0, "case {case}: budget respected");
            let inv_opt = inverse(&out.map);
            let new_root = out.roots[0];
            for bits in 0..256u32 {
                let want = gref.eval(rref[0], &|n| bits >> (inv_ref[&n] - 1) & 1 == 1);
                let got = out.aig.eval(new_root, &|n| bits >> (inv_opt[&n] - 1) & 1 == 1);
                assert_eq!(got, want, "case {case} assignment {bits:08b}");
            }
        }
    }

    #[test]
    fn drill_pass_is_caught_by_certification() {
        // Build the exact shape the buggy substitution fires on:
        // (x∧y) ∧ ¬(x∧v), which is x∧y∧¬v — not x∧y. The construction-time
        // rules leave this 3-input shape alone, so the drill pass sees it.
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let v = g.input();
        let xy = g.and(x, y);
        let xv = g.and(x, v);
        let root = g.and(xy, !xv);
        let pm = PassManager::new(2, CertMode::Full).with_pass(Box::new(DropGuardRewrite));
        let err = pm.run(g, vec![root]).expect_err("the dropped guard must be caught");
        assert_eq!(err.pass, "drop_guard_rewrite");
        // The graphs differ exactly at x=y=v=1 (pre says false, the buggy
        // post says true) — the certification counterexample must be it.
        let a: std::collections::BTreeMap<u32, bool> = err.inputs.iter().copied().collect();
        for (name, n) in [("x", x.node()), ("y", y.node()), ("v", v.node())] {
            assert_eq!(a.get(&n), Some(&true), "cex must set {name}: {:?}", err.inputs);
        }
    }

    #[test]
    fn budget_rejects_growing_passes() {
        struct Duplicator;
        impl Pass for Duplicator {
            fn name(&self) -> &'static str {
                "duplicator"
            }
            fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
                // Grows every AND into a two-node ladder: and(a,b) ->
                // and(and(a,b), or(a,b)) (equivalent, strictly bigger).
                aig.rebuild_with(roots, |out, _, ex, ey, _| {
                    let base = out.and(ex, ey);
                    let or = out.or(ex, ey);
                    out.and(base, or)
                })
            }
        }
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let root = g.xor(ab, c);
        let n0 = g.and_count();
        let pm = PassManager::new(2, CertMode::Full).with_pass(Box::new(Duplicator));
        let out = pm.run(g, vec![root]).expect("rejected passes are never certified");
        assert_eq!(out.aig.and_count(), n0, "growing result discarded");
        assert!(out.stats.iter().all(|s| !s.accepted), "{:?}", out.stats);
    }

    #[test]
    fn cert_mode_env_parsing() {
        // Not touching the real env (tests run in parallel); just the
        // default path.
        assert_eq!(CertMode::from_env(), CertMode::from_env());
    }

    #[test]
    fn constant_roots_survive_the_pipeline() {
        let mut g = Aig::new();
        let x = g.input();
        let t = g.and(x, !x); // folds to false at build time
        assert_eq!(t, AIG_FALSE);
        let pm = PassManager::standard(2, CertMode::Full);
        let out = pm.run(g, vec![AIG_TRUE, AIG_FALSE]).expect("certifies");
        assert_eq!(out.roots, vec![AIG_TRUE, AIG_FALSE]);
        assert_eq!(out.aig.and_count(), 0);
    }
}
