//! Constant propagation + dangling-node sweep.

use super::Pass;
use crate::aig::{Aig, AigRef};
use std::collections::HashMap;

/// Replays every AND through the construction-time front-end (constant
/// folding, unit rules, one/two-level rewriting, structural hashing),
/// restricted to the cone of the roots, and garbage-collects everything
/// else — i.e. [`Aig::rehash`] as a pipeline pass.
///
/// On a freshly lowered netlist this mostly prunes dead logic; its real job
/// is *between* other passes, where resubstituted or rebalanced children
/// turn former ANDs into constants and the replay folds the fallout away.
pub struct Sweep;

impl Pass for Sweep {
    fn name(&self) -> &'static str {
        "sweep"
    }

    fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        aig.rehash(roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AIG_TRUE;

    #[test]
    fn sweep_drops_logic_outside_the_cone() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let keep = g.and(a, b);
        let dead = g.xor(b, c);
        let _ = dead;
        let (out, roots, _) = Sweep.run(&g, &[keep]);
        assert_eq!(out.and_count(), 1);
        assert!(out.no_orphans(&roots));
    }

    #[test]
    fn sweep_is_identity_on_live_cones() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        let (out, roots, _) = Sweep.run(&g, &[x]);
        assert_eq!(out.and_count(), g.and_count());
        let (out2, roots2, _) = Sweep.run(&out, &roots);
        assert_eq!(out2.and_count(), out.and_count());
        assert_eq!(roots2, roots);
        let _ = AIG_TRUE;
    }
}
