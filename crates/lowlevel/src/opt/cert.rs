//! Pass self-certification: pre/post equivalence miters.
//!
//! After a pass rebuilds a cone, the manager can demand proof: both graphs
//! are lowered into one combined [`Netlist`] over *shared* primary inputs
//! (the pass's old-node → new-edge map ties each post-graph input back to
//! its pre-graph original), the miter `∧ᵢ ¬(preᵢ ⊕ postᵢ)` is built over
//! the root pairs, and the net is discharged by the **raw** BDD/SAT
//! engines — never through the optimizer itself, so a miscompiling pass
//! cannot vouch for its own output. This is the same "verify the artifact,
//! not the tool" stance the kernel takes for the arithmetic designs,
//! turned inward.
//!
//! The combined netlist is cheap: the netlist's structural hashing merges
//! whatever structure the pass left unchanged, so the miter only pays for
//! the rewritten region.

use crate::aig::{Aig, AigNode, AigRef};
use crate::bitblast::BitKit;
use crate::check::{prove_net_bdd, prove_net_sat, ProveResult, AUTO_SAT_CROSSOVER_WIDTH};
use crate::netlist::{Net, Netlist};
use chicala_telemetry as telemetry;
use std::collections::HashMap;

/// A certified pass application that *failed*: the pass changed the
/// function of the cone.
#[derive(Clone, Debug)]
pub struct CertFailure {
    /// The offending pass (filled in by the pass manager).
    pub pass: &'static str,
    /// A falsifying assignment over the pre-graph's input node ids
    /// (every cone input listed; inputs the engine left free default to
    /// false).
    pub inputs: Vec<(u32, bool)>,
}

impl CertFailure {
    /// Attributes the failure to a pass.
    pub fn for_pass(mut self, pass: &'static str) -> CertFailure {
        self.pass = pass;
        self
    }
}

impl std::fmt::Display for CertFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "optimizer pass '{}' miscompiled its cone: pre/post miter falsified at {:?}",
            self.pass, self.inputs
        )
    }
}

impl std::error::Error for CertFailure {}

/// Lowers the cone of `roots` into `nl`, resolving each AIG input node
/// through `input_net`.
fn lower(
    aig: &Aig,
    roots: &[AigRef],
    nl: &mut Netlist,
    input_net: &mut dyn FnMut(&mut Netlist, u32) -> Net,
) -> Vec<Net> {
    let mut net_of: HashMap<u32, Net> = HashMap::new();
    let mut in_cone = vec![false; aig.len()];
    let mut stack: Vec<u32> = roots.iter().map(|r| r.node()).collect();
    while let Some(n) = stack.pop() {
        if std::mem::replace(&mut in_cone[n as usize], true) {
            continue;
        }
        if let AigNode::And(x, y) = aig.node(AigRef::from_node(n)) {
            stack.push(x.node());
            stack.push(y.node());
        }
    }
    for (i, &cone) in in_cone.iter().enumerate() {
        if !cone {
            continue;
        }
        let r = AigRef::from_node(i as u32);
        let net = match aig.node(r) {
            AigNode::Const => nl.constant(false),
            AigNode::Input => input_net(nl, i as u32),
            AigNode::And(x, y) => {
                let ex = edge_net(nl, &net_of, x);
                let ey = edge_net(nl, &net_of, y);
                nl.and(ex, ey)
            }
        };
        net_of.insert(i as u32, net);
    }
    roots.iter().map(|r| edge_net(nl, &net_of, *r)).collect()
}

fn edge_net(nl: &mut Netlist, net_of: &HashMap<u32, Net>, e: AigRef) -> Net {
    let base = net_of[&e.node()];
    if e.is_compl() {
        nl.not(base)
    } else {
        base
    }
}

/// Proves that `post` (under `post_roots`) computes the same functions as
/// `pre` (under `pre_roots`), where `map` carries pre-graph nodes to
/// post-graph edges (at minimum covering the cone inputs).
///
/// `width` picks the discharging engine the same way [`crate::check::Backend::Auto`]
/// does: BDD at or below [`AUTO_SAT_CROSSOVER_WIDTH`], SAT above.
///
/// # Errors
///
/// [`CertFailure`] (with an empty pass attribution) when the miter is
/// falsifiable; the assignment is given over pre-graph input node ids.
pub fn certify(
    pre: &Aig,
    pre_roots: &[AigRef],
    post: &Aig,
    post_roots: &[AigRef],
    map: &HashMap<u32, AigRef>,
    width: usize,
) -> Result<(), CertFailure> {
    let _span = telemetry::span!("opt:certify");
    assert_eq!(pre_roots.len(), post_roots.len(), "root lists must pair up");
    let mut nl = Netlist::new();
    // Lower the pre graph, creating one shared netlist input per pre-cone
    // input node.
    let mut net_of_pre_input: HashMap<u32, Net> = HashMap::new();
    let pre_nets = lower(pre, pre_roots, &mut nl, &mut |nl, node| {
        *net_of_pre_input.entry(node).or_insert_with(|| nl.input())
    });
    // Tie each post-graph input back to its pre-graph original through the
    // pass's map: map[p] = e means pre node p ≡ post edge e, so a post
    // input node is driven by the (possibly inverted) shared net.
    let mut post_input_src: HashMap<u32, (Net, bool)> = HashMap::new();
    for (&p, &net) in &net_of_pre_input {
        if let Some(e) = map.get(&p) {
            if matches!(post.node(*e), AigNode::Input) {
                post_input_src.insert(e.node(), (net, e.is_compl()));
            }
        }
    }
    let post_nets = lower(post, post_roots, &mut nl, &mut |nl, node| {
        let (net, inverted) = *post_input_src
            .get(&node)
            .expect("post-graph input has a pre-image through the pass map");
        if inverted {
            nl.not(net)
        } else {
            net
        }
    });
    // The miter: every root pair agrees.
    let mut prop = nl.constant(true);
    for (a, b) in pre_nets.iter().zip(&post_nets) {
        let ne = nl.xor(*a, *b);
        let eq = nl.not(ne);
        prop = nl.and(prop, eq);
    }
    let result = if width <= AUTO_SAT_CROSSOVER_WIDTH {
        prove_net_bdd(&nl, prop, &[])
    } else {
        prove_net_sat(&nl, prop)
    };
    match result {
        ProveResult::Proved { .. } => Ok(()),
        ProveResult::Counterexample { inputs, .. } => {
            let mut assignment: Vec<(u32, bool)> = net_of_pre_input
                .iter()
                .map(|(&node, net)| (node, inputs.get(net).copied().unwrap_or(false)))
                .collect();
            assignment.sort_unstable();
            Err(CertFailure { pass: "", inputs: assignment })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AIG_TRUE;

    /// pre: or(x, y); post built as ¬(¬x ∧ ¬y) — equal functions.
    fn equal_pair() -> (Aig, Vec<AigRef>, Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        let mut pre = Aig::new();
        let x = pre.input();
        let y = pre.input();
        let pr = pre.or(x, y);
        let mut post = Aig::new();
        let px = post.input();
        let py = post.input();
        let inner = post.and(!px, !py);
        let map = HashMap::from([(x.node(), px), (y.node(), py)]);
        (pre, vec![pr], post, vec![!inner], map)
    }

    #[test]
    fn equivalent_rebuild_certifies_on_both_engines() {
        let (pre, pre_r, post, post_r, map) = equal_pair();
        // Width 2 → BDD engine; width 8 → SAT engine.
        certify(&pre, &pre_r, &post, &post_r, &map, 2).expect("BDD certifies");
        certify(&pre, &pre_r, &post, &post_r, &map, 8).expect("SAT certifies");
    }

    #[test]
    fn miscompiled_rebuild_is_rejected_with_a_real_counterexample() {
        // pre: x ∧ y; "post": x ∨ y. Differs whenever exactly one is set.
        let mut pre = Aig::new();
        let x = pre.input();
        let y = pre.input();
        let pr = pre.and(x, y);
        let mut post = Aig::new();
        let px = post.input();
        let py = post.input();
        let qr = post.or(px, py);
        let map = HashMap::from([(x.node(), px), (y.node(), py)]);
        for width in [2, 8] {
            let err = certify(&pre, &[pr], &post, &[qr], &map, width)
                .expect_err("and vs or must be caught")
                .for_pass("unit-test");
            assert_eq!(err.pass, "unit-test");
            let a: HashMap<u32, bool> = err.inputs.iter().copied().collect();
            let vx = a[&x.node()];
            let vy = a[&y.node()];
            assert_ne!(vx && vy, vx || vy, "cex must separate and from or: {err}");
        }
    }

    #[test]
    fn inverted_input_maps_are_honoured() {
        // A (hypothetical) pass that maps pre input x to ¬x' is still
        // certified correctly as long as the map says so.
        let mut pre = Aig::new();
        let x = pre.input();
        let y = pre.input();
        let pr = pre.and(x, y);
        let mut post = Aig::new();
        let px = post.input();
        let py = post.input();
        let qr = post.and(!px, py); // ¬x' ∧ y with x ≡ ¬x'
        let map = HashMap::from([(x.node(), !px), (y.node(), py)]);
        certify(&pre, &[pr], &post, &[qr], &map, 2).expect("inverted map certifies");
    }

    #[test]
    fn constant_roots_certify() {
        let pre = Aig::new();
        let post = Aig::new();
        certify(&pre, &[AIG_TRUE], &post, &[AIG_TRUE], &HashMap::new(), 2)
            .expect("constant roots");
    }
}
