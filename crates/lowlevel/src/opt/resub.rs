//! Cut-based resubstitution: functional matching over small cuts.
//!
//! Structural hashing only merges nodes that are built identically;
//! rewriting and balancing only merge shapes they were taught. This pass
//! catches the rest *semantically*, for functions narrow enough to
//! tabulate: it enumerates ≤4-leaf cuts bottom-up (the classic k-feasible
//! cut enumeration), computes each cut's 16-row truth table, and keeps a
//! table keyed by the canonicalised `(sorted leaves, truth table)` pair.
//! When a freshly built node's cut computes a function some older node
//! already provides over the same leaves, the new node is replaced by that
//! older edge and the rebuild's orphan sweep collects it — cut sweeping,
//! i.e. SAT-free fraiging for tabulatable cones.
//!
//! Truth tables are canonicalised by complementing until the all-zeros row
//! is 0, so a node and its complement match the same table entry and the
//! replacement edge carries the complement back out.

use super::Pass;
use crate::aig::{Aig, AigRef};
use std::collections::HashMap;

/// Leaf cap per cut: 4 leaves → 16-row tables in a `u16`.
const MAX_LEAVES: usize = 4;
/// Cut cap per node (the trivial cut included), keeping enumeration linear
/// in practice.
const MAX_CUTS: usize = 8;

/// A cut: sorted leaf node ids plus the function of the node over them.
///
/// The table is always expanded over 4 variable positions (leaf `i` is
/// variable `i`); unused positions are replicated, so equal functions over
/// equal leaf vectors produce bit-identical tables.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Cut {
    leaves: Vec<u32>,
    tt: u16,
}

/// The truth table of variable `pos` of 4 (0xAAAA is `pos == 0`).
fn var_tt(pos: usize) -> u16 {
    const VARS: [u16; 4] = [0xAAAA, 0xCCCC, 0xF0F0, 0xFF00];
    VARS[pos]
}

impl Cut {
    fn trivial(node: u32) -> Cut {
        Cut { leaves: vec![node], tt: var_tt(0) }
    }

    /// Re-expands this cut's table over a merged leaf vector that contains
    /// every leaf of this cut.
    fn expand(&self, merged: &[u32]) -> u16 {
        let mut tt = 0u16;
        for row in 0..16u16 {
            // The row of `self.tt` this merged row projects to.
            let mut sub = 0u16;
            for (i, l) in self.leaves.iter().enumerate() {
                let pos = merged.iter().position(|m| m == l).expect("superset");
                if row >> pos & 1 == 1 {
                    sub |= 1 << i;
                }
            }
            if self.tt >> sub & 1 == 1 {
                tt |= 1 << row;
            }
        }
        tt
    }
}

/// Canonicalises a table: the all-zeros row must evaluate to 0. Returns
/// the canonical table and whether it was complemented.
fn canon(tt: u16) -> (u16, bool) {
    if tt & 1 == 1 {
        (!tt, true)
    } else {
        (tt, false)
    }
}

/// The resubstitution pass.
#[derive(Default)]
pub struct Resub;

struct CutDb {
    /// Cuts per new-graph node id.
    cuts: Vec<Vec<Cut>>,
    /// Canonical `(leaves, tt)` → the (canonical-polarity) edge that first
    /// computed it. First writer wins, so entries always point at older
    /// nodes — replacements can never create a cycle.
    table: HashMap<(Vec<u32>, u16), AigRef>,
}

impl CutDb {
    fn new() -> CutDb {
        CutDb { cuts: vec![Vec::new()], table: HashMap::new() }
    }

    fn cuts_of(&self, node: u32) -> Vec<Cut> {
        match self.cuts.get(node as usize) {
            Some(c) if !c.is_empty() => c.clone(),
            _ => vec![Cut::trivial(node)],
        }
    }

    /// Enumerates the cuts of a fresh AND node over already-registered
    /// children: the full cross product of the children's cuts, pruned to
    /// the [`MAX_CUTS`] smallest (fewest leaves first — small cuts are the
    /// ones that match), with the trivial cut always kept.
    fn enumerate(&self, node: u32, x: AigRef, y: AigRef) -> Vec<Cut> {
        let mut found: Vec<Cut> = Vec::new();
        for cx in self.cuts_of(x.node()) {
            for cy in self.cuts_of(y.node()) {
                let mut merged: Vec<u32> = cx.leaves.clone();
                for l in &cy.leaves {
                    if !merged.contains(l) {
                        merged.push(*l);
                    }
                }
                if merged.len() > MAX_LEAVES {
                    continue;
                }
                merged.sort_unstable();
                let mut tx = cx.expand(&merged);
                let mut ty = cy.expand(&merged);
                if x.is_compl() {
                    tx = !tx;
                }
                if y.is_compl() {
                    ty = !ty;
                }
                let cut = Cut { leaves: merged, tt: tx & ty };
                if !found.contains(&cut) {
                    found.push(cut);
                }
            }
        }
        found.sort_by(|a, b| {
            (a.leaves.len(), &a.leaves, a.tt).cmp(&(b.leaves.len(), &b.leaves, b.tt))
        });
        found.truncate(MAX_CUTS - 1);
        let mut out = vec![Cut::trivial(node)];
        out.extend(found);
        out
    }

    /// Finds an older edge computing `cut`'s function (complement-aware).
    fn lookup(&self, cut: &Cut) -> Option<AigRef> {
        let (ctt, flip) = canon(cut.tt);
        let e = *self.table.get(&(cut.leaves.clone(), ctt))?;
        Some(if flip { !e } else { e })
    }

    /// Registers a node's cuts as providers of their functions.
    fn register(&mut self, node: u32, cuts: Vec<Cut>) {
        for cut in &cuts {
            let (ctt, flip) = canon(cut.tt);
            let edge = AigRef::from_node(node);
            let edge = if flip { !edge } else { edge };
            self.table.entry((cut.leaves.clone(), ctt)).or_insert(edge);
        }
        if self.cuts.len() <= node as usize {
            self.cuts.resize(node as usize + 1, Vec::new());
        }
        self.cuts[node as usize] = cuts;
    }

}

impl Pass for Resub {
    fn name(&self) -> &'static str {
        "resub"
    }

    fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        let mut db = CutDb::new();
        aig.rebuild_with(roots, |out, _, ex, ey, _| {
            let before = out.len();
            let r = out.and(ex, ey);
            if out.len() == before {
                // Folded or strashed into an existing node: nothing new to
                // match (and its cuts, if any, are already registered).
                return r;
            }
            // Fresh node: if any of its cuts recomputes a function an
            // older node already provides, use that node instead — the
            // fresh one is left orphaned for the sweep.
            let (cx, cy) = out.and_children(r).expect("fresh node is an AND");
            let cuts = db.enumerate(r.node(), cx, cy);
            for cut in cuts.iter().skip(1) {
                if let Some(e) = db.lookup(cut) {
                    if e.node() != r.node() {
                        return e;
                    }
                }
            }
            db.register(r.node(), cuts);
            r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(
        g: &Aig,
        root: AigRef,
        out: &Aig,
        new_root: AigRef,
        map: &HashMap<u32, AigRef>,
    ) {
        let n_inputs = g.input_count() as u32;
        assert!(n_inputs <= 8);
        let inv: HashMap<u32, u32> = (1..=n_inputs)
            .filter_map(|i| map.get(&i).map(|e| (e.node(), i)))
            .collect();
        for bits in 0..1u32 << n_inputs {
            let want = g.eval(root, &|n| bits >> (n - 1) & 1 == 1);
            let got = out.eval(new_root, &|n| bits >> (inv[&n] - 1) & 1 == 1);
            assert_eq!(got, want, "assignment {bits:08b}");
        }
    }

    #[test]
    fn truth_table_expansion() {
        // x0 ∧ x1 over leaves [1,2], expanded over [1,2,3], is still
        // independent of x2.
        let c = Cut { leaves: vec![1, 2], tt: var_tt(0) & var_tt(1) };
        let e = c.expand(&[1, 2, 3]);
        assert_eq!(e, var_tt(0) & var_tt(1));
        // And expansion respects positions: x0 over [2] placed into
        // [1, 2] becomes variable 1.
        let c2 = Cut { leaves: vec![2], tt: var_tt(0) };
        assert_eq!(c2.expand(&[1, 2]), var_tt(1));
    }

    #[test]
    fn majority_built_two_ways_merges() {
        // maj(a,b,c) as ab∨ac∨bc, and again as (a∧(b∨c))∨(b∧c): same
        // 3-leaf function, different structures; strash and the local
        // rules miss it, the truth-table match must not.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let ac = g.and(a, c);
        let bc = g.and(b, c);
        let m1 = {
            let o1 = g.or(ab, ac);
            g.or(o1, bc)
        };
        let m2 = {
            let boc = g.or(b, c);
            let a_boc = g.and(a, boc);
            g.or(a_boc, bc)
        };
        let root = g.xor(m1, m2); // should optimize toward constant false
        let n0 = g.and_count();
        let (out, roots, map) = Resub.run(&g, &[root]);
        assert!(out.and_count() < n0, "{n0} -> {}", out.and_count());
        assert_equivalent(&g, root, &out, roots[0], &map);
        // The two majority cones merged, so the xor cancels structurally.
        assert_eq!(roots[0], crate::aig::AIG_FALSE, "{out:?}");
    }

    #[test]
    fn complement_aware_matching() {
        // ¬(a∧b) rebuilt as ¬a∨¬b: the second build's top is the
        // complement of the first's — one node, complement edge.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let n1 = {
            let t = g.and(a, b);
            !t
        };
        // Build ¬a∨¬b *without* letting strash see and(a,b): or(x,y) is
        // ¬(¬x∧¬y), i.e. ¬(a∧b) again structurally — so instead check a
        // genuinely different shape: (¬a∧¬b)∨(¬a∧b)∨(a∧¬b) = ¬(a∧b).
        let t1 = g.and(!a, !b);
        let t2 = g.and(!a, b);
        let t3 = g.and(a, !b);
        let n2 = {
            let o = g.or(t1, t2);
            g.or(o, t3)
        };
        let root = g.xor(n1, n2);
        let (out, roots, map) = Resub.run(&g, &[root]);
        assert_eq!(roots[0], crate::aig::AIG_FALSE, "{out:?}");
        assert_equivalent(&g, root, &out, roots[0], &map);
    }

    #[test]
    fn respects_leaf_cap() {
        // A 6-input cone has no ≤4-leaf cut at its top; the pass must
        // still terminate and preserve the function.
        let mut g = Aig::new();
        let ins: Vec<AigRef> = (0..6).map(|_| g.input()).collect();
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = g.xor(acc, i);
        }
        let (out, roots, map) = Resub.run(&g, &[acc]);
        assert_equivalent(&g, acc, &out, roots[0], &map);
    }
}
