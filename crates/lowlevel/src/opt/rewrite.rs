//! Strash-aware local rewriting: 3-input extensions of the
//! Brummayer–Biere rules.
//!
//! [`crate::aig::Aig::and`] already folds the one- and two-level shapes at
//! construction time (constants, idempotence, contradiction, subsumption,
//! `¬(x∧y)∧x = x∧¬y`). What it deliberately does *not* do is look across
//! three distinct inputs — those rewrites can cascade, so they belong in a
//! fixpoint pass, not the front-end's hot path. This pass replays every
//! AND of the cone and additionally applies, for `a ∧ b` with AND/NAND
//! children over grandchildren `x,y,u,v`:
//!
//! * **R1 shared-child absorption** — `(x∧y) ∧ (x∧v)  =  (x∧y) ∧ v`
//!   (the second conjunct's `x` is already guaranteed; the narrowed AND
//!   often folds further or strashes into an existing node);
//! * **R2 NAND narrowing** — `(x∧y) ∧ ¬(x∧v)  =  (x∧y) ∧ ¬v`
//!   (under `x∧y`, `x` holds, so `x∧v` reduces to `v`);
//! * **R3 NAND discharge** — `(x∧y) ∧ ¬(u∧v)  =  x∧y` when `u` or `v` is
//!   the complement of `x` or `y` (the NAND is already true);
//! * **R4 resolution** — `¬(x∧y) ∧ ¬(x∧¬y)  =  ¬x`
//!   (the two NANDs resolve on `y`).
//!
//! All four shrink or keep the node count; cascades (a narrowed AND
//! matching another rule) go back through the same front-end. The
//! rebuild's orphan sweep collects the bypassed NAND/AND children.

use super::Pass;
use crate::aig::{Aig, AigRef};
use std::collections::HashMap;

/// The 3-input rewriting pass.
pub struct Rewrite;

/// One rewriting attempt for `a ∧ b`, trying the asymmetric rules with the
/// operands in this order (the caller tries both orders).
fn try_rules(out: &mut Aig, a: AigRef, b: AigRef) -> Option<AigRef> {
    // R1/R3/R2 need `a` to be a plain AND.
    if let Some((x, y)) = out.and_children(a) {
        if let Some((u, v)) = out.and_children(b) {
            // R1: shared child — drop it from the second conjunct.
            if u == x || u == y {
                return Some(rewrite_and(out, a, v));
            }
            if v == x || v == y {
                return Some(rewrite_and(out, a, u));
            }
        }
        if b.is_compl() {
            if let Some((u, v)) = out.and_children(!b) {
                // R3: the NAND holds whenever `a` does.
                if u == !x || u == !y || v == !x || v == !y {
                    return Some(a);
                }
                // R2: narrow the NAND by the grandchild `a` guarantees.
                if u == x || u == y {
                    return Some(rewrite_and(out, a, !v));
                }
                if v == x || v == y {
                    return Some(rewrite_and(out, a, !u));
                }
            }
        }
    }
    // R4: resolution across two NANDs sharing one child, with the other
    // children complementary.
    if a.is_compl() && b.is_compl() {
        if let (Some((x, y)), Some((u, v))) =
            (out.and_children(!a), out.and_children(!b))
        {
            if (x == u && y == !v) || (x == v && y == !u) {
                return Some(!x);
            }
            if (y == u && x == !v) || (y == v && x == !u) {
                return Some(!y);
            }
        }
    }
    None
}

/// `and` with the 3-input rules layered over the construction front-end.
fn rewrite_and(out: &mut Aig, a: AigRef, b: AigRef) -> AigRef {
    if let Some(r) = try_rules(out, a, b) {
        return r;
    }
    if let Some(r) = try_rules(out, b, a) {
        return r;
    }
    out.and(a, b)
}

impl Pass for Rewrite {
    fn name(&self) -> &'static str {
        "rewrite"
    }

    fn run(&self, aig: &Aig, roots: &[AigRef]) -> (Aig, Vec<AigRef>, HashMap<u32, AigRef>) {
        aig.rebuild_with(roots, |out, _, ex, ey, _| rewrite_and(out, ex, ey))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::AIG_TRUE;

    /// Exhaustively checks that the pass preserved the function of `root`
    /// over the graph's (≤ 8) inputs, following inputs through the map.
    fn assert_equivalent(g: &Aig, root: AigRef, out: &Aig, new_root: AigRef, map: &HashMap<u32, AigRef>) {
        let n_inputs = g.input_count() as u32;
        assert!(n_inputs <= 8);
        let inv: HashMap<u32, u32> = (1..=n_inputs)
            .filter_map(|i| map.get(&i).map(|e| (e.node(), i)))
            .collect();
        for bits in 0..1u32 << n_inputs {
            let want = g.eval(root, &|n| bits >> (n - 1) & 1 == 1);
            let got = out.eval(new_root, &|n| bits >> (inv[&n] - 1) & 1 == 1);
            assert_eq!(got, want, "assignment {bits:08b}");
        }
    }

    #[test]
    fn r1_shared_child_absorption() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let v = g.input();
        let xy = g.and(x, y);
        let xv = g.and(x, v);
        let root = g.and(xy, xv); // x∧y∧v as three ANDs
        assert_eq!(g.and_count(), 3);
        let (out, roots, map) = Rewrite.run(&g, &[root]);
        assert_eq!(out.and_count(), 2, "one AND absorbed: {out:?}");
        assert_equivalent(&g, root, &out, roots[0], &map);
    }

    #[test]
    fn r2_nand_narrowing() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let v = g.input();
        let xy = g.and(x, y);
        let xv = g.and(x, v);
        let root = g.and(xy, !xv); // (x∧y)∧¬(x∧v) = x∧y∧¬v
        let (out, roots, map) = Rewrite.run(&g, &[root]);
        assert_eq!(out.and_count(), 2, "NAND narrowed to a literal: {out:?}");
        assert_equivalent(&g, root, &out, roots[0], &map);
    }

    #[test]
    fn r3_nand_discharge() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let v = g.input();
        let nxv = {
            let t = g.and(!x, v);
            !t
        };
        let xy = g.and(x, y);
        let root = g.and(xy, nxv); // ¬(¬x∧v) is implied by x
        let (out, roots, map) = Rewrite.run(&g, &[root]);
        assert_eq!(out.and_count(), 1, "NAND discharged: {out:?}");
        assert_equivalent(&g, root, &out, roots[0], &map);
    }

    #[test]
    fn r4_resolution() {
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let xy = g.and(x, y);
        let xny = g.and(x, !y);
        let root = g.and(!xy, !xny); // resolves to ¬x
        let (out, roots, map) = Rewrite.run(&g, &[root]);
        assert_eq!(out.and_count(), 0, "resolved to a literal: {out:?}");
        let nx = map.get(&x.node()).copied().expect("x survives");
        assert_eq!(roots[0], !nx);
        assert_equivalent(&g, root, &out, roots[0], &map);
    }

    #[test]
    fn rewrites_cascade_through_the_front_end() {
        // R1's narrowed conjunct hits the front-end idempotence rule:
        // (x∧y)∧(y∧x) is subsumption (already handled), so use
        // (x∧y)∧(x∧y') chains: ((x∧y)∧(x∧v))∧(x∧w) collapses stepwise.
        let mut g = Aig::new();
        let x = g.input();
        let y = g.input();
        let v = g.input();
        let w = g.input();
        let xy = g.and(x, y);
        let xv = g.and(x, v);
        let xw = g.and(x, w);
        let t = g.and(xy, xv);
        let root = g.and(t, xw);
        let (out, roots, map) = Rewrite.run(&g, &[root]);
        assert!(out.and_count() < g.and_count());
        assert_equivalent(&g, root, &out, roots[0], &map);
        let _ = AIG_TRUE;
    }
}
