//! Bit-blasting: lowering elaborated (fixed-width) driver expressions to
//! single-bit operations over an abstract bit kit.
//!
//! The same blaster serves two back-ends: the [`crate::bdd`] manager (for
//! the per-width formal-verification baseline) and the gate netlist (for
//! gate counts and gate-level simulation). This is exactly the "flatten
//! everything" low-level path the paper contrasts with its parametric
//! verification.

use chicala_bigint::BigInt;
use chicala_chisel::{BinaryOp, ElabModule, Expr, PExpr, SignalRef, UnaryOp};
use std::collections::BTreeMap;
use std::fmt;

/// An abstract single-bit logic builder.
pub trait BitKit {
    /// A single-bit signal.
    type Bit: Clone;

    /// The constant bit.
    fn constant(&mut self, v: bool) -> Self::Bit;
    /// Conjunction.
    fn and(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit;
    /// Disjunction.
    fn or(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit;
    /// Exclusive or.
    fn xor(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit;
    /// Negation.
    fn not(&mut self, a: Self::Bit) -> Self::Bit;

    /// Multiplexer (`c ? t : f`), default composition.
    fn mux(&mut self, c: Self::Bit, t: Self::Bit, f: Self::Bit) -> Self::Bit {
        let ct = self.and(c.clone(), t);
        let nc = self.not(c);
        let cf = self.and(nc, f);
        self.or(ct, cf)
    }

    /// Full adder returning `(sum, carry)`.
    fn full_add(&mut self, a: Self::Bit, b: Self::Bit, cin: Self::Bit) -> (Self::Bit, Self::Bit) {
        let axb = self.xor(a.clone(), b.clone());
        let sum = self.xor(axb.clone(), cin.clone());
        let ab = self.and(a, b);
        let axb_cin = self.and(axb, cin);
        let carry = self.or(ab, axb_cin);
        (sum, carry)
    }

    /// Current size of the kit's structure (gate count, BDD node count) —
    /// reported to telemetry by [`crate::unroll`]. `None` for kits without
    /// a meaningful size.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// A word: little-endian bits with a signedness tag (mirroring the
/// interpreter's `TypedValue`).
#[derive(Clone, Debug)]
pub struct Word<B> {
    /// Bits, least significant first.
    pub bits: Vec<B>,
    /// Two's-complement interpretation flag.
    pub signed: bool,
}

impl<B: Clone> Word<B> {
    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Errors raised while blasting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlastError {
    /// Reference to an unknown signal.
    UnknownSignal(String),
    /// A construct survived elaboration that should not have.
    Unsupported(String),
    /// Combinational cycle.
    CombLoop(String),
}

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlastError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            BlastError::Unsupported(m) => write!(f, "unsupported in bit-blasting: {m}"),
            BlastError::CombLoop(n) => write!(f, "combinational loop through `{n}`"),
        }
    }
}

impl std::error::Error for BlastError {}

/// Blasts expressions of one elaborated module, with signal words supplied
/// by the environment (inputs and register states as fresh kit bits).
pub struct Blaster<'m, K: BitKit> {
    module: &'m ElabModule,
    /// Resolved signal words (inputs, registers, and memoised wires).
    pub env: BTreeMap<String, Word<K::Bit>>,
    visiting: Vec<String>,
}

impl<'m, K: BitKit> Blaster<'m, K> {
    /// Creates a blaster over `module` with the given leaf signals
    /// (inputs and current register values).
    pub fn new(module: &'m ElabModule, leaves: BTreeMap<String, Word<K::Bit>>) -> Self {
        Blaster { module, env: leaves, visiting: Vec::new() }
    }

    fn pexpr_u64(&self, p: &PExpr) -> Result<i64, BlastError> {
        p.eval(&self.module.bindings)
            .map_err(|e| BlastError::Unsupported(format!("parameter: {e}")))
    }

    /// The word of a signal, blasting its driver on demand.
    pub fn signal(&mut self, kit: &mut K, name: &str) -> Result<Word<K::Bit>, BlastError> {
        if let Some(w) = self.env.get(name) {
            return Ok(w.clone());
        }
        if self.visiting.iter().any(|v| v == name) {
            return Err(BlastError::CombLoop(name.to_string()));
        }
        let sig = self
            .module
            .signal(name)
            .ok_or_else(|| BlastError::UnknownSignal(name.to_string()))?
            .clone();
        let driver = self
            .module
            .drivers
            .get(name)
            .ok_or_else(|| BlastError::UnknownSignal(name.to_string()))?
            .clone();
        self.visiting.push(name.to_string());
        let w = self.expr(kit, &driver)?;
        self.visiting.pop();
        let clamped = clamp(kit, &w, sig.width as usize, sig.signed);
        self.env.insert(name.to_string(), clamped.clone());
        Ok(clamped)
    }

    /// Blasts an expression to a word.
    pub fn expr(&mut self, kit: &mut K, e: &Expr) -> Result<Word<K::Bit>, BlastError> {
        Ok(match e {
            Expr::LitU { value, width } => {
                let v = BigInt::from(self.pexpr_u64(value)?);
                let w = match width {
                    Some(w) => self.pexpr_u64(w)? as usize,
                    None => v.bit_len().max(1) as usize,
                };
                constant_word(kit, &v, w, false)
            }
            Expr::LitS { value, width } => {
                let v = BigInt::from(self.pexpr_u64(value)?);
                let w = match width {
                    Some(w) => self.pexpr_u64(w)? as usize,
                    None => (v.abs().bit_len() + 1) as usize,
                };
                constant_word(kit, &v, w, true)
            }
            Expr::LitB(b) => {
                let bit = kit.constant(*b);
                Word { bits: vec![bit], signed: false }
            }
            Expr::Ref(SignalRef { base, path }) => {
                debug_assert!(path.is_empty(), "paths resolved during elaboration");
                self.signal(kit, base)?
            }
            Expr::Unop(op, a) => {
                let a = self.expr(kit, a)?;
                self.unop(kit, *op, a)
            }
            Expr::Binop(op, a, b) => {
                let a = self.expr(kit, a)?;
                let b = self.expr(kit, b)?;
                self.binop(kit, *op, a, b)?
            }
            Expr::Mux(c, t, f) => {
                let c = self.expr(kit, c)?;
                let t = self.expr(kit, t)?;
                let f = self.expr(kit, f)?;
                let cbit = reduce_or(kit, &c);
                let w = t.width().max(f.width());
                let signed = t.signed && f.signed;
                let te = extend(kit, &t, w);
                let fe = extend(kit, &f, w);
                let bits = te
                    .bits
                    .into_iter()
                    .zip(fe.bits)
                    .map(|(tb, fb)| kit.mux(cbit.clone(), tb, fb))
                    .collect();
                Word { bits, signed }
            }
            Expr::Extract { arg, hi, lo } => {
                let a = self.expr(kit, arg)?;
                let (hi, lo) = (self.pexpr_u64(hi)? as usize, self.pexpr_u64(lo)? as usize);
                let mut bits = Vec::new();
                for i in lo..=hi {
                    bits.push(if i < a.width() {
                        a.bits[i].clone()
                    } else {
                        kit.constant(false)
                    });
                }
                Word { bits, signed: false }
            }
            Expr::BitAt { arg, index } => {
                let a = self.expr(kit, arg)?;
                let idx = self.expr(kit, index)?;
                // Mux chain over positions.
                let mut acc = kit.constant(false);
                for (i, bit) in a.bits.iter().enumerate() {
                    let isel = equals_const(kit, &idx, i as u64);
                    let picked = kit.and(isel, bit.clone());
                    acc = kit.or(acc, picked);
                }
                Word { bits: vec![acc], signed: false }
            }
            Expr::ShlP { arg, amount } => {
                let a = self.expr(kit, arg)?;
                let k = self.pexpr_u64(amount)? as usize;
                let mut bits = vec![kit.constant(false); k];
                bits.extend(a.bits.iter().cloned());
                Word { bits, signed: a.signed }
            }
            Expr::ShrP { arg, amount } => {
                let a = self.expr(kit, arg)?;
                let k = self.pexpr_u64(amount)? as usize;
                if a.signed {
                    let sign = a.bits.last().cloned().unwrap_or_else(|| kit.constant(false));
                    let mut bits: Vec<K::Bit> = a.bits.iter().skip(k).cloned().collect();
                    while bits.len() < a.width() {
                        bits.push(sign.clone());
                    }
                    Word { bits, signed: true }
                } else {
                    let w = a.width().saturating_sub(k).max(1);
                    let mut bits: Vec<K::Bit> = a.bits.iter().skip(k).cloned().collect();
                    while bits.len() < w {
                        bits.push(kit.constant(false));
                    }
                    Word { bits, signed: false }
                }
            }
            Expr::Fill { times, arg } => {
                let a = self.expr(kit, arg)?;
                let n = self.pexpr_u64(times)? as usize;
                let mut bits = Vec::with_capacity(n * a.width());
                for _ in 0..n {
                    bits.extend(a.bits.iter().cloned());
                }
                if bits.is_empty() {
                    bits.push(kit.constant(false));
                }
                Word { bits, signed: false }
            }
            Expr::Call { func, .. } => {
                return Err(BlastError::Unsupported(format!("residual call to `{func}`")))
            }
        })
    }

    fn unop(&mut self, kit: &mut K, op: UnaryOp, a: Word<K::Bit>) -> Word<K::Bit> {
        match op {
            UnaryOp::Not => {
                let bits = a.bits.iter().map(|b| kit.not(b.clone())).collect();
                Word { bits, signed: a.signed }
            }
            UnaryOp::LogicNot => {
                let r = reduce_or(kit, &a);
                let n = kit.not(r);
                Word { bits: vec![n], signed: false }
            }
            UnaryOp::Neg => {
                // Two's complement: ~a + 1, same width.
                let inv: Vec<K::Bit> = a.bits.iter().map(|b| kit.not(b.clone())).collect();
                let one = constant_word(kit, &BigInt::one(), a.width(), false);
                let sum = add_words(kit, &Word { bits: inv, signed: false }, &one, a.width());
                Word { bits: sum.bits, signed: a.signed }
            }
            UnaryOp::OrR => {
                let r = reduce_or(kit, &a);
                Word { bits: vec![r], signed: false }
            }
            UnaryOp::AndR => {
                let mut acc = kit.constant(true);
                for b in &a.bits {
                    acc = kit.and(acc, b.clone());
                }
                Word { bits: vec![acc], signed: false }
            }
            UnaryOp::XorR => {
                let mut acc = kit.constant(false);
                for b in &a.bits {
                    acc = kit.xor(acc, b.clone());
                }
                Word { bits: vec![acc], signed: false }
            }
            UnaryOp::AsUInt => Word { bits: a.bits, signed: false },
            UnaryOp::AsSInt => Word { bits: a.bits, signed: true },
            UnaryOp::AsBool => {
                let r = reduce_or(kit, &a);
                Word { bits: vec![r], signed: false }
            }
        }
    }

    fn binop(
        &mut self,
        kit: &mut K,
        op: BinaryOp,
        a: Word<K::Bit>,
        b: Word<K::Bit>,
    ) -> Result<Word<K::Bit>, BlastError> {
        let wmax = a.width().max(b.width());
        let signed = a.signed && b.signed;
        Ok(match op {
            BinaryOp::Add => add_words(kit, &a, &b, wmax),
            BinaryOp::Sub => {
                let be = extend(kit, &b, wmax);
                let inv: Vec<K::Bit> = be.bits.iter().map(|x| kit.not(x.clone())).collect();
                let ae = extend(kit, &a, wmax);
                let mut carry = kit.constant(true);
                let mut bits = Vec::with_capacity(wmax);
                for (i, nb) in inv.iter().enumerate().take(wmax) {
                    let (s, c) = kit.full_add(ae.bits[i].clone(), nb.clone(), carry);
                    bits.push(s);
                    carry = c;
                }
                Word { bits, signed }
            }
            BinaryOp::Mul => {
                let w = a.width() + b.width();
                let ae = extend_to(kit, &a, w, a.signed);
                let be = extend_to(kit, &b, w, b.signed);
                let mut acc = constant_word(kit, &BigInt::zero(), w, false);
                for i in 0..w {
                    // acc += (b[i] ? a << i : 0)
                    let sel = be.bits[i].clone();
                    let mut partial = vec![kit.constant(false); i];
                    for j in 0..(w - i) {
                        let gated = kit.and(sel.clone(), ae.bits[j].clone());
                        partial.push(gated);
                    }
                    let pw = Word { bits: partial, signed: false };
                    acc = add_words(kit, &acc, &pw, w);
                }
                Word { bits: acc.bits, signed }
            }
            BinaryOp::Div | BinaryOp::Rem => {
                if a.signed || b.signed {
                    return Err(BlastError::Unsupported("signed division".into()));
                }
                let (q, r) = divide(kit, &a, &b);
                if op == BinaryOp::Div {
                    q
                } else {
                    let w = a.width().min(b.width());
                    Word { bits: r.bits.into_iter().take(w.max(1)).collect(), signed: false }
                }
            }
            BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => {
                let ae = extend(kit, &a, wmax);
                let be = extend(kit, &b, wmax);
                let bits = ae
                    .bits
                    .into_iter()
                    .zip(be.bits)
                    .map(|(x, y)| match op {
                        BinaryOp::And => kit.and(x, y),
                        BinaryOp::Or => kit.or(x, y),
                        _ => kit.xor(x, y),
                    })
                    .collect();
                Word { bits, signed }
            }
            BinaryOp::LogicAnd => {
                let x = reduce_or(kit, &a);
                let y = reduce_or(kit, &b);
                let r = kit.and(x, y);
                Word { bits: vec![r], signed: false }
            }
            BinaryOp::LogicOr => {
                let x = reduce_or(kit, &a);
                let y = reduce_or(kit, &b);
                let r = kit.or(x, y);
                Word { bits: vec![r], signed: false }
            }
            BinaryOp::Eq | BinaryOp::Neq => {
                let w = wmax.max(1);
                let ae = extend_to(kit, &a, w, a.signed);
                let be = extend_to(kit, &b, w, b.signed);
                let mut acc = kit.constant(true);
                for (x, y) in ae.bits.iter().zip(&be.bits) {
                    let eq = kit.xor(x.clone(), y.clone());
                    let eq = kit.not(eq);
                    acc = kit.and(acc, eq);
                }
                if op == BinaryOp::Neq {
                    acc = kit.not(acc);
                }
                Word { bits: vec![acc], signed: false }
            }
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                let (x, y) = match op {
                    BinaryOp::Lt | BinaryOp::Le => (&a, &b),
                    _ => (&b, &a),
                };
                let strict = matches!(op, BinaryOp::Lt | BinaryOp::Gt);
                let mixed_signed = a.signed && b.signed;
                let w = wmax + 1; // room for sign handling
                let xe = extend_to(kit, x, w, x.signed);
                let ye = extend_to(kit, y, w, y.signed);
                // x < y  via  x - y negative (two's complement, width w+1).
                let lt = less_than(kit, &xe, &ye, mixed_signed);
                let bit = if strict {
                    lt
                } else {
                    // x <= y  ==  !(y < x)
                    let gt = less_than_swapped(kit, &xe, &ye, mixed_signed);
                    kit.not(gt)
                };
                Word { bits: vec![bit], signed: false }
            }
            BinaryOp::Cat => {
                let mut bits = b.bits.clone();
                bits.extend(a.bits.iter().cloned());
                Word { bits, signed: false }
            }
            BinaryOp::Shl => {
                // Dynamic shift, truncated to the left operand's width.
                let w = a.width();
                let mut cur = a.clone();
                for (i, sel) in b.bits.iter().enumerate() {
                    let amount = 1usize << i.min(20);
                    let mut shifted_bits = vec![kit.constant(false); amount.min(w)];
                    shifted_bits
                        .extend(cur.bits.iter().take(w.saturating_sub(amount)).cloned());
                    while shifted_bits.len() < w {
                        shifted_bits.push(kit.constant(false));
                    }
                    let shifted = Word { bits: shifted_bits, signed: false };
                    let bits = shifted
                        .bits
                        .into_iter()
                        .zip(cur.bits.iter())
                        .map(|(s, c)| kit.mux(sel.clone(), s, c.clone()))
                        .collect();
                    cur = Word { bits, signed: a.signed };
                }
                cur
            }
            BinaryOp::Shr => {
                let w = a.width();
                let mut cur = a.clone();
                let fillbit = if a.signed {
                    a.bits.last().cloned().unwrap_or_else(|| kit.constant(false))
                } else {
                    kit.constant(false)
                };
                for (i, sel) in b.bits.iter().enumerate() {
                    let amount = 1usize << i.min(20);
                    let mut shifted_bits: Vec<K::Bit> =
                        cur.bits.iter().skip(amount.min(w)).cloned().collect();
                    while shifted_bits.len() < w {
                        shifted_bits.push(fillbit.clone());
                    }
                    let bits = shifted_bits
                        .into_iter()
                        .zip(cur.bits.iter())
                        .map(|(s, c)| kit.mux(sel.clone(), s, c.clone()))
                        .collect();
                    cur = Word { bits, signed: a.signed };
                }
                cur
            }
        })
    }
}

/// Zero-extends (or truncates) preserving the word's own signedness
/// (sign-extends signed words).
pub fn extend<K: BitKit>(kit: &mut K, w: &Word<K::Bit>, to: usize) -> Word<K::Bit> {
    extend_to(kit, w, to, w.signed)
}

fn extend_to<K: BitKit>(kit: &mut K, w: &Word<K::Bit>, to: usize, signed: bool) -> Word<K::Bit> {
    let mut bits: Vec<K::Bit> = w.bits.iter().take(to).cloned().collect();
    let fill = if signed && !w.bits.is_empty() {
        w.bits.last().expect("nonempty").clone()
    } else {
        kit.constant(false)
    };
    while bits.len() < to {
        bits.push(fill.clone());
    }
    Word { bits, signed: w.signed }
}

/// Builds a constant word (two's complement for negatives).
pub fn constant_word<K: BitKit>(
    kit: &mut K,
    v: &BigInt,
    width: usize,
    signed: bool,
) -> Word<K::Bit> {
    let raw = v.to_unsigned(width as u64);
    let bits = (0..width).map(|i| kit.constant(raw.bit(i as u64))).collect();
    Word { bits, signed }
}

/// OR-reduction of a word to one bit (the blaster's truthiness test).
pub fn reduce_or<K: BitKit>(kit: &mut K, w: &Word<K::Bit>) -> K::Bit {
    let mut acc = kit.constant(false);
    for b in &w.bits {
        acc = kit.or(acc, b.clone());
    }
    acc
}

fn equals_const<K: BitKit>(kit: &mut K, w: &Word<K::Bit>, v: u64) -> K::Bit {
    let mut acc = kit.constant(true);
    for (i, b) in w.bits.iter().enumerate() {
        let want = (v >> i.min(63)) & 1 == 1 && i < 64;
        let lit = if want {
            b.clone()
        } else {
            kit.not(b.clone())
        };
        acc = kit.and(acc, lit);
    }
    // Bits of v beyond the width must be zero for equality to hold.
    if w.bits.len() < 64 && (v >> w.bits.len()) != 0 {
        return kit.constant(false);
    }
    acc
}

/// Ripple-carry addition wrapped to `width` bits.
pub fn add_words<K: BitKit>(
    kit: &mut K,
    a: &Word<K::Bit>,
    b: &Word<K::Bit>,
    width: usize,
) -> Word<K::Bit> {
    let ae = extend(kit, a, width);
    let be = extend(kit, b, width);
    let mut carry = kit.constant(false);
    let mut bits = Vec::with_capacity(width);
    for i in 0..width {
        let (s, c) = kit.full_add(ae.bits[i].clone(), be.bits[i].clone(), carry);
        bits.push(s);
        carry = c;
    }
    Word { bits, signed: a.signed && b.signed }
}

/// Two's-complement subtraction at `max(width(a), width(b))`, mirroring
/// the blaster's `BinaryOp::Sub` construction gate for gate (so golden
/// recurrences built with it strash against blasted designs).
pub fn sub_words<K: BitKit>(kit: &mut K, a: &Word<K::Bit>, b: &Word<K::Bit>) -> Word<K::Bit> {
    let wmax = a.width().max(b.width());
    let signed = a.signed && b.signed;
    let be = extend(kit, b, wmax);
    let inv: Vec<K::Bit> = be.bits.iter().map(|x| kit.not(x.clone())).collect();
    let ae = extend(kit, a, wmax);
    let mut carry = kit.constant(true);
    let mut bits = Vec::with_capacity(wmax);
    for (i, nb) in inv.iter().enumerate().take(wmax) {
        let (s, c) = kit.full_add(ae.bits[i].clone(), nb.clone(), carry);
        bits.push(s);
        carry = c;
    }
    Word { bits, signed }
}

/// One-bit-condition multiplexer over whole words, mirroring the shape the
/// blaster builds for `Expr::Mux` (condition words reduce to one bit there;
/// constant-folding in the AIG front-end makes the two shapes identical).
pub fn mux_word<K: BitKit>(
    kit: &mut K,
    c: K::Bit,
    t: &Word<K::Bit>,
    f: &Word<K::Bit>,
) -> Word<K::Bit> {
    let w = t.width().max(f.width());
    let signed = t.signed && f.signed;
    let te = extend(kit, t, w);
    let fe = extend(kit, f, w);
    let bits = te
        .bits
        .into_iter()
        .zip(fe.bits)
        .map(|(tb, fb)| kit.mux(c.clone(), tb, fb))
        .collect();
    Word { bits, signed }
}

/// `a >= b` as a single bit, mirroring the blaster's `BinaryOp::Ge`
/// construction exactly (widen by one, compare via `!(a < b)`).
pub fn ge_words<K: BitKit>(kit: &mut K, a: &Word<K::Bit>, b: &Word<K::Bit>) -> K::Bit {
    let wmax = a.width().max(b.width());
    let mixed_signed = a.signed && b.signed;
    let w = wmax + 1;
    let xe = extend_to(kit, b, w, b.signed);
    let ye = extend_to(kit, a, w, a.signed);
    let gt = less_than(kit, &ye, &xe, mixed_signed);
    kit.not(gt)
}

/// `x < y` as a single bit via the sign of the widened subtraction — the
/// comparator the blaster emits for every relational operator.
pub fn less_than<K: BitKit>(kit: &mut K, x: &Word<K::Bit>, y: &Word<K::Bit>, signed: bool) -> K::Bit {
    // x < y  ==  sign(x - y) with width w+1 (already sign/zero extended).
    let w = x.width().max(y.width()) + 1;
    let xe = extend_to(kit, x, w, signed);
    let ye = extend_to(kit, y, w, signed);
    let inv: Vec<K::Bit> = ye.bits.iter().map(|b| kit.not(b.clone())).collect();
    let mut carry = kit.constant(true);
    let mut last = kit.constant(false);
    for (i, nb) in inv.iter().enumerate().take(w) {
        let (s, c) = kit.full_add(xe.bits[i].clone(), nb.clone(), carry);
        carry = c;
        last = s;
    }
    last
}

fn less_than_swapped<K: BitKit>(
    kit: &mut K,
    x: &Word<K::Bit>,
    y: &Word<K::Bit>,
    signed: bool,
) -> K::Bit {
    less_than(kit, y, x, signed)
}

/// Restoring divider returning `(quotient, remainder)`; division by zero
/// yields quotient 0 and remainder `a` (matching the interpreter).
pub fn divide<K: BitKit>(
    kit: &mut K,
    a: &Word<K::Bit>,
    b: &Word<K::Bit>,
) -> (Word<K::Bit>, Word<K::Bit>) {
    let w = a.width();
    let bw = b.width().max(1);
    let rw = bw + 1;
    let mut rem: Word<K::Bit> = Word { bits: vec![kit.constant(false); rw], signed: false };
    let mut quot = vec![kit.constant(false); w];
    let bz = {
        let r = reduce_or(kit, b);
        kit.not(r)
    };
    for i in (0..w).rev() {
        // rem = (rem << 1) | a[i]
        let mut bits = vec![a.bits[i].clone()];
        bits.extend(rem.bits.iter().take(rw - 1).cloned());
        rem = Word { bits, signed: false };
        // if rem >= b: rem -= b; q[i] = 1
        let be = extend(kit, b, rw);
        let ge = {
            let lt = less_than(kit, &rem, &be, false);
            kit.not(lt)
        };
        let diff = {
            let inv: Vec<K::Bit> = be.bits.iter().map(|x| kit.not(x.clone())).collect();
            let mut carry = kit.constant(true);
            let mut bits = Vec::with_capacity(rw);
            for (j, nb) in inv.iter().enumerate().take(rw) {
                let (s, c) = kit.full_add(rem.bits[j].clone(), nb.clone(), carry);
                bits.push(s);
                carry = c;
            }
            bits
        };
        let new_bits: Vec<K::Bit> = diff
            .into_iter()
            .zip(rem.bits.iter())
            .map(|(d, r)| kit.mux(ge.clone(), d, r.clone()))
            .collect();
        rem = Word { bits: new_bits, signed: false };
        let nbz = kit.not(bz.clone());
        quot[i] = kit.and(ge.clone(), nbz);
    }
    // Division by zero: quotient forced to 0 above; remainder forced to a.
    let rem_bits: Vec<K::Bit> = (0..rw)
        .map(|i| {
            let a_bit = if i < a.width() { a.bits[i].clone() } else { kit.constant(false) };
            kit.mux(bz.clone(), a_bit, rem.bits[i].clone())
        })
        .collect();
    (
        Word { bits: quot, signed: false },
        Word { bits: rem_bits, signed: false },
    )
}

/// Clamps a word to a signal's declared width and signedness.
pub fn clamp<K: BitKit>(kit: &mut K, w: &Word<K::Bit>, width: usize, signed: bool) -> Word<K::Bit> {
    let mut bits: Vec<K::Bit> = w.bits.iter().take(width).cloned().collect();
    let fill = if w.signed && !w.bits.is_empty() && w.width() < width {
        w.bits.last().expect("nonempty").clone()
    } else {
        kit.constant(false)
    };
    while bits.len() < width {
        bits.push(fill.clone());
    }
    Word { bits, signed }
}
