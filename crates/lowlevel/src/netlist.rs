//! A gate-level netlist: the [`crate::bitblast::BitKit`] back-end that
//! materialises gates, for gate counts (area proxy) and gate-level
//! simulation.

use crate::bitblast::BitKit;
use std::collections::HashMap;

/// A net index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(pub u32);

/// A gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Constant driver.
    Const(bool),
    /// Primary input (free bit).
    Input,
    /// Conjunction.
    And(Net, Net),
    /// Disjunction.
    Or(Net, Net),
    /// Exclusive or.
    Xor(Net, Net),
    /// Inverter.
    Not(Net),
}

/// A netlist builder with structural hashing.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    gates: Vec<Gate>,
    hash: HashMap<Gate, Net>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Netlist {
        Netlist::default()
    }

    /// Creates a fresh primary input.
    pub fn input(&mut self) -> Net {
        let n = Net(self.gates.len() as u32);
        self.gates.push(Gate::Input);
        n
    }

    fn mk(&mut self, g: Gate) -> Net {
        if let Some(&n) = self.hash.get(&g) {
            return n;
        }
        let n = Net(self.gates.len() as u32);
        self.gates.push(g);
        self.hash.insert(g, n);
        n
    }

    /// Total gates (constants and inputs included).
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// The gate driving a net.
    pub fn gate(&self, n: Net) -> Gate {
        self.gates[n.0 as usize]
    }

    /// Whether the netlist is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Count of logic gates only (excluding inputs/constants).
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input | Gate::Const(_)))
            .count()
    }

    /// Evaluates the whole netlist under the given input values (indexed
    /// by net id for `Input` gates).
    pub fn eval(&self, inputs: &dyn Fn(Net) -> bool) -> Vec<bool> {
        let mut values = Vec::with_capacity(self.gates.len());
        for (i, g) in self.gates.iter().enumerate() {
            let v = match g {
                Gate::Const(b) => *b,
                Gate::Input => inputs(Net(i as u32)),
                Gate::And(a, b) => values[a.0 as usize] && values[b.0 as usize],
                Gate::Or(a, b) => values[a.0 as usize] || values[b.0 as usize],
                Gate::Xor(a, b) => values[a.0 as usize] ^ values[b.0 as usize],
                Gate::Not(a) => !values[a.0 as usize],
            };
            values.push(v);
        }
        values
    }
}

impl BitKit for Netlist {
    type Bit = Net;

    fn constant(&mut self, v: bool) -> Net {
        self.mk(Gate::Const(v))
    }

    fn and(&mut self, a: Net, b: Net) -> Net {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(Gate::And(a, b))
    }

    fn or(&mut self, a: Net, b: Net) -> Net {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(Gate::Or(a, b))
    }

    fn xor(&mut self, a: Net, b: Net) -> Net {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.mk(Gate::Xor(a, b))
    }

    fn not(&mut self, a: Net) -> Net {
        self.mk(Gate::Not(a))
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.gate_count())
    }
}

/// The BDD manager as a bit kit (for per-width formal checking).
impl BitKit for crate::bdd::Bdd {
    type Bit = crate::bdd::Ref;

    fn constant(&mut self, v: bool) -> Self::Bit {
        crate::bdd::Bdd::constant(self, v)
    }

    fn and(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit {
        crate::bdd::Bdd::and(self, a, b)
    }

    fn or(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit {
        crate::bdd::Bdd::or(self, a, b)
    }

    fn xor(&mut self, a: Self::Bit, b: Self::Bit) -> Self::Bit {
        crate::bdd::Bdd::xor(self, a, b)
    }

    fn not(&mut self, a: Self::Bit) -> Self::Bit {
        crate::bdd::Bdd::not(self, a)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.node_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_hashing_shares_gates() {
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let x1 = n.and(a, b);
        let x2 = n.and(b, a); // commutative normalisation
        assert_eq!(x1, x2);
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn eval_full_adder() {
        use crate::bitblast::BitKit;
        let mut n = Netlist::new();
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let (s, co) = n.full_add(a, b, c);
        for bits in 0..8u32 {
            let vals = n.eval(&|net| match net {
                x if x == a => bits & 1 == 1,
                x if x == b => bits & 2 == 2,
                x if x == c => bits & 4 == 4,
                _ => false,
            });
            let total = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            assert_eq!(vals[s.0 as usize] as u32, total & 1);
            assert_eq!(vals[co.0 as usize] as u32, total >> 1);
        }
    }
}
