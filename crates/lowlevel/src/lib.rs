//! The low-level verification path the paper contrasts against: elaborated
//! designs are emitted as word-level Verilog ([`emit_verilog`], the
//! `#Verilog` column of Table 1), bit-blasted over an abstract bit kit
//! ([`bitblast`]), materialised as gate netlists ([`netlist`]) or reduced
//! ordered BDDs ([`bdd`]), and checked *per bit width* by symbolic
//! unrolling ([`check`]) — the approach whose cost grows with width.

pub mod aig;
pub mod bdd;
pub mod bitblast;
pub mod cache;
pub mod check;
pub mod cnf;
pub mod netlist;
pub mod opt;
pub mod sweep;
pub mod verilog;

pub use aig::{from_netlist, Aig, AigNode, AigRef, AIG_FALSE, AIG_TRUE};
pub use bitblast::{
    add_words, clamp, constant_word, divide, extend, ge_words, less_than, mux_word, reduce_or,
    sub_words, BitKit, BlastError, Blaster, Word,
};
pub use check::{
    fresh_inputs, implies_net, nets_equal, prove_net, prove_net_bdd, prove_net_sat,
    prove_net_with, unroll, words_equal, Backend, ProveResult, UnrolledState,
    AUTO_SAT_CROSSOVER_WIDTH,
};
pub use cnf::{tseitin, tseitin_pg, CnfFrame, CnfRoot, FrameStats};
pub use sweep::{
    prove_net_sweep, prove_net_sweep_drill, prove_net_sweep_scheduled, sweep_pool,
    IncrementalProver, SweepItem, SweepOutcome, SweepReport, SweepStats, SweepVerdict, WidthProbe,
};
pub use netlist::{Gate, Net, Netlist};
pub use opt::{
    certify, Balance, CertFailure, CertMode, OptOutcome, OptProfile, Pass, PassManager, PassStats,
    Resub, Rewrite, Sweep,
};
pub use verilog::{emit_verilog, verilog_loc};
