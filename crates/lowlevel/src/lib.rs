//! The low-level verification path the paper contrasts against: elaborated
//! designs are emitted as word-level Verilog ([`emit_verilog`], the
//! `#Verilog` column of Table 1), bit-blasted over an abstract bit kit
//! ([`bitblast`]), materialised as gate netlists ([`netlist`]) or reduced
//! ordered BDDs ([`bdd`]), and checked *per bit width* by symbolic
//! unrolling ([`check`]) — the approach whose cost grows with width.

pub mod bdd;
pub mod bitblast;
pub mod check;
pub mod netlist;
pub mod verilog;

pub use bitblast::{add_words, clamp, constant_word, extend, BitKit, BlastError, Blaster, Word};
pub use check::{fresh_inputs, unroll, words_equal, UnrolledState};
pub use netlist::{Gate, Net, Netlist};
pub use verilog::{emit_verilog, verilog_loc};
