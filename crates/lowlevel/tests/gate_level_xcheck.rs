//! Gate-level cross-check: the bit-blasted netlist of every design
//! computes the same values as the word-level interpreter, cycle by cycle.
//! This validates the bit-blaster (and hence the BDD baseline built on it).
//!
//! A thin caller into the conformance engine's gate layer
//! (`crates/conformance`), which owns case generation, width caps for the
//! exponentially priced netlist unroll, shrinking, and seed replay.

use chicala_conformance::{self as conformance, Config, Layer};

#[test]
fn gates_match_interpreter_all_designs() {
    let cfg = Config {
        layers: vec![Layer::Gates],
        cases: 16,
        // Per-design `gate_max_width` caps apply on top of this; the
        // summary table reports skipped cases so the truncation is visible.
        max_width: 12,
        ..Config::default()
    };
    let report = conformance::run_all(&cfg);
    println!("{}", report.summary_table());
    for f in &report.failures {
        eprintln!("{f}");
    }
    assert!(report.ok(), "{} gate-level divergence(s)", report.failures.len());
    for ((design, layer), st) in &report.stats {
        assert!(st.cases > 0, "no gate cases ran for {design}/{layer}");
    }
}
