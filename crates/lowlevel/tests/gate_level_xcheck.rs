//! Gate-level cross-check: the bit-blasted netlist of every design
//! computes the same values as the word-level interpreter, cycle by cycle.
//! This validates the bit-blaster (and hence the BDD baseline built on it).

use chicala_bigint::BigInt;
use chicala_chisel::{elaborate, Bindings, ElabKind, Simulator};
use chicala_lowlevel::{unroll, Netlist, Word};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Runs `cycles` ticks through both back-ends and compares every register.
fn xcheck(
    module: &chicala_chisel::Module,
    len: i64,
    input_vals: &[(&str, u64)],
    cycles: usize,
) -> Result<(), TestCaseError> {
    let bindings: Bindings = [("len".to_string(), len)].into_iter().collect();
    let em = elaborate(module, &bindings).expect("elaborates");
    let mask = if len >= 64 { u64::MAX } else { (1u64 << len) - 1 };

    // Word-level interpreter.
    let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
    let hw_inputs: BTreeMap<String, BigInt> = input_vals
        .iter()
        .map(|(k, v)| (k.to_string(), BigInt::from(v & mask)))
        .collect();
    for _ in 0..cycles {
        sim.step(&hw_inputs).expect("steps");
    }

    // Gate level: constant input words (the values are baked in as
    // constants, so the unrolled netlist is fully evaluable).
    let mut kit = Netlist::new();
    let mut inputs: BTreeMap<String, Word<chicala_lowlevel::Net>> = BTreeMap::new();
    for s in &em.signals {
        if s.kind == ElabKind::Input {
            let val = hw_inputs.get(&s.name).cloned().unwrap_or_else(BigInt::zero);
            inputs.insert(
                s.name.clone(),
                chicala_lowlevel::constant_word(&mut kit, &val, s.width as usize, s.signed),
            );
        }
    }
    let st = unroll(&em, &mut kit, &inputs, &BTreeMap::new(), cycles).expect("unrolls");
    let values = kit.eval(&|_| false);
    for (name, word) in &st.regs {
        let mut got = BigInt::zero();
        for (i, bit) in word.bits.iter().enumerate() {
            if values[bit.0 as usize] {
                got = got + BigInt::pow2(i as u64);
            }
        }
        let want = sim.reg(name).expect("register").to_unsigned(word.bits.len() as u64);
        prop_assert_eq!(got, want, "{} reg {} at len={}", module.name, name, len);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rmul_gates_match_interpreter(len in 1i64..10, a in any::<u64>(), b in any::<u64>(),
                                    cycles in 1usize..14) {
        xcheck(&chicala_designs::rmul::module(), len, &[("io_a", a), ("io_b", b)], cycles)?;
    }

    #[test]
    fn rdiv_gates_match_interpreter(len in 1i64..10, n in any::<u64>(), d in 1u64..200,
                                    cycles in 1usize..14) {
        xcheck(&chicala_designs::rdiv::module(), len, &[("io_n", n), ("io_d", d)], cycles)?;
    }

    #[test]
    fn xdiv_gates_match_interpreter(len in 1i64..8, n in any::<u64>(), d in 1u64..100,
                                    cycles in 1usize..12) {
        xcheck(&chicala_designs::xdiv::module(), len, &[("io_n", n), ("io_d", d)], cycles)?;
    }

    #[test]
    fn xmul_gates_match_interpreter(len in 1i64..8, a in any::<u64>(), b in any::<u64>(),
                                    cycles in 1usize..10) {
        xcheck(&chicala_designs::xmul::module(), len, &[("io_a", a), ("io_b", b)], cycles)?;
    }

    #[test]
    fn rotate_gates_match_interpreter(len in 2i64..12, x in any::<u64>(), cycles in 1usize..20) {
        xcheck(&chicala_chisel::examples::rotate_example(), len, &[("io_in", x)], cycles)?;
    }
}
