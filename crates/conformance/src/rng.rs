//! A self-contained splitmix64 PRNG: the only randomness source of the
//! conformance engine, so every run is replayable from a single `u64` seed
//! (no dependence on external property-testing crates).

use chicala_bigint::BigInt;

/// The splitmix64 generator (Steele, Lea & Flood; the seed-stream generator
/// of `java.util.SplittableRandom` and the recommended seeder for
/// xoshiro-family PRNGs). Tiny, fast, and equidistributed over `u64`.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, n)`; `n` must be non-zero. Uses rejection
    /// sampling so the distribution is exactly uniform.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A value uniform in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range({lo}, {hi})");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniform `width`-bit unsigned [`BigInt`] in `[0, 2^width)`.
    pub fn bits(&mut self, width: u64) -> BigInt {
        let mut acc = BigInt::zero();
        let mut done = 0u64;
        while done < width {
            let take = (width - done).min(64);
            let chunk = if take == 64 {
                self.next_u64()
            } else {
                self.next_u64() & ((1u64 << take) - 1)
            };
            acc = acc + (BigInt::from(chunk) << done);
            done += take;
        }
        acc
    }
}

/// Reads the master seed from the `CHICALA_SEED` environment variable
/// (decimal, or hex with an `0x` prefix), falling back to `default`.
pub fn seed_from_env(default: u64) -> u64 {
    chicala_trace::replay::seed_from_env("CHICALA_SEED", default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix_vector() {
        // Reference outputs for seed 1234567 (from the published splitmix64
        // reference implementation).
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(first, r2.next_u64(), "determinism");
        assert_ne!(r.next_u64(), first, "stream advances");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(r.range(5, 5), 5);
    }

    #[test]
    fn bits_fit_width() {
        let mut r = SplitMix64::new(7);
        for w in [1u64, 2, 63, 64, 65, 130] {
            for _ in 0..50 {
                let v = r.bits(w);
                assert!(v >= BigInt::zero());
                assert!(v < BigInt::pow2(w), "width {w}");
            }
        }
    }
}
