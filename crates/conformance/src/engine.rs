//! The differential engine: generates seeded random cases and drives every
//! comparable semantic layer in lockstep, reporting the first divergence
//! per design with a replayable seed and a shrunk counterexample.
//!
//! Layers:
//!
//! * [`Layer::Cosim`] — the Chisel IR reference interpreter
//!   ([`chicala_chisel::Simulator`]) against the generated sequential
//!   program ([`chicala_seq::SeqRunner`]), cycle by cycle over every
//!   output and register (experiment E3).
//! * [`Layer::Gates`] — the bit-blasted netlist ([`chicala_lowlevel::unroll`])
//!   against the interpreter, two ways: concrete evaluation per sampled
//!   case, plus one *formal* design-vs-golden-model equivalence proof per
//!   width ([`formal_gate_obligation`], discharged by
//!   [`chicala_lowlevel::Backend::Auto`]: BDDs at small widths, AIG + CDCL
//!   SAT above the crossover).
//! * [`Layer::Spec`] — the final state after the design's full latency
//!   against a pure mathematical specification (`a*b`, `n/d`, rotation,
//!   popcount) from the registry.

use crate::registry::{all_designs, Design, FinalState, GateEnv};
use crate::rng::SplitMix64;
use crate::shrink::shrink;
use chicala_bigint::BigInt;
use chicala_chisel::{
    compile as compile_chisel, elaborate, Bindings, CompiledModule, CompiledSim, ElabKind,
    ElabModule, Simulator,
};
use chicala_core::transform;
use chicala_lowlevel::{
    constant_word, fresh_inputs, prove_net, prove_net_sweep_scheduled, sweep_pool, unroll,
    Backend, Net, Netlist, OptProfile, ProveResult, SweepItem, SweepReport, UnrolledState, Word,
};
use chicala_par::ThreadPool;
use chicala_seq::{compile_seq, SValue, SeqCompiled, SeqProgram, SeqRunner, SeqVm};
use chicala_telemetry as telemetry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Which simulator drives the cosim and spec layers.
///
/// The compiled backend lowers both sides of the cosim comparison once per
/// (design, width) — the elaborated module to a slot-indexed
/// [`CompiledSim`] and the generated sequential program to a [`SeqVm`] —
/// and reuses the programs across every case and worker. It is exact where
/// it answers at all: any construct or value outside the compiled subset
/// falls back to the tree-walking interpreters for that case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimBackend {
    /// Tree-walking interpreters ([`Simulator`] / [`SeqRunner`]) only.
    Interp,
    /// Compiled VMs with per-case interpreter fallback (the default).
    Compiled,
    /// Run both and cross-check every output and register on every cycle;
    /// any disagreement between a compiled VM and its interpreter is
    /// reported as a divergence.
    Both,
}

impl SimBackend {
    /// Stable lower-case name (the `CHICALA_SIM_BACKEND` value).
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::Interp => "interp",
            SimBackend::Compiled => "compiled",
            SimBackend::Both => "both",
        }
    }

    /// Parses a backend name.
    pub fn parse(s: &str) -> Option<SimBackend> {
        [SimBackend::Interp, SimBackend::Compiled, SimBackend::Both]
            .into_iter()
            .find(|b| b.name() == s)
    }

    /// Reads `CHICALA_SIM_BACKEND` (`interp` / `compiled` / `both`),
    /// defaulting to [`SimBackend::Compiled`].
    pub fn from_env() -> SimBackend {
        match std::env::var("CHICALA_SIM_BACKEND") {
            Ok(v) => SimBackend::parse(v.trim()).unwrap_or(SimBackend::Compiled),
            Err(_) => SimBackend::Compiled,
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A comparable semantic layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// Interpreter vs generated sequential program, cycle by cycle.
    Cosim,
    /// Interpreter vs concrete gate-level evaluation (small widths).
    Gates,
    /// Final state vs mathematical specification.
    Spec,
}

impl Layer {
    /// All layers, in reporting order.
    pub const ALL: [Layer; 3] = [Layer::Cosim, Layer::Gates, Layer::Spec];

    /// Stable lower-case name (CLI `--layers` argument).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Cosim => "cosim",
            Layer::Gates => "gates",
            Layer::Spec => "spec",
        }
    }

    /// Parses a layer name.
    pub fn parse(s: &str) -> Option<Layer> {
        Layer::ALL.into_iter().find(|l| l.name() == s)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated test case: the elaboration width, the number of cycles to
/// run, and one value per declared input (in registry order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Case {
    /// Elaboration width (`len`).
    pub width: u64,
    /// Clock cycles to simulate (ignored by [`Layer::Spec`], which always
    /// runs the design's full latency).
    pub cycles: u64,
    /// Input values in `Design::inputs` order (masked to `width` bits by
    /// the engine before driving any layer).
    pub inputs: Vec<BigInt>,
}

impl Case {
    /// Masks every input into `[0, 2^width)` and enforces the registry's
    /// non-zero constraints, so all layers see identical legal stimuli.
    pub fn normalized(&self, d: &Design) -> Case {
        let inputs = d
            .inputs
            .iter()
            .zip(&self.inputs)
            .map(|(spec, v)| {
                let v = v.to_unsigned(self.width);
                if spec.nonzero && v.is_zero() {
                    BigInt::one()
                } else {
                    v
                }
            })
            .collect();
        Case { width: self.width, cycles: self.cycles.max(1), inputs }
    }

    /// The input map keyed by port name.
    pub fn input_map(&self, d: &Design) -> BTreeMap<String, BigInt> {
        d.inputs
            .iter()
            .zip(&self.inputs)
            .map(|(spec, v)| (spec.name.to_string(), v.clone()))
            .collect()
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "width={} cycles={} inputs=[", self.width, self.cycles)?;
        for (i, v) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Master seed; every case seed derives from it deterministically.
    pub seed: u64,
    /// Cases per design per layer.
    pub cases: usize,
    /// Width ceiling for case generation (the gate layer additionally caps
    /// at each design's `gate_max_width`).
    pub max_width: u64,
    /// Layers to run.
    pub layers: Vec<Layer>,
    /// Stop a design's layer at the first divergence (soak runs may prefer
    /// to keep going and report all of them).
    pub stop_at_first: bool,
    /// Simulator driving the cosim and spec layers.
    pub backend: SimBackend,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            seed: crate::rng::seed_from_env(0xC1CA_1A00),
            cases: 32,
            max_width: 24,
            layers: Layer::ALL.to_vec(),
            stop_at_first: true,
            backend: SimBackend::from_env(),
        }
    }
}

/// A divergence between two layers, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Registry name of the design.
    pub design: String,
    /// Layer pair that diverged.
    pub layer: Layer,
    /// Master seed of the run.
    pub master_seed: u64,
    /// Per-case seed: `replay_case(design, layer, case_seed, max_width)`
    /// regenerates and re-checks exactly this case.
    pub case_seed: u64,
    /// Width cap the case was generated under (generation depends on it,
    /// so replay must use the same value).
    pub max_width: u64,
    /// The case as generated.
    pub case: Case,
    /// The greedily minimized counterexample.
    pub shrunk: Case,
    /// First divergence description (layer, cycle, signal, both values).
    pub message: String,
    /// Path of the replay bundle captured for this failure, when trace
    /// capture is enabled and the artifacts were written (see
    /// [`crate::capture::capture_failure`]).
    pub bundle: Option<std::path::PathBuf>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conformance divergence: design `{}` layer `{}`", self.design, self.layer)?;
        writeln!(f, "  {}", self.message)?;
        writeln!(f, "  case   : {}", self.case)?;
        writeln!(f, "  shrunk : {}", self.shrunk)?;
        writeln!(f, "  seeds  : master=0x{:016X} case=0x{:016X}", self.master_seed, self.case_seed)?;
        writeln!(
            f,
            "  replay : CHICALA_SEED=0x{:016X} cargo test -q --test conformance",
            self.master_seed
        )?;
        write!(
            f,
            "           cargo run --release --example conformance -- --design {} --max-width {} --replay 0x{:016X}",
            self.design, self.max_width, self.case_seed
        )?;
        if let Some(bundle) = &self.bundle {
            write!(f, "\n  bundle : {}", bundle.display())?;
        }
        Ok(())
    }
}

/// Coverage counters for one (design, layer) cell of the summary table.
#[derive(Clone, Debug, Default)]
pub struct LayerStats {
    /// Cases actually run (skipped cases — e.g. gate cases above the width
    /// cap — are *not* counted, so truncation is visible).
    pub cases: usize,
    /// Cases skipped by caps.
    pub skipped: usize,
    /// Smallest width exercised.
    pub min_width: u64,
    /// Largest width exercised.
    pub max_width: u64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Wall-clock nanoseconds spent checking the counted cases.
    pub elapsed_ns: u64,
    /// Width cap the layer's case stream was generated under (for the
    /// gates layer: `min(cfg.max_width, design.gate_max_width)` — the
    /// ceiling the layer actually exercised).
    pub width_cap: u64,
}

impl LayerStats {
    fn record(&mut self, case: &Case, cycles_run: u64, elapsed_ns: u64) {
        if self.cases == 0 {
            self.min_width = case.width;
            self.max_width = case.width;
        } else {
            self.min_width = self.min_width.min(case.width);
            self.max_width = self.max_width.max(case.width);
        }
        self.cases += 1;
        self.cycles += cycles_run;
        self.elapsed_ns += elapsed_ns;
    }

    /// Checking throughput in cases per second (`None` before any case).
    pub fn cases_per_sec(&self) -> Option<f64> {
        if self.cases == 0 || self.elapsed_ns == 0 {
            return None;
        }
        Some(self.cases as f64 / (self.elapsed_ns as f64 / 1e9))
    }
}

/// The outcome of an engine run: per-design/per-layer coverage plus every
/// recorded divergence.
#[derive(Debug, Default)]
pub struct Report {
    /// Coverage rows keyed by (design, layer).
    pub stats: BTreeMap<(String, Layer), LayerStats>,
    /// Divergences found.
    pub failures: Vec<Failure>,
}

impl Report {
    /// True when no layer diverged.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the per-design/per-layer coverage summary table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:<6} {:>6} {:>8} {:>10} {:>8} {:>10}\n",
            "design", "layer", "cases", "skipped", "widths", "cycles", "cases/s"
        ));
        for ((design, layer), st) in &self.stats {
            let widths = if st.cases == 0 {
                "-".to_string()
            } else {
                format!("{}..{}", st.min_width, st.max_width)
            };
            let rate = match st.cases_per_sec() {
                Some(r) => format!("{r:.0}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<10} {:<6} {:>6} {:>8} {:>10} {:>8} {:>10}\n",
                design,
                layer.name(),
                st.cases,
                st.skipped,
                widths,
                st.cycles,
                rate
            ));
        }
        out
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Generates the case for `case_seed` (width, cycles, inputs), biased
/// toward boundary values: extreme widths, all-ones/zero/one inputs.
pub fn gen_case(d: &Design, case_seed: u64, max_width: u64) -> Case {
    let mut rng = SplitMix64::new(case_seed);
    let hi = max_width.max(d.min_width);
    let width = match rng.below(8) {
        0 => d.min_width,
        1 => hi,
        _ => rng.range(d.min_width, hi),
    };
    let latency = (d.latency)(width);
    let cycles = match rng.below(4) {
        0 => latency,
        1 => rng.range(1, latency.max(1)),
        _ => rng.range(1, latency + 4),
    };
    let inputs = d
        .inputs
        .iter()
        .map(|_| match rng.below(8) {
            0 => BigInt::zero(),
            1 => BigInt::one(),
            2 => BigInt::pow2(width) - BigInt::one(),
            _ => rng.bits(width),
        })
        .collect();
    Case { width, cycles, inputs }.normalized(d)
}

/// Elaborates `d` at `width`, memoised process-wide: elaboration is a pure
/// function of (design, width), so every case of every layer — and every
/// worker — shares one `ElabModule` instead of re-elaborating per case.
pub(crate) fn elab(d: &Design, width: u64) -> Result<Arc<ElabModule>, String> {
    type ElabMemo = Mutex<HashMap<(String, u64), Result<Arc<ElabModule>, String>>>;
    static MEMO: OnceLock<ElabMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    let key = (d.name.to_string(), width);
    if let Some(r) = memo.lock().expect("elab memo lock").get(&key) {
        return r.clone();
    }
    let m = (d.build)();
    let bindings: Bindings = [("len".to_string(), width as i64)].into_iter().collect();
    let r = elaborate(&m, &bindings)
        .map(Arc::new)
        .map_err(|e| format!("{}: elaboration at width {width}: {e}", d.name));
    memo.lock().expect("elab memo lock").insert(key, r.clone());
    r
}

/// The generated sequential program of `d`, memoised process-wide (the
/// transformation is width-independent: widths stay symbolic parameters).
pub(crate) fn transform_arc(d: &Design) -> Result<Arc<SeqProgram>, String> {
    type TransMemo = Mutex<HashMap<String, Result<Arc<SeqProgram>, String>>>;
    static MEMO: OnceLock<TransMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    if let Some(r) = memo.lock().expect("transform memo lock").get(d.name) {
        return r.clone();
    }
    let m = (d.build)();
    let r = transform(&m)
        .map(|out| Arc::new(out.program))
        .map_err(|e| format!("{}: transform: {e}", d.name));
    memo.lock().expect("transform memo lock").insert(d.name.to_string(), r.clone());
    r
}

/// Everything the compiled backend needs for one (design, width), built
/// once and shared across cases and workers. Either compiled side may be
/// absent (outside its compiler's subset); checks then fall back to the
/// corresponding tree-walking interpreter.
pub(crate) struct SimPlan {
    pub(crate) em: Arc<ElabModule>,
    pub(crate) prog: Arc<SeqProgram>,
    pub(crate) chisel: Option<Arc<CompiledModule>>,
    pub(crate) seq: Option<Arc<SeqCompiled>>,
}

pub(crate) fn sim_plan(d: &Design, width: u64) -> Result<Arc<SimPlan>, String> {
    type PlanMemo = Mutex<HashMap<(String, u64), Result<Arc<SimPlan>, String>>>;
    static MEMO: OnceLock<PlanMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    let key = (d.name.to_string(), width);
    if let Some(r) = memo.lock().expect("plan memo lock").get(&key) {
        return r.clone();
    }
    let r = sim_plan_uncached(d, width).map(Arc::new);
    memo.lock().expect("plan memo lock").insert(key, r.clone());
    r
}

fn sim_plan_uncached(d: &Design, width: u64) -> Result<SimPlan, String> {
    let em = elab(d, width)?;
    let prog = transform_arc(d)?;
    // The persistent artifact cache (when installed) is consulted before
    // compiling: a hit skips the whole lowering; a fresh compile is stored
    // for the next process.
    let chisel = match crate::cache::cached_program(&em) {
        Some(p) => Some(Arc::new(p)),
        None => match compile_chisel(&em) {
            Ok(p) => {
                crate::cache::store_program(&em, &p);
                Some(Arc::new(p))
            }
            Err(_) => {
                telemetry::counter("conformance.sim.chisel_compile_fallback", 1);
                None
            }
        },
    };
    let params: BTreeMap<String, BigInt> =
        [("len".to_string(), BigInt::from(width))].into_iter().collect();
    let seq = match compile_seq(&prog, &params) {
        Ok(p) => Some(Arc::new(p)),
        Err(_) => {
            telemetry::counter("conformance.sim.seq_compile_fallback", 1);
            None
        }
    };
    Ok(SimPlan { em, prog, chisel, seq })
}

pub(crate) fn svalue_scalar(v: &SValue) -> Option<BigInt> {
    match v {
        SValue::Int(i) => Some(i.clone()),
        SValue::Bool(b) => Some(BigInt::from(*b)),
        SValue::List(_) => None,
    }
}

/// Layer A: the Chisel cycle semantics vs the generated sequential
/// program, cycle by cycle, over every output and every (scalar) register.
fn check_cosim(d: &Design, case: &Case, backend: SimBackend) -> Result<u64, String> {
    match backend {
        SimBackend::Interp => check_cosim_interp(d, case),
        SimBackend::Compiled => check_cosim_compiled(d, case),
        SimBackend::Both => check_cosim_both(d, case),
    }
}

/// The tree-walking reference pairing: [`Simulator`] vs [`SeqRunner`].
fn check_cosim_interp(d: &Design, case: &Case) -> Result<u64, String> {
    telemetry::counter("conformance.sim.interp_cases", 1);
    let em = elab(d, case.width)?;
    let mut sim = Simulator::new(&em, &BTreeMap::new()).map_err(|e| e.to_string())?;
    let hw_inputs = case.input_map(d);

    let prog = transform_arc(d)?;
    let runner = SeqRunner::new(
        &prog,
        [("len".to_string(), BigInt::from(case.width))].into_iter().collect(),
    );
    let sw_inputs: BTreeMap<String, SValue> = hw_inputs
        .iter()
        .map(|(k, v)| (k.clone(), SValue::Int(v.clone())))
        .collect();
    let mut sw_regs = runner.init_regs(&BTreeMap::new()).map_err(|e| e.to_string())?;

    for cycle in 0..case.cycles {
        let hw_out = sim.step(&hw_inputs).map_err(|e| e.to_string())?;
        let sw = runner
            .trans(&sw_inputs, &sw_regs)
            .map_err(|e| format!("{}: sequential step failed at cycle {cycle}: {e}", d.name))?;
        for (name, hv) in &hw_out {
            let sv = sw
                .outputs
                .get(name)
                .and_then(svalue_scalar)
                .ok_or_else(|| format!("cycle {cycle}: output `{name}` missing from program"))?;
            if *hv != sv {
                return Err(format!(
                    "cosim: cycle {cycle}: output `{name}`: interpreter={hv} program={sv}"
                ));
            }
        }
        for (name, svv) in &sw.regs {
            let Some(sv) = svalue_scalar(svv) else { continue };
            let hv = sim
                .reg(name)
                .ok_or_else(|| format!("cycle {cycle}: program register `{name}` unknown to interpreter"))?;
            if *hv != sv {
                return Err(format!(
                    "cosim: cycle {cycle}: register `{name}`: interpreter={hv} program={sv}"
                ));
            }
        }
        sw_regs = sw.regs;
    }
    Ok(case.cycles)
}

/// Index pairs `(chisel port, seq port)` for one port class, compared
/// positionally every cycle by the compiled cosim loop.
type PortPairs = Vec<(usize, usize)>;

/// Pairs every compiled-Chisel port with its sequential-program
/// counterpart, mirroring the name-driven comparison of the interp path:
/// every hardware output must exist in the program, and every program
/// register must be known to the hardware side.
fn pair_ports(
    chisel: &CompiledModule,
    seq: &SeqCompiled,
) -> Result<(PortPairs, PortPairs), String> {
    let mut outs = Vec::with_capacity(chisel.outputs_len());
    for i in 0..chisel.outputs_len() {
        let name = chisel.output_name(i);
        let j = seq
            .output_index(name)
            .ok_or_else(|| format!("cycle 0: output `{name}` missing from program"))?;
        outs.push((i, j));
    }
    let mut regs = Vec::with_capacity(seq.regs_len());
    for j in 0..seq.regs_len() {
        let name = seq.reg_name(j);
        let i = chisel
            .reg_index(name)
            .ok_or_else(|| format!("cycle 0: program register `{name}` unknown to interpreter"))?;
        regs.push((i, j));
    }
    Ok((outs, regs))
}

/// Whether the compiled-Chisel value at `hw` equals the sequential VM's raw
/// value, via the `u128` fast path when the hardware lane allows it.
fn hw_eq_raw(hw: Option<u128>, hw_big: impl FnOnce() -> BigInt, raw: i128) -> bool {
    match hw {
        Some(v) => raw >= 0 && v == raw as u128,
        None => hw_big() == BigInt::from(raw),
    }
}

/// Records one per-case interpreter fallback *after* the fallback ran, so
/// the counters are honest: `kind` distinguishes why the compiled path was
/// abandoned (`compile` = the plan had no VM for this (design, width);
/// `run` = the sequential VM bailed out mid-case), and a fallback that
/// itself fails is counted under a separate `_err` name rather than being
/// claimed as a successfully recovered case.
fn count_case_fallback<T>(kind: &str, outcome: &Result<T, String>) {
    let name = match (kind, outcome.is_ok()) {
        ("compile", true) => "conformance.sim.case_compile_fallback",
        ("compile", false) => "conformance.sim.case_compile_fallback_err",
        ("run", true) => "conformance.sim.case_run_fallback",
        ("run", false) => "conformance.sim.case_run_fallback_err",
        _ => unreachable!("fallback kind is compile|run"),
    };
    telemetry::counter(name, 1);
}

/// The compiled pairing: [`CompiledSim`] vs [`SeqVm`], falling back to the
/// interpreters when either side of the (design, width) failed to compile
/// or the sequential VM bails out at runtime (`i128` overflow).
fn check_cosim_compiled(d: &Design, case: &Case) -> Result<u64, String> {
    let plan = sim_plan(d, case.width)?;
    let (Some(chisel), Some(seq)) = (&plan.chisel, &plan.seq) else {
        let r = check_cosim_interp(d, case);
        count_case_fallback("compile", &r);
        return r;
    };
    match run_cosim_vms(d, case, chisel, seq) {
        Ok(verdict) => verdict,
        // The sequential VM left its i128 envelope: the case is legal but
        // outside the compiled subset — re-check it on the interpreters.
        Err(_bail) => {
            let r = check_cosim_interp(d, case);
            count_case_fallback("run", &r);
            r
        }
    }
}

/// Drives the two compiled VMs in lockstep. The outer `Err` means the
/// sequential VM could not complete the case (fall back to the
/// interpreters); the inner result is the conformance verdict.
fn run_cosim_vms(
    d: &Design,
    case: &Case,
    chisel: &CompiledModule,
    seq: &SeqCompiled,
) -> Result<Result<u64, String>, chicala_seq::SeqError> {
    telemetry::counter("conformance.sim.compiled_cases", 1);
    let hw_inputs = case.input_map(d);
    let (out_pairs, reg_pairs) = match pair_ports(chisel, seq) {
        Ok(p) => p,
        Err(e) => return Ok(Err(e)),
    };
    let mut hw = CompiledSim::new(chisel, &BTreeMap::new());
    hw.set_inputs(&hw_inputs);
    let sw_inputs: BTreeMap<String, SValue> = hw_inputs
        .iter()
        .map(|(k, v)| (k.clone(), SValue::Int(v.clone())))
        .collect();
    let mut sw = SeqVm::new(seq, &BTreeMap::new())?;
    sw.set_inputs(&sw_inputs)?;
    for cycle in 0..case.cycles {
        hw.step();
        sw.step()?;
        for &(i, j) in &out_pairs {
            if !hw_eq_raw(hw.output_u128(i), || hw.output_value(i), sw.output_raw(j)) {
                let name = chisel.output_name(i);
                return Ok(Err(format!(
                    "cosim: cycle {cycle}: output `{name}`: interpreter={} program={}",
                    hw.output_value(i),
                    BigInt::from(sw.output_raw(j)),
                )));
            }
        }
        for &(i, j) in &reg_pairs {
            if !hw_eq_raw(hw.reg_u128(i), || hw.reg_value(i), sw.reg_raw(j)) {
                let name = seq.reg_name(j);
                return Ok(Err(format!(
                    "cosim: cycle {cycle}: register `{name}`: interpreter={} program={}",
                    hw.reg_value(i),
                    BigInt::from(sw.reg_raw(j)),
                )));
            }
        }
    }
    Ok(Ok(case.cycles))
}

/// Cross-checking mode: runs the interpreters as ground truth, steps each
/// compiled VM alongside, and reports any compiled-vs-interpreted
/// disagreement on any output or register of any cycle as a divergence —
/// on top of the usual hardware-vs-program comparison.
fn check_cosim_both(d: &Design, case: &Case) -> Result<u64, String> {
    let plan = sim_plan(d, case.width)?;
    let em = &plan.em;
    let mut sim = Simulator::new(em, &BTreeMap::new()).map_err(|e| e.to_string())?;
    let hw_inputs = case.input_map(d);
    let runner = SeqRunner::new(
        &plan.prog,
        [("len".to_string(), BigInt::from(case.width))].into_iter().collect(),
    );
    let sw_inputs: BTreeMap<String, SValue> = hw_inputs
        .iter()
        .map(|(k, v)| (k.clone(), SValue::Int(v.clone())))
        .collect();
    let mut sw_regs = runner.init_regs(&BTreeMap::new()).map_err(|e| e.to_string())?;

    let mut hw_vm = plan.chisel.as_deref().map(|p| {
        let mut vm = CompiledSim::new(p, &BTreeMap::new());
        vm.set_inputs(&hw_inputs);
        vm
    });
    let mut sw_vm = match plan.seq.as_deref() {
        Some(p) => match SeqVm::new(p, &BTreeMap::new()) {
            Ok(mut vm) => match vm.set_inputs(&sw_inputs) {
                Ok(()) => Some(vm),
                Err(_) => None,
            },
            Err(_) => None,
        },
        None => None,
    };

    for cycle in 0..case.cycles {
        let hw_out = sim.step(&hw_inputs).map_err(|e| e.to_string())?;
        let sw = runner
            .trans(&sw_inputs, &sw_regs)
            .map_err(|e| format!("{}: sequential step failed at cycle {cycle}: {e}", d.name))?;
        if let Some(vm) = &mut hw_vm {
            vm.step();
            let prog = vm.program();
            for i in 0..prog.outputs_len() {
                let name = prog.output_name(i);
                let want = &hw_out[name];
                let got = vm.output_value(i);
                if got != *want {
                    return Err(format!(
                        "cosim: cycle {cycle}: compiled Chisel VM diverges from interpreter \
                         on output `{name}`: interp={want} compiled={got}"
                    ));
                }
            }
            for i in 0..prog.regs_len() {
                let name = prog.reg_name(i);
                let want = sim.reg(name).cloned().unwrap_or_else(BigInt::zero);
                let got = vm.reg_value(i);
                if got != want {
                    return Err(format!(
                        "cosim: cycle {cycle}: compiled Chisel VM diverges from interpreter \
                         on register `{name}`: interp={want} compiled={got}"
                    ));
                }
            }
        }
        if let Some(vm) = &mut sw_vm {
            match vm.step() {
                // Legal bail-out (i128 envelope): drop the VM, keep the
                // interpreter comparison going.
                Err(_) => sw_vm = None,
                Ok(()) => {
                    let got = vm.trans_result();
                    if got.outputs != sw.outputs || got.regs != sw.regs {
                        return Err(format!(
                            "cosim: cycle {cycle}: compiled sequential VM diverges from \
                             interpreter: interp outs={:?} regs={:?}; compiled outs={:?} regs={:?}",
                            sw.outputs, sw.regs, got.outputs, got.regs
                        ));
                    }
                }
            }
        }
        for (name, hv) in &hw_out {
            let sv = sw
                .outputs
                .get(name)
                .and_then(svalue_scalar)
                .ok_or_else(|| format!("cycle {cycle}: output `{name}` missing from program"))?;
            if *hv != sv {
                return Err(format!(
                    "cosim: cycle {cycle}: output `{name}`: interpreter={hv} program={sv}"
                ));
            }
        }
        for (name, svv) in &sw.regs {
            let Some(sv) = svalue_scalar(svv) else { continue };
            let hv = sim
                .reg(name)
                .ok_or_else(|| format!("cycle {cycle}: program register `{name}` unknown to interpreter"))?;
            if *hv != sv {
                return Err(format!(
                    "cosim: cycle {cycle}: register `{name}`: interpreter={hv} program={sv}"
                ));
            }
        }
        sw_regs = sw.regs;
    }
    Ok(case.cycles)
}

/// The formal gate-level obligation for one design at one width, ready to
/// hand to any [`prove_net`] backend (the conformance gates layer, the
/// backend-agreement tests, and `bench_lowlevel` all start from here).
pub struct FormalObligation {
    /// The netlist holding the unrolled design, the golden model, and the
    /// property cone.
    pub netlist: Netlist,
    /// Single-bit property net; constant-true ⇔ design matches golden for
    /// every input assignment at this width.
    pub property: Net,
    /// Interleaved input bits (operand bit 0 of each port, then bit 1, …)
    /// — the BDD variable order that keeps arithmetic miters polynomial
    /// where a concatenated order explodes.
    pub var_order: Vec<Net>,
    /// Fresh symbolic input words by port name (for model decoding).
    pub inputs: BTreeMap<String, Word<Net>>,
    /// The design's symbolic state after its full latency.
    pub state: UnrolledState<Net>,
    /// Golden-cone words noted by the spec builder, keyed by the design
    /// signal each is compared against (for counterexample decoding).
    pub golden: BTreeMap<String, Word<Net>>,
}

/// Builds the formal obligation for `d` at `width`: symbolically unrolls
/// the design over fresh inputs for its full latency and instantiates the
/// registry's golden model. `Ok(None)` when the design has no golden model.
pub fn formal_gate_obligation(d: &Design, width: u64) -> Result<Option<FormalObligation>, String> {
    let Some(gate_spec) = d.gate_spec else { return Ok(None) };
    let em = elab(d, width)?;
    let mut nl = Netlist::new();
    let inputs = fresh_inputs(&em, |_, _, kit: &mut Netlist| kit.input(), &mut nl);
    let latency = (d.latency)(width);
    let state = unroll(&em, &mut nl, &inputs, &BTreeMap::new(), latency as usize)
        .map_err(|e| format!("{}: formal unroll at width {width}: {e}", d.name))?;
    let env = GateEnv::new(width, &inputs, &state);
    let property = gate_spec(&mut nl, &env);
    let golden = env.golden.into_inner();
    let max_w = inputs.values().map(|w| w.width()).max().unwrap_or(0);
    let mut var_order = Vec::new();
    for i in 0..max_w {
        for w in inputs.values() {
            if i < w.width() {
                var_order.push(w.bits[i]);
            }
        }
    }
    Ok(Some(FormalObligation { netlist: nl, property, var_order, inputs, state, golden }))
}

/// A formal obligation built into a caller-owned shared [`Netlist`] kit —
/// the width-sweep variant of [`FormalObligation`]. All widths of one
/// design share the kit (and, via `shared_inputs`, the per-(port, bit)
/// input nets), so structure common across widths hash-conses to the same
/// nets and a sweep session can skip re-lowering it.
pub struct SharedObligation {
    /// Single-bit property net in the shared kit.
    pub property: Net,
    /// Interleaved input bits (same order as [`FormalObligation`]).
    pub var_order: Vec<Net>,
    /// Symbolic input words by port name (shared nets across widths).
    pub inputs: BTreeMap<String, Word<Net>>,
    /// The design's symbolic state after its full latency.
    pub state: UnrolledState<Net>,
    /// Golden-cone words noted by the spec builder.
    pub golden: BTreeMap<String, Word<Net>>,
}

/// Builds the formal obligation for `d` at `width` into a caller-owned
/// netlist kit, reusing input nets per (port, bit) across calls. Repeated
/// calls at ascending widths make the kit a hash-consed union of the whole
/// width family: every sub-expression whose structure is width-independent
/// (low-order adder chains, partial-product rows, …) resolves to the same
/// [`Net`] at every width that contains it.
pub fn formal_gate_obligation_shared(
    d: &Design,
    width: u64,
    nl: &mut Netlist,
    shared_inputs: &mut BTreeMap<(String, usize), Net>,
) -> Result<Option<SharedObligation>, String> {
    let Some(gate_spec) = d.gate_spec else { return Ok(None) };
    let em = elab(d, width)?;
    let inputs = fresh_inputs(
        &em,
        |name, i, kit: &mut Netlist| {
            *shared_inputs
                .entry((name.to_string(), i))
                .or_insert_with(|| kit.input())
        },
        nl,
    );
    let latency = (d.latency)(width);
    let state = unroll(&em, nl, &inputs, &BTreeMap::new(), latency as usize)
        .map_err(|e| format!("{}: formal unroll at width {width}: {e}", d.name))?;
    let env = GateEnv::new(width, &inputs, &state);
    let property = gate_spec(nl, &env);
    let golden = env.golden.into_inner();
    let max_w = inputs.values().map(|w| w.width()).max().unwrap_or(0);
    let mut var_order = Vec::new();
    for i in 0..max_w {
        for w in inputs.values() {
            if i < w.width() {
                var_order.push(w.bits[i]);
            }
        }
    }
    Ok(Some(SharedObligation { property, var_order, inputs, state, golden }))
}

/// The value of a netlist word under an evaluation of the whole netlist.
pub(crate) fn word_value(word: &Word<Net>, vals: &[bool]) -> BigInt {
    let mut v = BigInt::zero();
    for (i, bit) in word.bits.iter().enumerate() {
        if vals[bit.0 as usize] {
            v = v + BigInt::pow2(i as u64);
        }
    }
    v
}

/// One formal design-vs-golden equivalence proof per (design, width),
/// memoised process-wide: the obligation is input-independent, so every
/// concrete gates case at the same width shares one proof. The result is a
/// pure function of (design, width), which keeps reports deterministic
/// regardless of which worker primes the cache.
///
/// With `CHICALA_SWEEP` set, the first touch of a design sweeps its whole
/// `min_width..=gate_max_width` family through one incremental session
/// ([`sweep_gates_formal`]) and fills the memo for every width at once;
/// per-width entries are byte-identical to the one-shot path either way.
fn check_gates_formal(d: &Design, width: u64) -> Result<(), String> {
    if d.gate_spec.is_none() {
        return Ok(());
    }
    type ProofMemo = Mutex<HashMap<(String, u64), Result<(), String>>>;
    static MEMO: OnceLock<ProofMemo> = OnceLock::new();
    let memo = MEMO.get_or_init(Default::default);
    let key = (d.name.to_string(), width);
    if let Some(r) = memo.lock().expect("memo lock").get(&key) {
        return r.clone();
    }
    if std::env::var_os("CHICALA_SWEEP").is_some() {
        let widths: Vec<u64> = (d.min_width..=d.gate_max_width).collect();
        if let Ok((_, per_width)) = sweep_gates_formal(d, &widths, false) {
            let mut memo = memo.lock().expect("memo lock");
            for (w, r) in per_width {
                memo.insert((d.name.to_string(), w), r);
            }
            if let Some(r) = memo.get(&key) {
                return r.clone();
            }
        }
        // Requested width outside the registered family (or the sweep
        // could not build): fall through to the one-shot path.
    }
    let r = check_gates_formal_uncached(d, width);
    memo.lock().expect("memo lock").insert(key, r.clone());
    r
}

/// Per-width gate verdicts from a sweep: `(width, Ok(()) | Err(report))`,
/// byte-identical to what [`check_gates_formal`] returns width by width.
pub type SweepVerdicts = Vec<(u64, Result<(), String>)>;

/// Sweeps a design's formal gate obligations at `widths` (ascending)
/// through one incremental SAT session on the scheduler pool: the whole
/// family shares a hash-consed kit ([`formal_gate_obligation_shared`]),
/// widths below the `Auto` crossover race a BDD pool job against the
/// session, and every proved width primes the next one's query.
///
/// Returns the raw [`SweepReport`] plus the per-width gate verdicts. The
/// verdicts are byte-identical to [`check_gates_formal`]'s one-shot path:
/// proved widths are `Ok(())` either way, and a counterexample is
/// re-derived by the one-shot engine itself (the session only routes).
/// `verify_ab` re-proves every width one-shot and counts disagreements in
/// [`chicala_lowlevel::SweepStats::divergences`] — the CI tripwire.
pub fn sweep_gates_formal(
    d: &Design,
    widths: &[u64],
    verify_ab: bool,
) -> Result<(SweepReport, SweepVerdicts), String> {
    let _span = telemetry::span!("sweep_gates_formal:{}", d.name);
    let mut kit = Netlist::new();
    let mut shared_inputs = BTreeMap::new();
    let mut obs = Vec::with_capacity(widths.len());
    for &w in widths {
        let Some(ob) = formal_gate_obligation_shared(d, w, &mut kit, &mut shared_inputs)? else {
            return Err(format!("{}: no gate spec to sweep", d.name));
        };
        obs.push((w, ob));
    }
    let items: Vec<SweepItem<'_>> = obs
        .iter()
        .map(|(w, ob)| SweepItem {
            nl: &kit,
            root: ob.property,
            width: *w,
            var_order: ob.var_order.clone(),
        })
        .collect();
    let backend = Backend::from_env().unwrap_or(Backend::Auto);
    let report =
        prove_net_sweep_scheduled(sweep_pool(), &items, backend, OptProfile::from_env(), verify_ab);
    let per_width = report
        .outcomes
        .iter()
        .map(|o| {
            let r = if o.result.is_proved() {
                Ok(())
            } else {
                // The one-shot path owns counterexample decoding and its
                // error bytes; re-deriving keeps the memo entry identical.
                check_gates_formal_uncached(d, o.width)
            };
            (o.width, r)
        })
        .collect();
    Ok((report, per_width))
}

fn check_gates_formal_uncached(d: &Design, width: u64) -> Result<(), String> {
    let _span = telemetry::span!("gates_formal:{}x{}", d.name, width);
    let Some(ob) = formal_gate_obligation(d, width)? else { return Ok(()) };
    let backend = Backend::from_env().unwrap_or(Backend::Auto);
    match prove_net(&ob.netlist, ob.property, backend, width as usize, &ob.var_order) {
        ProveResult::Proved { .. } => Ok(()),
        ProveResult::Counterexample { backend, inputs: cex } => {
            let vals = ob.netlist.eval(&|net| cex.get(&net).copied().unwrap_or(false));
            let decoded: BTreeMap<String, BigInt> = ob
                .inputs
                .iter()
                .map(|(name, word)| (name.clone(), word_value(word, &vals)))
                .collect();
            // Self-check 1: the model must actually falsify the miter
            // under concrete netlist evaluation — anything else is a bug
            // in the proof pipeline, not in the design.
            assert!(
                !vals[ob.property.0 as usize],
                "{}: {backend:?} backend returned a counterexample that does not falsify \
                 the miter at width {width}: inputs {decoded:?}",
                d.name,
            );
            // Self-check 2: replay the decoded inputs through the cosim
            // layer (the interpreter). The design-side registers of the
            // unrolled netlist must agree with the interpreter before we
            // report a golden-model mismatch; a disagreement here means
            // the unroll pipeline itself is broken and must not be
            // reported as a mere divergence.
            let em = elab(d, width)?;
            let mut sim = Simulator::new(&em, &BTreeMap::new()).map_err(|e| e.to_string())?;
            for _ in 0..(d.latency)(width) {
                sim.step(&decoded).map_err(|e| e.to_string())?;
            }
            let net_regs: BTreeMap<String, BigInt> = ob
                .state
                .regs
                .iter()
                .map(|(name, word)| (name.clone(), word_value(word, &vals)))
                .collect();
            for (name, nv) in &net_regs {
                let sv = sim
                    .reg(name)
                    .map(|v| v.to_unsigned(ob.state.regs[name].bits.len() as u64));
                if sv.as_ref() != Some(nv) {
                    panic!(
                        "{}: gates formal counterexample failed cosim replay at width \
                         {width}: register `{name}`: netlist={nv} interpreter={sv:?}; \
                         inputs {decoded:?}; netlist trace {net_regs:?}; interpreter \
                         trace {:?}",
                        d.name,
                        sim.regs(),
                    );
                }
            }
            Err(format!(
                "gates: formal ({backend:?}): golden model diverges from the design at \
                 width {width}: inputs {decoded:?}; design registers {net_regs:?} \
                 (cosim replay agrees)"
            ))
        }
    }
}

/// Layer B: interpreter vs concrete evaluation of the bit-blasted netlist
/// (inputs baked in as constants), comparing every register after the run.
fn check_gates(d: &Design, case: &Case) -> Result<u64, String> {
    // Formal first: one design-vs-golden proof per width (memoised), via
    // the Auto backend — BDD below the crossover, AIG + SAT above it.
    check_gates_formal(d, case.width)?;
    let em = elab(d, case.width)?;
    let hw_inputs = case.input_map(d);
    let mut sim = Simulator::new(&em, &BTreeMap::new()).map_err(|e| e.to_string())?;
    for _ in 0..case.cycles {
        sim.step(&hw_inputs).map_err(|e| e.to_string())?;
    }

    let mut kit = Netlist::new();
    let mut inputs: BTreeMap<String, Word<chicala_lowlevel::Net>> = BTreeMap::new();
    for s in &em.signals {
        if s.kind == ElabKind::Input {
            let val = hw_inputs.get(&s.name).cloned().unwrap_or_else(BigInt::zero);
            inputs.insert(
                s.name.clone(),
                constant_word(&mut kit, &val, s.width as usize, s.signed),
            );
        }
    }
    let st = unroll(&em, &mut kit, &inputs, &BTreeMap::new(), case.cycles as usize)
        .map_err(|e| format!("gates: unroll: {e}"))?;
    let values = kit.eval(&|_| false);
    for (name, word) in &st.regs {
        let mut got = BigInt::zero();
        for (i, bit) in word.bits.iter().enumerate() {
            if values[bit.0 as usize] {
                got = got + BigInt::pow2(i as u64);
            }
        }
        let want = sim
            .reg(name)
            .ok_or_else(|| format!("gates: netlist register `{name}` unknown to interpreter"))?
            .to_unsigned(word.bits.len() as u64);
        if got != want {
            return Err(format!(
                "gates: after {} cycles: register `{name}`: interpreter={want} netlist={got}",
                case.cycles
            ));
        }
    }
    Ok(case.cycles)
}

/// Runs the interpreter for the design's full latency and returns the
/// observable final state (used by the spec layer and by callers wanting
/// end-to-end results).
pub fn final_state(d: &Design, case: &Case) -> Result<FinalState, String> {
    let em = elab(d, case.width)?;
    let mut sim = Simulator::new(&em, &BTreeMap::new()).map_err(|e| e.to_string())?;
    let hw_inputs = case.input_map(d);
    let latency = (d.latency)(case.width);
    let mut outputs = BTreeMap::new();
    for _ in 0..latency {
        outputs = sim.step(&hw_inputs).map_err(|e| e.to_string())?;
    }
    Ok(FinalState { regs: sim.regs().clone(), outputs })
}

/// [`final_state`] on the compiled Chisel VM; `None` when this (design,
/// width) is outside the compiled subset.
fn final_state_compiled(d: &Design, case: &Case) -> Result<Option<FinalState>, String> {
    let plan = sim_plan(d, case.width)?;
    let Some(chisel) = &plan.chisel else { return Ok(None) };
    let mut vm = CompiledSim::new(chisel, &BTreeMap::new());
    vm.set_inputs(&case.input_map(d));
    for _ in 0..(d.latency)(case.width) {
        vm.step();
    }
    let prog = chisel.as_ref();
    let regs = (0..prog.regs_len())
        .map(|i| (prog.reg_name(i).to_string(), vm.reg_value(i)))
        .collect();
    let outputs = (0..prog.outputs_len())
        .map(|i| (prog.output_name(i).to_string(), vm.output_value(i)))
        .collect();
    Ok(Some(FinalState { regs, outputs }))
}

/// Layer C: final state after the full latency vs the mathematical spec.
fn check_spec(d: &Design, case: &Case, backend: SimBackend) -> Result<u64, String> {
    let fin = match backend {
        SimBackend::Interp => final_state(d, case)?,
        SimBackend::Compiled => match final_state_compiled(d, case)? {
            Some(fin) => fin,
            // The compiled VM is unavailable at this (design, width) — a
            // compile-driven fallback, counted after the interpreter ran.
            None => {
                let r = final_state(d, case);
                count_case_fallback("compile", &r);
                r?
            }
        },
        SimBackend::Both => {
            let want = final_state(d, case)?;
            if let Some(got) = final_state_compiled(d, case)? {
                if got.regs != want.regs || got.outputs != want.outputs {
                    return Err(format!(
                        "spec: compiled Chisel VM diverges from interpreter after {} cycles: \
                         interp regs={:?} outs={:?}; compiled regs={:?} outs={:?}",
                        (d.latency)(case.width),
                        want.regs,
                        want.outputs,
                        got.regs,
                        got.outputs
                    ));
                }
            }
            want
        }
    };
    (d.spec)(case.width, &case.input_map(d), &fin)
        .map_err(|e| format!("spec: after {} cycles: {e}", (d.latency)(case.width)))?;
    Ok((d.latency)(case.width))
}

/// Checks one case against one layer. Returns the number of cycles
/// simulated, or the first divergence. Uses the environment-selected
/// simulation backend ([`SimBackend::from_env`]).
pub fn check_case(d: &Design, layer: Layer, case: &Case) -> Result<u64, String> {
    check_case_with(d, layer, case, SimBackend::from_env())
}

/// [`check_case`] with an explicit simulation backend (the engine's
/// [`Config::backend`] comes through here).
pub fn check_case_with(
    d: &Design,
    layer: Layer,
    case: &Case,
    backend: SimBackend,
) -> Result<u64, String> {
    let case = case.normalized(d);
    match layer {
        Layer::Cosim => check_cosim(d, &case, backend),
        Layer::Gates => check_gates(d, &case),
        Layer::Spec => check_spec(d, &case, backend),
    }
}

/// [`gen_case`] plus the per-layer adjustments the runner applies: the
/// gate layer bounds cycles so the unrolled netlist stays affordable.
/// Replay must regenerate through here to reproduce the exact case run.
pub fn gen_case_for(d: &Design, layer: Layer, case_seed: u64, max_width: u64) -> Case {
    let mut case = gen_case(d, case_seed, max_width);
    if layer == Layer::Gates {
        case.cycles = case.cycles.min((d.latency)(case.width) + 2);
    }
    case
}

/// Regenerates the case for `case_seed` and re-checks it — the one-line
/// replay path printed in every failure. `max_width` must match the cap
/// the case was generated under (a failure's `max_width` field).
pub fn replay_case(d: &Design, layer: Layer, case_seed: u64, max_width: u64) -> Result<u64, String> {
    let case = gen_case_for(d, layer, case_seed, max_width);
    check_case(d, layer, &case)
}

/// One slot of a layer's generated case stream, in generation order.
enum Slot {
    /// Skipped by a width cap (counted, never checked).
    Skipped,
    /// A case to check: `(case_seed, width_cap, case)`.
    Job(u64, u64, Case),
}

/// Runs one design through the configured layers.
///
/// Case *checking* fans out across the scheduler's workers
/// ([`ThreadPool::default_workers`], i.e. `CHICALA_WORKERS`); case
/// *generation* and result folding stay sequential in generation order, so
/// the report — stats, failure set, replay seeds — is byte-identical for
/// every worker count (asserted by `tests/parallel_determinism.rs`).
pub fn run_design(d: &Design, cfg: &Config) -> Report {
    let _design_span = telemetry::span!("conformance:{}", d.name);
    let pool = ThreadPool::default();
    let mut report = Report::default();
    // Per-design stream: independent of registry order and of how many
    // cases other designs consumed, so any (design, case_seed) replays in
    // isolation.
    let mut rng = SplitMix64::new(cfg.seed ^ fnv1a(d.name));
    for &layer in &cfg.layers {
        let _layer_span = telemetry::span!("{}", layer.name());
        let layer_cap = match layer {
            Layer::Gates => cfg.max_width.min(d.gate_max_width),
            _ => cfg.max_width,
        };
        let stats = report
            .stats
            .entry((d.name.to_string(), layer))
            .or_default();
        stats.width_cap = layer_cap;
        // Generate the whole layer's case stream up front: the rng
        // consumption order is part of the replay contract and must not
        // depend on scheduling.
        let slots: Vec<Slot> = (0..cfg.cases)
            .map(|_| {
                let case_seed = rng.next_u64();
                let width_cap = layer_cap;
                let case = gen_case_for(d, layer, case_seed, width_cap);
                if layer == Layer::Gates && case.width > d.gate_max_width {
                    Slot::Skipped
                } else {
                    Slot::Job(case_seed, width_cap, case)
                }
            })
            .collect();
        // Check every case in parallel; results come back in slot order.
        // (With `stop_at_first`, slots past the first failure are checked
        // but discarded by the fold — identical report, some spare work.)
        let outcomes = pool.map_slice(&slots, |slot| match slot {
            Slot::Skipped => None,
            Slot::Job(_, _, case) => {
                let started = Instant::now();
                let outcome = check_case_with(d, layer, case, cfg.backend);
                Some((outcome, started.elapsed().as_nanos() as u64))
            }
        });
        // Fold sequentially in generation order — the exact loop the
        // sequential engine ran, minus the checking itself.
        for (slot, checked) in slots.into_iter().zip(outcomes) {
            let Slot::Job(case_seed, width_cap, case) = slot else {
                stats.skipped += 1;
                continue;
            };
            let (outcome, elapsed_ns) = checked.expect("job slots produce results");
            telemetry::counter("conformance.cases", 1);
            if telemetry::enabled() {
                telemetry::record(
                    format!("conformance.case_ns.{}.{}", d.name, layer.name()).as_str(),
                    elapsed_ns,
                );
                if layer == Layer::Cosim && elapsed_ns > 0 {
                    telemetry::record(
                        "conformance.cosim.cycles_per_sec",
                        case.cycles.saturating_mul(1_000_000_000) / elapsed_ns,
                    );
                }
            }
            match outcome {
                Ok(cycles) => stats.record(&case, cycles, elapsed_ns),
                Err(message) => {
                    let shrunk = shrink(d, layer, &case);
                    let mut failure = Failure {
                        design: d.name.to_string(),
                        layer,
                        master_seed: cfg.seed,
                        case_seed,
                        max_width: width_cap,
                        case,
                        shrunk,
                        message,
                        bundle: None,
                    };
                    failure.bundle = crate::capture::capture_failure(d, &failure, cfg);
                    report.failures.push(failure);
                    if cfg.stop_at_first {
                        break;
                    }
                }
            }
        }
    }
    report
}

/// Runs every registered design through every configured layer.
pub fn run_all(cfg: &Config) -> Report {
    let mut report = Report::default();
    for d in all_designs() {
        let r = run_design(&d, cfg);
        report.stats.extend(r.stats);
        report.failures.extend(r.failures);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Design;

    #[test]
    fn case_normalization_masks_and_fixes_zero_divisor() {
        let d = Design::by_name("rdiv").expect("registered");
        let case = Case {
            width: 4,
            cycles: 0,
            inputs: vec![BigInt::from(0xFFu64), BigInt::from(16u64)],
        };
        let n = case.normalized(&d);
        assert_eq!(n.cycles, 1, "at least one cycle");
        assert_eq!(n.inputs[0], BigInt::from(0xFu64), "masked to width");
        assert_eq!(n.inputs[1], BigInt::one(), "16 mod 16 = 0 -> forced non-zero");
    }

    #[test]
    fn gen_case_is_deterministic_and_legal() {
        let d = Design::by_name("xdiv").expect("registered");
        for seed in [0u64, 1, 0xDEADBEEF] {
            let a = gen_case(&d, seed, 16);
            let b = gen_case(&d, seed, 16);
            assert_eq!(a, b, "same seed, same case");
            assert!(a.width >= d.min_width && a.width <= 16);
            assert!(a.cycles >= 1);
            assert!(!a.inputs[1].is_zero(), "divisor non-zero");
        }
    }

    #[test]
    fn single_known_case_passes_every_layer() {
        let d = Design::by_name("rmul").expect("registered");
        let case = Case {
            width: 4,
            cycles: 5,
            inputs: vec![BigInt::from(11u64), BigInt::from(13u64)],
        };
        for layer in Layer::ALL {
            check_case(&d, layer, &case)
                .unwrap_or_else(|e| panic!("layer {layer}: {e}"));
        }
    }

    #[test]
    fn spec_layer_detects_a_wrong_spec() {
        // A spec that demands acc == a*b + 1 must be reported as divergent:
        // the engine's failure path (not just its success path) works.
        fn bad_spec(
            _w: u64,
            _ins: &BTreeMap<String, BigInt>,
            fin: &FinalState,
        ) -> Result<(), String> {
            let got = fin.regs.get("acc").expect("acc exists");
            let want = got + BigInt::one();
            Err(format!("forced: got {got}, want {want}"))
        }
        let mut d = Design::by_name("rmul").expect("registered");
        d.spec = bad_spec;
        let case = Case {
            width: 3,
            cycles: 4,
            inputs: vec![BigInt::from(5u64), BigInt::from(6u64)],
        };
        assert!(check_case(&d, Layer::Spec, &case).is_err());
    }
}
