//! Counterexample capture: typed waveform recording from every executable
//! layer, plus self-contained replay bundles.
//!
//! When a conformance case diverges (and only then — on the already-shrunk
//! final counterexample, so the green path never pays for any of this),
//! [`capture_failure`] re-runs the case through each recordable layer —
//! the Chisel interpreter, the `when`-flattened interpreter, the compiled
//! slot-VM, and the generated sequential program — producing one typed
//! [`Trace`] per layer, marks the first divergent cycle/signal across the
//! pair that actually disagrees, and writes the VCDs next to a
//! schema-versioned JSON [`ReplayBundle`] under `target/chicala-failures/`
//! (see [`chicala_trace::bundle`]). Gate-layer failures instead re-derive
//! the formal counterexample and render it as a one-cycle miter trace with
//! the design and golden cones side by side.

use crate::engine::{
    elab, formal_gate_obligation, sim_plan, svalue_scalar, transform_arc, word_value, Case,
    Config, Failure, FormalObligation, Layer,
};
use crate::registry::Design;
use chicala_bigint::BigInt;
use chicala_chisel::{elaborate, flatten_whens, Bindings, CompiledSim, ElabKind, Simulator};
use chicala_lowlevel::{prove_net, Backend, ProveResult};
use chicala_seq::{SValue, SeqRunner};
use chicala_telemetry as telemetry;
use chicala_trace::{
    capture_enabled, first_divergence, git_rev, mark_pair, replay, Divergence, ReplayBundle,
    SignalKind, Trace, SCHEMA_VERSION,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Trace scope names, one per recordable layer.
pub const SCOPE_INTERP: &str = "chisel_interp";
/// The `when`-flattened interpreter's scope.
pub const SCOPE_FLAT: &str = "flat_interp";
/// The compiled slot-VM's scope.
pub const SCOPE_COMPILED: &str = "compiled_vm";
/// The generated sequential program's scope.
pub const SCOPE_SEQ: &str = "seq_program";
/// The gate-level miter counterexample's scope.
pub const SCOPE_MITER: &str = "gates_miter";

fn elab_kind(kind: &ElabKind) -> Option<SignalKind> {
    match kind {
        ElabKind::Input => Some(SignalKind::Input),
        ElabKind::Output => Some(SignalKind::Output),
        ElabKind::Reg { .. } => Some(SignalKind::Register),
        // Wires are combinational internals; re-deriving them per cycle
        // needs `peek` per signal and adds little over outputs + registers.
        ElabKind::Wire => None,
    }
}

/// Drives a `Simulator` over `em`-shaped signals for `case.cycles` cycles,
/// recording inputs, outputs, and post-commit register values per cycle.
fn record_simulator(
    scope: &str,
    em: &chicala_chisel::ElabModule,
    case: &Case,
    inputs: &BTreeMap<String, BigInt>,
) -> Result<Trace, String> {
    let mut t = Trace::new(scope);
    // (signal name, kind) pairs; kind picks the source map per cycle.
    // Declared kind-grouped — the VCD writer emits one sub-scope per
    // kind, so this keeps a parse round trip exact.
    let mut plan: Vec<(String, SignalKind)> = Vec::new();
    for want in [SignalKind::Input, SignalKind::Output, SignalKind::Register] {
        for sig in &em.signals {
            match elab_kind(&sig.kind) {
                Some(kind) if kind == want => {
                    t.declare(&sig.name, sig.width, kind);
                    plan.push((sig.name.clone(), kind));
                }
                _ => {}
            }
        }
    }
    let mut sim = Simulator::new(em, &BTreeMap::new()).map_err(|e| e.to_string())?;
    for _ in 0..case.cycles {
        let outputs = sim.step(inputs).map_err(|e| e.to_string())?;
        let row = plan
            .iter()
            .map(|(name, kind)| {
                let v = match kind {
                    SignalKind::Input => inputs.get(name),
                    SignalKind::Output => outputs.get(name),
                    _ => sim.reg(name),
                };
                v.cloned().unwrap_or_else(BigInt::zero)
            })
            .collect();
        t.push_cycle(row);
    }
    Ok(t)
}

/// Records the reference Chisel interpreter.
pub fn interp_trace(d: &Design, case: &Case) -> Result<Trace, String> {
    let em = elab(d, case.width)?;
    record_simulator(SCOPE_INTERP, &em, case, &case.input_map(d))
}

/// Records the interpreter on the `when`-flattened module.
pub fn flat_trace(d: &Design, case: &Case) -> Result<Trace, String> {
    let m = (d.build)();
    let flat = flatten_whens(&m).map_err(|e| format!("{}: flatten: {e}", d.name))?;
    let bindings: Bindings = [("len".to_string(), case.width as i64)].into_iter().collect();
    let em = elaborate(&flat, &bindings)
        .map_err(|e| format!("{}: flattened elaboration at width {}: {e}", d.name, case.width))?;
    record_simulator(SCOPE_FLAT, &em, case, &case.input_map(d))
}

/// Records the compiled slot-VM, using the compile-time symbol table for
/// names and widths. Errs when the design is outside the compiled subset.
pub fn compiled_trace(d: &Design, case: &Case) -> Result<Trace, String> {
    let plan = sim_plan(d, case.width)?;
    let Some(cm) = &plan.chisel else {
        return Err(format!("{}: no compiled module at width {}", d.name, case.width));
    };
    let inputs = case.input_map(d);
    let mut t = Trace::new(SCOPE_COMPILED);
    for i in 0..cm.inputs_len() {
        t.declare(cm.input_name(i), cm.input_width(i), SignalKind::Input);
    }
    for i in 0..cm.outputs_len() {
        t.declare(cm.output_name(i), cm.output_width(i), SignalKind::Output);
    }
    for i in 0..cm.regs_len() {
        t.declare(cm.reg_name(i), cm.reg_width(i), SignalKind::Register);
    }
    let mut vm = CompiledSim::new(cm, &BTreeMap::new());
    vm.set_inputs(&inputs);
    for _ in 0..case.cycles {
        vm.step();
        let mut row = Vec::with_capacity(cm.inputs_len() + cm.outputs_len() + cm.regs_len());
        for i in 0..cm.inputs_len() {
            row.push(inputs.get(cm.input_name(i)).cloned().unwrap_or_else(BigInt::zero));
        }
        for i in 0..cm.outputs_len() {
            row.push(vm.output_value(i));
        }
        for i in 0..cm.regs_len() {
            row.push(vm.reg_value(i));
        }
        t.push_cycle(row);
    }
    Ok(t)
}

/// Records the generated sequential program via the tree-walking
/// [`SeqRunner`]. Widths come from the elaborated module where the names
/// match (the cosim contract guarantees they do for everything compared).
pub fn seq_trace(d: &Design, case: &Case) -> Result<Trace, String> {
    let em = elab(d, case.width)?;
    let prog = transform_arc(d)?;
    let width_of = |name: &str| -> u64 {
        em.signals.iter().find(|s| s.name == name).map(|s| s.width).unwrap_or(64)
    };
    let runner = SeqRunner::new(
        &prog,
        [("len".to_string(), BigInt::from(case.width))].into_iter().collect(),
    );
    let inputs = case.input_map(d);
    let sw_inputs: BTreeMap<String, SValue> =
        inputs.iter().map(|(k, v)| (k.clone(), SValue::Int(v.clone()))).collect();
    let mut regs = runner.init_regs(&BTreeMap::new()).map_err(|e| e.to_string())?;

    // Two passes: collect the rows first, then declare signals from the
    // names the program actually produced (scalar outputs and registers).
    let mut rows: Vec<(BTreeMap<String, BigInt>, BTreeMap<String, BigInt>)> = Vec::new();
    for cycle in 0..case.cycles {
        let sw = runner
            .trans(&sw_inputs, &regs)
            .map_err(|e| format!("{}: sequential step failed at cycle {cycle}: {e}", d.name))?;
        let outs = sw
            .outputs
            .iter()
            .filter_map(|(k, v)| svalue_scalar(v).map(|b| (k.clone(), b)))
            .collect();
        let rs = sw
            .regs
            .iter()
            .filter_map(|(k, v)| svalue_scalar(v).map(|b| (k.clone(), b)))
            .collect();
        rows.push((outs, rs));
        regs = sw.regs;
    }
    let mut t = Trace::new(SCOPE_SEQ);
    let mut plan: Vec<(String, SignalKind)> = Vec::new();
    for name in inputs.keys() {
        t.declare(name, width_of(name), SignalKind::Input);
        plan.push((name.clone(), SignalKind::Input));
    }
    if let Some((outs, rs)) = rows.first() {
        for name in outs.keys() {
            t.declare(name, width_of(name), SignalKind::Output);
            plan.push((name.clone(), SignalKind::Output));
        }
        for name in rs.keys() {
            t.declare(name, width_of(name), SignalKind::Register);
            plan.push((name.clone(), SignalKind::Register));
        }
    }
    for (outs, rs) in &rows {
        let row = plan
            .iter()
            .map(|(name, kind)| {
                let v = match kind {
                    SignalKind::Input => inputs.get(name),
                    SignalKind::Output => outs.get(name),
                    _ => rs.get(name),
                };
                v.cloned().unwrap_or_else(BigInt::zero)
            })
            .collect();
        t.push_cycle(row);
    }
    Ok(t)
}

/// Renders a decoded gate-level counterexample as a one-cycle trace: the
/// concrete inputs, the design's registers and outputs under the model,
/// and the golden cone values noted by the spec builder as `golden_*`
/// wires. The divergence marks the first design signal whose golden twin
/// disagrees.
pub fn miter_trace(ob: &FormalObligation, vals: &[bool]) -> Trace {
    let mut t = Trace::new(SCOPE_MITER);
    let mut row = Vec::new();
    for (name, word) in &ob.inputs {
        t.declare(name, word.bits.len() as u64, SignalKind::Input);
        row.push(word_value(word, vals));
    }
    for (name, word) in &ob.state.outputs {
        t.declare(name, word.bits.len() as u64, SignalKind::Output);
        row.push(word_value(word, vals));
    }
    for (name, word) in &ob.state.regs {
        t.declare(name, word.bits.len() as u64, SignalKind::Register);
        row.push(word_value(word, vals));
    }
    let mut divergence = None;
    for (name, word) in &ob.golden {
        t.declare(format!("golden_{name}"), word.bits.len() as u64, SignalKind::Wire);
        let golden = word_value(word, vals);
        let design = ob
            .state
            .regs
            .get(name)
            .or_else(|| ob.state.outputs.get(name))
            .map(|w| word_value(w, vals));
        if divergence.is_none() {
            if let Some(design) = &design {
                if *design != golden {
                    divergence = Some(Divergence {
                        cycle: 0,
                        signal: name.clone(),
                        expected: golden.to_string(),
                        actual: design.to_string(),
                    });
                }
            }
        }
        row.push(golden);
    }
    t.push_cycle(row);
    t.divergence = divergence;
    t
}

/// Records every recordable layer for `case` (executable layers for cosim
/// and spec failures, the formal miter for gate failures), marking the
/// first divergent cycle/signal on the earliest-diverging pair. Returns
/// the traces and the marked divergence, if any.
pub fn capture_traces(
    d: &Design,
    layer: Layer,
    case: &Case,
) -> (Vec<Trace>, Option<Divergence>) {
    if layer == Layer::Gates {
        if let Ok(Some(ob)) = formal_gate_obligation(d, case.width) {
            let backend = Backend::from_env().unwrap_or(Backend::Auto);
            if let ProveResult::Counterexample { inputs: cex, .. } =
                prove_net(&ob.netlist, ob.property, backend, case.width as usize, &ob.var_order)
            {
                let vals = ob.netlist.eval(&|net| cex.get(&net).copied().unwrap_or(false));
                let t = miter_trace(&ob, &vals);
                let div = t.divergence.clone();
                return (vec![t], div);
            }
        }
        // The formal proof holds (or the design has no golden model): the
        // failure came from the concrete gate path — fall through and
        // record the executable layers instead.
    }
    let mut traces: Vec<Trace> = [interp_trace(d, case), seq_trace(d, case), compiled_trace(d, case), flat_trace(d, case)]
        .into_iter()
        .filter_map(Result::ok)
        .collect();
    // Mark the earliest-diverging pair (the reference interpreter records
    // first, so it is preferred as the `expected` side of the pair).
    let mut best: Option<(usize, usize, Divergence)> = None;
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            if let Some(div) = first_divergence(&traces[i], &traces[j]) {
                if best.as_ref().is_none_or(|(_, _, b)| div.cycle < b.cycle) {
                    best = Some((i, j, div));
                }
            }
        }
    }
    let divergence = best.map(|(i, j, _)| {
        let (a, b) = traces.split_at_mut(j);
        mark_pair(&mut a[i], &mut b[0]).expect("pair diverges")
    });
    (traces, divergence)
}

/// Captures a failed (already shrunk) conformance case end to end: records
/// the layer traces, builds the schema-versioned [`ReplayBundle`], writes
/// everything under the failures directory, and emits the
/// `conformance.divergence` telemetry event carrying the bundle path.
/// Returns `None` when capture is disabled (`CHICALA_TRACE_FAILURES=0`) or
/// the artifacts cannot be written.
pub fn capture_failure(d: &Design, failure: &Failure, cfg: &Config) -> Option<PathBuf> {
    if !capture_enabled() {
        return None;
    }
    let case = failure.shrunk.normalized(d);
    let (traces, divergence) = capture_traces(d, failure.layer, &case);
    let backend = format!("{:?}", Backend::from_env().unwrap_or(Backend::Auto)).to_lowercase();
    let mut bundle = ReplayBundle {
        schema: SCHEMA_VERSION,
        kind: "conformance".to_string(),
        design: failure.design.clone(),
        layer: failure.layer.name().to_string(),
        backend,
        sim_backend: cfg.backend.name().to_string(),
        master_seed: failure.master_seed,
        case_seed: failure.case_seed,
        max_width: failure.max_width,
        width: case.width,
        cycles: case.cycles,
        inputs: d
            .inputs
            .iter()
            .zip(&case.inputs)
            .map(|(spec, v)| (spec.name.to_string(), v.to_string()))
            .collect(),
        message: failure.message.clone(),
        divergence,
        module: String::new(),
        git_rev: git_rev(),
        replay_env: replay::env_replay_line(
            "CHICALA_SEED",
            failure.master_seed,
            "cargo test -q --test conformance",
        ),
        replay_cmd: format!(
            "cargo run --release --example conformance -- --design {} --max-width {} --replay {}",
            failure.design,
            failure.max_width,
            replay::format_seed(failure.case_seed),
        ),
        vcd_files: Vec::new(),
    };
    let refs: Vec<&Trace> = traces.iter().collect();
    let path = bundle.write_with_traces(&refs).ok()?;
    telemetry::event(
        "conformance.divergence",
        &[
            ("design", failure.design.clone()),
            ("layer", failure.layer.name().to_string()),
            ("bundle", path.display().to_string()),
        ],
    );
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_trace::vcd::{parse_vcd, write_vcd, MARKER};

    fn known_case() -> Case {
        Case {
            width: 4,
            cycles: 5,
            inputs: vec![BigInt::from(11u64), BigInt::from(13u64)],
        }
    }

    #[test]
    fn four_layers_record_and_agree_on_a_passing_case() {
        let d = Design::by_name("rmul").expect("registered");
        let case = known_case().normalized(&d);
        let traces = [
            interp_trace(&d, &case).expect("interp records"),
            flat_trace(&d, &case).expect("flat records"),
            compiled_trace(&d, &case).expect("compiled records"),
            seq_trace(&d, &case).expect("seq records"),
        ];
        for t in &traces {
            assert_eq!(t.len(), case.cycles as usize, "{}: one row per cycle", t.scope);
            assert!(t.signal_index("acc").is_some(), "{}: has the accumulator", t.scope);
        }
        for pair in traces.windows(2) {
            assert_eq!(
                first_divergence(&pair[0], &pair[1]),
                None,
                "{} vs {} on a passing case",
                pair[0].scope,
                pair[1].scope
            );
        }
        // And the VCD round trip preserves each layer exactly.
        for t in &traces {
            assert_eq!(parse_vcd(&write_vcd(t)).expect("parses"), *t, "{}", t.scope);
        }
    }

    #[test]
    fn miter_trace_carries_both_cones_and_marks_the_divergence() {
        let d = Design::by_name("rmul").expect("registered");
        let ob = formal_gate_obligation(&d, 4).expect("builds").expect("has a golden model");
        assert!(ob.golden.contains_key("acc"), "spec noted its golden cone");
        // All-false inputs: a*b = 0 and the design's zero-initialised
        // accumulator agrees, so no divergence is marked.
        let vals = ob.netlist.eval(&|_| false);
        let t = miter_trace(&ob, &vals);
        assert_eq!(t.len(), 1, "one-cycle trace");
        assert!(t.signal_index("acc").is_some());
        assert!(t.signal_index("golden_acc").is_some());
        assert_eq!(t.divergence, None, "agreeing cones are unmarked");
        assert_eq!(t.value(0, "acc"), t.value(0, "golden_acc"));
        let vcd = write_vcd(&t);
        assert!(!vcd.contains(MARKER), "no marker without a divergence");
    }
}
