//! `chicala-conformance`: the cross-layer differential conformance engine.
//!
//! The paper's claim rests on four semantic layers agreeing: the Chisel IR
//! reference interpreter, the generated sequential program (`Trans`/`Run`),
//! the per-width gate-level bit-blast baseline, and the verifier's symbolic
//! execution of `Trans`. This crate checks the three executable layers (the
//! fourth is what the deductive verifier covers) against each other and
//! against pure mathematical specs, for every registered design, under a
//! deterministic seeded PRNG with greedy counterexample shrinking.
//!
//! Surfaces:
//!
//! * Library: [`run_all`] / [`run_design`] / [`check_case`].
//! * Integration test: `tests/conformance.rs` at the workspace root runs
//!   the full registry on every `cargo test`.
//! * CLI: `cargo run --release --example conformance -- --design xmul
//!   --seed 7 --cases 5000 --max-width 48` for long soak runs.
//!
//! Replay: every failure prints the master seed and a per-case seed; set
//! `CHICALA_SEED` to the master seed to repeat a whole run, or pass the
//! case seed to the CLI `--replay` flag (or [`replay_case`]) to re-check a
//! single case. Failures worth keeping go into
//! `proptest-regressions/conformance.txt`, which [`regressions::replay_all`]
//! re-runs before any random exploration.

pub mod cache;
pub mod capture;
pub mod engine;
pub mod registry;
pub mod regressions;
pub mod rng;
pub mod shrink;

pub use engine::{
    check_case, check_case_with, final_state, formal_gate_obligation, gen_case, gen_case_for,
    formal_gate_obligation_shared, replay_case, run_all, run_design, sweep_gates_formal, Case,
    Config, Failure, FormalObligation, Layer, LayerStats, Report, SharedObligation, SimBackend,
    SweepVerdicts,
};
pub use registry::{all_designs, drill_designs, Design, FinalState, GateEnv, GateSpecFn, InputSpec};
pub use capture::{capture_failure, capture_traces, miter_trace};
pub use rng::{seed_from_env, SplitMix64};
pub use shrink::shrink;
