//! Committed regression seeds: every failure found by a soak run is
//! recorded as a `(design, layer, case_seed, max_width)` line in
//! `proptest-regressions/conformance.txt` (kept in the proptest-style
//! location and spirit: a plain-text, diff-friendly corpus replayed before
//! any random exploration). The file is embedded at compile time so tests
//! replay it regardless of the working directory.

use crate::engine::{replay_case, Layer};
use crate::registry::Design;

/// The embedded regression corpus.
pub const CORPUS: &str = include_str!("../../../proptest-regressions/conformance.txt");

/// One parsed regression entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Regression {
    /// Registry name of the design.
    pub design: String,
    /// Layer the divergence was seen on.
    pub layer: Layer,
    /// Per-case seed (regenerates the exact case).
    pub case_seed: u64,
    /// Width cap the case was generated under.
    pub max_width: u64,
}

/// Parses the corpus format: `cc <design> <layer> <case-seed-hex> <max-width>`
/// per line; `#` starts a comment. Malformed lines are reported, not
/// skipped silently.
pub fn parse(corpus: &str) -> Result<Vec<Regression>, String> {
    let mut out = Vec::new();
    for (lineno, line) in corpus.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let err = |what: &str| format!("regression line {}: {what}: {line:?}", lineno + 1);
        if fields.len() != 5 || fields[0] != "cc" {
            return Err(err("expected `cc <design> <layer> <seed-hex> <max-width>`"));
        }
        let layer = Layer::parse(fields[2]).ok_or_else(|| err("unknown layer"))?;
        let seed = fields[3]
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| err("seed must be 0x-prefixed hex"))?;
        let max_width = fields[4].parse().map_err(|_| err("bad max-width"))?;
        out.push(Regression {
            design: fields[1].to_string(),
            layer,
            case_seed: seed,
            max_width,
        });
    }
    Ok(out)
}

/// Replays every committed regression; returns the failures (empty when
/// the corpus is green).
pub fn replay_all() -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    for r in parse(CORPUS)? {
        let d = Design::by_name(&r.design)
            .ok_or_else(|| format!("regression names unknown design `{}`", r.design))?;
        if let Err(e) = replay_case(&d, r.layer, r.case_seed, r.max_width) {
            failures.push(format!(
                "{} {} case=0x{:016X}: {e}",
                r.design,
                r.layer,
                r.case_seed
            ));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses() {
        let regs = parse(CORPUS).expect("committed corpus is well-formed");
        for r in &regs {
            assert!(
                Design::by_name(&r.design).is_some(),
                "regression for unregistered design `{}`",
                r.design
            );
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("cc xmul cosim 0x12 16").is_ok());
        assert!(parse("cc xmul cosim 18 16").is_err(), "decimal seed rejected");
        assert!(parse("cc xmul nope 0x12 16").is_err(), "unknown layer rejected");
        assert!(parse("xmul cosim 0x12 16").is_err(), "missing cc tag rejected");
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }
}
