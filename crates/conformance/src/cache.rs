//! Content-addressed caching hook for compiled simulation programs.
//!
//! Compiling an [`ElabModule`] into a slot program
//! ([`chicala_chisel::compile`]) is a pure function of the elaborated
//! structure, so the program is cacheable by the module's content digest
//! ([`ElabModule::digest_into`]). The in-process `sim_plan` memo already
//! shares one program across cases and workers; this hook extends that
//! across *processes* — a daemon restart, a fresh `cargo test`, or a bench
//! run can reuse programs compiled by an earlier life.
//!
//! Soundness posture: the payload is a [`CompiledModule`] byte encoding
//! whose decoder rejects truncation, trailing bytes, and out-of-range slot
//! references, and the store layer re-verifies the key transcript and a
//! payload checksum on read. A payload that fails any of those checks is a
//! miss — the program recompiles from source. On top of that, a decoded
//! program whose `name` disagrees with the module is discarded.

use chicala_chisel::{CompiledModule, ElabModule};
use chicala_telemetry as telemetry;
use std::hash::Hasher;
use std::sync::{Arc, RwLock};

/// Bumped when the key shape changes (the payload carries its own codec
/// version inside [`CompiledModule::encode`]).
pub const PROGRAM_KEY_SCHEMA: u32 = 1;

/// A content-addressed store for compiled simulation programs.
pub trait ProgramCache: Send + Sync {
    /// Returns the stored payload for an identical key, if any.
    fn lookup(&self, key: &[u8], digest: u128) -> Option<Vec<u8>>;
    /// Persists `payload` under `key`; failures must be silent.
    fn store(&self, key: &[u8], digest: u128, payload: &[u8]);
}

static PROGRAM_CACHE: RwLock<Option<Arc<dyn ProgramCache>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide program cache.
pub fn set_program_cache(cache: Option<Arc<dyn ProgramCache>>) {
    *PROGRAM_CACHE.write().expect("program cache slot") = cache;
}

fn program_cache() -> Option<Arc<dyn ProgramCache>> {
    PROGRAM_CACHE.read().expect("program cache slot").clone()
}

/// The canonical key of a compiled program: two independently-seeded
/// digests of the elaborated module content (the same O(1)-bytes
/// transcript scheme as the VC cache — a served hit must collide both).
pub fn program_key(em: &ElabModule) -> (Vec<u8>, u128) {
    let mut h = telemetry::Fnv128::new();
    h.write(b"chicala-program");
    h.write(&PROGRAM_KEY_SCHEMA.to_le_bytes());
    em.digest_into(&mut h);
    let digest = h.finish128();
    let mut h2 = telemetry::Fnv128::new();
    h2.write(b"chicala-program-check");
    h2.write(&PROGRAM_KEY_SCHEMA.to_le_bytes());
    em.digest_into(&mut h2);
    let mut key = Vec::with_capacity(51);
    key.extend_from_slice(b"chicala-program");
    key.extend_from_slice(&PROGRAM_KEY_SCHEMA.to_le_bytes());
    key.extend_from_slice(&digest.to_le_bytes());
    key.extend_from_slice(&h2.finish128().to_le_bytes());
    // The address is the digest *of the key bytes* — the store's contract
    // (it refuses any entry whose address it cannot re-derive from the
    // stored key on read). Content sensitivity is inherited: both content
    // digests are embedded in the key.
    let mut ha = telemetry::Fnv128::new();
    ha.write(&key);
    let address = ha.finish128();
    (key, address)
}

/// Looks up a compiled program for `em`, if a cache is installed and has
/// a decodable entry.
pub(crate) fn cached_program(em: &ElabModule) -> Option<CompiledModule> {
    let cache = program_cache()?;
    let (key, digest) = program_key(em);
    let payload = match cache.lookup(&key, digest) {
        Some(p) => p,
        None => {
            telemetry::counter("cache.program.miss", 1);
            return None;
        }
    };
    match CompiledModule::decode(&payload) {
        Some(prog) if prog.name == em.name => {
            telemetry::counter("cache.program.hit", 1);
            Some(prog)
        }
        _ => {
            telemetry::counter("cache.program.undecodable", 1);
            None
        }
    }
}

/// Persists a freshly compiled program for `em`.
pub(crate) fn store_program(em: &ElabModule, prog: &CompiledModule) {
    if let Some(cache) = program_cache() {
        let (key, digest) = program_key(em);
        cache.store(&key, digest, &prog.encode());
    }
}
