//! The design registry: every case-study design, described uniformly
//! enough that the differential engine can drive all comparable layers
//! without per-design code. Adding an entry to [`all_designs`] enrolls the
//! design in every conformance check (library, integration test, and CLI).

use chicala_bigint::BigInt;
use chicala_chisel::Module;
use std::collections::BTreeMap;

/// One input port of a design, with generation constraints.
#[derive(Clone, Copy, Debug)]
pub struct InputSpec {
    /// Port name (e.g. `io_a`).
    pub name: &'static str,
    /// Must be non-zero (divisors).
    pub nonzero: bool,
}

/// Register and output values observed after the design's full run.
#[derive(Clone, Debug)]
pub struct FinalState {
    /// Register values (unsigned views) after the last cycle.
    pub regs: BTreeMap<String, BigInt>,
    /// Output values of the last cycle.
    pub outputs: BTreeMap<String, BigInt>,
}

/// A pure mathematical specification: given the elaboration width and the
/// (width-masked) inputs, decide whether the final state is the correct
/// answer. Returns a divergence description on failure.
pub type SpecFn = fn(u64, &BTreeMap<String, BigInt>, &FinalState) -> Result<(), String>;

/// A registered design: everything the engine needs to drive the Chisel
/// interpreter, the generated sequential program, the gate-level baseline,
/// and the mathematical spec in lockstep.
pub struct Design {
    /// Registry key (CLI `--design` argument).
    pub name: &'static str,
    /// Builds the Chisel-subset module.
    pub build: fn() -> Module,
    /// Input ports in generation order.
    pub inputs: &'static [InputSpec],
    /// Smallest width the design elaborates at.
    pub min_width: u64,
    /// Width cap for the (exponentially priced) gate-level layer.
    pub gate_max_width: u64,
    /// Cycles from reset until the result registers hold the final answer
    /// (inputs held constant, run started from the ready state).
    pub latency: fn(u64) -> u64,
    /// The mathematical answer check at `latency` cycles.
    pub spec: SpecFn,
}

impl Design {
    /// Looks up a registered design by name.
    pub fn by_name(name: &str) -> Option<Design> {
        all_designs().into_iter().find(|d| d.name == name)
    }
}

fn reg<'a>(fin: &'a FinalState, name: &str) -> Result<&'a BigInt, String> {
    fin.regs.get(name).ok_or_else(|| format!("final state has no register `{name}`"))
}

fn input<'a>(ins: &'a BTreeMap<String, BigInt>, name: &str) -> &'a BigInt {
    ins.get(name).expect("engine supplies every declared input")
}

fn expect_eq(what: &str, got: &BigInt, want: &BigInt) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: got {got}, spec says {want}"))
    }
}

fn rotate_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    // After 1 + len cycles the register has rotated all the way around and
    // regained the input (the paper's §2 running example).
    expect_eq("rotate R", reg(fin, "R")?, input(ins, "io_in"))
}

fn popcount_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = BigInt::from(input(ins, "io_in").count_ones());
    let got = fin
        .outputs
        .get("io_out")
        .ok_or_else(|| "final state has no output `io_out`".to_string())?;
    expect_eq("popcount io_out", got, &want)
}

fn rmul_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = input(ins, "io_a") * input(ins, "io_b");
    expect_eq("rmul acc", reg(fin, "acc")?, &want)
}

fn xmul_spec(w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    // Carry-save accumulator: the product is the sum of the two halves,
    // reduced to the accumulator width 2*len + 2.
    let want = input(ins, "io_a") * input(ins, "io_b");
    let sum = (reg(fin, "acc_s")? + reg(fin, "acc_c")?).mod_floor(&BigInt::pow2(2 * w + 2));
    expect_eq("xmul acc_s + acc_c", &sum, &want)
}

fn rdiv_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let (n, d) = (input(ins, "io_n"), input(ins, "io_d"));
    expect_eq("rdiv quot", reg(fin, "quot")?, &n.div_floor(d))?;
    expect_eq("rdiv rem", reg(fin, "rem")?, &n.mod_floor(d))
}

fn xdiv_spec(w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    // The X-divider packs remainder above quotient in one shift register:
    // shiftReg = rem * 2^(len+1) + quot.
    let (n, d) = (input(ins, "io_n"), input(ins, "io_d"));
    let s = reg(fin, "shiftReg")?;
    let half = BigInt::pow2(w + 1);
    expect_eq("xdiv quot (shiftReg low half)", &s.mod_floor(&half), &n.div_floor(d))?;
    expect_eq("xdiv rem (shiftReg high half)", &s.div_floor(&half), &n.mod_floor(d))
}

/// All registered designs. The single enrollment point: every conformance
/// surface (library runs, `tests/conformance.rs`, the CLI soak) iterates
/// this list.
pub fn all_designs() -> Vec<Design> {
    vec![
        Design {
            name: "rotate",
            build: chicala_designs::rotate::module,
            inputs: &[InputSpec { name: "io_in", nonzero: false }],
            // At len=1 the body's `R(len-1, 1)` extract is empty — the
            // design (like the original Chisel) needs at least 2 bits.
            min_width: 2,
            gate_max_width: 10,
            latency: |w| w + 1,
            spec: rotate_spec,
        },
        Design {
            name: "popcount",
            build: chicala_designs::popcount::module,
            inputs: &[InputSpec { name: "io_in", nonzero: false }],
            min_width: 1,
            gate_max_width: 10,
            latency: |_| 1,
            spec: popcount_spec,
        },
        Design {
            name: "rmul",
            build: chicala_designs::rmul::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
            ],
            min_width: 1,
            gate_max_width: 8,
            latency: |w| w + 1,
            spec: rmul_spec,
        },
        Design {
            name: "xmul",
            build: chicala_designs::xmul::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
            ],
            min_width: 1,
            gate_max_width: 6,
            // Radix-4: one digit per cycle after the latch cycle.
            latency: |w| w / 2 + 2,
            spec: xmul_spec,
        },
        Design {
            name: "rdiv",
            build: chicala_designs::rdiv::module,
            inputs: &[
                InputSpec { name: "io_n", nonzero: false },
                InputSpec { name: "io_d", nonzero: true },
            ],
            min_width: 1,
            gate_max_width: 8,
            latency: |w| w + 1,
            spec: rdiv_spec,
        },
        Design {
            name: "xdiv",
            build: chicala_designs::xdiv::module,
            inputs: &[
                InputSpec { name: "io_n", nonzero: false },
                InputSpec { name: "io_d", nonzero: true },
            ],
            min_width: 1,
            gate_max_width: 6,
            latency: |w| w + 1,
            spec: xdiv_spec,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        let designs = all_designs();
        assert!(designs.len() >= 6, "all case studies enrolled");
        let mut names: Vec<_> = designs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), designs.len(), "names unique");
        for d in &designs {
            let m = (d.build)();
            for spec in d.inputs {
                assert!(
                    m.decl(spec.name).is_some(),
                    "{}: input `{}` not declared by module",
                    d.name,
                    spec.name
                );
            }
            assert!((d.latency)(4) >= 1, "{}: latency must be positive", d.name);
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(Design::by_name("xmul").is_some());
        assert!(Design::by_name("nope").is_none());
    }
}
