//! The design registry: every case-study design, described uniformly
//! enough that the differential engine can drive all comparable layers
//! without per-design code. Adding an entry to [`all_designs`] enrolls the
//! design in every conformance check (library, integration test, and CLI).

use chicala_bigint::BigInt;
use chicala_chisel::Module;
use chicala_lowlevel::{
    add_words, constant_word, extend, ge_words, mux_word, nets_equal, sub_words, BitKit, Net,
    Netlist, UnrolledState, Word,
};
use std::collections::BTreeMap;

/// One input port of a design, with generation constraints.
#[derive(Clone, Copy, Debug)]
pub struct InputSpec {
    /// Port name (e.g. `io_a`).
    pub name: &'static str,
    /// Must be non-zero (divisors).
    pub nonzero: bool,
}

/// Register and output values observed after the design's full run.
#[derive(Clone, Debug)]
pub struct FinalState {
    /// Register values (unsigned views) after the last cycle.
    pub regs: BTreeMap<String, BigInt>,
    /// Output values of the last cycle.
    pub outputs: BTreeMap<String, BigInt>,
}

/// A pure mathematical specification: given the elaboration width and the
/// (width-masked) inputs, decide whether the final state is the correct
/// answer. Returns a divergence description on failure.
pub type SpecFn = fn(u64, &BTreeMap<String, BigInt>, &FinalState) -> Result<(), String>;

/// Everything a gate-level golden model sees: the elaboration width, the
/// fresh symbolic input words, and the design's symbolic state after its
/// full latency.
pub struct GateEnv<'a> {
    /// Elaboration width (`len`).
    pub width: u64,
    /// Fresh symbolic input words, keyed by port name.
    pub inputs: &'a BTreeMap<String, Word<Net>>,
    /// Register and output words after `latency` symbolic cycles.
    pub state: &'a UnrolledState<Net>,
    /// Golden-cone words noted by the spec builder, keyed by the design
    /// signal each is compared against. Counterexample decoding reads
    /// these to render the golden side of the miter next to the design's
    /// (see `capture::miter_trace`).
    pub golden: std::cell::RefCell<BTreeMap<String, Word<Net>>>,
}

impl<'a> GateEnv<'a> {
    /// A fresh environment with an empty golden notebook.
    pub fn new(
        width: u64,
        inputs: &'a BTreeMap<String, Word<Net>>,
        state: &'a UnrolledState<Net>,
    ) -> GateEnv<'a> {
        GateEnv { width, inputs, state, golden: Default::default() }
    }

    /// Notes `word` as the golden value for design signal `name`.
    pub fn note_golden(&self, name: &str, word: &Word<Net>) {
        self.golden.borrow_mut().insert(name.to_string(), word.clone());
    }
}

/// Builds the formal gate-level obligation for one design: a single net
/// that must be constant-true over all input assignments at this width.
///
/// Golden models mirror the design's register recurrence *structurally*
/// (same adder/comparator/mux shapes, built from the public blaster
/// helpers), so the AIG front-end's constant propagation and structural
/// hashing collapse the miter and the SAT engine stays near-linear even at
/// widths where a monolithic BDD blows up.
pub type GateSpecFn = fn(&mut Netlist, &GateEnv) -> Net;

/// A registered design: everything the engine needs to drive the Chisel
/// interpreter, the generated sequential program, the gate-level baseline,
/// and the mathematical spec in lockstep.
pub struct Design {
    /// Registry key (CLI `--design` argument).
    pub name: &'static str,
    /// Builds the Chisel-subset module.
    pub build: fn() -> Module,
    /// Input ports in generation order.
    pub inputs: &'static [InputSpec],
    /// Smallest width the design elaborates at.
    pub min_width: u64,
    /// Width cap for the gate-level layer (concrete evaluation plus, when
    /// [`Design::gate_spec`] is set, one formal equivalence proof per
    /// width via [`chicala_lowlevel::Backend::Auto`]).
    pub gate_max_width: u64,
    /// Cycles from reset until the result registers hold the final answer
    /// (inputs held constant, run started from the ready state).
    pub latency: fn(u64) -> u64,
    /// The mathematical answer check at `latency` cycles.
    pub spec: SpecFn,
    /// Gate-level golden model for the formal (all-inputs) check; `None`
    /// limits the gates layer to concrete sampling.
    pub gate_spec: Option<GateSpecFn>,
}

impl Design {
    /// Looks up a registered design by name. Besides [`all_designs`], the
    /// hidden drill designs ([`drill_designs`]) resolve here, so the CLI
    /// and replay bundles can exercise the failure path on demand without
    /// the drills ever entering a normal soak.
    pub fn by_name(name: &str) -> Option<Design> {
        all_designs()
            .into_iter()
            .chain(drill_designs())
            .find(|d| d.name == name)
    }
}

fn reg<'a>(fin: &'a FinalState, name: &str) -> Result<&'a BigInt, String> {
    fin.regs.get(name).ok_or_else(|| format!("final state has no register `{name}`"))
}

fn input<'a>(ins: &'a BTreeMap<String, BigInt>, name: &str) -> &'a BigInt {
    ins.get(name).expect("engine supplies every declared input")
}

fn expect_eq(what: &str, got: &BigInt, want: &BigInt) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        Err(format!("{what}: got {got}, spec says {want}"))
    }
}

fn rotate_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    // After 1 + len cycles the register has rotated all the way around and
    // regained the input (the paper's §2 running example).
    expect_eq("rotate R", reg(fin, "R")?, input(ins, "io_in"))
}

fn popcount_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = BigInt::from(input(ins, "io_in").count_ones());
    let got = fin
        .outputs
        .get("io_out")
        .ok_or_else(|| "final state has no output `io_out`".to_string())?;
    expect_eq("popcount io_out", got, &want)
}

fn rmul_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = input(ins, "io_a") * input(ins, "io_b");
    expect_eq("rmul acc", reg(fin, "acc")?, &want)
}

/// The drill spec: deliberately demands `acc == a*b + 1`, so `rmul_drill`
/// fails its spec layer on every case. Used by the failure-capture drill
/// (CI and `tests/failure_capture.rs`) to produce a real bundle + VCD pair
/// deterministically without breaking any registered design.
fn rmul_drill_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = input(ins, "io_a") * input(ins, "io_b") + BigInt::one();
    expect_eq("rmul_drill acc", reg(fin, "acc")?, &want)
}

fn xmul_spec(w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    // Carry-save accumulator: the product is the sum of the two halves,
    // reduced to the accumulator width 2*len + 2.
    let want = input(ins, "io_a") * input(ins, "io_b");
    let sum = (reg(fin, "acc_s")? + reg(fin, "acc_c")?).mod_floor(&BigInt::pow2(2 * w + 2));
    expect_eq("xmul acc_s + acc_c", &sum, &want)
}

fn rdiv_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let (n, d) = (input(ins, "io_n"), input(ins, "io_d"));
    expect_eq("rdiv quot", reg(fin, "quot")?, &n.div_floor(d))?;
    expect_eq("rdiv rem", reg(fin, "rem")?, &n.mod_floor(d))
}

fn xdiv_spec(w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    // The X-divider packs remainder above quotient in one shift register:
    // shiftReg = rem * 2^(len+1) + quot.
    let (n, d) = (input(ins, "io_n"), input(ins, "io_d"));
    let s = reg(fin, "shiftReg")?;
    let half = BigInt::pow2(w + 1);
    expect_eq("xdiv quot (shiftReg low half)", &s.mod_floor(&half), &n.div_floor(d))?;
    expect_eq("xdiv rem (shiftReg high half)", &s.div_floor(&half), &n.mod_floor(d))
}

fn output<'a>(fin: &'a FinalState, name: &str) -> Result<&'a BigInt, String> {
    fin.outputs.get(name).ok_or_else(|| format!("final state has no output `{name}`"))
}

fn csel_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = input(ins, "io_a") + input(ins, "io_b");
    expect_eq("csel io_sum", output(fin, "io_sum")?, &want)
}

fn ks_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = input(ins, "io_a") + input(ins, "io_b");
    expect_eq("ks io_sum", output(fin, "io_sum")?, &want)
}

fn csa3_spec(_w: u64, ins: &BTreeMap<String, BigInt>, fin: &FinalState) -> Result<(), String> {
    let want = input(ins, "io_a") + input(ins, "io_b") + input(ins, "io_c") + input(ins, "io_d");
    expect_eq("csa3 io_sum", output(fin, "io_sum")?, &want)
}

// ---------------------------------------------------------------------
// Gate-level golden models.
//
// Each one rebuilds the design's register recurrence combinationally over
// the same symbolic inputs, using the blaster's own word helpers so both
// sides lower to the same gate shapes. The property net compares the
// design's unrolled result registers against the rebuilt words — a miter
// that must be constant-true for *every* input assignment at this width.
// ---------------------------------------------------------------------

fn in_word<'a>(env: &'a GateEnv, name: &str) -> &'a Word<Net> {
    env.inputs.get(name).unwrap_or_else(|| panic!("gate spec: no input word `{name}`"))
}

fn reg_word<'a>(env: &'a GateEnv, name: &str) -> &'a Word<Net> {
    env.state.regs.get(name).unwrap_or_else(|| panic!("gate spec: no register word `{name}`"))
}

/// Notes the golden word for register `name` and returns the equality
/// property net comparing it against the design's unrolled register.
fn golden_reg(nl: &mut Netlist, env: &GateEnv, name: &str, golden: &Word<Net>) -> Net {
    env.note_golden(name, golden);
    nets_equal(nl, reg_word(env, name), golden)
}

/// [`golden_reg`] for an output word.
fn golden_out(nl: &mut Netlist, env: &GateEnv, name: &str, golden: &Word<Net>) -> Net {
    env.note_golden(name, golden);
    nets_equal(nl, out_word(env, name), golden)
}

/// Static left shift by `k`, wrapped to `width` bits (the `shl` + register
/// clamp the designs perform).
fn shl_word(nl: &mut Netlist, w: &Word<Net>, k: usize, width: usize) -> Word<Net> {
    let mut bits = vec![nl.constant(false); k.min(width)];
    bits.extend(w.bits.iter().copied().take(width.saturating_sub(k)));
    while bits.len() < width {
        bits.push(nl.constant(false));
    }
    Word { bits, signed: false }
}

/// Static logical right shift by `k`, padded back to `width` bits.
fn shr_word(nl: &mut Netlist, w: &Word<Net>, k: usize, width: usize) -> Word<Net> {
    let mut bits: Vec<Net> = w.bits.iter().skip(k).copied().collect();
    while bits.len() < width {
        bits.push(nl.constant(false));
    }
    bits.truncate(width);
    Word { bits, signed: false }
}

fn zero_word(nl: &mut Netlist, width: usize) -> Word<Net> {
    constant_word(nl, &BigInt::zero(), width, false)
}

/// `rotate`: after `len + 1` cycles the register has rotated all the way
/// around — `R == io_in`.
fn rotate_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    golden_reg(nl, env, "R", &in_word(env, "io_in").clone())
}

/// `popcount`: the same ripple chain of `len` one-bit adds the generator
/// loop emits.
fn popcount_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let input = in_word(env, "io_in").clone();
    let mut acc = zero_word(nl, w + 1);
    for i in 0..w {
        let bit = Word { bits: vec![input.bits[i]], signed: false };
        acc = add_words(nl, &acc, &bit, w + 1);
    }
    golden_out(nl, env, "io_out", &acc)
}

/// `rmul`: one latch cycle, then `len` conditional adds of the
/// left-shifting multiplicand.
fn rmul_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let w2 = 2 * w;
    let mut a_sh = extend(nl, in_word(env, "io_a"), w2);
    let mut b_sh = in_word(env, "io_b").clone();
    let mut acc = zero_word(nl, w2);
    for _ in 0..w {
        let sum = add_words(nl, &acc, &a_sh, w2);
        acc = mux_word(nl, b_sh.bits[0], &sum, &acc);
        a_sh = shl_word(nl, &a_sh, 1, w2);
        b_sh = shr_word(nl, &b_sh, 1, w);
    }
    golden_reg(nl, env, "acc", &acc)
}

/// `xmul`: radix-4 Booth windows through the same 3:2 compressor, one
/// digit per iteration, `len/2 + 1` digits.
fn xmul_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let ww = 2 * w + 2; // accumulator width
    let mut b_sh = shl_word(nl, in_word(env, "io_b"), 1, w + 3);
    let mut a_sh = extend(nl, in_word(env, "io_a"), ww);
    let zero = zero_word(nl, ww);
    let mut acc_s = zero.clone();
    let mut acc_c = zero.clone();
    for _ in 0..(w / 2 + 1) {
        let (w0, w1, wtop) = (b_sh.bits[0], b_sh.bits[1], b_sh.bits[2]);
        let a1 = a_sh.clone();
        let a2x = shl_word(nl, &a_sh, 1, ww);
        let neg_a1 = sub_words(nl, &zero, &a1);
        let neg_a2x = sub_words(nl, &zero, &a2x);
        // Window patterns: 000->0, 001->a, 010->a, 011->2a, 100->-2a,
        // 101->-a, 110->-a, 111->0 (same mux tree as the design).
        let m00 = mux_word(nl, w0, &zero, &neg_a1);
        let m01 = mux_word(nl, w0, &neg_a1, &neg_a2x);
        let hi = mux_word(nl, w1, &m00, &m01);
        let m10 = mux_word(nl, w0, &a2x, &a1);
        let m11 = mux_word(nl, w0, &a1, &zero);
        let lo = mux_word(nl, w1, &m10, &m11);
        let pp = mux_word(nl, wtop, &hi, &lo);
        // 3:2 compressor, bitwise.
        let mut s_bits = Vec::with_capacity(ww);
        let mut maj_bits = Vec::with_capacity(ww);
        for i in 0..ww {
            let sc = nl.xor(acc_s.bits[i], acc_c.bits[i]);
            s_bits.push(nl.xor(sc, pp.bits[i]));
            let ab = nl.and(acc_s.bits[i], acc_c.bits[i]);
            let ap = nl.and(acc_s.bits[i], pp.bits[i]);
            let cp = nl.and(acc_c.bits[i], pp.bits[i]);
            let o1 = nl.or(ab, ap);
            maj_bits.push(nl.or(o1, cp));
        }
        acc_s = Word { bits: s_bits, signed: false };
        let maj = Word { bits: maj_bits, signed: false };
        acc_c = shl_word(nl, &maj, 1, ww);
        a_sh = shl_word(nl, &a_sh, 2, ww);
        b_sh = shr_word(nl, &b_sh, 2, w + 3);
    }
    let ps = golden_reg(nl, env, "acc_s", &acc_s);
    let pc = golden_reg(nl, env, "acc_c", &acc_c);
    nl.and(ps, pc)
}

/// `rdiv`: restoring division, one dividend bit per iteration. The mirror
/// replicates the circuit for *all* inputs (including `io_d == 0`), so no
/// assumption net is needed.
fn rdiv_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let d_reg = in_word(env, "io_d").clone();
    let mut n_sh = in_word(env, "io_n").clone();
    let mut rem = zero_word(nl, w + 1);
    let mut quot = zero_word(nl, w);
    let one = constant_word(nl, &BigInt::one(), 1, false);
    for _ in 0..w {
        // shifted = {rem[len-1:0], n_sh[len-1]}
        let mut bits = vec![n_sh.bits[w - 1]];
        bits.extend(rem.bits.iter().take(w).copied());
        let shifted = Word { bits, signed: false };
        let ge = ge_words(nl, &shifted, &d_reg);
        let nge = nl.not(ge);
        let diff = sub_words(nl, &shifted, &d_reg);
        // The nested when_else elaborates last-connect-wins: the ¬ge arm is
        // the *outermost* mux over the ge arm over the held register, so the
        // golden must build mux(¬ge, keep, mux(ge, update, prev)) — not the
        // semantically equal mux(ge, update, keep) — for the miter to strash.
        let sub_arm = mux_word(nl, ge, &diff, &rem);
        rem = mux_word(nl, nge, &shifted, &sub_arm);
        let shl_q = shl_word(nl, &quot, 1, w + 1);
        let q1 = add_words(nl, &shl_q, &one, w + 1);
        let q_arm = mux_word(nl, ge, &q1, &quot);
        let q_next = mux_word(nl, nge, &shl_q, &q_arm);
        quot = Word { bits: q_next.bits.into_iter().take(w).collect(), signed: false };
        n_sh = shl_word(nl, &n_sh, 1, w);
    }
    let pr = golden_reg(nl, env, "rem", &rem);
    let pq = golden_reg(nl, env, "quot", &quot);
    nl.and(pr, pq)
}

/// `xdiv`: the same restoring step over the packed `2·len+1`-bit shift
/// register.
fn xdiv_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let wreg = 2 * w + 1;
    let d_reg = in_word(env, "io_d").clone();
    let mut sreg = shl_word(nl, in_word(env, "io_n"), 1, wreg);
    for _ in 0..w {
        let hi = Word { bits: sreg.bits[w..=2 * w].to_vec(), signed: false };
        let lo = Word { bits: sreg.bits[..w].to_vec(), signed: false };
        let enough = ge_words(nl, &hi, &d_reg);
        let diff = sub_words(nl, &hi, &d_reg);
        let sub = mux_word(nl, enough, &diff, &hi);
        // shiftReg := {sub[len-1:0], lo, enough}
        let mut bits = vec![enough];
        bits.extend(lo.bits.iter().copied());
        bits.extend(sub.bits.iter().take(w).copied());
        sreg = Word { bits, signed: false };
    }
    golden_reg(nl, env, "shiftReg", &sreg)
}

fn out_word<'a>(env: &'a GateEnv, name: &str) -> &'a Word<Net> {
    env.state.outputs.get(name).unwrap_or_else(|| panic!("gate spec: no output word `{name}`"))
}

/// `csel`: the low half's `lo + 1`-bit add, both speculative high sums,
/// and the carry-selected concatenation.
fn csel_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let lo = w / 2;
    let hi = w - lo;
    let a = in_word(env, "io_a").clone();
    let b = in_word(env, "io_b").clone();
    let a_lo = Word { bits: a.bits[..lo].to_vec(), signed: false };
    let b_lo = Word { bits: b.bits[..lo].to_vec(), signed: false };
    let low = add_words(nl, &a_lo, &b_lo, lo + 1);
    let a_hi = Word { bits: a.bits[lo..].to_vec(), signed: false };
    let b_hi = Word { bits: b.bits[lo..].to_vec(), signed: false };
    let high0 = add_words(nl, &a_hi, &b_hi, hi + 1);
    let one = constant_word(nl, &BigInt::one(), hi + 1, false);
    let high1 = add_words(nl, &high0, &one, hi + 1);
    // Base connect then `when` override: mux(carry, high1, high0).
    let sel = mux_word(nl, low.bits[lo], &high1, &high0);
    let mut bits: Vec<Net> = low.bits[..lo].to_vec();
    bits.extend(sel.bits.iter().copied());
    let golden = Word { bits, signed: false };
    golden_out(nl, env, "io_sum", &golden)
}

/// `ks`: the same six span-doubling generate/propagate levels, bitwise.
fn ks_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let a = in_word(env, "io_a").clone();
    let b = in_word(env, "io_b").clone();
    let p0: Vec<Net> = (0..w).map(|i| nl.xor(a.bits[i], b.bits[i])).collect();
    let g0: Vec<Net> = (0..w).map(|i| nl.and(a.bits[i], b.bits[i])).collect();
    let mut g = g0;
    let mut p = p0.clone();
    for s in [1usize, 2, 4, 8, 16, 32] {
        let zero = nl.constant(false);
        let mut gn = Vec::with_capacity(w);
        let mut pn = Vec::with_capacity(w);
        for i in 0..w {
            let (gs, ps) = if i >= s { (g[i - s], p[i - s]) } else { (zero, zero) };
            let t = nl.and(p[i], gs);
            gn.push(nl.or(g[i], t));
            pn.push(nl.and(p[i], ps));
        }
        g = gn;
        p = pn;
    }
    let zero = nl.constant(false);
    let mut bits = Vec::with_capacity(w + 1);
    for i in 0..w {
        let cin = if i >= 1 { g[i - 1] } else { zero };
        bits.push(nl.xor(p0[i], cin));
    }
    bits.push(g[w - 1]);
    let golden = Word { bits, signed: false };
    golden_out(nl, env, "io_sum", &golden)
}

/// `csa3`: two bitwise 3:2 layers, then the final carry-propagate add.
fn csa3_gate(nl: &mut Netlist, env: &GateEnv) -> Net {
    let w = env.width as usize;
    let a = in_word(env, "io_a").clone();
    let b = in_word(env, "io_b").clone();
    let c = in_word(env, "io_c").clone();
    let d = in_word(env, "io_d").clone();
    let zero = nl.constant(false);
    // Layer 1: s1 (width w), c1 = maj << 1 (width w + 1).
    let mut s1 = Vec::with_capacity(w);
    let mut c1 = vec![zero];
    for i in 0..w {
        let ab = nl.xor(a.bits[i], b.bits[i]);
        s1.push(nl.xor(ab, c.bits[i]));
        let t1 = nl.and(a.bits[i], b.bits[i]);
        let t2 = nl.and(a.bits[i], c.bits[i]);
        let t3 = nl.and(b.bits[i], c.bits[i]);
        let m = nl.or(t1, t2);
        c1.push(nl.or(m, t3));
    }
    // Layer 2 over zero-extended operands: s2 (w + 1), c2 = maj << 1 (w + 2).
    let mut s2 = Vec::with_capacity(w + 1);
    let mut c2 = vec![zero];
    for i in 0..=w {
        let s1i = if i < w { s1[i] } else { zero };
        let di = if i < w { d.bits[i] } else { zero };
        let sx = nl.xor(s1i, c1[i]);
        s2.push(nl.xor(sx, di));
        let t1 = nl.and(s1i, c1[i]);
        let t2 = nl.and(s1i, di);
        let t3 = nl.and(c1[i], di);
        let m = nl.or(t1, t2);
        c2.push(nl.or(m, t3));
    }
    let s2w = Word { bits: s2, signed: false };
    let c2w = Word { bits: c2, signed: false };
    let golden = add_words(nl, &s2w, &c2w, w + 2);
    golden_out(nl, env, "io_sum", &golden)
}

/// All registered designs. The single enrollment point: every conformance
/// surface (library runs, `tests/conformance.rs`, the CLI soak) iterates
/// this list.
pub fn all_designs() -> Vec<Design> {
    vec![
        Design {
            name: "rotate",
            build: chicala_designs::rotate::module,
            inputs: &[InputSpec { name: "io_in", nonzero: false }],
            // At len=1 the body's `R(len-1, 1)` extract is empty — the
            // design (like the original Chisel) needs at least 2 bits.
            min_width: 2,
            gate_max_width: 28,
            latency: |w| w + 1,
            spec: rotate_spec,
            gate_spec: Some(rotate_gate),
        },
        Design {
            name: "popcount",
            build: chicala_designs::popcount::module,
            inputs: &[InputSpec { name: "io_in", nonzero: false }],
            min_width: 1,
            gate_max_width: 28,
            latency: |_| 1,
            spec: popcount_spec,
            gate_spec: Some(popcount_gate),
        },
        Design {
            name: "rmul",
            build: chicala_designs::rmul::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
            ],
            min_width: 1,
            // 24 before the AIG optimizer PR; the optimized prove path
            // closes the miter structurally, so the ceiling is set by the
            // (linear) netlist→AIG lowering cost, not by the solver.
            gate_max_width: 32,
            latency: |w| w + 1,
            spec: rmul_spec,
            gate_spec: Some(rmul_gate),
        },
        Design {
            name: "xmul",
            build: chicala_designs::xmul::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
            ],
            min_width: 1,
            // 16 before the AIG optimizer PR (see `rmul`).
            gate_max_width: 24,
            // Radix-4: one digit per cycle after the latch cycle.
            latency: |w| w / 2 + 2,
            spec: xmul_spec,
            gate_spec: Some(xmul_gate),
        },
        Design {
            name: "rdiv",
            build: chicala_designs::rdiv::module,
            inputs: &[
                InputSpec { name: "io_n", nonzero: false },
                InputSpec { name: "io_d", nonzero: true },
            ],
            min_width: 1,
            // 24 before the AIG optimizer PR (see `rmul`).
            gate_max_width: 32,
            latency: |w| w + 1,
            spec: rdiv_spec,
            gate_spec: Some(rdiv_gate),
        },
        Design {
            name: "xdiv",
            build: chicala_designs::xdiv::module,
            inputs: &[
                InputSpec { name: "io_n", nonzero: false },
                InputSpec { name: "io_d", nonzero: true },
            ],
            min_width: 1,
            // 24 before the AIG optimizer PR (see `rmul`).
            gate_max_width: 32,
            latency: |w| w + 1,
            spec: xdiv_spec,
            gate_spec: Some(xdiv_gate),
        },
        Design {
            name: "csel",
            build: chicala_designs::csel::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
            ],
            // Both halves of the split `len / 2` must be non-empty.
            min_width: 2,
            gate_max_width: 24,
            latency: |_| 1,
            spec: csel_spec,
            gate_spec: Some(csel_gate),
        },
        Design {
            name: "ks",
            build: chicala_designs::ks::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
            ],
            min_width: 1,
            gate_max_width: 24,
            latency: |_| 1,
            spec: ks_spec,
            gate_spec: Some(ks_gate),
        },
        Design {
            name: "csa3",
            build: chicala_designs::csa3::module,
            inputs: &[
                InputSpec { name: "io_a", nonzero: false },
                InputSpec { name: "io_b", nonzero: false },
                InputSpec { name: "io_c", nonzero: false },
                InputSpec { name: "io_d", nonzero: false },
            ],
            min_width: 1,
            gate_max_width: 24,
            latency: |_| 1,
            spec: csa3_spec,
            gate_spec: Some(csa3_gate),
        },
    ]
}

/// Hidden drill designs: reachable through [`Design::by_name`] but never
/// part of [`all_designs`], so normal soaks stay green. `rmul_drill` is
/// `rmul` with a deliberately wrong spec (`acc == a*b + 1`): running it
/// fails deterministically, which is exactly what the counterexample
/// capture drill (CI green-path step, `tests/failure_capture.rs`, and the
/// EXPERIMENTS walkthrough) needs.
pub fn drill_designs() -> Vec<Design> {
    vec![Design {
        name: "rmul_drill",
        build: chicala_designs::rmul::module,
        inputs: &[
            InputSpec { name: "io_a", nonzero: false },
            InputSpec { name: "io_b", nonzero: false },
        ],
        min_width: 1,
        gate_max_width: 24,
        latency: |w| w + 1,
        spec: rmul_drill_spec,
        gate_spec: None,
    }]
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_well_formed() {
        let designs = all_designs();
        assert!(designs.len() >= 6, "all case studies enrolled");
        let mut names: Vec<_> = designs.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), designs.len(), "names unique");
        for d in &designs {
            let m = (d.build)();
            for spec in d.inputs {
                assert!(
                    m.decl(spec.name).is_some(),
                    "{}: input `{}` not declared by module",
                    d.name,
                    spec.name
                );
            }
            assert!((d.latency)(4) >= 1, "{}: latency must be positive", d.name);
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(Design::by_name("xmul").is_some());
        assert!(Design::by_name("nope").is_none());
    }
}
