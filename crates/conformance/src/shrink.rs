//! Greedy counterexample minimization: given a failing case, repeatedly
//! try structurally smaller variants (smaller width, fewer cycles, smaller
//! input values — in that priority order) and keep any that still fails,
//! until no smaller variant fails.

use crate::engine::{check_case, Case, Layer};
use crate::registry::Design;
use chicala_bigint::BigInt;
use chicala_telemetry as telemetry;

/// Candidate cases strictly "smaller" than `c`, biggest jumps first so the
/// greedy loop converges in O(log) accepted steps per dimension.
fn candidates(d: &Design, c: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    let mut push = |cand: Case| out.push(cand.normalized(d));

    // Widths: jump to the minimum, then bisect toward it, then decrement.
    if c.width > d.min_width {
        for w in [d.min_width, (c.width + d.min_width) / 2, c.width - 1] {
            if w < c.width {
                push(Case { width: w, ..c.clone() });
            }
        }
    }
    // Cycles: one cycle, bisect, decrement.
    if c.cycles > 1 {
        for cy in [1, c.cycles / 2, c.cycles - 1] {
            if cy < c.cycles {
                push(Case { cycles: cy, ..c.clone() });
            }
        }
    }
    // Inputs: zero (or one for non-zero ports), halve, decrement.
    for (i, v) in c.inputs.iter().enumerate() {
        let floor = if d.inputs[i].nonzero { BigInt::one() } else { BigInt::zero() };
        if *v <= floor {
            continue;
        }
        let two = BigInt::from(2u64);
        for cand in [floor.clone(), v.div_floor(&two), v - BigInt::one()] {
            if cand < *v {
                let mut inputs = c.inputs.clone();
                inputs[i] = cand;
                push(Case { inputs, ..c.clone() });
            }
        }
    }
    out.dedup();
    out
}

/// Minimizes a failing case. The result still fails `check_case` for the
/// same (design, layer) unless the failure was flaky — conformance checks
/// are deterministic, so in practice it always does.
pub fn shrink(d: &Design, layer: Layer, case: &Case) -> Case {
    let _span = telemetry::span!("shrink:{}", d.name);
    let mut best = case.normalized(d);
    // The loop strictly decreases (width, cycles, inputs) lexicographically
    // under a well-founded order, so it terminates; the step cap is a
    // belt-and-braces bound against pathological check behavior.
    for _ in 0..512 {
        telemetry::counter("shrink.iterations", 1);
        let mut checks = 0u64;
        let next = candidates(d, &best).into_iter().find(|cand| {
            checks += 1;
            check_case(d, layer, cand).is_err()
        });
        telemetry::counter("shrink.checks", checks);
        let Some(next) = next else { break };
        best = next;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Design, FinalState};
    use std::collections::BTreeMap;

    /// A deliberately wrong spec: claims rmul's accumulator is a*b except
    /// when a is even — so the minimal failing input should shrink a to the
    /// smallest even non-trivial value at the minimum width.
    fn buggy_spec(
        _w: u64,
        ins: &BTreeMap<String, BigInt>,
        _fin: &FinalState,
    ) -> Result<(), String> {
        let a = ins.get("io_a").expect("io_a");
        if a.mod_floor(&BigInt::from(2u64)).is_zero() && !a.is_zero() {
            Err(format!("forced divergence at io_a={a}"))
        } else {
            Ok(())
        }
    }

    #[test]
    fn shrinks_to_a_minimal_even_input() {
        let mut d = Design::by_name("rmul").expect("registered");
        d.spec = buggy_spec;
        let case = Case {
            width: 12,
            cycles: 13,
            inputs: vec![BigInt::from(0x8B6u64), BigInt::from(0x5A3u64)],
        };
        // The starting case fails only if io_a is even; make it so.
        let case = Case { inputs: vec![BigInt::from(0x8B6u64), case.inputs[1].clone()], ..case };
        assert!(check_case(&d, Layer::Spec, &case).is_err(), "premise: case fails");
        let small = shrink(&d, Layer::Spec, &case);
        assert!(check_case(&d, Layer::Spec, &small).is_err(), "shrunk case still fails");
        assert!(small.width <= 2, "width minimized, got {}", small.width);
        assert_eq!(small.inputs[0], BigInt::from(2u64), "io_a minimized to smallest even");
        assert_eq!(small.inputs[1], BigInt::zero(), "io_b irrelevant, zeroed");
    }
}
