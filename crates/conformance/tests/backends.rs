//! SAT-vs-BDD-vs-spec agreement on the formal gate-level obligations.
//!
//! Every registered design's design-vs-golden miter must be proved by
//! *both* engines at every width up to 6 (the Auto crossover), and at tiny
//! widths the miter is additionally evaluated exhaustively over every
//! input assignment and cross-checked against the mathematical spec layer.

use chicala_bigint::BigInt;
use chicala_conformance::{all_designs, check_case, formal_gate_obligation, Case, Layer};
use chicala_lowlevel::{prove_net, Backend};
use std::collections::BTreeMap;

#[test]
fn both_backends_prove_every_design_up_to_width_6() {
    for d in all_designs() {
        for width in d.min_width..=6 {
            let ob = formal_gate_obligation(&d, width)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name))
                .unwrap_or_else(|| panic!("{}: registry has no golden model", d.name));
            for backend in [Backend::Bdd, Backend::Sat] {
                let r = prove_net(&ob.netlist, ob.property, backend, width as usize, &ob.var_order);
                assert!(
                    r.is_proved(),
                    "{} at width {width}, {backend:?} backend: {r:?}",
                    d.name
                );
            }
        }
    }
}

#[test]
fn sat_closes_every_design_at_its_ceiling_width() {
    // The tentpole claim: at each design's raised `gate_max_width` (≥ 24,
    // ≥ 16 for the Booth multiplier) the Auto backend resolves to SAT and
    // every miter comes back UNSAT (proved).
    for d in all_designs() {
        let width = d.gate_max_width;
        assert!(width >= 16, "{}: ceiling {width} below the lifted floor", d.name);
        let ob = formal_gate_obligation(&d, width)
            .unwrap_or_else(|e| panic!("{}: {e}", d.name))
            .expect("golden model registered");
        assert_eq!(Backend::Auto.resolve(width as usize), Backend::Sat);
        let r = prove_net(&ob.netlist, ob.property, Backend::Auto, width as usize, &ob.var_order);
        assert!(r.is_proved(), "{} at ceiling width {width}: {r:?}", d.name);
    }
}

#[test]
fn miters_agree_with_exhaustive_evaluation_and_spec_at_tiny_widths() {
    for d in all_designs() {
        for width in d.min_width..=3 {
            let ob = formal_gate_obligation(&d, width)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name))
                .expect("golden model registered");
            // Flatten the input bits in port order for enumeration.
            let bits: Vec<_> = ob
                .inputs
                .values()
                .flat_map(|w| w.bits.iter().copied())
                .collect();
            assert!(bits.len() <= 12, "tiny widths stay enumerable");
            for assignment in 0u64..(1 << bits.len()) {
                let vals = ob.netlist.eval(&|net| {
                    bits.iter()
                        .position(|&b| b == net)
                        .is_some_and(|i| (assignment >> i) & 1 == 1)
                });
                assert!(
                    vals[ob.property.0 as usize],
                    "{} at width {width}: miter is false for assignment {assignment:#b}",
                    d.name
                );
                // The same stimulus through the spec layer: decode the
                // assignment back into per-port values in registry order.
                let mut offsets = BTreeMap::new();
                let mut off = 0usize;
                for (name, w) in &ob.inputs {
                    offsets.insert(name.clone(), (off, w.width()));
                    off += w.width();
                }
                let inputs: Vec<BigInt> = d
                    .inputs
                    .iter()
                    .map(|spec| {
                        let (lo, w) = offsets[spec.name];
                        BigInt::from((assignment >> lo) & ((1 << w) - 1))
                    })
                    .collect();
                let case = Case { width, cycles: (d.latency)(width), inputs };
                check_case(&d, Layer::Spec, &case)
                    .unwrap_or_else(|e| panic!("{} at width {width}: spec layer: {e}", d.name));
            }
        }
    }
}
