//! Incremental width-sweep vs one-shot agreement on registry designs.
//!
//! The sweep contract is byte-identity: for every (design, width), the
//! report produced by driving the whole family through one incremental
//! session (with the BDD race below the crossover) must equal what the
//! one-shot `prove_net` path returns for that width alone — same verdict,
//! same backend tag, same counterexample bytes. The `verify_ab` tripwire
//! re-proves every width one-shot inside the sweep itself and must count
//! zero divergences on a sound session.

use chicala_conformance::{all_designs, formal_gate_obligation, sweep_gates_formal};
use chicala_lowlevel::{prove_net, Backend};

/// A few cheap registry designs with golden models, enough to cover both
/// the BDD-race widths (≤ 6) and the SAT session above the crossover.
fn sample() -> Vec<chicala_conformance::Design> {
    all_designs()
        .into_iter()
        .filter(|d| d.gate_spec.is_some())
        .take(3)
        .collect()
}

#[test]
fn sweep_report_is_byte_identical_to_oneshot_per_width() {
    for d in sample() {
        let widths: Vec<u64> = (d.min_width..=d.min_width.max(2) + 8).collect();
        let (report, per_width) =
            sweep_gates_formal(&d, &widths, false).unwrap_or_else(|e| panic!("{}: {e}", d.name));
        assert_eq!(report.outcomes.len(), widths.len());
        for o in &report.outcomes {
            let ob = formal_gate_obligation(&d, o.width)
                .unwrap_or_else(|e| panic!("{}: {e}", d.name))
                .expect("sampled designs have golden models");
            let oneshot =
                prove_net(&ob.netlist, ob.property, Backend::Auto, o.width as usize, &ob.var_order);
            assert_eq!(
                o.result, oneshot,
                "{} at width {}: sweep and one-shot reports must be byte-identical",
                d.name, o.width
            );
        }
        for (w, r) in &per_width {
            assert_eq!(r, &Ok(()), "{} at width {w}: registry design must prove", d.name);
        }
    }
}

#[test]
fn sweep_ab_tripwire_is_quiet_on_sound_sessions() {
    for d in sample() {
        let widths: Vec<u64> = (d.min_width..=d.min_width.max(2) + 6).collect();
        let (report, _) =
            sweep_gates_formal(&d, &widths, true).unwrap_or_else(|e| panic!("{}: {e}", d.name));
        assert!(report.all_proved(), "{}: family must prove", d.name);
        assert_eq!(
            report.stats.divergences, 0,
            "{}: verify_ab found sweep-vs-oneshot disagreements",
            d.name
        );
    }
}
