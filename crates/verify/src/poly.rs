//! Polynomial normalisation: terms are flattened into linear combinations
//! of *monomials* over opaque atoms (variables, divisions, `Pow2`s, bitwise
//! operations, applications).
//!
//! Flooring `Mod` is eliminated entirely (`a % b = a - b*(a / b)`), so the
//! linear-arithmetic core only ever sees `Div` atoms, whose range facts
//! (`0 <= a - b*(a/b) < b` for `b > 0`) the kernel adds automatically.

use crate::term::{Formula, Term};
use chicala_bigint::BigInt;
use std::collections::BTreeMap;

/// A monomial: a sorted multiset of atoms (each atom a canonical [`Term`]).
/// The empty monomial is the constant term.
pub type Monomial = Vec<Term>;

/// A polynomial in normal form: monomials with non-zero coefficients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Poly {
    /// Coefficient per monomial.
    pub terms: BTreeMap<Monomial, BigInt>,
}

/// Error raised when a term cannot be normalised (contains a conditional
/// that must be split first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItePresent(pub Formula);

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly { terms: BTreeMap::new() }
    }

    /// A constant polynomial.
    pub fn constant(c: BigInt) -> Poly {
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(Vec::new(), c);
        }
        Poly { terms }
    }

    /// A single atom.
    pub fn atom(a: Term) -> Poly {
        let mut terms = BTreeMap::new();
        terms.insert(vec![a], BigInt::one());
        Poly { terms }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if the polynomial is constant.
    pub fn as_const(&self) -> Option<BigInt> {
        if self.terms.is_empty() {
            return Some(BigInt::zero());
        }
        if self.terms.len() == 1 {
            if let Some(c) = self.terms.get(&Vec::new() as &Monomial) {
                return Some(c.clone());
            }
        }
        None
    }

    /// Adds another polynomial.
    pub fn add(&mut self, other: &Poly) {
        for (m, c) in &other.terms {
            let entry = self.terms.entry(m.clone()).or_insert_with(BigInt::zero);
            *entry += c;
            if entry.is_zero() {
                self.terms.remove(m);
            }
        }
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, k: &BigInt) {
        if k.is_zero() {
            self.terms.clear();
            return;
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
    }

    /// Product of two polynomials.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m = m1.clone();
                m.extend(m2.iter().cloned());
                m.sort();
                let c = c1 * c2;
                let entry = out.terms.entry(m).or_insert_with(BigInt::zero);
                *entry += &c;
                if entry.is_zero() {
                    let key: Vec<Term> = {
                        let mut k = m1.clone();
                        k.extend(m2.iter().cloned());
                        k.sort();
                        k
                    };
                    out.terms.remove(&key);
                }
            }
        }
        out
    }

    /// Renders back to a canonical term (sum of products, monomials in
    /// normal order).
    pub fn to_term(&self) -> Term {
        if self.terms.is_empty() {
            return Term::int(0);
        }
        let mut parts = Vec::new();
        for (m, c) in &self.terms {
            let mut factors: Vec<Term> = Vec::new();
            if !c.is_one() || m.is_empty() {
                factors.push(Term::Const(c.clone()));
            }
            factors.extend(m.iter().cloned());
            parts.push(if factors.len() == 1 {
                factors.pop().expect("nonempty")
            } else {
                Term::Mul(factors)
            });
        }
        if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Term::Add(parts)
        }
    }
}

/// Normalises a term into a polynomial.
///
/// # Errors
///
/// Returns [`ItePresent`] if the term contains a conditional; callers split
/// conditionals before normalising.
pub fn normalize(t: &Term) -> Result<Poly, ItePresent> {
    Ok(match t {
        Term::Const(c) => Poly::constant(c.clone()),
        Term::Var(_) => Poly::atom(t.clone()),
        Term::Add(ts) => {
            let mut acc = Poly::zero();
            for x in ts {
                acc.add(&normalize(x)?);
            }
            acc
        }
        Term::Mul(ts) => {
            let mut acc = Poly::constant(BigInt::one());
            for x in ts {
                acc = acc.mul(&normalize(x)?);
            }
            acc
        }
        Term::Div(a, b) => {
            let pa = normalize(a)?;
            let pb = normalize(b)?;
            match (pa.as_const(), pb.as_const()) {
                (Some(ca), Some(cb)) if !cb.is_zero() => Poly::constant(ca.div_floor(&cb)),
                (Some(ca), _) if ca.is_zero() => Poly::zero(),
                (_, Some(cb)) if cb.is_one() => pa,
                _ => Poly::atom(Term::Div(Box::new(pa.to_term()), Box::new(pb.to_term()))),
            }
        }
        Term::Mod(a, b) => {
            // a % b = a - b * (a / b): eliminate Mod entirely.
            let pa = normalize(a)?;
            let pb = normalize(b)?;
            match (pa.as_const(), pb.as_const()) {
                (Some(ca), Some(cb)) if !cb.is_zero() => Poly::constant(ca.mod_floor(&cb)),
                (_, Some(cb)) if cb.is_one() => Poly::zero(),
                _ => {
                    let div = normalize(&Term::Div(
                        Box::new(pa.to_term()),
                        Box::new(pb.to_term()),
                    ))?;
                    let mut acc = pa;
                    let mut prod = pb.mul(&div);
                    prod.scale(&BigInt::from(-1));
                    acc.add(&prod);
                    acc
                }
            }
        }
        Term::Pow2(e) => {
            let pe = normalize(e)?;
            match pe.as_const() {
                Some(c) => {
                    if c.is_negative() {
                        Poly::constant(BigInt::one())
                    } else {
                        match u64::try_from(&c) {
                            Ok(exp) if exp <= 1 << 20 => Poly::constant(BigInt::pow2(exp)),
                            _ => Poly::atom(Term::Pow2(Box::new(pe.to_term()))),
                        }
                    }
                }
                None => Poly::atom(Term::Pow2(Box::new(pe.to_term()))),
            }
        }
        Term::BitAnd(a, b) | Term::BitOr(a, b) | Term::BitXor(a, b) => {
            let pa = normalize(a)?;
            let pb = normalize(b)?;
            let fold = |x: &BigInt, y: &BigInt| -> Option<BigInt> {
                if x.is_negative() || y.is_negative() {
                    return None;
                }
                Some(match t {
                    Term::BitAnd(..) => x & y,
                    Term::BitOr(..) => x | y,
                    _ => x ^ y,
                })
            };
            if let (Some(ca), Some(cb)) = (pa.as_const(), pb.as_const()) {
                if let Some(v) = fold(&ca, &cb) {
                    return Ok(Poly::constant(v));
                }
            }
            // Identity/zero simplifications for non-negative semantics.
            match (pa.as_const(), pb.as_const(), t) {
                (Some(c), _, Term::BitAnd(..)) if c.is_zero() => Poly::zero(),
                (_, Some(c), Term::BitAnd(..)) if c.is_zero() => Poly::zero(),
                (Some(c), _, Term::BitOr(..)) | (Some(c), _, Term::BitXor(..)) if c.is_zero() => {
                    pb
                }
                (_, Some(c), Term::BitOr(..)) | (_, Some(c), Term::BitXor(..)) if c.is_zero() => {
                    pa
                }
                _ => {
                    let (ta, tb) = (pa.to_term(), pb.to_term());
                    // Commutative: order operands canonically.
                    let (x, y) = if ta <= tb { (ta, tb) } else { (tb, ta) };
                    Poly::atom(match t {
                        Term::BitAnd(..) => Term::BitAnd(Box::new(x), Box::new(y)),
                        Term::BitOr(..) => Term::BitOr(Box::new(x), Box::new(y)),
                        _ => Term::BitXor(Box::new(x), Box::new(y)),
                    })
                }
            }
        }
        Term::Ite(c, _, _) => return Err(ItePresent((**c).clone())),
        Term::App(f, args) => {
            let nargs = args
                .iter()
                .map(|a| Ok(normalize(a)?.to_term()))
                .collect::<Result<Vec<_>, ItePresent>>()?;
            Poly::atom(Term::App(f.clone(), nargs))
        }
    })
}

/// Finds the first conditional's condition anywhere in a formula, for
/// case splitting.
pub fn find_ite(f: &Formula) -> Option<Formula> {
    fn in_term(t: &Term) -> Option<Formula> {
        match t {
            Term::Ite(c, a, b) => {
                // Split innermost conditions first so guards on nested
                // branches are resolved in a bounded number of rounds.
                in_formula(c).or_else(|| in_term(a)).or_else(|| in_term(b)).or(Some((**c).clone()))
            }
            Term::Const(_) | Term::Var(_) => None,
            Term::Add(ts) | Term::Mul(ts) | Term::App(_, ts) => ts.iter().find_map(in_term),
            Term::Div(a, b)
            | Term::Mod(a, b)
            | Term::BitAnd(a, b)
            | Term::BitOr(a, b)
            | Term::BitXor(a, b) => in_term(a).or_else(|| in_term(b)),
            Term::Pow2(a) => in_term(a),
        }
    }
    fn in_formula(f: &Formula) -> Option<Formula> {
        match f {
            Formula::True | Formula::False | Formula::BVar(_) => None,
            Formula::Eq(a, b) | Formula::Le(a, b) | Formula::Lt(a, b) => {
                in_term(a).or_else(|| in_term(b))
            }
            Formula::Not(x) => in_formula(x),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().find_map(in_formula),
            Formula::Implies(a, b) => in_formula(a).or_else(|| in_formula(b)),
        }
    }
    in_formula(f)
}

/// Rewrites a formula assuming condition `c` has truth value `v`: every
/// `Ite` whose condition is syntactically `c` collapses to one branch.
pub fn assume_ite(f: &Formula, c: &Formula, v: bool) -> Formula {
    fn in_term(t: &Term, c: &Formula, v: bool) -> Term {
        match t {
            Term::Ite(cond, a, b) => {
                let cond2 = in_formula(cond, c, v);
                let a2 = in_term(a, c, v);
                let b2 = in_term(b, c, v);
                if &cond2 == c {
                    if v {
                        a2
                    } else {
                        b2
                    }
                } else if cond2 == Formula::True {
                    a2
                } else if cond2 == Formula::False {
                    b2
                } else {
                    Term::Ite(Box::new(cond2), Box::new(a2), Box::new(b2))
                }
            }
            Term::Const(_) | Term::Var(_) => t.clone(),
            Term::Add(ts) => Term::Add(ts.iter().map(|x| in_term(x, c, v)).collect()),
            Term::Mul(ts) => Term::Mul(ts.iter().map(|x| in_term(x, c, v)).collect()),
            Term::App(f, ts) => {
                Term::App(f.clone(), ts.iter().map(|x| in_term(x, c, v)).collect())
            }
            Term::Div(a, b) => {
                Term::Div(Box::new(in_term(a, c, v)), Box::new(in_term(b, c, v)))
            }
            Term::Mod(a, b) => {
                Term::Mod(Box::new(in_term(a, c, v)), Box::new(in_term(b, c, v)))
            }
            Term::BitAnd(a, b) => {
                Term::BitAnd(Box::new(in_term(a, c, v)), Box::new(in_term(b, c, v)))
            }
            Term::BitOr(a, b) => {
                Term::BitOr(Box::new(in_term(a, c, v)), Box::new(in_term(b, c, v)))
            }
            Term::BitXor(a, b) => {
                Term::BitXor(Box::new(in_term(a, c, v)), Box::new(in_term(b, c, v)))
            }
            Term::Pow2(a) => Term::Pow2(Box::new(in_term(a, c, v))),
        }
    }
    fn in_formula(f: &Formula, c: &Formula, v: bool) -> Formula {
        if f == c {
            return if v { Formula::True } else { Formula::False };
        }
        match f {
            Formula::True | Formula::False | Formula::BVar(_) => f.clone(),
            Formula::Eq(a, b) => Formula::Eq(in_term(a, c, v), in_term(b, c, v)),
            Formula::Le(a, b) => Formula::Le(in_term(a, c, v), in_term(b, c, v)),
            Formula::Lt(a, b) => Formula::Lt(in_term(a, c, v), in_term(b, c, v)),
            Formula::Not(x) => Formula::Not(Box::new(in_formula(x, c, v))),
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|x| in_formula(x, c, v)).collect())
            }
            Formula::Or(fs) => Formula::Or(fs.iter().map(|x| in_formula(x, c, v)).collect()),
            Formula::Implies(a, b) => Formula::Implies(
                Box::new(in_formula(a, c, v)),
                Box::new(in_formula(b, c, v)),
            ),
        }
    }
    in_formula(f, c, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term as T;

    fn nz(t: &Term) -> Poly {
        normalize(t).expect("no ite")
    }

    #[test]
    fn ring_identities() {
        // (x + 1)*(x - 1) == x*x - 1
        let x = || T::var("x");
        let lhs = x().add(T::int(1)).mul(x().sub(T::int(1)));
        let rhs = x().mul(x()).sub(T::int(1));
        assert_eq!(nz(&lhs), nz(&rhs));
    }

    #[test]
    fn mod_elimination() {
        // a % b  normalises to  a - b*(a/b)
        let a = || T::var("a");
        let b = || T::var("b");
        let lhs = a().imod(b());
        let rhs = a().sub(b().mul(a().div(b())));
        assert_eq!(nz(&lhs), nz(&rhs));
    }

    #[test]
    fn pow2_constant_folding() {
        assert_eq!(nz(&T::pow2(T::int(6))).as_const(), Some(chicala_bigint::BigInt::from(64)));
        assert_eq!(nz(&T::pow2(T::int(-2))).as_const(), Some(chicala_bigint::BigInt::one()));
        // Pow2(x) stays opaque.
        assert!(nz(&T::pow2(T::var("x"))).as_const().is_none());
    }

    #[test]
    fn div_simplifications() {
        let a = || T::var("a");
        assert_eq!(nz(&a().div(T::int(1))), nz(&a()));
        assert_eq!(nz(&T::int(0).div(a())).as_const(), Some(chicala_bigint::BigInt::zero()));
        assert_eq!(nz(&T::int(-7).div(T::int(2))).as_const(), Some(chicala_bigint::BigInt::from(-4)));
    }

    #[test]
    fn bitop_canonical_order_and_folding() {
        let a = || T::var("a");
        let b = || T::var("b");
        let t1 = T::BitXor(Box::new(a()), Box::new(b()));
        let t2 = T::BitXor(Box::new(b()), Box::new(a()));
        assert_eq!(nz(&t1), nz(&t2));
        let c = T::BitAnd(Box::new(T::int(12)), Box::new(T::int(10)));
        assert_eq!(nz(&c).as_const(), Some(chicala_bigint::BigInt::from(8)));
        let z = T::BitAnd(Box::new(T::int(0)), Box::new(a()));
        assert!(nz(&z).is_zero());
    }

    #[test]
    fn ite_detected() {
        let t = Term::Ite(
            Box::new(T::var("c").eq(T::int(0))),
            Box::new(T::int(1)),
            Box::new(T::int(2)),
        );
        assert!(normalize(&t).is_err());
        let f = T::var("x").eq(t);
        assert_eq!(find_ite(&f), Some(T::var("c").eq(T::int(0))));
        let f_true = assume_ite(&f, &T::var("c").eq(T::int(0)), true);
        assert_eq!(f_true, T::var("x").eq(T::int(1)));
    }

    #[test]
    fn to_term_round_trips() {
        let x = T::var("x").mul(T::var("y")).add(T::int(3)).add(T::var("x"));
        let p = nz(&x);
        assert_eq!(nz(&p.to_term()), p);
    }
}
