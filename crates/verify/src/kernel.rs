//! The proof kernel: checks proofs of formulas from a small set of integer
//! axioms, mirroring how Stainless discharges verification conditions with
//! an SMT solver plus user hints (§3).
//!
//! The automatic core ([`Proof::Auto`]) combines:
//!
//! * exhaustive splitting of conditionals (`Ite`, from muxes and guards);
//! * polynomial normalisation with `Mod` elimination;
//! * automatic range facts for every `Div` atom with provably positive
//!   divisor (`0 ≤ a − b·(a/b) < b`) and positivity/monotonicity facts for
//!   `Pow2` atoms;
//! * Fourier–Motzkin linear arithmetic with integer tightening.
//!
//! Nonlinear steps are taken explicitly — lemma instantiation
//! ([`Proof::Use`]), equation chains ([`Proof::Calc`], the paper's
//! Listing 4 DSL), case analysis, induction, and function unfolding —
//! and every step is re-checked by the automatic core, so the trusted base
//! is the axiom list plus this module.

use crate::linarith::{intern_con, refute_ids, refute_refs, ConId, LinCon, Refutation};
use crate::poly::{assume_ite, find_ite, Monomial, Poly};
use crate::store::{self, TermId};
use crate::term::{Formula, Sym, Term};
use chicala_bigint::BigInt;
use chicala_telemetry as telemetry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A defined (possibly recursive) function: `name(params) = body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefFn {
    /// Function name.
    pub name: Sym,
    /// Formal parameters.
    pub params: Vec<Sym>,
    /// Definition body; may call `name` recursively (unfolded one step at a
    /// time).
    pub body: Term,
}

/// A lemma: `∀ vars. hyps ⟹ concl`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lemma {
    /// Lemma name.
    pub name: Sym,
    /// Universally quantified integer variables.
    pub vars: Vec<Sym>,
    /// Hypotheses.
    pub hyps: Vec<Formula>,
    /// Conclusion.
    pub concl: Formula,
}

/// One step of an equation chain.
#[derive(Clone, Debug)]
pub struct CalcStep {
    /// The next term in the chain.
    pub to: Term,
    /// Why the previous term equals it.
    pub just: Just,
}

/// Justification of a single step.
#[derive(Clone, Debug)]
pub enum Just {
    /// The automatic core.
    Auto,
    /// Instantiate a lemma, then the automatic core.
    Lemma {
        /// Lemma name.
        name: Sym,
        /// Instantiation, positional over the lemma's `vars`.
        args: Vec<Term>,
    },
    /// Unfold a defined function once, then the automatic core.
    Unfold(Sym),
}

/// A proof.
#[derive(Clone, Debug)]
pub enum Proof {
    /// The automatic core (normalisation + facts + linear arithmetic).
    Auto,
    /// Prove each conjunct of an `And` goal.
    SplitAnd(Vec<Proof>),
    /// Case analysis on a formula.
    Cases {
        /// The split formula.
        on: Formula,
        /// Proof under `on`.
        if_true: Box<Proof>,
        /// Proof under `!on`.
        if_false: Box<Proof>,
    },
    /// Equation chain (the paper's Listing 4): the goal must be an
    /// equality; the chain runs from its left side to its right side.
    Calc(Vec<CalcStep>),
    /// Instantiate a lemma (hypotheses discharged by the automatic core)
    /// and continue with its conclusion available.
    Use {
        /// Lemma name.
        lemma: Sym,
        /// Positional instantiation of the lemma's variables.
        args: Vec<Term>,
        /// Remaining proof.
        rest: Box<Proof>,
    },
    /// Unfold a defined function once in goal and hypotheses.
    Unfold {
        /// Function name.
        func: Sym,
        /// Remaining proof.
        rest: Box<Proof>,
    },
    /// Proves an intermediate fact under the current hypotheses, then
    /// makes it available for the rest of the proof (an `assert`).
    Have {
        /// The intermediate fact.
        fact: Formula,
        /// Its proof.
        proof: Box<Proof>,
        /// Remaining proof with the fact available.
        rest: Box<Proof>,
    },
    /// Induction on an integer variable from a base value. The goal's
    /// hypotheses may mention the variable only as the bound `var ≥ base`.
    Induction {
        /// Induction variable.
        var: Sym,
        /// Base value.
        base: i64,
        /// Proof of the base case.
        base_case: Box<Proof>,
        /// Proof of the step case (`var ≥ base` and the induction
        /// hypothesis are available).
        step_case: Box<Proof>,
    },
}

/// Resource limits for the automatic core.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum conditional splits per goal.
    pub ite_splits: usize,
    /// Maximum disjunctive hypothesis cases.
    pub case_cap: usize,
    /// Fourier–Motzkin constraint budget.
    pub fm_budget: usize,
    /// Fact-saturation rounds.
    pub saturation_rounds: usize,
    /// Optional wall-clock deadline for the automatic core. Checked at the
    /// escalation-tier boundaries of `refute_case` and at every
    /// conditional split, so a single runaway goal fails fast (with a
    /// "deadline exceeded" error) instead of grinding through the full
    /// rewrite/saturation budget. `None` (the default) never times out —
    /// proof *success* is unaffected by timing, only how long a failure
    /// may search.
    pub deadline: Option<std::time::Instant>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            ite_splits: 64,
            case_cap: 512,
            fm_budget: 20_000,
            saturation_rounds: 3,
            deadline: None,
        }
    }
}

/// A proof-checking failure, with a human-readable trail.
#[derive(Clone, Debug)]
pub struct ProofError {
    /// What failed.
    pub message: String,
    /// Goal text at the failure point.
    pub goal: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n  goal: {}", self.message, self.goal)
    }
}

impl std::error::Error for ProofError {}

fn err(message: impl Into<String>, goal: &Formula) -> ProofError {
    ProofError { message: message.into(), goal: goal.to_string() }
}

/// The proof environment: definitions, proven lemmas, and axioms.
#[derive(Clone, Debug)]
pub struct Env {
    defs: BTreeMap<Sym, DefFn>,
    lemmas: BTreeMap<Sym, Lemma>,
    axioms: Vec<Sym>,
    /// Limits for the automatic core.
    pub limits: Limits,
}

impl Default for Env {
    fn default() -> Self {
        Env::new()
    }
}

impl Env {
    /// An empty environment with the built-in integer axioms loaded.
    pub fn new() -> Env {
        let mut env = Env {
            defs: BTreeMap::new(),
            lemmas: BTreeMap::new(),
            axioms: Vec::new(),
            limits: Limits::default(),
        };
        crate::axioms::install(&mut env);
        env
    }

    /// Registers a defined function.
    ///
    /// # Panics
    ///
    /// Panics on duplicate definitions.
    pub fn define(&mut self, def: DefFn) {
        let prev = self.defs.insert(def.name.clone(), def);
        assert!(prev.is_none(), "duplicate function definition");
    }

    /// Looks up a definition.
    pub fn def(&self, name: &str) -> Option<&DefFn> {
        self.defs.get(name)
    }

    /// Looks up a lemma.
    pub fn lemma(&self, name: &str) -> Option<&Lemma> {
        self.lemmas.get(name)
    }

    /// Names of the axioms trusted by this environment.
    pub fn axiom_names(&self) -> &[Sym] {
        &self.axioms
    }

    /// All registered lemma names (axioms included).
    pub fn lemma_names(&self) -> Vec<Sym> {
        self.lemmas.keys().cloned().collect()
    }

    /// Hashes the environment's logical content — definitions, lemma
    /// statements, and trusted axiom names — into `h`, in deterministic
    /// (`BTreeMap`/insertion) order. [`Limits`] are deliberately excluded:
    /// they bound the automatic core's *search*, never what is provable,
    /// so a proof found under one limit set is valid under any other.
    ///
    /// This is the environment component of the VC-cache key
    /// ([`crate::cache`]): two `Env`s with equal digests admit exactly the
    /// same theorems.
    pub fn content_digest(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.defs.len().hash(h);
        for (name, def) in &self.defs {
            name.hash(h);
            def.params.hash(h);
            def.body.hash(h);
        }
        self.lemmas.len().hash(h);
        for (name, lemma) in &self.lemmas {
            name.hash(h);
            lemma.vars.hash(h);
            lemma.hyps.hash(h);
            lemma.concl.hash(h);
        }
        self.axioms.hash(h);
    }

    /// Admits a lemma without proof. This is the trusted base: only
    /// `axioms::install` and tests should call it.
    pub fn assume_axiom(&mut self, lemma: Lemma) {
        self.axioms.push(lemma.name.clone());
        let prev = self.lemmas.insert(lemma.name.clone(), lemma);
        assert!(prev.is_none(), "duplicate axiom");
    }

    /// Checks `proof` and, on success, registers the lemma for later use.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError`] if the proof does not check.
    pub fn prove_lemma(&mut self, lemma: Lemma, proof: &Proof) -> Result<(), ProofError> {
        let _span = telemetry::span!("lemma:{}", lemma.name);
        self.prove(&lemma.hyps, &lemma.concl, proof)?;
        let prev = self.lemmas.insert(lemma.name.clone(), lemma);
        assert!(prev.is_none(), "duplicate lemma name");
        Ok(())
    }

    /// Checks that `hyps ⟹ goal` via `proof`.
    ///
    /// # Errors
    ///
    /// Returns [`ProofError`] describing the first failing step.
    pub fn prove(&self, hyps: &[Formula], goal: &Formula, proof: &Proof) -> Result<(), ProofError> {
        let mut hyps = hyps.to_vec();
        self.prove_inner(&mut hyps, goal, proof, 0)
    }

    fn prove_inner(
        &self,
        hyps: &mut Vec<Formula>,
        goal: &Formula,
        proof: &Proof,
        depth: usize,
    ) -> Result<(), ProofError> {
        if depth > 64 {
            return Err(err("proof nesting too deep", goal));
        }
        match proof {
            Proof::Auto => self.auto(hyps, goal),
            Proof::SplitAnd(ps) => {
                let parts: Vec<Formula> = match goal {
                    Formula::And(fs) => fs.clone(),
                    other => vec![other.clone()],
                };
                if parts.len() != ps.len() {
                    return Err(err(
                        format!("SplitAnd arity mismatch: {} conjuncts, {} proofs", parts.len(), ps.len()),
                        goal,
                    ));
                }
                for (part, p) in parts.iter().zip(ps) {
                    self.prove_inner(hyps, part, p, depth + 1)?;
                }
                Ok(())
            }
            Proof::Cases { on, if_true, if_false } => {
                hyps.push(on.clone());
                self.prove_inner(hyps, goal, if_true, depth + 1)?;
                hyps.pop();
                hyps.push(on.clone().not());
                self.prove_inner(hyps, goal, if_false, depth + 1)?;
                hyps.pop();
                Ok(())
            }
            Proof::Use { lemma, args, rest } => {
                let fact = self.instantiate(lemma, args, hyps, goal)?;
                hyps.push(fact);
                let r = self.prove_inner(hyps, goal, rest, depth + 1);
                hyps.pop();
                r
            }
            Proof::Unfold { func, rest } => {
                let def = self
                    .defs
                    .get(func)
                    .ok_or_else(|| err(format!("unknown function `{func}`"), goal))?;
                let goal2 = unfold_formula(goal, def);
                let hyps2: Vec<Formula> = hyps.iter().map(|h| unfold_formula(h, def)).collect();
                let mut hyps2 = hyps2;
                self.prove_inner(&mut hyps2, &goal2, rest, depth + 1)
            }
            Proof::Calc(steps) => {
                let (lhs, rhs) = match goal {
                    Formula::Eq(a, b) => (a.clone(), b.clone()),
                    other => return Err(err("Calc requires an equality goal", other)),
                };
                let mut prev = lhs;
                for (i, step) in steps.iter().enumerate() {
                    let g = Formula::Eq(prev.clone(), step.to.clone());
                    self.check_just(hyps, &g, &step.just, depth)
                        .map_err(|e| ProofError {
                            message: format!("calc step {} failed: {}", i + 1, e.message),
                            goal: e.goal,
                        })?;
                    prev = step.to.clone();
                }
                let last = Formula::Eq(prev, rhs);
                self.auto(hyps, &last).map_err(|e| ProofError {
                    message: format!("calc closing step failed: {}", e.message),
                    goal: e.goal,
                })
            }
            Proof::Have { fact, proof, rest } => {
                self.prove_inner(hyps, fact, proof, depth + 1).map_err(|e| ProofError {
                    message: format!("have-step `{fact}` failed: {}", e.message),
                    goal: e.goal,
                })?;
                hyps.push(fact.clone());
                let r = self.prove_inner(hyps, goal, rest, depth + 1);
                hyps.pop();
                r
            }
            Proof::Induction { var, base, base_case, step_case } => {
                self.check_induction(hyps, goal, var, *base, base_case, step_case, depth)
            }
        }
    }

    fn check_just(
        &self,
        hyps: &mut Vec<Formula>,
        goal: &Formula,
        just: &Just,
        _depth: usize,
    ) -> Result<(), ProofError> {
        match just {
            Just::Auto => self.auto(hyps, goal),
            Just::Lemma { name, args } => {
                let fact = self.instantiate(name, args, hyps, goal)?;
                hyps.push(fact);
                let r = self.auto(hyps, goal);
                hyps.pop();
                r
            }
            Just::Unfold(func) => {
                let def = self
                    .defs
                    .get(func)
                    .ok_or_else(|| err(format!("unknown function `{func}`"), goal))?;
                let goal2 = unfold_formula(goal, def);
                let hyps2: Vec<Formula> = hyps.iter().map(|h| unfold_formula(h, def)).collect();
                self.auto(&hyps2, &goal2)
            }
        }
    }

    fn instantiate(
        &self,
        name: &str,
        args: &[Term],
        hyps: &[Formula],
        goal: &Formula,
    ) -> Result<Formula, ProofError> {
        let lemma = self
            .lemmas
            .get(name)
            .ok_or_else(|| err(format!("unknown lemma `{name}`"), goal))?;
        if lemma.vars.len() != args.len() {
            return Err(err(
                format!(
                    "lemma `{name}` takes {} arguments, got {}",
                    lemma.vars.len(),
                    args.len()
                ),
                goal,
            ));
        }
        let map: BTreeMap<Sym, Term> =
            lemma.vars.iter().cloned().zip(args.iter().cloned()).collect();
        for h in &lemma.hyps {
            let inst = h.subst(&map);
            self.auto(hyps, &inst).map_err(|e| ProofError {
                message: format!("hypothesis of `{name}` not discharged: {}", e.message),
                goal: e.goal,
            })?;
        }
        Ok(lemma.concl.subst(&map))
    }

    #[allow(clippy::too_many_arguments)]
    fn check_induction(
        &self,
        hyps: &[Formula],
        goal: &Formula,
        var: &str,
        base: i64,
        base_case: &Proof,
        step_case: &Proof,
        depth: usize,
    ) -> Result<(), ProofError> {
        // Hypotheses are split into those free of the induction variable
        // (kept as-is) and those mentioning it. Lower bounds `var >= c`
        // with `c >= base` are subsumed by the rule; any other
        // var-mentioning hypothesis H(var) makes this a *strong* induction
        // over the statement "forall others. H(var) => G(var)": the step
        // context gets H(var+1), and the induction hypothesis is only
        // available through the generalised `IH` lemma (which carries
        // H(var) as its own hypotheses).
        let mut others = Vec::new();
        let mut var_hyps = Vec::new();
        for h in hyps.iter() {
            if !h.free_vars().contains(var) {
                others.push(h.clone());
                continue;
            }
            match h {
                Formula::Le(Term::Const(c), Term::Var(v))
                    if v == var && *c >= BigInt::from(base) => {}
                other => var_hyps.push(other.clone()),
            }
        }
        // Base case: all hypotheses at var = base.
        let base_map: BTreeMap<Sym, Term> =
            [(var.to_string(), Term::int(base))].into_iter().collect();
        let mut hb = others.clone();
        for h in &var_hyps {
            hb.push(h.subst(&base_map));
        }
        self.prove_inner(&mut hb, &goal.subst(&base_map), base_case, depth + 1)
            .map_err(|e| ProofError {
                message: format!("induction base case failed: {}", e.message),
                goal: e.goal,
            })?;
        // Step case: var >= base and the induction hypothesis available,
        // both as a direct hypothesis G(var) and as a *generalised* lemma
        // `IH` quantified over the non-induction variables (so the step can
        // instantiate it at shifted arguments, e.g. `bitsum(a/2, n)`).
        let step_map: BTreeMap<Sym, Term> = [(
            var.to_string(),
            Term::var(var).add(Term::int(1)),
        )]
        .into_iter()
        .collect();
        let mut ih_vars: Vec<Sym> = Vec::new();
        {
            let mut fv = goal.free_vars();
            for h in others.iter().chain(var_hyps.iter()) {
                fv.extend(h.free_vars());
            }
            fv.remove(var);
            ih_vars.extend(fv);
        }
        let mut ih_hyps = others.clone();
        ih_hyps.extend(var_hyps.iter().cloned());
        let mut step_env = self.clone();
        step_env.lemmas.insert(
            "IH".to_string(),
            Lemma {
                name: "IH".to_string(),
                vars: ih_vars,
                hyps: ih_hyps,
                concl: goal.clone(),
            },
        );
        let mut hs = others;
        hs.push(Term::var(var).ge(Term::int(base)));
        // Step context: var-mentioning hypotheses hold at var + 1.
        for h in &var_hyps {
            hs.push(h.subst(&step_map));
        }
        // The plain induction hypothesis G(var) may only be assumed
        // directly when no extra var-mentioning hypotheses exist (the weak
        // form); otherwise it is reachable via `Use IH` with its
        // hypotheses discharged.
        if var_hyps.is_empty() {
            hs.push(goal.clone());
        }
        step_env
            .prove_inner(&mut hs, &goal.subst(&step_map), step_case, depth + 1)
            .map_err(|e| ProofError {
                message: format!("induction step case failed: {}", e.message),
                goal: e.goal,
            })
    }

    /// Whether the configured wall-clock deadline (if any) has passed.
    fn past_deadline(&self) -> bool {
        self.limits.deadline.is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The automatic core.
    fn auto(&self, hyps: &[Formula], goal: &Formula) -> Result<(), ProofError> {
        // No ids are live at a proof boundary: bound both interners'
        // growth (the term arena and the linear-constraint store).
        store::gc_checkpoint();
        crate::linarith::gc_checkpoint();
        telemetry::counter("kernel.auto_calls", 1);
        let mut splits = self.limits.ite_splits;
        let r = self.auto_split(hyps.to_vec(), goal.clone(), &mut splits);
        telemetry::counter(
            "kernel.ite_splits",
            (self.limits.ite_splits - splits) as u64,
        );
        r
    }

    /// Splits all conditionals, then dispatches to the literal-level
    /// prover.
    fn auto_split(
        &self,
        hyps: Vec<Formula>,
        goal: Formula,
        splits: &mut usize,
    ) -> Result<(), ProofError> {
        let ite = find_ite(&goal).or_else(|| hyps.iter().find_map(find_ite));
        if let Some(cond) = ite {
            if *splits == 0 {
                return Err(err("conditional split budget exhausted", &goal));
            }
            if self.past_deadline() {
                return Err(err("kernel wall-clock deadline exceeded", &goal));
            }
            *splits -= 1;
            for v in [true, false] {
                let mut h2: Vec<Formula> =
                    hyps.iter().map(|h| assume_ite(h, &cond, v)).collect();
                h2.push(if v { cond.clone() } else { cond.clone().not() });
                let g2 = assume_ite(&goal, &cond, v);
                self.auto_split(h2, g2, splits)?;
            }
            return Ok(());
        }
        self.auto_flat(&hyps, &goal)
    }

    /// Ite-free automatic proving.
    fn auto_flat(&self, hyps: &[Formula], goal: &Formula) -> Result<(), ProofError> {
        // Goal decomposition.
        match goal {
            Formula::True => return Ok(()),
            Formula::And(fs) => {
                for f in fs {
                    self.auto_flat(hyps, f)?;
                }
                return Ok(());
            }
            Formula::Implies(a, b) => {
                let mut h2 = hyps.to_vec();
                h2.push((**a).clone());
                return self.auto_flat(&h2, b);
            }
            Formula::Or(fs) => {
                // Either the hypotheses are already contradictory, or some
                // disjunct is provable.
                if self.auto_flat(hyps, &Formula::False).is_ok() {
                    return Ok(());
                }
                let mut last = None;
                for f in fs {
                    match self.auto_flat(hyps, f) {
                        Ok(()) => return Ok(()),
                        Err(e) => last = Some(e),
                    }
                }
                return Err(last.unwrap_or_else(|| err("empty disjunction", goal)));
            }
            _ => {}
        }
        // Expand hypotheses into disjunction-free cases.
        let mut cases: Vec<Vec<Literal>> = vec![Vec::new()];
        for h in hyps {
            expand_hyp(h, &mut cases, self.limits.case_cap)
                .map_err(|m| err(m, goal))?;
        }
        for case in &cases {
            self.prove_case(case, goal)?;
        }
        Ok(())
    }

    /// Proves the goal under one literal case via linear arithmetic.
    fn prove_case(&self, case: &[Literal], goal: &Formula) -> Result<(), ProofError> {
        // Boolean-literal contradictions close the case immediately.
        let mut bools: BTreeMap<&str, bool> = BTreeMap::new();
        for l in case {
            if let Literal::Bool(name, v) = l {
                if let Some(prev) = bools.insert(name, *v) {
                    if prev != *v {
                        return Ok(());
                    }
                }
            }
        }
        let neg_goals: Vec<Vec<Literal>> = match goal {
            Formula::Eq(a, b) => vec![
                vec![Literal::Lt(a.clone(), b.clone())],
                vec![Literal::Lt(b.clone(), a.clone())],
            ],
            Formula::Le(a, b) => vec![vec![Literal::Lt(b.clone(), a.clone())]],
            Formula::Lt(a, b) => vec![vec![Literal::Le(b.clone(), a.clone())]],
            Formula::Not(inner) => {
                // Prove ¬f by deriving a contradiction from f.
                let mut sub = vec![Vec::new()];
                expand_hyp(inner, &mut sub, self.limits.case_cap)
                    .map_err(|m| err(m, goal))?;
                for extra in sub {
                    self.refute_case(case, &extra, goal)?;
                }
                return Ok(());
            }
            Formula::False => {
                return self.refute_case(case, &[], goal);
            }
            Formula::BVar(name) => {
                if bools.get(name.as_str()) == Some(&true) {
                    return Ok(());
                }
                // Otherwise provable only if the case is contradictory.
                return self.refute_case(case, &[], goal);
            }
            Formula::True => return Ok(()),
            other => {
                return Err(err("automatic core cannot decompose this goal", other));
            }
        };
        // Prove by refuting each negation case.
        for neg in neg_goals {
            self.refute_case(case, &neg, goal)?;
        }
        Ok(())
    }

    /// Refutes a conjunction of literals via normalisation, equality-driven
    /// polynomial reduction, fact saturation, and Fourier–Motzkin — in
    /// escalating tiers, so cheap goals stay cheap.
    fn refute_case(
        &self,
        hyp_lits: &[Literal],
        neg_lits: &[Literal],
        goal: &Formula,
    ) -> Result<(), ProofError> {
        telemetry::counter("kernel.refute_cases", 1);
        let deadline_err = || err("kernel wall-clock deadline exceeded", goal);
        if self.past_deadline() {
            return Err(deadline_err());
        }
        // 1. Normalise literals into polynomial constraints `p + k >= 0`
        //    and equality polynomials `p == 0`. Polynomials coming from the
        //    negated goal seed the relevance filter.
        let mut eq_polys: Vec<Poly> = Vec::new();
        let mut ineqs: Vec<(Poly, BigInt)> = Vec::new();
        let mut seeds: Vec<Poly> = Vec::new();
        for (is_seed, l) in hyp_lits
            .iter()
            .map(|l| (false, l))
            .chain(neg_lits.iter().map(|l| (true, l)))
        {
            match l {
                Literal::Bool(..) => {}
                Literal::Eq(a, b) => {
                    let p = sub_norm(b, a).map_err(|m| err(m, goal))?;
                    if is_seed {
                        seeds.push(p.clone());
                    }
                    eq_polys.push(p);
                }
                Literal::Le(a, b) => {
                    let p = sub_norm(b, a).map_err(|m| err(m, goal))?;
                    if is_seed {
                        seeds.push(p.clone());
                    }
                    ineqs.push((p, BigInt::zero()));
                }
                Literal::Lt(a, b) => {
                    let p = sub_norm(b, a).map_err(|m| err(m, goal))?;
                    if is_seed {
                        seeds.push(p.clone());
                    }
                    ineqs.push((p, BigInt::from(-1)));
                }
            }
        }
        let rules = make_rules(&eq_polys);
        let mut cap = 40_000usize;

        // Tier 0: plain constraints plus rule-reduced variants.
        let mut all: Vec<(Poly, BigInt)> = Vec::new();
        for p in &eq_polys {
            all.push((p.clone(), BigInt::zero()));
            let mut n = p.clone();
            n.scale(&BigInt::from(-1));
            all.push((n, BigInt::zero()));
        }
        for (p, k) in &ineqs {
            all.push((p.clone(), k.clone()));
            let mut reduced = p.clone();
            reduce_poly(&mut reduced, &rules, &mut cap);
            if &reduced != p {
                all.push((reduced, k.clone()));
            }
        }
        // Deep reduction (congruence rewriting under the hypothesis
        // equalities) with its own budget: cheap and often decisive.
        if !rules.is_empty() {
            let mut deep_cap = 8_000usize;
            let snapshot: Vec<(Poly, BigInt)> = all.clone();
            for (p, k) in snapshot {
                let t = p.to_term();
                let rt = deep_reduce_term(&t, &rules, &mut deep_cap, 0);
                if let Ok(mut rp) = store::normalize_cached(&rt) {
                    reduce_poly(&mut rp, &rules, &mut cap);
                    if rp != p {
                        all.push((rp, k));
                    }
                }
            }
        }
        let mut atoms = AtomTable::default();
        let mut cons: Vec<LinCon> = Vec::new();
        for (p, k) in &all {
            cons.push(atoms.lincon(p, k.clone()));
        }
        let seed_idx: std::collections::BTreeSet<usize> = {
            let mut set = std::collections::BTreeSet::new();
            for p in &seeds {
                let c = atoms.lincon(p, BigInt::zero());
                set.extend(c.coeffs.keys().copied());
            }
            set
        };
        if self.filtered_refute_opt(&mut atoms, &cons, &seed_idx, true) == Refutation::Unsat {
            return Ok(());
        }

        // Tier 1: Div/Pow2 facts, quotient signs, bound products.
        let mut prod_seen = std::collections::BTreeSet::new();
        let mut eq_facts: Vec<Poly> = Vec::new();
        for _ in 0..self.limits.saturation_rounds {
            if self.past_deadline() {
                return Err(deadline_err());
            }
            let mut added = self.saturate(&mut atoms, &mut cons, &rules, &mut cap, &mut eq_facts);
            added |= bound_products(&mut atoms, &mut cons);
            if !added {
                break;
            }
        }
        if self.filtered_refute_opt(&mut atoms, &cons, &seed_idx, true) == Refutation::Unsat {
            return Ok(());
        }

        // Tier 1.5: the saturation pass derived new equalities (Pow2
        // shifts/products); rebuild the rule set with them and deep-reduce
        // again — this is what lets e.g. `Div(R, 2)` meet
        // `Div(hi + 2*lo*P', 2)` through `Pow2(w-c) == 2*Pow2(w-c-1)`.
        let rules = if eq_facts.is_empty() {
            rules
        } else {
            let mut all_eqs = eq_polys.clone();
            all_eqs.extend(eq_facts.iter().cloned());
            let rules2 = make_rules(&all_eqs);
            let mut deep_cap = 8_000usize;
            let snapshot: Vec<(Poly, BigInt)> = all.clone();
            for (p, k) in snapshot {
                let t = p.to_term();
                let rt = deep_reduce_term(&t, &rules2, &mut deep_cap, 0);
                if let Ok(mut rp) = store::normalize_cached(&rt) {
                    reduce_poly(&mut rp, &rules2, &mut cap);
                    if rp != p {
                        all.push((rp.clone(), k.clone()));
                        cons.push(atoms.lincon(&rp, k));
                    }
                }
            }
            for _ in 0..self.limits.saturation_rounds {
                if self.past_deadline() {
                    return Err(deadline_err());
                }
                let mut added =
                    self.saturate(&mut atoms, &mut cons, &rules2, &mut cap, &mut eq_facts);
                added |= bound_products(&mut atoms, &mut cons);
                if !added {
                    break;
                }
            }
            if self.filtered_refute_opt(&mut atoms, &cons, &seed_idx, true) == Refutation::Unsat {
                return Ok(());
            }
            rules2
        };

        // Tier 2: equality-atom products and inequality-atom products.
        if self.past_deadline() {
            return Err(deadline_err());
        }
        {
            let mut extra: Vec<(Poly, BigInt)> = Vec::new();
            // Universe of degree-1 atoms and monomials in play.
            let mut atoms_univ: Vec<Term> = Vec::new();
            let mut mono_univ: Vec<Vec<Term>> = Vec::new();
            for (p, _) in &all {
                for m in p.terms.keys() {
                    if !mono_univ.contains(m) {
                        mono_univ.push(m.clone());
                    }
                }
            }
            // Only multiply by atoms near the goal (seed polys) or inside
            // rule monomials: products elsewhere just densify the system.
            for p in &seeds {
                for m in p.terms.keys() {
                    for a in m {
                        if !atoms_univ.contains(a) {
                            atoms_univ.push(a.clone());
                        }
                    }
                }
            }
            for r in &rules {
                for a in &r.monomial {
                    if !atoms_univ.contains(a) {
                        atoms_univ.push(a.clone());
                    }
                }
            }
            atoms_univ.truncate(24);
            let relevant = |m: &Vec<Term>| -> bool {
                mono_univ.iter().any(|n| multiset_minus(n, m).is_some())
                    || rules.iter().any(|r| multiset_minus(m, &r.monomial).is_some())
            };
            for e in &eq_polys {
                for u in &atoms_univ {
                    let mut useful = false;
                    for m in e.terms.keys() {
                        let mut ext = m.clone();
                        ext.push(u.clone());
                        ext.sort();
                        if relevant(&ext) {
                            useful = true;
                            break;
                        }
                    }
                    if !useful {
                        continue;
                    }
                    let mut p = e.mul(&Poly::atom(u.clone()));
                    reduce_poly(&mut p, &rules, &mut cap);
                    let mut n = p.clone();
                    n.scale(&BigInt::from(-1));
                    extra.push((p, BigInt::zero()));
                    extra.push((n, BigInt::zero()));
                }
            }
            for (i, p) in eq_polys.iter().enumerate() {
                let other: Vec<Rule> = rules
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, r)| r.clone())
                    .collect();
                let mut reduced = p.clone();
                reduce_poly(&mut reduced, &other, &mut cap);
                if &reduced != p {
                    extra.push((reduced.clone(), BigInt::zero()));
                    let mut n = reduced;
                    n.scale(&BigInt::from(-1));
                    extra.push((n, BigInt::zero()));
                }
            }
            for (p, k) in &extra {
                cons.push(atoms.lincon(p, k.clone()));
            }
            all.extend(extra);
        }
        for _ in 0..self.limits.saturation_rounds {
            if self.past_deadline() {
                return Err(deadline_err());
            }
            let mut added =
                self.saturate(&mut atoms, &mut cons, &rules, &mut cap, &mut eq_facts);
            added |= bound_products(&mut atoms, &mut cons);
            added |= ineq_atom_products(&mut atoms, &mut cons, &mut prod_seen);
            if !added {
                break;
            }
        }
        let outcome = self.filtered_refute(&mut atoms, &cons, &seed_idx);
        telemetry::counter("kernel.rewrites", (40_000 - cap) as u64);
        if outcome != Refutation::Unsat && telemetry::enabled() {
            // The old CHICALA_DUMP_CONS eprintln dump, now a capturable
            // structured event (exported via the trace, not lost to stderr).
            let system: Vec<String> = cons
                .iter()
                .map(|c| {
                    let terms: Vec<String> =
                        c.coeffs.iter().map(|(i, v)| format!("{v}*a{i}")).collect();
                    format!("{} + {} >= 0", terms.join(" + "), c.constant)
                })
                .collect();
            let atom_list: Vec<String> = atoms
                .atoms
                .iter()
                .enumerate()
                .map(|(i, a)| format!("a{i} = {a}"))
                .collect();
            telemetry::event(
                "kernel.unrefuted_system",
                &[
                    ("goal", goal.to_string()),
                    ("atoms", atom_list.join("; ")),
                    ("constraints", system.join("; ")),
                ],
            );
        }
        match outcome {
            Refutation::Unsat => Ok(()),
            Refutation::Unknown => Err(err("linear arithmetic found no contradiction", goal)),
            Refutation::Overflow => Err(err("linear arithmetic budget exceeded", goal)),
        }
    }

    /// Refutes with goal-directed relevance filtering first (constraints
    /// within a few shared-atom hops of the negated goal), falling back to
    /// the full set.
    fn filtered_refute(
        &self,
        atoms: &mut AtomTable,
        cons: &[LinCon],
        seeds: &std::collections::BTreeSet<usize>,
    ) -> Refutation {
        self.filtered_refute_opt(atoms, cons, seeds, false)
    }

    fn filtered_refute_opt(
        &self,
        atoms: &mut AtomTable,
        cons: &[LinCon],
        seeds: &std::collections::BTreeSet<usize>,
        light: bool,
    ) -> Refutation {
        if self.past_deadline() {
            return Refutation::Overflow;
        }
        // Interned ids when every constraint fits i128 (the common case):
        // each subset attempt is then a `Vec` of `Copy` ids instead of a
        // re-converted borrow list.
        let use_ids = atoms.sync_con_ids(cons);
        let run = |atoms: &AtomTable, idxs: &[usize]| -> Refutation {
            if use_ids {
                let sub: Vec<ConId> =
                    idxs.iter().map(|&i| atoms.con_ids[i].expect("synced")).collect();
                refute_ids(&sub, self.limits.fm_budget)
            } else {
                let sub: Vec<&LinCon> = idxs.iter().map(|&i| &cons[i]).collect();
                refute_refs(&sub, self.limits.fm_budget)
            }
        };
        if !seeds.is_empty() {
            let order = relevance_order(cons, seeds);
            for cap in [24usize, 64, 160] {
                if cap >= order.len() {
                    break;
                }
                if self.past_deadline() {
                    return Refutation::Overflow;
                }
                if run(atoms, &order[..cap]) == Refutation::Unsat {
                    return Refutation::Unsat;
                }
            }
            if light {
                // Intermediate tiers stop at a mid-size attempt; the final
                // tier pays for the full system.
                let take = order.len().min(240);
                return run(atoms, &order[..take]);
            }
            if order.len() < cons.len()
                && !self.past_deadline()
                && run(atoms, &order) == Refutation::Unsat
            {
                return Refutation::Unsat;
            }
        }
        if self.past_deadline() {
            return Refutation::Overflow;
        }
        let all: Vec<usize> = (0..cons.len()).collect();
        run(atoms, &all)
    }

    /// Adds range facts for `Div` sub-terms with provably positive
    /// divisors and positivity/monotonicity facts for `Pow2` sub-terms
    /// anywhere in the current constraints. Returns whether new constraints
    /// were added.
    fn saturate(
        &self,
        atoms: &mut AtomTable,
        cons: &mut Vec<LinCon>,
        rules: &[Rule],
        cap: &mut usize,
        eq_facts: &mut Vec<Poly>,
    ) -> bool {
        // Collect every Div/Pow2 sub-term reachable from the current atoms
        // (incrementally: only atoms added since the previous round are
        // walked; the persistent candidate list is taken out for the
        // duration of the round and restored before returning).
        atoms.collect_new_candidates();
        let candidates = std::mem::take(&mut atoms.candidates);
        telemetry::counter("kernel.saturation_rounds", 1);
        if telemetry::enabled() {
            telemetry::record("kernel.saturation_candidates", candidates.len() as u64);
            telemetry::record("kernel.saturation_atoms", atoms.atoms.len() as u64);
        }
        let mut added = false;
        // Divisor-positivity probes repeat heavily (many atoms share the
        // same divisor): cache within this round, keyed by interned id.
        let mut div_pos_cache: HashMap<TermId, bool> = HashMap::new();
        let push_fact = |poly_res: Result<Poly, String>,
                             extra: BigInt,
                             atoms: &mut AtomTable,
                             cons: &mut Vec<LinCon>,
                             cap: &mut usize|
         -> bool {
            if let Ok(mut p) = poly_res {
                reduce_poly(&mut p, rules, cap);
                cons.push(atoms.lincon(&p, extra));
                true
            } else {
                false
            }
        };
        for t in &candidates {
            match t {
                Term::Div(a, b) => {
                    let bid = store::intern(b);
                    let b_pos = match div_pos_cache.get(&bid) {
                        Some(&v) => v,
                        None => {
                            let v = self.implies_positive(atoms, cons, b);
                            div_pos_cache.insert(bid, v);
                            v
                        }
                    };
                    if !atoms.fact_done(t) && b_pos {
                        atoms.mark_fact(t);
                        // r = a - b*(a/b); 0 <= r <= b - 1.
                        let r = (**a).clone().sub((**b).clone().mul(t.clone()));
                        added |= push_fact(
                            sub_norm(&r, &Term::int(0)),
                            BigInt::zero(),
                            atoms,
                            cons,
                            cap,
                        );
                        added |= push_fact(
                            sub_norm(&(**b).clone().sub(Term::int(1)), &r),
                            BigInt::zero(),
                            atoms,
                            cons,
                            cap,
                        );
                    }
                    // Direct sign/step facts on the quotient itself (these
                    // avoid case splits on divisibility). Each is retried
                    // every round until it succeeds — later rounds know
                    // more (products, Pow2 equalities):
                    //   a >= 0  ==>  a/b >= 0
                    //   a <  b  ==>  a/b <= 0
                    //   a >= b  ==>  a/b >= 1
                    if atoms.fact_done(t) {
                        if !atoms.sign_done(t, 0) && self.implies_nonneg(atoms, cons, a) {
                            atoms.mark_sign(t, 0);
                            added |= push_fact(
                                sub_norm(t, &Term::int(0)),
                                BigInt::zero(),
                                atoms,
                                cons,
                                cap,
                            );
                        }
                        let b_minus_1_minus_a =
                            (**b).clone().sub(Term::int(1)).sub((**a).clone());
                        if !atoms.sign_done(t, 1)
                            && self.implies_nonneg(atoms, cons, &b_minus_1_minus_a)
                        {
                            atoms.mark_sign(t, 1);
                            added |= push_fact(
                                sub_norm(&Term::int(0), t),
                                BigInt::zero(),
                                atoms,
                                cons,
                                cap,
                            );
                        }
                        let a_minus_b = (**a).clone().sub((**b).clone());
                        if !atoms.sign_done(t, 2)
                            && self.implies_nonneg(atoms, cons, &a_minus_b)
                        {
                            atoms.mark_sign(t, 2);
                            added |= push_fact(
                                sub_norm(t, &Term::int(1)),
                                BigInt::zero(),
                                atoms,
                                cons,
                                cap,
                            );
                        }
                    }
                }
                Term::Pow2(e) => {
                    if atoms.fact_done(t) {
                        continue;
                    }
                    atoms.mark_fact(t);
                    // Pow2(e) >= 1 (clamped semantics) and Pow2(e) >= e + 1.
                    added |= push_fact(
                        sub_norm(t, &Term::int(1)),
                        BigInt::zero(),
                        atoms,
                        cons,
                        cap,
                    );
                    added |= push_fact(
                        sub_norm(t, &(**e).clone().add(Term::int(1))),
                        BigInt::zero(),
                        atoms,
                        cons,
                        cap,
                    );
                }
                _ => {}
            }
        }
        // Pow2 shift facts: Pow2(p + k) == 2^k * Pow2(p) when p >= 0 is
        // implied (k a positive constant). The base atom is created when
        // the shift is small, so chains like Pow2(len) -> 2*Pow2(len-1)
        // appear automatically.
        {
            let pows: Vec<Term> =
                candidates.iter().filter(|t| matches!(t, Term::Pow2(_))).cloned().collect();
            let existing_args: Vec<(Term, Poly)> = pows
                .iter()
                .filter_map(|t| match t {
                    Term::Pow2(e) => store::normalize_cached(e).ok().map(|p| ((**e).clone(), p)),
                    _ => None,
                })
                .collect();
            for t in &pows {
                let Term::Pow2(e) = t else { continue };
                if atoms.shift_done(t) {
                    continue;
                }
                let Ok(parg) = store::normalize_cached(e) else { continue };
                let k = parg
                    .terms
                    .get(&Vec::new() as &Monomial)
                    .cloned()
                    .unwrap_or_else(BigInt::zero);
                if k.is_zero() || k.abs() > BigInt::from(8) {
                    continue;
                }
                let mut base = parg.clone();
                base.terms.remove(&Vec::new() as &Monomial);
                if base.is_zero() {
                    continue; // constant Pow2 already folded
                }
                // Positive offset: Pow2(base + k) == 2^k * Pow2(base),
                // valid when base >= 0. Negative offset: view this atom as
                // the base of Pow2(base) == 2^|k| * Pow2(base + k), valid
                // when base + k >= 0.
                let (hi_term, lo_term, kk, guard) = if !k.is_negative() {
                    let kk = u64::try_from(&k).expect("small constant");
                    (t.clone(), Term::pow2(base.to_term()), kk, base.to_term())
                } else {
                    let kk = u64::try_from(&(-k)).expect("small constant");
                    (Term::pow2(base.to_term()), t.clone(), kk, parg.to_term())
                };
                if !self.implies_nonneg(atoms, cons, &guard) {
                    continue;
                }
                // Reuse an existing atom when the counterpart exists;
                // create it only for small shifts.
                let base_exists = existing_args.iter().any(|(_, p)| *p == base);
                if !base_exists && kk > 2 {
                    continue;
                }
                atoms.mark_shift(t);
                let fact = hi_term.sub(Term::Const(BigInt::pow2(kk)).mul(lo_term));
                if let Ok(p) = store::normalize_cached(&fact) {
                    // Equality as two inequalities for the linear core,
                    // and as an equality poly for rule rebuilding.
                    cons.push(atoms.lincon(&p, BigInt::zero()));
                    let mut n = p.clone();
                    n.scale(&BigInt::from(-1));
                    cons.push(atoms.lincon(&n, BigInt::zero()));
                    eq_facts.push(p);
                    added = true;
                }
            }
            // Pow2 product facts: Pow2(a)*Pow2(b) == Pow2(a+b) when both
            // exponents are provably non-negative and the sum atom exists.
            for t1 in &pows {
                for t2 in &pows {
                    if t1 > t2 {
                        continue;
                    }
                    let (Term::Pow2(e1), Term::Pow2(e2)) = (t1, t2) else { continue };
                    if atoms.prodp_done(t1, t2) {
                        continue;
                    }
                    let (Ok(p1), Ok(p2)) = (store::normalize_cached(e1), store::normalize_cached(e2)) else { continue };
                    let mut sum = p1.clone();
                    sum.add(&p2);
                    let target = existing_args.iter().find(|(_, p)| *p == sum);
                    let Some((target_arg, _)) = target else { continue };
                    if !self.implies_nonneg(atoms, cons, e1)
                        || !self.implies_nonneg(atoms, cons, e2)
                    {
                        continue;
                    }
                    atoms.mark_prodp(t1, t2);
                    let fact = t1
                        .clone()
                        .mul(t2.clone())
                        .sub(Term::pow2(target_arg.clone()));
                    if let Ok(p) = store::normalize_cached(&fact) {
                        cons.push(atoms.lincon(&p, BigInt::zero()));
                        let mut n = p.clone();
                        n.scale(&BigInt::from(-1));
                        cons.push(atoms.lincon(&n, BigInt::zero()));
                        eq_facts.push(p);
                        added = true;
                    }
                }
            }
        }

        // Pairwise Pow2 monotonicity: e1 <= e2 implied => Pow2(e1) <= Pow2(e2).
        let pows: Vec<Term> =
            candidates.iter().filter(|t| matches!(t, Term::Pow2(_))).cloned().collect();
        for p1 in &pows {
            for p2 in &pows {
                if p1 == p2 || atoms.mono_done(p1, p2) {
                    continue;
                }
                let (Term::Pow2(e1), Term::Pow2(e2)) = (p1, p2) else { continue };
                let diff = (**e2).clone().sub((**e1).clone());
                if self.implies_nonneg(atoms, cons, &diff) {
                    atoms.mark_mono(p1, p2);
                    added |= push_fact(sub_norm(p2, p1), BigInt::zero(), atoms, cons, cap);
                }
            }
        }
        atoms.candidates = candidates;
        added
    }

    fn implies_positive(&self, atoms: &mut AtomTable, cons: &[LinCon], b: &Term) -> bool {
        // b >= 1  <=>  refute(cons AND b <= 0).
        let Ok(p) = sub_norm(&Term::int(0), b) else { return false };
        // Quick syntactic wins: positive constants and Pow2 atoms.
        if let Some(c) = p.as_const() {
            return (-c) >= BigInt::one();
        }
        if matches!(b, Term::Pow2(_)) {
            return true;
        }
        let probe_con = atoms.lincon(&p, BigInt::zero());
        matches!(self.probe_refute(atoms, cons, probe_con), Refutation::Unsat)
    }

    /// A cheaper refutation used by saturation probes: small relevance
    /// prefixes with a reduced budget (probes are asked often and usually
    /// have local certificates). `probe_con` is the negated fact being
    /// probed; it is appended to `cons` (by reference — the constraint set
    /// itself is never cloned) and seeds the relevance filter.
    fn probe_refute(
        &self,
        atoms: &mut AtomTable,
        cons: &[LinCon],
        probe_con: LinCon,
    ) -> Refutation {
        let budget = self.limits.fm_budget / 4;
        let seeds: std::collections::BTreeSet<usize> =
            probe_con.coeffs.keys().copied().collect();
        if !seeds.is_empty() {
            // The probe constraint itself participates in the BFS as a
            // virtual last element of `cons`.
            let order = relevance_order_with(cons, &seeds, &probe_con);
            // Id path: the case's constraints are interned once; each
            // prefix is a copy of machine words and a memoised repeat
            // costs an id sort.
            if atoms.sync_con_ids(cons) {
                if let Some(probe_id) = intern_con(&probe_con) {
                    let id_at = |i: usize| -> ConId {
                        if i == cons.len() {
                            probe_id
                        } else {
                            atoms.con_ids[i].expect("synced")
                        }
                    };
                    for cap in [32usize, 96] {
                        let take = cap.min(order.len());
                        let sub: Vec<ConId> = order[..take].iter().map(|&i| id_at(i)).collect();
                        if refute_ids(&sub, budget) == Refutation::Unsat {
                            return Refutation::Unsat;
                        }
                        if take == order.len() {
                            return Refutation::Unknown;
                        }
                    }
                    let sub: Vec<ConId> = order.iter().map(|&i| id_at(i)).collect();
                    return refute_ids(&sub, budget);
                }
            }
            // i128-overflow fallback: borrowed constraints.
            for cap in [32usize, 96] {
                let take = cap.min(order.len());
                let sub: Vec<&LinCon> = order[..take]
                    .iter()
                    .map(|&i| if i == cons.len() { &probe_con } else { &cons[i] })
                    .collect();
                if refute_refs(&sub, budget) == Refutation::Unsat {
                    return Refutation::Unsat;
                }
                if take == order.len() {
                    return Refutation::Unknown;
                }
            }
            let sub: Vec<&LinCon> = order
                .iter()
                .map(|&i| if i == cons.len() { &probe_con } else { &cons[i] })
                .collect();
            return refute_refs(&sub, budget);
        }
        let mut sub: Vec<&LinCon> = cons.iter().collect();
        sub.push(&probe_con);
        refute_refs(&sub, budget)
    }

    fn implies_nonneg(&self, atoms: &mut AtomTable, cons: &[LinCon], d: &Term) -> bool {
        // d >= 0  <=>  refute(cons AND d <= -1).
        let Ok(p) = sub_norm(&Term::int(0), d) else { return false };
        if let Some(c) = p.as_const() {
            return !(-c).is_negative();
        }
        let probe_con = atoms.lincon(&p, BigInt::from(-1));
        matches!(self.probe_refute(atoms, cons, probe_con), Refutation::Unsat)
    }
}

/// Orders constraints by the BFS round (shared-atom distance from the seed
/// atoms) at which they join, ties within a round broken by constraint
/// index — certificates tend to be local, so callers try growing prefixes
/// of this order. Single pass: an atom → constraints incidence index is
/// built once, then each BFS round only touches the constraints incident
/// to atoms that joined in the previous round (the old implementation
/// rescanned the full constraint set every round).
fn relevance_order(cons: &[LinCon], seeds: &std::collections::BTreeSet<usize>) -> Vec<usize> {
    relevance_order_impl(cons, seeds, None)
}

/// [`relevance_order`] with one extra virtual constraint at index
/// `cons.len()` (the probe constraint), avoiding a clone of `cons`.
fn relevance_order_with(
    cons: &[LinCon],
    seeds: &std::collections::BTreeSet<usize>,
    extra: &LinCon,
) -> Vec<usize> {
    relevance_order_impl(cons, seeds, Some(extra))
}

fn relevance_order_impl(
    cons: &[LinCon],
    seeds: &std::collections::BTreeSet<usize>,
    extra: Option<&LinCon>,
) -> Vec<usize> {
    let total = cons.len() + extra.is_some() as usize;
    let con_at = |i: usize| -> &LinCon {
        if i < cons.len() {
            &cons[i]
        } else {
            extra.expect("index beyond cons only with extra")
        }
    };
    let max_atom = (0..total)
        .flat_map(|i| con_at(i).coeffs.keys().copied())
        .chain(seeds.iter().copied())
        .max();
    let Some(max_atom) = max_atom else { return Vec::new() };
    // Atom -> incident constraint indices, one pass.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); max_atom + 1];
    for i in 0..total {
        for &k in con_at(i).coeffs.keys() {
            adj[k].push(i as u32);
        }
    }
    let mut in_rel = vec![false; max_atom + 1];
    let mut chosen = vec![false; total];
    let mut order: Vec<usize> = Vec::new();
    let mut frontier: Vec<usize> = seeds.iter().copied().collect();
    for &a in &frontier {
        in_rel[a] = true;
    }
    while !frontier.is_empty() {
        let mut round: Vec<u32> = Vec::new();
        for &a in &frontier {
            for &ci in &adj[a] {
                if !chosen[ci as usize] {
                    chosen[ci as usize] = true;
                    round.push(ci);
                }
            }
        }
        // Within a round, constraints join in index order (this matches
        // the original full-rescan order exactly, so prefix contents are
        // unchanged).
        round.sort_unstable();
        let mut next: Vec<usize> = Vec::new();
        for &ci in &round {
            order.push(ci as usize);
            for &k in con_at(ci as usize).coeffs.keys() {
                if !in_rel[k] {
                    in_rel[k] = true;
                    next.push(k);
                }
            }
        }
        frontier = next;
    }
    order
}

/// A polynomial rewrite rule `coeff * monomial == -tail` (with
/// `coeff > 0`), oriented from an equality hypothesis by its largest
/// monomial under the degree-lexicographic order.
#[derive(Clone, Debug)]
struct Rule {
    coeff: BigInt,
    monomial: Vec<Term>,
    tail: Poly,
}

fn deglex_key(m: &[Term]) -> (usize, Vec<Term>) {
    (m.len(), m.to_vec())
}

fn make_rules(eqs: &[Poly]) -> Vec<Rule> {
    let mut out = Vec::new();
    for p in eqs {
        if p.is_zero() {
            continue;
        }
        let chosen = choose_rule_monomial(p);
        let Some((m, c)) = chosen else { continue };
        let mut p = p.clone();
        let mut coeff = c;
        if coeff.is_negative() {
            p.scale(&BigInt::from(-1));
            coeff = -coeff;
        }
        let mut tail = p;
        tail.terms.remove(&m);
        out.push(Rule { coeff, monomial: m, tail });
    }
    out
}

/// Picks the monomial an equality is oriented around:
/// 1. a bare variable with unit coefficient not occurring elsewhere
///    (classic substitution — lets invariant equations like `R == f(i)`
///    rewrite `R` everywhere, including inside `Div` arguments);
/// 2. for two-monomial equalities between single `Pow2` atoms whose
///    arguments differ by a constant, the atom with the larger constant
///    (canonical shift direction `Pow2(x+k) -> 2^k Pow2(x)`);
/// 3. otherwise the degree-lexicographically largest monomial.
fn choose_rule_monomial(p: &Poly) -> Option<(Monomial, BigInt)> {
    // 1. Variable substitution.
    for (m, c) in &p.terms {
        if m.len() != 1 || !(c.is_one() || (-c.clone()).is_one()) {
            continue;
        }
        let Term::Var(x) = &m[0] else { continue };
        let occurs_elsewhere = p.terms.iter().any(|(n, _)| {
            if n == m {
                return false;
            }
            n.iter().any(|atom| store::has_free_var(atom, x))
        });
        if !occurs_elsewhere {
            return Some((m.clone(), c.clone()));
        }
    }
    // 2. Pow2 shift orientation.
    if p.terms.len() == 2 {
        let entries: Vec<(&Monomial, &BigInt)> = p.terms.iter().collect();
        {
            let ((m1, c1), (m2, c2)) = (entries[0], entries[1]);
            if m1.len() == 1 && m2.len() == 1 {
                if let (Term::Pow2(e1), Term::Pow2(e2)) = (&m1[0], &m2[0]) {
                    if let (Ok(p1), Ok(p2)) = (store::normalize_cached(e1), store::normalize_cached(e2)) {
                        let mut diff = p1;
                        let mut n2 = p2;
                        n2.scale(&BigInt::from(-1));
                        diff.add(&n2);
                        if let Some(k) = diff.as_const() {
                            let (big, coeff) = if !k.is_negative() { (m1, c1) } else { (m2, c2) };
                            if coeff.is_one() || (-(*coeff).clone()).is_one() {
                                return Some((big.clone(), coeff.clone()));
                            }
                        }
                    }
                }
            }
        }
    }
    // 3. Degree-lex maximum.
    p.terms
        .iter()
        .filter(|(m, _)| !m.is_empty())
        .max_by_key(|(m, _)| deglex_key(m))
        .map(|(m, c)| (m.clone(), c.clone()))
}

/// Removes one occurrence of `sub` (as a multiset) from `m`, if contained.
fn multiset_minus(m: &[Term], sub: &[Term]) -> Option<Vec<Term>> {
    let mut rest = m.to_vec();
    for s in sub {
        let i = rest.iter().position(|x| x == s)?;
        rest.remove(i);
    }
    Some(rest)
}

/// Reduces `poly` by the rules: wherever a monomial contains a rule's
/// monomial, the whole constraint is scaled by the rule's (positive)
/// coefficient and the occurrence replaced by the rule's tail. Sound for
/// `>= 0` constraints; `cap` bounds total rewrites.
fn reduce_poly(poly: &mut Poly, rules: &[Rule], cap: &mut usize) {
    'outer: while *cap > 0 {
        for rule in rules {
            let hit = poly.terms.iter().find_map(|(n, d)| {
                if n.len() < rule.monomial.len() {
                    return None;
                }
                multiset_minus(n, &rule.monomial).map(|rest| (n.clone(), d.clone(), rest))
            });
            if let Some((n, d, mprime)) = hit {
                *cap -= 1;
                // poly' = coeff*poly - coeff*d*N - d*(tail x M')
                poly.scale(&rule.coeff);
                let entry = poly
                    .terms
                    .get_mut(&n)
                    .expect("monomial still present after scaling");
                *entry -= &(&rule.coeff * &d);
                if entry.is_zero() {
                    poly.terms.remove(&n);
                }
                let mut mono = Poly::zero();
                mono.terms.insert(mprime, BigInt::one());
                let mut t = rule.tail.clone();
                t.scale(&-d);
                poly.add(&t.mul(&mono));
                continue 'outer;
            }
        }
        return;
    }
}

/// Like [`reduce_poly`] but only applies *unit-coefficient* rules and never
/// scales the polynomial — so the result is value-equal under the rule
/// equalities, which makes it safe to use inside atom arguments
/// (congruence).
fn reduce_poly_unit(poly: &mut Poly, rules: &[Rule], cap: &mut usize) {
    'outer: while *cap > 0 {
        for rule in rules {
            if !rule.coeff.is_one() {
                continue;
            }
            let hit = poly.terms.iter().find_map(|(n, d)| {
                if n.len() < rule.monomial.len() {
                    return None;
                }
                multiset_minus(n, &rule.monomial).map(|rest| (n.clone(), d.clone(), rest))
            });
            if let Some((n, d, mprime)) = hit {
                *cap -= 1;
                // poly' = poly - d*N + d*(M' x (-tail))
                poly.terms.remove(&n);
                let mut mono = Poly::zero();
                mono.terms.insert(mprime, BigInt::one());
                let mut t = rule.tail.clone();
                t.scale(&-d);
                poly.add(&t.mul(&mono));
                continue 'outer;
            }
        }
        return;
    }
}

/// Rebuilds an atom with its arguments reduced by the unit rules
/// (congruence under the hypothesis equalities).
fn deep_reduce_atom(a: &Term, rules: &[Rule], cap: &mut usize, depth: usize) -> Term {
    if depth > 8 || *cap == 0 {
        return a.clone();
    }
    let red = |t: &Term, cap: &mut usize| deep_reduce_term(t, rules, cap, depth + 1);
    match a {
        Term::Div(x, y) => Term::Div(
            Box::new(red(x, cap)),
            Box::new(red(y, cap)),
        ),
        Term::Mod(x, y) => Term::Mod(Box::new(red(x, cap)), Box::new(red(y, cap))),
        Term::Pow2(e) => Term::Pow2(Box::new(red(e, cap))),
        Term::BitAnd(x, y) => Term::BitAnd(Box::new(red(x, cap)), Box::new(red(y, cap))),
        Term::BitOr(x, y) => Term::BitOr(Box::new(red(x, cap)), Box::new(red(y, cap))),
        Term::BitXor(x, y) => Term::BitXor(Box::new(red(x, cap)), Box::new(red(y, cap))),
        Term::App(f, args) => Term::App(
            f.clone(),
            args.iter().map(|x| red(x, cap)).collect(),
        ),
        _ => a.clone(),
    }
}

/// Normalises, unit-reduces, and atom-rebuilds a term to a canonical form
/// modulo the hypothesis equalities.
fn deep_reduce_term(t: &Term, rules: &[Rule], cap: &mut usize, depth: usize) -> Term {
    let Ok(mut p) = store::normalize_cached(t) else { return t.clone() };
    reduce_poly_unit(&mut p, rules, cap);
    let mut out = Poly::zero();
    for (m, c) in &p.terms {
        let mut mono = Poly::constant(c.clone());
        for atom in m {
            let rebuilt = deep_reduce_atom(atom, rules, cap, depth);
            let ap = store::normalize_cached(&rebuilt).unwrap_or_else(|_| Poly::atom(rebuilt));
            mono = mono.mul(&ap);
        }
        out.add(&mono);
    }
    reduce_poly_unit(&mut out, rules, cap);
    out.to_term()
}

/// Collects `Div` and `Pow2` sub-terms (for fact generation), recursively.
/// `seen` dedups across calls by interned id (first occurrence kept).
fn collect_fact_terms(t: &Term, out: &mut Vec<Term>, seen: &mut HashSet<TermId>) {
    match t {
        Term::Div(a, b) => {
            if seen.insert(store::intern(t)) {
                out.push(t.clone());
            }
            collect_fact_terms(a, out, seen);
            collect_fact_terms(b, out, seen);
        }
        Term::Pow2(e) => {
            if seen.insert(store::intern(t)) {
                out.push(t.clone());
            }
            collect_fact_terms(e, out, seen);
        }
        Term::Const(_) | Term::Var(_) => {}
        Term::Add(ts) | Term::Mul(ts) | Term::App(_, ts) => {
            for x in ts {
                collect_fact_terms(x, out, seen);
            }
        }
        Term::Mod(a, b) | Term::BitAnd(a, b) | Term::BitOr(a, b) | Term::BitXor(a, b) => {
            collect_fact_terms(a, out, seen);
            collect_fact_terms(b, out, seen);
        }
        Term::Ite(_, a, b) => {
            collect_fact_terms(a, out, seen);
            collect_fact_terms(b, out, seen);
        }
    }
}

/// `store::normalize_cached(b - a)`.
fn sub_norm(b: &Term, a: &Term) -> Result<Poly, String> {
    store::normalize_cached(&b.clone().sub(a.clone()))
        .map_err(|e| format!("unsplit conditional survived: {}", e.0))
}

/// A literal of the linear core.
#[derive(Clone, Debug)]
enum Literal {
    /// `a == b` (also used to derive polynomial rewrite rules).
    Eq(Term, Term),
    /// `a <= b`.
    Le(Term, Term),
    /// `a < b`.
    Lt(Term, Term),
    /// A boolean variable with a polarity.
    Bool(Sym, bool),
}

/// Expands a hypothesis into the cross-product of literal cases.
fn expand_hyp(h: &Formula, cases: &mut Vec<Vec<Literal>>, cap: usize) -> Result<(), String> {
    match h {
        Formula::True => Ok(()),
        Formula::False => {
            // An absurd hypothesis proves anything: encode 0 < 0.
            for c in cases.iter_mut() {
                c.push(Literal::Lt(Term::int(0), Term::int(0)));
            }
            Ok(())
        }
        Formula::BVar(v) => {
            for c in cases.iter_mut() {
                c.push(Literal::Bool(v.clone(), true));
            }
            Ok(())
        }
        Formula::Eq(a, b) => {
            for c in cases.iter_mut() {
                c.push(Literal::Eq(a.clone(), b.clone()));
            }
            Ok(())
        }
        Formula::Le(a, b) => {
            for c in cases.iter_mut() {
                c.push(Literal::Le(a.clone(), b.clone()));
            }
            Ok(())
        }
        Formula::Lt(a, b) => {
            for c in cases.iter_mut() {
                c.push(Literal::Lt(a.clone(), b.clone()));
            }
            Ok(())
        }
        Formula::And(fs) => {
            for f in fs {
                expand_hyp(f, cases, cap)?;
            }
            Ok(())
        }
        Formula::Or(fs) => {
            let base = cases.clone();
            let mut out = Vec::new();
            for f in fs {
                let mut branch = base.clone();
                expand_hyp(f, &mut branch, cap)?;
                out.extend(branch);
            }
            if out.len() > cap {
                return Err(format!("hypothesis case explosion ({} cases)", out.len()));
            }
            *cases = out;
            Ok(())
        }
        Formula::Implies(a, b) => {
            // a ⟹ b  ≡  ¬a ∨ b.
            let neg = (**a).clone().not();
            expand_hyp(&Formula::Or(vec![neg, (**b).clone()]), cases, cap)
        }
        Formula::Not(inner) => match &**inner {
            Formula::True => expand_hyp(&Formula::False, cases, cap),
            Formula::False => Ok(()),
            Formula::BVar(v) => {
                for c in cases.iter_mut() {
                    c.push(Literal::Bool(v.clone(), false));
                }
                Ok(())
            }
            Formula::Eq(a, b) => expand_hyp(
                &Formula::Or(vec![
                    Formula::Lt(a.clone(), b.clone()),
                    Formula::Lt(b.clone(), a.clone()),
                ]),
                cases,
                cap,
            ),
            Formula::Le(a, b) => expand_hyp(&Formula::Lt(b.clone(), a.clone()), cases, cap),
            Formula::Lt(a, b) => expand_hyp(&Formula::Le(b.clone(), a.clone()), cases, cap),
            Formula::Not(x) => expand_hyp(x, cases, cap),
            Formula::And(fs) => {
                let negs = fs.iter().map(|f| f.clone().not()).collect();
                expand_hyp(&Formula::Or(negs), cases, cap)
            }
            Formula::Or(fs) => {
                for f in fs {
                    expand_hyp(&f.clone().not(), cases, cap)?;
                }
                Ok(())
            }
            Formula::Implies(a, b) => {
                expand_hyp(a, cases, cap)?;
                expand_hyp(&(**b).clone().not(), cases, cap)
            }
        },
    }
}

/// Adds "bound product" facts: for every composite monomial `u*v` with a
/// known constant lower/upper bound on each factor, the product of the two
/// non-negative bound differences is non-negative — e.g. from `u >= 1` and
/// `v >= 1` follows `u*v - u - v + 1 >= 0`. This is the minimal nonlinear
/// glue connecting product atoms to their factors (a one-step
/// Positivstellensatz certificate), and is what lets the automatic core
/// conclude facts like `x/m == 0` from `0 <= x < m`.
fn bound_products(atoms: &mut AtomTable, cons: &mut Vec<LinCon>) -> bool {
    // Infer constant bounds from single-atom constraints `c*x + k >= 0`.
    let mut lower: BTreeMap<usize, BigInt> = BTreeMap::new();
    let mut upper: BTreeMap<usize, BigInt> = BTreeMap::new();
    for con in cons.iter() {
        if con.coeffs.len() != 1 {
            continue;
        }
        let (&i, c) = con.coeffs.iter().next().expect("len checked");
        if c.is_negative() {
            // x <= floor(k / -c)
            let ub = con.constant.div_floor(&-c.clone());
            match upper.get(&i) {
                Some(old) if *old <= ub => {}
                _ => {
                    upper.insert(i, ub);
                }
            }
        } else {
            // x >= ceil(-k / c) == -floor(k / c)
            let lb = -(con.constant.div_floor(c));
            match lower.get(&i) {
                Some(old) if *old >= lb => {}
                _ => {
                    lower.insert(i, lb);
                }
            }
        }
    }
    let mut added = false;
    let n = atoms.atoms.len();
    for idx in 0..n {
        let t = atoms.atoms[idx].clone();
        let Term::Mul(parts) = &t else { continue };
        if parts.len() < 2 {
            continue;
        }
        let u = parts[0].clone();
        let v = if parts.len() == 2 {
            parts[1].clone()
        } else {
            Term::Mul(parts[1..].to_vec())
        };
        let ui = atoms.intern(u);
        let vi = atoms.intern(v);
        let bounds_u: Vec<(i8, BigInt)> = [(1i8, lower.get(&ui)), (-1i8, upper.get(&ui))]
            .into_iter()
            .filter_map(|(s, b)| b.map(|b| (s, b.clone())))
            .collect();
        let bounds_v: Vec<(i8, BigInt)> = [(1i8, lower.get(&vi)), (-1i8, upper.get(&vi))]
            .into_iter()
            .filter_map(|(s, b)| b.map(|b| (s, b.clone())))
            .collect();
        for (su, bu) in &bounds_u {
            for (sv, bv) in &bounds_v {
                let key = (idx, *su, *sv, bu.clone(), bv.clone());
                if atoms.prod_done.contains_key(&key) {
                    continue;
                }
                atoms.prod_done.insert(key, ());
                // su*(u - bu) >= 0 and sv*(v - bv) >= 0, so
                // su*sv*(u*v - bv*u - bu*v + bu*bv) >= 0.
                let sign = BigInt::from((*su as i64) * (*sv as i64));
                let mut coeffs: BTreeMap<usize, BigInt> = BTreeMap::new();
                *coeffs.entry(idx).or_insert_with(BigInt::zero) += &sign;
                *coeffs.entry(ui).or_insert_with(BigInt::zero) += &(&sign * &(-bv.clone()));
                *coeffs.entry(vi).or_insert_with(BigInt::zero) += &(&sign * &(-bu.clone()));
                coeffs.retain(|_, c| !c.is_zero());
                let constant = &sign * &(bu * bv);
                cons.push(LinCon { coeffs, constant });
                added = true;
            }
        }
    }
    added
}

/// Multiplies inequality constraints by atoms with known constant lower
/// bounds: from `p >= 0` and `u >= lu` follows `(u - lu)*p >= 0`, which is
/// linear over the (already existing) product atoms. Only products whose
/// every monomial is already interned are added, keeping the system from
/// growing into unrelated atoms. This closes goals like
/// `n*(a/(m*n)) <= a/m`, where a linear relation must be scaled by a
/// symbolic positive quantity.
/// Canonical signature of a derived product constraint: sorted coefficient
/// vector, constant offset, and the scaled atom's index.
type ProductSig = (Vec<(usize, BigInt)>, BigInt, usize);

fn ineq_atom_products(
    atoms: &mut AtomTable,
    cons: &mut Vec<LinCon>,
    seen: &mut std::collections::BTreeSet<ProductSig>,
) -> bool {
    // Constant lower bounds per atom (from single-atom constraints).
    let mut lower: BTreeMap<usize, BigInt> = BTreeMap::new();
    for con in cons.iter() {
        if con.coeffs.len() != 1 {
            continue;
        }
        let (&i, c) = con.coeffs.iter().next().expect("len checked");
        if !c.is_negative() {
            let lb = -(con.constant.div_floor(c));
            match lower.get(&i) {
                Some(old) if *old >= lb => {}
                _ => {
                    lower.insert(i, lb);
                }
            }
        }
    }
    // Product of an atom with an interned monomial, if the result is
    // already interned.
    let product_atom = |atoms: &AtomTable, i: usize, u: usize| -> Option<usize> {
        let mut parts = match &atoms.atoms[i] {
            Term::Mul(ps) => ps.clone(),
            other => vec![other.clone()],
        };
        match &atoms.atoms[u] {
            Term::Mul(ps) => parts.extend(ps.iter().cloned()),
            other => parts.push(other.clone()),
        }
        parts.sort();
        let t = if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Term::Mul(parts)
        };
        atoms.index.get(&store::intern(&t)).copied()
    };
    let snapshot: Vec<LinCon> = cons.clone();
    let mut added = false;
    for con in &snapshot {
        if con.coeffs.is_empty() || con.coeffs.len() > 4 {
            continue;
        }
        let key_base: Vec<(usize, BigInt)> =
            con.coeffs.iter().map(|(&i, c)| (i, c.clone())).collect();
        for (&u, lu) in &lower {
            if lu.is_negative() {
                continue;
            }
            let key = (key_base.clone(), con.constant.clone(), u);
            if seen.contains(&key) {
                continue;
            }
            // Every product atom must already exist.
            let Some(prods): Option<Vec<(usize, BigInt)>> = con
                .coeffs
                .iter()
                .map(|(&i, c)| product_atom(atoms, i, u).map(|pi| (pi, c.clone())))
                .collect()
            else {
                continue;
            };
            seen.insert(key);
            // (u - lu) * (sum c_i x_i + k) >= 0
            let mut coeffs: BTreeMap<usize, BigInt> = BTreeMap::new();
            for (pi, c) in prods {
                *coeffs.entry(pi).or_insert_with(BigInt::zero) += &c;
            }
            for (&i, c) in &con.coeffs {
                *coeffs.entry(i).or_insert_with(BigInt::zero) -= &(lu * c);
            }
            *coeffs.entry(u).or_insert_with(BigInt::zero) += &con.constant;
            let constant = -(lu * &con.constant);
            coeffs.retain(|_, c| !c.is_zero());
            cons.push(LinCon { coeffs, constant });
            added = true;
        }
    }
    added
}

/// Atom interning: maps monomials to linear-arithmetic variable indices.
///
/// Done-sets and the atom index are keyed by hash-consed [`TermId`]s —
/// probes are an intern walk (shallow per-node hashing, cache hit on every
/// already-seen node) plus one `HashSet` lookup, instead of the deep
/// `Term` clones and `BTreeMap` comparisons they used to be. The `Term`
/// values themselves stay in `atoms` for the structural inspections proof
/// search needs (rule orientation, product bounding).
#[derive(Default)]
struct AtomTable {
    atoms: Vec<Term>,
    index: HashMap<TermId, usize>,
    facts: HashSet<TermId>,
    mono: HashSet<(TermId, TermId)>,
    prod_done: BTreeMap<(usize, i8, i8, BigInt, BigInt), ()>,
    shift_done: HashSet<TermId>,
    prodp_done: HashSet<(TermId, TermId)>,
    sign_done: HashSet<(TermId, u8)>,
    /// High-water mark: atoms below this index have been scanned for
    /// `Div`/`Pow2` fact candidates.
    scanned: usize,
    /// Fact candidates in first-seen DFS order. Because `atoms` is
    /// append-only, scanning only `atoms[scanned..]` each saturation round
    /// and appending unseen sub-terms yields exactly the list a full
    /// rescan would (the old behaviour), without the O(rounds × atoms)
    /// re-walk or the O(n²) `Vec::contains` dedup.
    candidates: Vec<Term>,
    /// Ids of terms already in `candidates`.
    candidate_seen: HashSet<TermId>,
    /// Interned mirror of the case's constraint system: `con_ids[i]` is
    /// the [`ConId`] of the `i`-th constraint (`None` on i128 overflow).
    /// The system is append-only, so the mirror extends lazily and every
    /// relevance prefix becomes a `Vec` of `Copy` ids — refutation probes
    /// stop re-converting coefficients on every call.
    con_ids: Vec<Option<ConId>>,
    /// Whether any mirrored constraint failed to intern.
    con_ids_bad: bool,
}

impl AtomTable {
    fn intern(&mut self, t: Term) -> usize {
        let tid = store::intern(&t);
        if let Some(&i) = self.index.get(&tid) {
            return i;
        }
        let i = self.atoms.len();
        self.atoms.push(t);
        self.index.insert(tid, i);
        i
    }

    /// Extends the interned-constraint mirror to cover `cons`; returns
    /// whether every constraint (including earlier ones) interned.
    fn sync_con_ids(&mut self, cons: &[LinCon]) -> bool {
        while self.con_ids.len() < cons.len() {
            let id = intern_con(&cons[self.con_ids.len()]);
            self.con_ids_bad |= id.is_none();
            self.con_ids.push(id);
        }
        !self.con_ids_bad
    }

    /// Scans atoms added since the last call, appending their `Div`/`Pow2`
    /// sub-terms (first occurrence only) to the persistent candidate list.
    fn collect_new_candidates(&mut self) {
        while self.scanned < self.atoms.len() {
            let t = self.atoms[self.scanned].clone();
            self.scanned += 1;
            collect_fact_terms(&t, &mut self.candidates, &mut self.candidate_seen);
        }
    }

    fn fact_done(&self, t: &Term) -> bool {
        self.facts.contains(&store::intern(t))
    }

    fn mark_fact(&mut self, t: &Term) {
        self.facts.insert(store::intern(t));
    }

    fn mono_done(&self, a: &Term, b: &Term) -> bool {
        self.mono.contains(&(store::intern(a), store::intern(b)))
    }

    fn shift_done(&self, t: &Term) -> bool {
        self.shift_done.contains(&store::intern(t))
    }

    fn sign_done(&self, t: &Term, which: u8) -> bool {
        self.sign_done.contains(&(store::intern(t), which))
    }

    fn mark_sign(&mut self, t: &Term, which: u8) {
        self.sign_done.insert((store::intern(t), which));
    }

    fn mark_shift(&mut self, t: &Term) {
        self.shift_done.insert(store::intern(t));
    }

    fn prodp_done(&self, a: &Term, b: &Term) -> bool {
        self.prodp_done.contains(&(store::intern(a), store::intern(b)))
    }

    fn mark_prodp(&mut self, a: &Term, b: &Term) {
        self.prodp_done.insert((store::intern(a), store::intern(b)));
    }

    fn mark_mono(&mut self, a: &Term, b: &Term) {
        self.mono.insert((store::intern(a), store::intern(b)));
    }

    /// Converts a polynomial (plus an extra constant) to a constraint
    /// `poly + extra >= 0`.
    fn lincon(&mut self, p: &Poly, extra: BigInt) -> LinCon {
        let mut coeffs = BTreeMap::new();
        let mut constant = extra;
        for (m, c) in &p.terms {
            if m.is_empty() {
                constant += c;
                continue;
            }
            let atom = if m.len() == 1 {
                m[0].clone()
            } else {
                Term::Mul(m.clone())
            };
            let idx = self.intern(atom);
            *coeffs.entry(idx).or_insert_with(BigInt::zero) += c;
        }
        coeffs.retain(|_, c| !c.is_zero());
        LinCon { coeffs, constant }
    }
}

fn unfold_term(t: &Term, def: &DefFn) -> Term {
    match t {
        Term::App(f, args) if f == &def.name => {
            let args: Vec<Term> = args.iter().map(|a| unfold_term(a, def)).collect();
            let map: BTreeMap<Sym, Term> =
                def.params.iter().cloned().zip(args).collect();
            def.body.subst(&map)
        }
        Term::Const(_) | Term::Var(_) => t.clone(),
        Term::Add(ts) => Term::Add(ts.iter().map(|x| unfold_term(x, def)).collect()),
        Term::Mul(ts) => Term::Mul(ts.iter().map(|x| unfold_term(x, def)).collect()),
        Term::App(f, ts) => Term::App(f.clone(), ts.iter().map(|x| unfold_term(x, def)).collect()),
        Term::Div(a, b) => Term::Div(Box::new(unfold_term(a, def)), Box::new(unfold_term(b, def))),
        Term::Mod(a, b) => Term::Mod(Box::new(unfold_term(a, def)), Box::new(unfold_term(b, def))),
        Term::Pow2(a) => Term::Pow2(Box::new(unfold_term(a, def))),
        Term::BitAnd(a, b) => {
            Term::BitAnd(Box::new(unfold_term(a, def)), Box::new(unfold_term(b, def)))
        }
        Term::BitOr(a, b) => {
            Term::BitOr(Box::new(unfold_term(a, def)), Box::new(unfold_term(b, def)))
        }
        Term::BitXor(a, b) => {
            Term::BitXor(Box::new(unfold_term(a, def)), Box::new(unfold_term(b, def)))
        }
        Term::Ite(c, a, b) => Term::Ite(
            Box::new(unfold_formula(c, def)),
            Box::new(unfold_term(a, def)),
            Box::new(unfold_term(b, def)),
        ),
    }
}

fn unfold_formula(f: &Formula, def: &DefFn) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::BVar(_) => f.clone(),
        Formula::Eq(a, b) => Formula::Eq(unfold_term(a, def), unfold_term(b, def)),
        Formula::Le(a, b) => Formula::Le(unfold_term(a, def), unfold_term(b, def)),
        Formula::Lt(a, b) => Formula::Lt(unfold_term(a, def), unfold_term(b, def)),
        Formula::Not(x) => Formula::Not(Box::new(unfold_formula(x, def))),
        Formula::And(fs) => Formula::And(fs.iter().map(|x| unfold_formula(x, def)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|x| unfold_formula(x, def)).collect()),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(unfold_formula(a, def)),
            Box::new(unfold_formula(b, def)),
        ),
    }
}
