//! Linear integer arithmetic over opaque atoms: Fourier–Motzkin
//! elimination with integer tightening.
//!
//! Constraints have the form `Σ cᵢ·xᵢ + k ≥ 0` over atom indices; strict
//! inequalities are pre-converted (`> 0` becomes `≥ 1`) since all atoms are
//! integers. [`refute`] reports whether the constraint set is
//! unsatisfiable; proving a goal means refuting its negation together with
//! the hypotheses.

use chicala_bigint::BigInt;
use std::collections::BTreeMap;

/// A linear constraint `Σ coeffs[i]·atom_i + constant ≥ 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinCon {
    /// Non-zero coefficients per atom index.
    pub coeffs: BTreeMap<usize, BigInt>,
    /// The constant offset.
    pub constant: BigInt,
}

impl LinCon {
    /// A constraint with no atoms.
    pub fn constant(k: BigInt) -> LinCon {
        LinCon { coeffs: BTreeMap::new(), constant: k }
    }

    fn is_trivially_true(&self) -> bool {
        self.coeffs.is_empty() && !self.constant.is_negative()
    }

    fn is_trivially_false(&self) -> bool {
        self.coeffs.is_empty() && self.constant.is_negative()
    }

    /// Divides through by the gcd of the coefficients, flooring the
    /// constant — sound for integer solutions and strictly tightening.
    fn tighten(&mut self) {
        if self.coeffs.is_empty() {
            return;
        }
        let mut g = BigInt::zero();
        for c in self.coeffs.values() {
            g = gcd(g, c.abs());
        }
        if g.is_one() || g.is_zero() {
            return;
        }
        for c in self.coeffs.values_mut() {
            *c = c.div_floor(&g);
        }
        self.constant = self.constant.div_floor(&g);
    }
}

fn gcd(a: BigInt, b: BigInt) -> BigInt {
    let (mut a, mut b) = (a.abs(), b.abs());
    while !b.is_zero() {
        let r = a.mod_floor(&b);
        a = b;
        b = r;
    }
    a
}

/// Outcome of a refutation attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refutation {
    /// The constraints are unsatisfiable over the integers (goal proved).
    Unsat,
    /// No contradiction was found (Fourier–Motzkin is complete over the
    /// rationals, so a rational model exists; over the integers this is
    /// "unknown" in rare corner cases).
    Unknown,
    /// The search exceeded its budget.
    Overflow,
}

/// Attempts to refute the conjunction of `cons` over the integers.
///
/// `budget` caps the number of constraints generated (Fourier–Motzkin can
/// blow up quadratically per eliminated variable).
/// Global counters for coarse profiling (tests only).
pub static REFUTE_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
/// Total microseconds spent inside [`refute`].
pub static REFUTE_MICROS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

pub fn refute(cons: Vec<LinCon>, budget: usize) -> Refutation {
    let refs: Vec<&LinCon> = cons.iter().collect();
    refute_refs(&refs, budget)
}

/// Borrow-based [`refute`]: the kernel's relevance filters and saturation
/// probes pose thousands of overlapping sub-systems per verification
/// condition, and cloning each subset (a `BTreeMap` allocation plus a
/// `BigInt` clone per coefficient) used to dominate probe cost. The i128
/// fast representation is built straight from the borrowed constraints,
/// and the memo key is the canonicalised fast system itself — a `Vec` of
/// machine integers — instead of a rendered string.
pub fn refute_refs(cons: &[&LinCon], budget: usize) -> Refutation {
    let start = std::time::Instant::now();
    let r = refute_inner(cons, budget);
    REFUTE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    REFUTE_MICROS.fetch_add(
        start.elapsed().as_micros() as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    r
}

/// Hash-consed i128 constraints plus the refutation memo keyed by their
/// ids. The two are cleared together (memo entries reference store ids).
#[derive(Default)]
struct ConStore {
    cons: Vec<FastCon>,
    index: std::collections::HashMap<FastCon, u32>,
    memo: std::collections::HashMap<(usize, Vec<u32>), Refutation>,
}

impl ConStore {
    fn intern(&mut self, c: &LinCon) -> Option<u32> {
        let coeffs = c
            .coeffs
            .iter()
            .map(|(&v, k)| i128::try_from(k).ok().map(|k| (v, k)))
            .collect::<Option<Vec<(usize, i128)>>>()?;
        let k = i128::try_from(&c.constant).ok()?;
        let fast = FastCon { coeffs, k };
        if let Some(&id) = self.index.get(&fast) {
            return Some(id);
        }
        let id = self.cons.len() as u32;
        self.cons.push(fast.clone());
        self.index.insert(fast, id);
        Some(id)
    }
}

thread_local! {
    static STORE: std::cell::RefCell<ConStore> = std::cell::RefCell::new(ConStore::default());
}

/// Opaque handle to a hash-consed i128 constraint in the thread-local
/// store. Holders must not outlive a [`gc_checkpoint`] reset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConId(u32);

/// Interns a constraint's i128 form; `None` if a coefficient or the
/// constant overflows i128 (callers fall back to the `&LinCon` path).
pub fn intern_con(c: &LinCon) -> Option<ConId> {
    STORE.with(|s| s.borrow_mut().intern(c)).map(ConId)
}

/// Refutes a system given by interned constraint ids. Semantically
/// identical to [`refute_refs`] on the corresponding constraints, but the
/// per-call cost of a memoised repeat is an id sort — no per-coefficient
/// conversion or hashing. This is the hot probe path: the kernel interns
/// each constraint once per proof case and poses thousands of overlapping
/// prefix systems against the same ids.
pub fn refute_ids(ids: &[ConId], budget: usize) -> Refutation {
    let start = std::time::Instant::now();
    let mut key: Vec<u32> = ids.iter().map(|c| c.0).collect();
    key.sort_unstable();
    key.dedup();
    let r = refute_key(key, budget);
    REFUTE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    REFUTE_MICROS.fetch_add(
        start.elapsed().as_micros() as u64,
        std::sync::atomic::Ordering::Relaxed,
    );
    r
}

/// Clears the constraint store (and the memo, whose keys reference it)
/// once oversized. Only call from points where no [`ConId`] is held —
/// a reset remaps ids.
pub fn gc_checkpoint() {
    STORE.with(|s| {
        let mut s = s.borrow_mut();
        if s.cons.len() > 400_000 || s.memo.len() > 400_000 {
            *s = ConStore::default();
        }
    });
}

fn refute_inner(cons: &[&LinCon], budget: usize) -> Refutation {
    // Fast path: i128 coefficients (the overwhelmingly common case). Each
    // constraint is hash-consed into the thread-local store, so a system
    // is identified by a sorted `Vec<u32>` of ids — the memo key for a
    // repeated probe costs an id sort instead of hashing and cloning every
    // coefficient of every constraint, and distinct systems share their
    // constraints' storage.
    let interned: Option<Vec<u32>> = STORE.with(|s| {
        let mut s = s.borrow_mut();
        cons.iter().map(|c| s.intern(c)).collect()
    });
    if let Some(mut ids) = interned {
        // Canonicalise: the sorted, deduped id set is the (exact) memo
        // key — dedup on ids equals dedup on the constraints themselves.
        ids.sort_unstable();
        ids.dedup();
        return refute_key(ids, budget);
    }
    // On i128 overflow fall back to the BigInt path (rare enough that it
    // pays the clone and goes unmemoised).
    refute_big(cons.iter().map(|&c| c.clone()).collect(), budget)
}

/// Solves a canonicalised (sorted, deduped) id system, memoised for
/// non-trivial sizes. Falls back to BigInt Fourier–Motzkin on i128
/// overflow during solving.
fn refute_key(ids: Vec<u32>, budget: usize) -> Refutation {
    let solve = |ids: &[u32], budget: usize| -> Option<Refutation> {
        let fast: Vec<FastCon> = STORE.with(|s| {
            let s = s.borrow();
            ids.iter().map(|&i| s.cons[i as usize].clone()).collect()
        });
        refute_fast(fast, budget)
    };
    // Small systems are cheaper to solve than to memoise.
    if ids.len() < 16 {
        if let Some(r) = solve(&ids, budget) {
            return r;
        }
    } else {
        let cached = STORE.with(|s| s.borrow().memo.get(&(budget, ids.clone())).copied());
        if let Some(r) = cached {
            return r;
        }
        if let Some(r) = solve(&ids, budget) {
            STORE.with(|s| {
                let mut s = s.borrow_mut();
                // Bound memo growth inline (always safe — only caching is
                // lost); the store itself is only reset at gc checkpoints,
                // where no ids are held.
                if s.memo.len() > 400_000 {
                    s.memo.clear();
                }
                s.memo.insert((budget, ids), r);
            });
            return r;
        }
    }
    // i128 overflow while solving: reconstruct exact BigInt constraints.
    let big: Vec<LinCon> = STORE.with(|s| {
        let s = s.borrow();
        ids.iter()
            .map(|&i| {
                let f = &s.cons[i as usize];
                LinCon {
                    coeffs: f.coeffs.iter().map(|&(v, k)| (v, BigInt::from(k))).collect(),
                    constant: BigInt::from(f.k),
                }
            })
            .collect()
    });
    refute_big(big, budget)
}

/// An i128 constraint `Σ coeffs·x + k >= 0` (coeffs sorted by variable).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct FastCon {
    coeffs: Vec<(usize, i128)>,
    k: i128,
}

impl FastCon {
    fn tighten(&mut self) -> Option<()> {
        if self.coeffs.is_empty() {
            return Some(());
        }
        let mut g: i128 = 0;
        for &(_, c) in &self.coeffs {
            g = gcd_i128(g, c.abs());
        }
        if g > 1 {
            for (_, c) in &mut self.coeffs {
                *c = c.div_euclid(g);
            }
            self.k = self.k.div_euclid(g);
        }
        Some(())
    }
}

fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let r = a.rem_euclid(b);
        a = b;
        b = r;
    }
    a
}

/// `ca*a + cb*b` over coefficient vectors sorted by variable, dropping
/// `skip` and zero results; `None` on i128 overflow. This is the inner
/// loop of both Fourier–Motzkin combination and Gaussian substitution —
/// a linear merge instead of a per-pair map build.
fn merge2(
    a: &[(usize, i128)],
    ca: i128,
    b: &[(usize, i128)],
    cb: i128,
    skip: usize,
) -> Option<Vec<(usize, i128)>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let va = a.get(i).map(|&(v, _)| v);
        let vb = b.get(j).map(|&(v, _)| v);
        let (v, c) = match (va, vb) {
            (Some(x), Some(y)) if x == y => {
                let c = a[i].1.checked_mul(ca)?.checked_add(b[j].1.checked_mul(cb)?)?;
                i += 1;
                j += 1;
                (x, c)
            }
            (Some(x), Some(y)) if x < y => {
                let c = a[i].1.checked_mul(ca)?;
                i += 1;
                (x, c)
            }
            (Some(_), Some(y)) => {
                let c = b[j].1.checked_mul(cb)?;
                j += 1;
                (y, c)
            }
            (Some(x), None) => {
                let c = a[i].1.checked_mul(ca)?;
                i += 1;
                (x, c)
            }
            (None, Some(y)) => {
                let c = b[j].1.checked_mul(cb)?;
                j += 1;
                (y, c)
            }
            (None, None) => unreachable!("loop condition"),
        };
        if v != skip && c != 0 {
            out.push((v, c));
        }
    }
    Some(out)
}

/// Gaussian substitution of implied equalities: whenever both `p >= 0` and
/// `-p >= 0` are present and some variable's coefficient in `p` divides all
/// the others and the constant, that variable is eliminated *exactly* —
/// this is what lets integer-only (parity-style) contradictions surface
/// through the subsequent gcd tightening, where rational elimination alone
/// would report a model.
fn gauss_substitute(cons: &mut Vec<FastCon>) -> Option<()> {
    loop {
        // Find an equality pair (a constraint whose negation is also
        // present). Keys borrow from the constraints — no per-row clones.
        let mut eq_idx: Option<usize> = None;
        {
            let mut seen: std::collections::HashSet<(&[(usize, i128)], i128)> =
                std::collections::HashSet::with_capacity(cons.len());
            let mut neg_buf: Vec<(usize, i128)> = Vec::new();
            for (i, c) in cons.iter().enumerate() {
                if c.coeffs.is_empty() {
                    continue;
                }
                neg_buf.clear();
                neg_buf.extend(c.coeffs.iter().map(|&(v, k)| (v, -k)));
                if seen.contains(&(&neg_buf[..], -c.k)) {
                    eq_idx = Some(i);
                    break;
                }
                seen.insert((&c.coeffs[..], c.k));
            }
        }
        let Some(i) = eq_idx else { return Some(()) };
        let eq = cons[i].clone();
        // Pick a variable whose coefficient divides everything.
        let Some(&(var, a)) = eq.coeffs.iter().find(|&&(_, a)| {
            let a = a.abs();
            a != 0
                && eq.coeffs.iter().all(|&(_, c)| c % a == 0)
                && eq.k % a == 0
        }) else {
            // No exact pivot: drop the pair from further substitution
            // attempts by leaving it; bail out of the loop to avoid
            // spinning (the plain elimination still sees the equality).
            return Some(());
        };
        // var = -(k + sum others) / a.
        let subst: Vec<(usize, i128)> = eq
            .coeffs
            .iter()
            .filter(|&&(v, _)| v != var)
            .map(|&(v, c)| (v, -(c / a)))
            .collect();
        let subst_k = -(eq.k / a);
        let mut out = Vec::with_capacity(cons.len());
        for c in cons.drain(..) {
            let Some(&(_, d)) = c.coeffs.iter().find(|&&(v, _)| v == var) else {
                out.push(c);
                continue;
            };
            // Replace d*var by d*(subst + subst_k): a sorted two-way merge
            // of `c.coeffs` (minus `var`) with `d * subst`.
            let coeffs = merge2(&c.coeffs, 1, &subst, d, var)?;
            let k = c.k.checked_add(subst_k.checked_mul(d)?)?;
            let mut nc = FastCon { coeffs, k };
            nc.tighten()?;
            if !(nc.coeffs.is_empty() && nc.k >= 0) {
                out.push(nc);
            }
        }
        *cons = out;
        cons.sort();
        cons.dedup();
        if cons.iter().any(|c| c.coeffs.is_empty() && c.k < 0) {
            // Leave the contradiction for the caller's check.
            return Some(());
        }
    }
}

/// i128 Fourier–Motzkin; `None` on arithmetic overflow (caller falls back
/// to the BigInt path).
fn refute_fast(mut cons: Vec<FastCon>, budget: usize) -> Option<Refutation> {
    for c in &mut cons {
        c.tighten()?;
    }
    cons.sort();
    cons.dedup();
    gauss_substitute(&mut cons)?;
    loop {
        cons.retain(|c| !(c.coeffs.is_empty() && c.k >= 0));
        if cons.iter().any(|c| c.coeffs.is_empty() && c.k < 0) {
            return Some(Refutation::Unsat);
        }
        let mut counts: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for c in &cons {
            for &(v, coef) in &c.coeffs {
                let e = counts.entry(v).or_insert((0, 0));
                if coef < 0 {
                    e.1 += 1;
                } else {
                    e.0 += 1;
                }
            }
        }
        let Some((&var, _)) = counts.iter().min_by_key(|(_, (p, n))| (p * n, p + n)) else {
            return Some(Refutation::Unknown);
        };
        let (mut pos, mut neg, mut rest) = (Vec::new(), Vec::new(), Vec::new());
        for c in cons {
            match c.coeffs.iter().find(|(v, _)| *v == var) {
                None => rest.push(c),
                Some((_, k)) if *k < 0 => neg.push(c),
                Some(_) => pos.push(c),
            }
        }
        if pos.len() * neg.len() + rest.len() > budget {
            return Some(Refutation::Overflow);
        }
        for p in &pos {
            let a = p.coeffs.iter().find(|(v, _)| *v == var).expect("pos").1;
            for n in &neg {
                let b = -n.coeffs.iter().find(|(v, _)| *v == var).expect("neg").1;
                // b*p + a*n eliminates var: sorted two-way merge, no maps.
                let coeffs = merge2(&p.coeffs, b, &n.coeffs, a, var)?;
                let k = p.k.checked_mul(b)?.checked_add(n.k.checked_mul(a)?)?;
                let mut combined = FastCon { coeffs, k };
                combined.tighten()?;
                if !(combined.coeffs.is_empty() && combined.k >= 0) {
                    rest.push(combined);
                }
            }
        }
        cons = rest;
        cons.sort();
        cons.dedup();
        if cons.is_empty() {
            return Some(Refutation::Unknown);
        }
        if cons.len() > budget {
            return Some(Refutation::Overflow);
        }
    }
}

fn refute_big(mut cons: Vec<LinCon>, budget: usize) -> Refutation {
    for c in &mut cons {
        c.tighten();
    }
    dedupe(&mut cons);
    loop {
        cons.retain(|c| !c.is_trivially_true());
        if cons.iter().any(|c| c.is_trivially_false()) {
            return Refutation::Unsat;
        }
        // Pick the variable minimising the pos*neg product; one-sided
        // variables (product 0) are free to eliminate — their constraints
        // are simply dropped.
        let mut counts: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        for c in &cons {
            for (&v, coef) in &c.coeffs {
                let e = counts.entry(v).or_insert((0, 0));
                if coef.is_negative() {
                    e.1 += 1;
                } else {
                    e.0 += 1;
                }
            }
        }
        let Some((&var, _)) = counts
            .iter()
            .min_by_key(|(_, (p, n))| (p * n, p + n))
        else {
            return Refutation::Unknown; // no variables left, no contradiction
        };
        let (mut pos, mut neg, mut rest) = (Vec::new(), Vec::new(), Vec::new());
        for c in cons {
            match c.coeffs.get(&var) {
                None => rest.push(c),
                Some(k) if k.is_negative() => neg.push(c),
                Some(_) => pos.push(c),
            }
        }
        if pos.len() * neg.len() + rest.len() > budget {
            return Refutation::Overflow;
        }
        // Combine every (pos, neg) pair to eliminate `var`.
        for p in &pos {
            for n in &neg {
                let a = p.coeffs[&var].clone(); // > 0
                let b = -n.coeffs[&var].clone(); // > 0
                // b*p + a*n eliminates var.
                let mut combined = LinCon {
                    coeffs: BTreeMap::new(),
                    constant: &p.constant * &b + &n.constant * &a,
                };
                for (&v, c) in &p.coeffs {
                    if v != var {
                        *combined.coeffs.entry(v).or_insert_with(BigInt::zero) += &(c * &b);
                    }
                }
                for (&v, c) in &n.coeffs {
                    if v != var {
                        *combined.coeffs.entry(v).or_insert_with(BigInt::zero) += &(c * &a);
                    }
                }
                combined.coeffs.retain(|_, c| !c.is_zero());
                combined.tighten();
                rest.push(combined);
            }
        }
        // Constraints that mention var only positively (or only negatively)
        // are unbounded in that direction and can be dropped.
        cons = rest;
        cons.retain(|c| !c.is_trivially_true());
        dedupe(&mut cons);
        if cons.is_empty() {
            return Refutation::Unknown;
        }
        if cons.len() > budget {
            return Refutation::Overflow;
        }
    }
}

/// Removes exact duplicates (common after saturation).
fn dedupe(cons: &mut Vec<LinCon>) {
    let mut seen: std::collections::BTreeSet<(Vec<(usize, BigInt)>, BigInt)> =
        std::collections::BTreeSet::new();
    cons.retain(|c| {
        let key = (
            c.coeffs.iter().map(|(&i, v)| (i, v.clone())).collect::<Vec<_>>(),
            c.constant.clone(),
        );
        seen.insert(key)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn con(coeffs: &[(usize, i64)], k: i64) -> LinCon {
        LinCon {
            coeffs: coeffs
                .iter()
                .filter(|(_, c)| *c != 0)
                .map(|(v, c)| (*v, BigInt::from(*c)))
                .collect(),
            constant: BigInt::from(k),
        }
    }

    #[test]
    fn simple_contradiction() {
        // x >= 3  and  x <= 1  (i.e. -x + 1 >= 0): unsat.
        let cons = vec![con(&[(0, 1)], -3), con(&[(0, -1)], 1)];
        assert_eq!(refute(cons, 1000), Refutation::Unsat);
    }

    #[test]
    fn satisfiable_reports_unknown() {
        // x >= 0 and x <= 5: satisfiable.
        let cons = vec![con(&[(0, 1)], 0), con(&[(0, -1)], 5)];
        assert_eq!(refute(cons, 1000), Refutation::Unknown);
    }

    #[test]
    fn integer_tightening() {
        // 2x >= 1 and 2x <= 1 has the rational solution x = 1/2 but no
        // integer solution; tightening floors the bounds to x >= 1, x <= 0.
        let cons = vec![con(&[(0, 2)], -1), con(&[(0, -2)], 1)];
        assert_eq!(refute(cons, 1000), Refutation::Unsat);
    }

    #[test]
    fn multi_variable_chain() {
        // x <= y, y <= z, z <= x - 1: unsat.
        let cons = vec![
            con(&[(1, 1), (0, -1)], 0),  // y - x >= 0
            con(&[(2, 1), (1, -1)], 0),  // z - y >= 0
            con(&[(0, 1), (2, -1)], -1), // x - z - 1 >= 0
        ];
        assert_eq!(refute(cons, 1000), Refutation::Unsat);
    }

    #[test]
    fn transitive_bound_is_satisfiable() {
        // x <= y, y <= z: fine.
        let cons = vec![con(&[(1, 1), (0, -1)], 0), con(&[(2, 1), (1, -1)], 0)];
        assert_eq!(refute(cons, 1000), Refutation::Unknown);
    }

    #[test]
    fn constant_contradiction() {
        assert_eq!(refute(vec![LinCon::constant(BigInt::from(-1))], 10), Refutation::Unsat);
        assert_eq!(refute(vec![LinCon::constant(BigInt::zero())], 10), Refutation::Unknown);
    }

    #[test]
    fn budget_overflow() {
        // Many interacting inequalities (no equality pairs, so Gaussian
        // substitution cannot collapse them) with a tiny budget.
        let mut cons = Vec::new();
        for i in 0..10usize {
            cons.push(con(&[(0, 1), (i + 1, 1)], -1));
            cons.push(con(&[(0, -1), (i + 1, -2)], 5));
        }
        assert_eq!(refute(cons, 3), Refutation::Overflow);
    }
}
