//! Hash-consed term arena: terms and formulas interned as `Copy`-able
//! `u32` ids with O(1) structural equality and per-node cached metadata.
//!
//! The proof kernel's hot path re-traverses the same terms thousands of
//! times per verification condition — every ite-branch × negated-goal ×
//! saturation-tier combination re-normalises the same hypothesis literals,
//! re-hashes the same atoms into `BTreeMap<Term, _>` caches (deep
//! structural comparisons at every node), and re-walks the same sub-terms
//! collecting `Div`/`Pow2` fact candidates. Interning makes all of those
//! O(1)-per-node:
//!
//! - a term is interned **once** per shape; re-interning an already-seen
//!   tree is a walk with shallow per-node hashing (children are ids, so a
//!   node's hash never recurses);
//! - ids are the keys of every done-set and memo table (`HashMap<TermId,
//!   _>` instead of `BTreeMap<Term, _>`), so cache probes stop deep-cloning
//!   and deep-comparing terms;
//! - [`TermStore::normalize`] memoises polynomial normalisation per id at
//!   **every node** of the term, so shared sub-structure (the common case:
//!   a design's invariant terms appear in most of its VCs' literals) is
//!   normalised exactly once per store lifetime;
//! - per-node metadata (node count, free-variable set) is computed at
//!   intern time and shared.
//!
//! The store is deliberately **not** a replacement for [`Term`]'s derived
//! `Ord`: monomial ordering, rule orientation (`choose_rule_monomial`'s
//! degree-lex maximum) and `BitOp` operand canonicalisation are
//! load-bearing for proof search, so everything order-sensitive still
//! compares structural `Term` values. Ids are used where only equality and
//! hashing matter — which is exactly where the time went.
//!
//! A thread-local store ([`with_store`]) keeps ids meaningful across the
//! whole discharge of a VC while staying `Send`-free: parallel VC discharge
//! gives every worker its own arena, so results cannot depend on scheduling.

use crate::poly::{ItePresent, Poly};
use crate::term::{Formula, Term};
use chicala_bigint::BigInt;
use std::cell::RefCell;
use std::collections::HashMap;

/// Interned symbol (variable or function name).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(u32);

/// Interned term.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

/// Interned formula.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FmlId(u32);

/// A term node with interned children. Structurally isomorphic to
/// [`Term`]; every variant stores ids, so equality and hashing are shallow.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum TNode {
    Const(BigInt),
    Var(SymId),
    Add(Vec<TermId>),
    Mul(Vec<TermId>),
    Div(TermId, TermId),
    Mod(TermId, TermId),
    Pow2(TermId),
    BitAnd(TermId, TermId),
    BitOr(TermId, TermId),
    BitXor(TermId, TermId),
    Ite(FmlId, TermId, TermId),
    App(SymId, Vec<TermId>),
}

/// A formula node with interned children.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum FNode {
    True,
    False,
    BVar(SymId),
    Eq(TermId, TermId),
    Le(TermId, TermId),
    Lt(TermId, TermId),
    Not(FmlId),
    And(Vec<FmlId>),
    Or(Vec<FmlId>),
    Implies(FmlId, FmlId),
}

/// The append-only hash-consing arena.
#[derive(Default)]
pub struct TermStore {
    syms: Vec<String>,
    sym_index: HashMap<String, SymId>,
    terms: Vec<TNode>,
    term_index: HashMap<TNode, TermId>,
    fmls: Vec<FNode>,
    fml_index: HashMap<FNode, FmlId>,
    /// Per-term node count (structural size, matching `Term::node_count`).
    node_count: Vec<u32>,
    /// Per-term sorted free-variable sets (integer and boolean variables,
    /// matching `Term::free_vars` semantics).
    free_vars: Vec<Box<[SymId]>>,
    /// Per-formula node counts (matching `Formula::node_count`).
    fml_node_count: Vec<u32>,
    /// Per-formula sorted free-variable sets.
    fml_free_vars: Vec<Box<[SymId]>>,
    /// Memoised polynomial normal forms per term id (`None` marks a term
    /// containing a conditional, the `ItePresent` error case).
    norm: HashMap<TermId, Result<Poly, ItePresent>>,
}

impl TermStore {
    /// An empty store.
    pub fn new() -> TermStore {
        TermStore::default()
    }

    /// Number of interned term nodes.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the store holds no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a symbol.
    pub fn sym(&mut self, s: &str) -> SymId {
        if let Some(&id) = self.sym_index.get(s) {
            return id;
        }
        let id = SymId(self.syms.len() as u32);
        self.syms.push(s.to_string());
        self.sym_index.insert(s.to_string(), id);
        id
    }

    /// The string of an interned symbol.
    pub fn sym_str(&self, id: SymId) -> &str {
        &self.syms[id.0 as usize]
    }

    fn intern_tnode(&mut self, node: TNode) -> TermId {
        if let Some(&id) = self.term_index.get(&node) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        let (count, fvs) = self.term_meta(&node);
        self.terms.push(node.clone());
        self.term_index.insert(node, id);
        self.node_count.push(count);
        self.free_vars.push(fvs);
        id
    }

    fn intern_fnode(&mut self, node: FNode) -> FmlId {
        if let Some(&id) = self.fml_index.get(&node) {
            return id;
        }
        let id = FmlId(self.fmls.len() as u32);
        let (count, fvs) = self.fml_meta(&node);
        self.fmls.push(node.clone());
        self.fml_index.insert(node, id);
        self.fml_node_count.push(count);
        self.fml_free_vars.push(fvs);
        id
    }

    /// Node count + free vars for a node whose children are already
    /// interned (children metadata is a lookup, never a recursion).
    fn term_meta(&self, node: &TNode) -> (u32, Box<[SymId]>) {
        let kids: Vec<TermId> = match node {
            TNode::Const(_) => Vec::new(),
            TNode::Var(_) => Vec::new(),
            TNode::Add(ts) | TNode::Mul(ts) | TNode::App(_, ts) => ts.clone(),
            TNode::Div(a, b)
            | TNode::Mod(a, b)
            | TNode::BitAnd(a, b)
            | TNode::BitOr(a, b)
            | TNode::BitXor(a, b) => vec![*a, *b],
            TNode::Pow2(a) => vec![*a],
            TNode::Ite(_, a, b) => vec![*a, *b],
        };
        let mut count: u32 = 1;
        let mut fvs: Vec<SymId> = Vec::new();
        if let TNode::Var(v) = node {
            fvs.push(*v);
        }
        for k in &kids {
            count = count.saturating_add(self.node_count[k.0 as usize]);
            merge_sorted(&mut fvs, &self.free_vars[k.0 as usize]);
        }
        if let TNode::Ite(c, _, _) = node {
            // Ite conditions contribute their variables and their node
            // count, matching `Term::node_count`'s formula traversal.
            count = count.saturating_add(self.fml_node_count[c.0 as usize]);
            merge_sorted(&mut fvs, &self.fml_free_vars[c.0 as usize]);
        }
        (count, fvs.into_boxed_slice())
    }

    fn fml_meta(&self, node: &FNode) -> (u32, Box<[SymId]>) {
        let mut count: u32 = 1;
        let mut fvs: Vec<SymId> = Vec::new();
        match node {
            FNode::True | FNode::False => {}
            FNode::BVar(v) => fvs.push(*v),
            FNode::Eq(a, b) | FNode::Le(a, b) | FNode::Lt(a, b) => {
                for t in [a, b] {
                    count = count.saturating_add(self.node_count[t.0 as usize]);
                    merge_sorted(&mut fvs, &self.free_vars[t.0 as usize]);
                }
            }
            FNode::Not(f) => {
                count = count.saturating_add(self.fml_node_count[f.0 as usize]);
                merge_sorted(&mut fvs, &self.fml_free_vars[f.0 as usize]);
            }
            FNode::And(fs) | FNode::Or(fs) => {
                for f in fs {
                    count = count.saturating_add(self.fml_node_count[f.0 as usize]);
                    merge_sorted(&mut fvs, &self.fml_free_vars[f.0 as usize]);
                }
            }
            FNode::Implies(a, b) => {
                for f in [a, b] {
                    count = count.saturating_add(self.fml_node_count[f.0 as usize]);
                    merge_sorted(&mut fvs, &self.fml_free_vars[f.0 as usize]);
                }
            }
        }
        (count, fvs.into_boxed_slice())
    }

    /// Interns a term, bottom-up. Re-interning a known tree costs a walk
    /// with shallow hashing and allocates nothing.
    pub fn intern_term(&mut self, t: &Term) -> TermId {
        let node = match t {
            Term::Const(c) => TNode::Const(c.clone()),
            Term::Var(v) => {
                let s = self.sym(v);
                TNode::Var(s)
            }
            Term::Add(ts) => TNode::Add(ts.iter().map(|x| self.intern_term(x)).collect()),
            Term::Mul(ts) => TNode::Mul(ts.iter().map(|x| self.intern_term(x)).collect()),
            Term::Div(a, b) => TNode::Div(self.intern_term(a), self.intern_term(b)),
            Term::Mod(a, b) => TNode::Mod(self.intern_term(a), self.intern_term(b)),
            Term::Pow2(e) => TNode::Pow2(self.intern_term(e)),
            Term::BitAnd(a, b) => TNode::BitAnd(self.intern_term(a), self.intern_term(b)),
            Term::BitOr(a, b) => TNode::BitOr(self.intern_term(a), self.intern_term(b)),
            Term::BitXor(a, b) => TNode::BitXor(self.intern_term(a), self.intern_term(b)),
            Term::Ite(c, a, b) => TNode::Ite(
                self.intern_formula(c),
                self.intern_term(a),
                self.intern_term(b),
            ),
            Term::App(f, args) => {
                let fs = self.sym(f);
                TNode::App(fs, args.iter().map(|x| self.intern_term(x)).collect())
            }
        };
        self.intern_tnode(node)
    }

    /// Interns a formula, bottom-up.
    pub fn intern_formula(&mut self, f: &Formula) -> FmlId {
        let node = match f {
            Formula::True => FNode::True,
            Formula::False => FNode::False,
            Formula::BVar(v) => {
                let s = self.sym(v);
                FNode::BVar(s)
            }
            Formula::Eq(a, b) => FNode::Eq(self.intern_term(a), self.intern_term(b)),
            Formula::Le(a, b) => FNode::Le(self.intern_term(a), self.intern_term(b)),
            Formula::Lt(a, b) => FNode::Lt(self.intern_term(a), self.intern_term(b)),
            Formula::Not(x) => FNode::Not(self.intern_formula(x)),
            Formula::And(fs) => FNode::And(fs.iter().map(|x| self.intern_formula(x)).collect()),
            Formula::Or(fs) => FNode::Or(fs.iter().map(|x| self.intern_formula(x)).collect()),
            Formula::Implies(a, b) => {
                FNode::Implies(self.intern_formula(a), self.intern_formula(b))
            }
        };
        self.intern_fnode(node)
    }

    /// Reconstructs the `Term` value of an interned id.
    pub fn term_of(&self, id: TermId) -> Term {
        match &self.terms[id.0 as usize] {
            TNode::Const(c) => Term::Const(c.clone()),
            TNode::Var(v) => Term::Var(self.sym_str(*v).to_string()),
            TNode::Add(ts) => Term::Add(ts.iter().map(|&x| self.term_of(x)).collect()),
            TNode::Mul(ts) => Term::Mul(ts.iter().map(|&x| self.term_of(x)).collect()),
            TNode::Div(a, b) => {
                Term::Div(Box::new(self.term_of(*a)), Box::new(self.term_of(*b)))
            }
            TNode::Mod(a, b) => {
                Term::Mod(Box::new(self.term_of(*a)), Box::new(self.term_of(*b)))
            }
            TNode::Pow2(e) => Term::Pow2(Box::new(self.term_of(*e))),
            TNode::BitAnd(a, b) => {
                Term::BitAnd(Box::new(self.term_of(*a)), Box::new(self.term_of(*b)))
            }
            TNode::BitOr(a, b) => {
                Term::BitOr(Box::new(self.term_of(*a)), Box::new(self.term_of(*b)))
            }
            TNode::BitXor(a, b) => {
                Term::BitXor(Box::new(self.term_of(*a)), Box::new(self.term_of(*b)))
            }
            TNode::Ite(c, a, b) => Term::Ite(
                Box::new(self.formula_of(*c)),
                Box::new(self.term_of(*a)),
                Box::new(self.term_of(*b)),
            ),
            TNode::App(f, args) => Term::App(
                self.sym_str(*f).to_string(),
                args.iter().map(|&x| self.term_of(x)).collect(),
            ),
        }
    }

    /// Reconstructs the `Formula` value of an interned id.
    pub fn formula_of(&self, id: FmlId) -> Formula {
        match &self.fmls[id.0 as usize] {
            FNode::True => Formula::True,
            FNode::False => Formula::False,
            FNode::BVar(v) => Formula::BVar(self.sym_str(*v).to_string()),
            FNode::Eq(a, b) => Formula::Eq(self.term_of(*a), self.term_of(*b)),
            FNode::Le(a, b) => Formula::Le(self.term_of(*a), self.term_of(*b)),
            FNode::Lt(a, b) => Formula::Lt(self.term_of(*a), self.term_of(*b)),
            FNode::Not(f) => Formula::Not(Box::new(self.formula_of(*f))),
            FNode::And(fs) => Formula::And(fs.iter().map(|&f| self.formula_of(f)).collect()),
            FNode::Or(fs) => Formula::Or(fs.iter().map(|&f| self.formula_of(f)).collect()),
            FNode::Implies(a, b) => Formula::Implies(
                Box::new(self.formula_of(*a)),
                Box::new(self.formula_of(*b)),
            ),
        }
    }

    /// Structural node count of an interned term, cached at intern time.
    pub fn node_count(&self, id: TermId) -> u32 {
        self.node_count[id.0 as usize]
    }

    /// Structural node count of an interned formula, cached at intern time
    /// (matches `Formula::node_count`).
    pub fn formula_node_count(&self, id: FmlId) -> u32 {
        self.fml_node_count[id.0 as usize]
    }

    /// Whether `x` occurs free in the interned term (binary search over the
    /// cached, sorted free-variable set).
    pub fn has_free_var(&mut self, id: TermId, x: &str) -> bool {
        let Some(&sx) = self.sym_index.get(x) else { return false };
        self.free_vars[id.0 as usize].binary_search(&sx).is_ok()
    }

    /// Normalises a term to its polynomial form, memoised per node id.
    ///
    /// Exactly mirrors [`crate::poly::normalize`] (same results, including
    /// errors), but repeated sub-structure is looked up instead of
    /// recomputed — across tiers, goal cases, and VCs sharing hypotheses,
    /// this turns the kernel's dominant recomputation into cache hits.
    pub fn normalize(&mut self, t: &Term) -> Result<Poly, ItePresent> {
        let id = self.intern_term(t);
        self.normalize_id(id)
    }

    fn normalize_id(&mut self, id: TermId) -> Result<Poly, ItePresent> {
        if let Some(r) = self.norm.get(&id) {
            return r.clone();
        }
        let node = self.terms[id.0 as usize].clone();
        let r = self.normalize_node(&node);
        self.norm.insert(id, r.clone());
        r
    }

    /// One level of normalisation over an interned node; children recurse
    /// through the memo. The structure mirrors `poly::normalize` case by
    /// case so results are identical.
    fn normalize_node(&mut self, node: &TNode) -> Result<Poly, ItePresent> {
        Ok(match node {
            TNode::Const(c) => Poly::constant(c.clone()),
            TNode::Var(v) => Poly::atom(Term::Var(self.sym_str(*v).to_string())),
            TNode::Add(ts) => {
                let mut acc = Poly::zero();
                for &x in ts {
                    acc.add(&self.normalize_id(x)?);
                }
                acc
            }
            TNode::Mul(ts) => {
                let mut acc = Poly::constant(BigInt::one());
                for &x in ts {
                    acc = acc.mul(&self.normalize_id(x)?);
                }
                acc
            }
            TNode::Div(a, b) => {
                let pa = self.normalize_id(*a)?;
                let pb = self.normalize_id(*b)?;
                match (pa.as_const(), pb.as_const()) {
                    (Some(ca), Some(cb)) if !cb.is_zero() => {
                        Poly::constant(ca.div_floor(&cb))
                    }
                    (Some(ca), _) if ca.is_zero() => Poly::zero(),
                    (_, Some(cb)) if cb.is_one() => pa,
                    _ => Poly::atom(Term::Div(
                        Box::new(pa.to_term()),
                        Box::new(pb.to_term()),
                    )),
                }
            }
            TNode::Mod(a, b) => {
                // a % b = a - b * (a / b): eliminate Mod entirely.
                let pa = self.normalize_id(*a)?;
                let pb = self.normalize_id(*b)?;
                match (pa.as_const(), pb.as_const()) {
                    (Some(ca), Some(cb)) if !cb.is_zero() => {
                        Poly::constant(ca.mod_floor(&cb))
                    }
                    (_, Some(cb)) if cb.is_one() => Poly::zero(),
                    _ => {
                        let div = self.normalize(&Term::Div(
                            Box::new(pa.to_term()),
                            Box::new(pb.to_term()),
                        ))?;
                        let mut acc = pa;
                        let mut prod = pb.mul(&div);
                        prod.scale(&BigInt::from(-1));
                        acc.add(&prod);
                        acc
                    }
                }
            }
            TNode::Pow2(e) => {
                let pe = self.normalize_id(*e)?;
                match pe.as_const() {
                    Some(c) => {
                        if c.is_negative() {
                            Poly::constant(BigInt::one())
                        } else {
                            match u64::try_from(&c) {
                                Ok(exp) if exp <= 1 << 20 => {
                                    Poly::constant(BigInt::pow2(exp))
                                }
                                _ => Poly::atom(Term::Pow2(Box::new(pe.to_term()))),
                            }
                        }
                    }
                    None => Poly::atom(Term::Pow2(Box::new(pe.to_term()))),
                }
            }
            TNode::BitAnd(a, b) | TNode::BitOr(a, b) | TNode::BitXor(a, b) => {
                let pa = self.normalize_id(*a)?;
                let pb = self.normalize_id(*b)?;
                let fold = |x: &BigInt, y: &BigInt| -> Option<BigInt> {
                    if x.is_negative() || y.is_negative() {
                        return None;
                    }
                    Some(match node {
                        TNode::BitAnd(..) => x & y,
                        TNode::BitOr(..) => x | y,
                        _ => x ^ y,
                    })
                };
                if let (Some(ca), Some(cb)) = (pa.as_const(), pb.as_const()) {
                    if let Some(v) = fold(&ca, &cb) {
                        return Ok(Poly::constant(v));
                    }
                }
                // Identity/zero simplifications for non-negative semantics.
                match (pa.as_const(), pb.as_const(), node) {
                    (Some(c), _, TNode::BitAnd(..)) if c.is_zero() => Poly::zero(),
                    (_, Some(c), TNode::BitAnd(..)) if c.is_zero() => Poly::zero(),
                    (Some(c), _, TNode::BitOr(..)) | (Some(c), _, TNode::BitXor(..))
                        if c.is_zero() =>
                    {
                        pb
                    }
                    (_, Some(c), TNode::BitOr(..)) | (_, Some(c), TNode::BitXor(..))
                        if c.is_zero() =>
                    {
                        pa
                    }
                    _ => {
                        let (ta, tb) = (pa.to_term(), pb.to_term());
                        // Commutative: order operands canonically (by the
                        // structural Term order — load-bearing for proof
                        // search, so ids are NOT used here).
                        let (x, y) = if ta <= tb { (ta, tb) } else { (tb, ta) };
                        Poly::atom(match node {
                            TNode::BitAnd(..) => Term::BitAnd(Box::new(x), Box::new(y)),
                            TNode::BitOr(..) => Term::BitOr(Box::new(x), Box::new(y)),
                            _ => Term::BitXor(Box::new(x), Box::new(y)),
                        })
                    }
                }
            }
            TNode::Ite(c, _, _) => return Err(ItePresent(self.formula_of(*c))),
            TNode::App(f, args) => {
                let name = self.sym_str(*f).to_string();
                let nargs = args
                    .iter()
                    .map(|&a| Ok(self.normalize_id(a)?.to_term()))
                    .collect::<Result<Vec<_>, ItePresent>>()?;
                Poly::atom(Term::App(name, nargs))
            }
        })
    }

    /// Drops everything. Only call at a point where no `TermId`/`FmlId`
    /// is held (ids are invalidated).
    pub fn clear(&mut self) {
        *self = TermStore::default();
    }

    /// Approximate retained entries, for growth-bounding heuristics.
    pub fn footprint(&self) -> usize {
        self.terms.len() + self.fmls.len() + self.norm.len()
    }
}

/// Merges sorted `extra` into sorted `into`, keeping it sorted + deduped.
fn merge_sorted(into: &mut Vec<SymId>, extra: &[SymId]) {
    if extra.is_empty() {
        return;
    }
    if into.is_empty() {
        into.extend_from_slice(extra);
        return;
    }
    let mut merged = Vec::with_capacity(into.len() + extra.len());
    let (mut i, mut j) = (0, 0);
    while i < into.len() || j < extra.len() {
        match (into.get(i), extra.get(j)) {
            (Some(a), Some(b)) if a == b => {
                merged.push(*a);
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                merged.push(*a);
                i += 1;
            }
            (Some(_), Some(b)) => {
                merged.push(*b);
                j += 1;
            }
            (Some(a), None) => {
                merged.push(*a);
                i += 1;
            }
            (None, Some(b)) => {
                merged.push(*b);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    *into = merged;
}

thread_local! {
    static STORE: RefCell<TermStore> = RefCell::new(TermStore::new());
}

/// Runs `f` with the thread-local store.
pub fn with_store<R>(f: impl FnOnce(&mut TermStore) -> R) -> R {
    STORE.with(|s| f(&mut s.borrow_mut()))
}

/// Interns a term in the thread-local store.
pub fn intern(t: &Term) -> TermId {
    with_store(|s| s.intern_term(t))
}

/// Memoised [`crate::poly::normalize`] through the thread-local store.
pub fn normalize_cached(t: &Term) -> Result<Poly, ItePresent> {
    with_store(|s| s.normalize(t))
}

/// Whether `x` occurs free in `t`, via cached free-variable sets.
pub fn has_free_var(t: &Term, x: &str) -> bool {
    with_store(|s| {
        let id = s.intern_term(t);
        s.has_free_var(id, x)
    })
}

/// Structural size of `f` (matching `Formula::node_count`) via the
/// interned store: O(1) for every formula seen before, and interning here
/// warms the arena for the discharge that follows.
pub fn formula_node_count(f: &Formula) -> usize {
    with_store(|s| {
        let id = s.intern_formula(f);
        s.formula_node_count(id) as usize
    })
}

/// Bounds the thread-local store's growth: call only from points where no
/// ids are live (e.g. the top of a proof). Clears everything once the
/// arena plus memo tables exceed ~1M entries, so long-running processes
/// (the conformance soak, the benchmark) keep a flat memory profile while
/// single VCs — even huge ones — never lose their cache mid-proof.
pub fn gc_checkpoint() {
    with_store(|s| {
        if s.footprint() > 1_000_000 {
            s.clear();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::normalize as normalize_plain;
    use crate::term::Term as T;

    fn sample_terms() -> Vec<Term> {
        let x = || T::var("x");
        let y = || T::var("y");
        vec![
            T::int(42),
            x(),
            x().add(y()).mul(x().sub(T::int(1))),
            x().div(y()),
            x().imod(T::int(8)),
            T::pow2(x().add(T::int(3))),
            T::pow2(T::int(6)),
            T::BitAnd(Box::new(y()), Box::new(x())),
            T::BitXor(Box::new(T::int(0)), Box::new(x())),
            T::App("f".into(), vec![x().add(T::int(0)), y()]),
            x().imod(y()).add(T::pow2(x().div(y()))),
        ]
    }

    #[test]
    fn interning_is_hash_consing() {
        let mut s = TermStore::new();
        let t = T::var("x").add(T::var("y")).mul(T::var("x").add(T::var("y")));
        let a = s.intern_term(&t);
        let b = s.intern_term(&t.clone());
        assert_eq!(a, b);
        // The two identical Add children share one id, so the store holds
        // fewer nodes than the tree.
        assert!(s.len() < 8);
    }

    #[test]
    fn term_of_round_trips() {
        let mut s = TermStore::new();
        for t in sample_terms() {
            let id = s.intern_term(&t);
            assert_eq!(s.term_of(id), t, "round trip failed for {t}");
        }
    }

    #[test]
    fn normalize_matches_plain() {
        let mut s = TermStore::new();
        for t in sample_terms() {
            assert_eq!(
                s.normalize(&t),
                normalize_plain(&t),
                "normalize mismatch for {t}"
            );
            // And again, through the memo.
            assert_eq!(s.normalize(&t), normalize_plain(&t));
        }
    }

    #[test]
    fn normalize_ite_error_matches() {
        let t = Term::Ite(
            Box::new(T::var("c").eq(T::int(0))),
            Box::new(T::int(1)),
            Box::new(T::int(2)),
        );
        let mut s = TermStore::new();
        assert_eq!(s.normalize(&t), normalize_plain(&t));
        assert_eq!(s.normalize(&t), normalize_plain(&t)); // memoised error
    }

    #[test]
    fn free_vars_match_term() {
        let mut s = TermStore::new();
        for t in sample_terms() {
            let id = s.intern_term(&t);
            let expect = t.free_vars();
            for v in ["x", "y", "z", "f"] {
                assert_eq!(
                    s.has_free_var(id, v),
                    expect.contains(v),
                    "free var {v} mismatch for {t}"
                );
            }
        }
    }

    #[test]
    fn node_count_matches_term() {
        let mut s = TermStore::new();
        for t in sample_terms() {
            let id = s.intern_term(&t);
            assert_eq!(s.node_count(id) as usize, t.node_count(), "count for {t}");
            let f = t.clone().le(T::var("z").mul(t.clone()));
            let fid = s.intern_formula(&f);
            assert_eq!(
                s.formula_node_count(fid) as usize,
                f.node_count(),
                "formula count for {f}"
            );
        }
    }

    #[test]
    fn formulas_intern_and_round_trip() {
        let f = Formula::Implies(
            Box::new(T::var("x").le(T::var("y"))),
            Box::new(Formula::And(vec![
                Formula::BVar("b".into()),
                Formula::Not(Box::new(T::var("y").lt(T::var("x")))),
            ])),
        );
        let mut s = TermStore::new();
        let a = s.intern_formula(&f);
        let b = s.intern_formula(&f.clone());
        assert_eq!(a, b);
        assert_eq!(s.formula_of(a), f);
    }

    #[test]
    fn clear_resets() {
        let mut s = TermStore::new();
        s.intern_term(&T::var("x"));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
