//! The kernel's trusted axioms: a small set of standard integer facts that
//! are not derivable by linear reasoning alone (they relate flooring
//! division, multiplication by symbolic quantities, `Pow2`, and the bitwise
//! operators' digit recurrences).
//!
//! Every axiom is validated against the concrete BigInt semantics on
//! thousands of random instances in this module's tests — the same
//! trust-but-verify posture the paper takes towards its SMT back-end.

use crate::kernel::{Env, Lemma};
use crate::term::{Formula, Term};

fn v(name: &str) -> Term {
    Term::var(name)
}

fn lemma(name: &str, vars: &[&str], hyps: Vec<Formula>, concl: Formula) -> Lemma {
    Lemma {
        name: name.into(),
        vars: vars.iter().map(|s| s.to_string()).collect(),
        hyps,
        concl,
    }
}

/// All axioms, in registration order.
pub fn all() -> Vec<Lemma> {
    let two = || Term::int(2);
    vec![
        // m >= 1 ∧ m*q <= a < m*(q+1)  ⟹  q == a / m
        lemma(
            "div_unique",
            &["a", "m", "q"],
            vec![
                v("m").ge(Term::int(1)),
                v("m").mul(v("q")).le(v("a")),
                v("a").lt(v("m").mul(v("q").add(Term::int(1)))),
            ],
            v("q").eq(v("a").div(v("m"))),
        ),
        // a <= b ∧ 0 <= c  ⟹  a*c <= b*c
        lemma(
            "mul_le_mono",
            &["a", "b", "c"],
            vec![v("a").le(v("b")), Term::int(0).le(v("c"))],
            v("a").mul(v("c")).le(v("b").mul(v("c"))),
        ),
        // a <= b ∧ m >= 1  ⟹  a/m <= b/m
        lemma(
            "div_le_mono",
            &["a", "b", "m"],
            vec![v("a").le(v("b")), v("m").ge(Term::int(1))],
            v("a").div(v("m")).le(v("b").div(v("m"))),
        ),
        // n >= 1  ⟹  Pow2(n) == 2 * Pow2(n - 1)
        lemma(
            "pow2_step",
            &["n"],
            vec![v("n").ge(Term::int(1))],
            Term::pow2(v("n")).eq(two().mul(Term::pow2(v("n").sub(Term::int(1))))),
        ),
        // Digit recurrences of the bitwise operators (operands
        // non-negative); `x % 2` is written `x - 2*(x/2)` after
        // normalisation, so the statements use division only.
        lemma(
            "bit_and_rec",
            &["a", "b"],
            vec![Term::int(0).le(v("a")), Term::int(0).le(v("b"))],
            Term::BitAnd(Box::new(v("a")), Box::new(v("b"))).eq(
                two()
                    .mul(Term::BitAnd(
                        Box::new(v("a").div(two())),
                        Box::new(v("b").div(two())),
                    ))
                    .add(v("a").imod(two()).mul(v("b").imod(two()))),
            ),
        ),
        lemma(
            "bit_or_rec",
            &["a", "b"],
            vec![Term::int(0).le(v("a")), Term::int(0).le(v("b"))],
            Term::BitOr(Box::new(v("a")), Box::new(v("b"))).eq(
                two()
                    .mul(Term::BitOr(
                        Box::new(v("a").div(two())),
                        Box::new(v("b").div(two())),
                    ))
                    .add(
                        v("a")
                            .imod(two())
                            .add(v("b").imod(two()))
                            .sub(v("a").imod(two()).mul(v("b").imod(two()))),
                    ),
            ),
        ),
        lemma(
            "bit_xor_rec",
            &["a", "b"],
            vec![Term::int(0).le(v("a")), Term::int(0).le(v("b"))],
            Term::BitXor(Box::new(v("a")), Box::new(v("b"))).eq(
                two()
                    .mul(Term::BitXor(
                        Box::new(v("a").div(two())),
                        Box::new(v("b").div(two())),
                    ))
                    .add(
                        v("a")
                            .imod(two())
                            .add(v("b").imod(two()))
                            .sub(Term::int(2).mul(v("a").imod(two()).mul(v("b").imod(two())))),
                    ),
            ),
        ),
        // Bounds of the bitwise operators on non-negative operands.
        lemma(
            "bit_and_bounds",
            &["a", "b"],
            vec![Term::int(0).le(v("a")), Term::int(0).le(v("b"))],
            Formula::and_all([
                Term::int(0).le(Term::BitAnd(Box::new(v("a")), Box::new(v("b")))),
                Term::BitAnd(Box::new(v("a")), Box::new(v("b"))).le(v("a")),
                Term::BitAnd(Box::new(v("a")), Box::new(v("b"))).le(v("b")),
            ]),
        ),
        lemma(
            "bit_or_bounds",
            &["a", "b"],
            vec![Term::int(0).le(v("a")), Term::int(0).le(v("b"))],
            Formula::and_all([
                v("a").le(Term::BitOr(Box::new(v("a")), Box::new(v("b")))),
                v("b").le(Term::BitOr(Box::new(v("a")), Box::new(v("b")))),
                Term::BitOr(Box::new(v("a")), Box::new(v("b"))).le(v("a").add(v("b"))),
            ]),
        ),
        lemma(
            "bit_xor_bounds",
            &["a", "b"],
            vec![Term::int(0).le(v("a")), Term::int(0).le(v("b"))],
            Formula::and_all([
                Term::int(0).le(Term::BitXor(Box::new(v("a")), Box::new(v("b")))),
                Term::BitXor(Box::new(v("a")), Box::new(v("b"))).le(v("a").add(v("b"))),
            ]),
        ),
    ]
}

/// Installs all axioms into `env`.
pub fn install(env: &mut Env) {
    for ax in all() {
        env.assume_axiom(ax);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_bigint::BigInt;
    use std::collections::BTreeMap;

    /// A local splitmix64, so this crate's empirical axiom validation needs
    /// no external PRNG crate and replays deterministically.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`.
        fn gen_range(&mut self, lo: i128, hi: i128) -> i128 {
            lo + (self.next() as i128).rem_euclid(hi - lo)
        }
    }

    /// Every axiom must hold on random integer instances: this is the
    /// empirical validation of the kernel's trusted base.
    #[test]
    fn axioms_hold_on_random_instances() {
        let axioms = all();
        let mut rng = Rng(0xC41CA1A);
        for ax in &axioms {
            let mut checked = 0usize;
            let mut tries = 0usize;
            while checked < 2000 && tries < 60_000 {
                tries += 1;
                let mut env: BTreeMap<String, BigInt> = BTreeMap::new();
                for var in &ax.vars {
                    // Mostly small magnitudes (so window hypotheses like
                    // `m*q <= a < m*(q+1)` are hit often), occasionally
                    // larger ones. Exponent-position values stay bounded so
                    // `Pow2` evaluation stays cheap.
                    let raw: i128 = match rng.gen_range(0, 10) {
                        0..=6 => rng.gen_range(-8, 8),
                        7 | 8 => rng.gen_range(-300, 300),
                        _ => rng.gen_range(-4096, 4096),
                    };
                    env.insert(var.clone(), BigInt::from(raw));
                }
                let benv = BTreeMap::new();
                let hyps_hold = ax
                    .hyps
                    .iter()
                    .all(|h| h.eval(&env, &benv).expect("axioms are evaluable"));
                if !hyps_hold {
                    continue;
                }
                checked += 1;
                assert_eq!(
                    ax.concl.eval(&env, &benv),
                    Some(true),
                    "axiom `{}` fails at {:?}",
                    ax.name,
                    env
                );
            }
            assert!(checked >= 200, "axiom `{}` rarely satisfiable: {checked}", ax.name);
        }
    }

    #[test]
    fn install_registers_all() {
        let env = Env::new();
        for ax in all() {
            assert!(env.lemma(&ax.name).is_some(), "{} missing", ax.name);
            assert!(env.axiom_names().contains(&ax.name));
        }
    }
}
