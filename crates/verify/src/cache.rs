//! Content-addressed caching hook for kernel VC discharge.
//!
//! [`discharge_vc`](crate::vcgen::discharge_vc) re-proves every VC from
//! scratch on every run, even though a VC's provability is a pure function
//! of the environment's logical content, the VC statement, and the proof
//! script. This module adds the cache seam: the service crate implements
//! [`VcCache`] over its content-addressed store and installs it via
//! [`set_vc_cache`]; with nothing installed, behaviour is unchanged.
//!
//! Soundness posture, stricter than the gate-proof cache because a kernel
//! verdict cannot be cheaply re-checked:
//!
//! * **only successes are cached.** A failure may be a timeout or a limit
//!   artifact; re-running it is the only honest answer. A cache hit
//!   therefore means exactly "this statement was proved by this script in
//!   this environment before".
//! * [`Limits`](crate::kernel::Limits) are excluded from the key:
//!   provability is monotone in search budget, so a recorded success is
//!   valid under any limits. Nothing else is excluded — environment
//!   content, VC name, hypotheses, goal, and the full proof script all
//!   enter the digest.
//! * the store layer re-verifies the full key transcript on read, so a
//!   digest collision cannot alias two different VCs.

use crate::kernel::{CalcStep, Env, Just, Proof};
use crate::vcgen::Vc;
use chicala_telemetry as telemetry;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

/// Bumped when the key transcript shape changes.
pub const VC_KEY_SCHEMA: u32 = 1;

/// A content-addressed store for VC discharge results. Byte-level, the
/// same shape as the gate-proof cache's `ProveCache`: the payload is a
/// short "proved" marker, the key carries all the meaning.
pub trait VcCache: Send + Sync {
    /// Returns the stored payload for an identical key, if any.
    fn lookup(&self, key: &[u8], digest: u128) -> Option<Vec<u8>>;
    /// Persists `payload` under `key`; failures must be silent.
    fn store(&self, key: &[u8], digest: u128, payload: &[u8]);
}

static VC_CACHE: RwLock<Option<Arc<dyn VcCache>>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide VC cache.
pub fn set_vc_cache(cache: Option<Arc<dyn VcCache>>) {
    *VC_CACHE.write().expect("vc cache slot") = cache;
}

fn vc_cache() -> Option<Arc<dyn VcCache>> {
    VC_CACHE.read().expect("vc cache slot").clone()
}

/// The payload stored for a proved VC.
const PROVED_MARKER: &[u8] = b"proved:v1";

/// Digests a [`Proof`] script. `Proof` has no `Hash` derive (it is never
/// used as a map key), so the walk is explicit: a discriminant tag per
/// node, then the children. Tags are part of the schema — renumbering
/// requires a [`VC_KEY_SCHEMA`] bump.
fn hash_proof(p: &Proof, h: &mut impl Hasher) {
    match p {
        Proof::Auto => 0u8.hash(h),
        Proof::SplitAnd(parts) => {
            1u8.hash(h);
            parts.len().hash(h);
            for part in parts {
                hash_proof(part, h);
            }
        }
        Proof::Cases { on, if_true, if_false } => {
            2u8.hash(h);
            on.hash(h);
            hash_proof(if_true, h);
            hash_proof(if_false, h);
        }
        Proof::Calc(steps) => {
            3u8.hash(h);
            steps.len().hash(h);
            for CalcStep { to, just } in steps {
                to.hash(h);
                hash_just(just, h);
            }
        }
        Proof::Use { lemma, args, rest } => {
            4u8.hash(h);
            lemma.hash(h);
            args.hash(h);
            hash_proof(rest, h);
        }
        Proof::Unfold { func, rest } => {
            5u8.hash(h);
            func.hash(h);
            hash_proof(rest, h);
        }
        Proof::Have { fact, proof, rest } => {
            6u8.hash(h);
            fact.hash(h);
            hash_proof(proof, h);
            hash_proof(rest, h);
        }
        Proof::Induction { var, base, base_case, step_case } => {
            7u8.hash(h);
            var.hash(h);
            base.hash(h);
            hash_proof(base_case, h);
            hash_proof(step_case, h);
        }
    }
}

fn hash_just(j: &Just, h: &mut impl Hasher) {
    match j {
        Just::Auto => 0u8.hash(h),
        Just::Lemma { name, args } => {
            1u8.hash(h);
            name.hash(h);
            args.hash(h);
        }
        Just::Unfold(f) => {
            2u8.hash(h);
            f.hash(h);
        }
    }
}

/// The canonical key of one VC discharge: environment content + VC
/// statement + proof script, schema-versioned.
pub fn vc_key(env: &Env, vc: &Vc, proof: &Proof) -> (Vec<u8>, u128) {
    let mut h = telemetry::Fnv128::new();
    h.write(b"chicala-vc");
    h.write(&VC_KEY_SCHEMA.to_le_bytes());
    env.content_digest(&mut h);
    vc.name.hash(&mut h);
    vc.hyps.hash(&mut h);
    vc.goal.hash(&mut h);
    hash_proof(proof, &mut h);
    let digest = h.finish128();
    // The transcript bytes the store re-verifies on read. A full
    // structural serialization of Env+Vc+Proof would be large and slow;
    // instead the transcript is a *second, independent* digest pass with a
    // different seed — two simultaneous 128-bit collisions over different
    // polynomials is the collision bar, at O(1) stored bytes.
    let mut h2 = telemetry::Fnv128::new();
    h2.write(b"chicala-vc-check");
    h2.write(&VC_KEY_SCHEMA.to_le_bytes());
    env.content_digest(&mut h2);
    vc.name.hash(&mut h2);
    vc.hyps.hash(&mut h2);
    vc.goal.hash(&mut h2);
    hash_proof(proof, &mut h2);
    let mut key = Vec::with_capacity(48);
    key.extend_from_slice(b"chicala-vc");
    key.extend_from_slice(&VC_KEY_SCHEMA.to_le_bytes());
    key.extend_from_slice(&digest.to_le_bytes());
    key.extend_from_slice(&h2.finish128().to_le_bytes());
    // The address is the digest *of the key bytes* — the store's contract
    // (it refuses any entry whose address it cannot re-derive from the
    // stored key on read). Content sensitivity is inherited: both content
    // digests are embedded in the key.
    let mut ha = telemetry::Fnv128::new();
    ha.write(&key);
    let address = ha.finish128();
    (key, address)
}

/// A computed key bound to the installed cache, handed back to
/// [`discharge_vc`](crate::vcgen::discharge_vc) so lookup and store share
/// one key construction.
pub(crate) struct VcCacheEntry {
    cache: Arc<dyn VcCache>,
    key: Vec<u8>,
    digest: u128,
}

impl VcCacheEntry {
    /// `Some` only when a cache is installed.
    pub(crate) fn open(env: &Env, vc: &Vc, proof: &Proof) -> Option<VcCacheEntry> {
        let cache = vc_cache()?;
        let (key, digest) = vc_key(env, vc, proof);
        Some(VcCacheEntry { cache, key, digest })
    }

    /// Whether this exact discharge is recorded as proved.
    pub(crate) fn hit(&self) -> bool {
        match self.cache.lookup(&self.key, self.digest) {
            Some(payload) if payload == PROVED_MARKER => {
                telemetry::counter("cache.vc.hit", 1);
                true
            }
            Some(_) => {
                telemetry::counter("cache.vc.undecodable", 1);
                false
            }
            None => {
                telemetry::counter("cache.vc.miss", 1);
                false
            }
        }
    }

    /// Records a successful discharge.
    pub(crate) fn record_proved(&self) {
        self.cache.store(&self.key, self.digest, PROVED_MARKER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sample_vc() -> Vc {
        Vc {
            name: "post".into(),
            hyps: vec![Term::var("x").ge(Term::int(0))],
            goal: Term::var("x").eq(Term::var("x")),
        }
    }

    #[test]
    fn key_moves_with_every_component() {
        let env = Env::new();
        let vc = sample_vc();
        let (k1, d1) = vc_key(&env, &vc, &Proof::Auto);
        let (k2, d2) = vc_key(&env, &vc, &Proof::Auto);
        assert_eq!(k1, k2);
        assert_eq!(d1, d2);

        let mut vc2 = vc.clone();
        vc2.goal = Term::var("y").eq(Term::var("y"));
        assert_ne!(vc_key(&env, &vc2, &Proof::Auto).1, d1, "goal");

        let mut vc3 = vc.clone();
        vc3.name = "other".into();
        assert_ne!(vc_key(&env, &vc3, &Proof::Auto).1, d1, "name");

        let deeper = Proof::SplitAnd(vec![Proof::Auto]);
        assert_ne!(vc_key(&env, &vc, &deeper).1, d1, "proof script");

        let mut env2 = Env::new();
        env2.define(crate::kernel::DefFn {
            name: "dbl".into(),
            params: vec!["n".into()],
            body: Term::int(2).mul(Term::var("n")),
        });
        assert_ne!(vc_key(&env2, &vc, &Proof::Auto).1, d1, "environment");
    }

    #[test]
    fn limits_do_not_move_the_key() {
        let mut env = Env::new();
        let vc = sample_vc();
        let (_, d1) = vc_key(&env, &vc, &Proof::Auto);
        env.limits.fm_budget = 1;
        env.limits.ite_splits = 1;
        let (_, d2) = vc_key(&env, &vc, &Proof::Auto);
        assert_eq!(d1, d2, "limits bound search, not provability");
    }

    #[test]
    fn proof_walker_distinguishes_shapes() {
        let env = Env::new();
        let vc = sample_vc();
        let a = Proof::Unfold { func: "f".into(), rest: Box::new(Proof::Auto) };
        let b = Proof::Use { lemma: "f".into(), args: vec![], rest: Box::new(Proof::Auto) };
        assert_ne!(vc_key(&env, &vc, &a).1, vc_key(&env, &vc, &b).1);
    }
}
