//! The verifier's term and formula language: nonlinear integer arithmetic
//! with flooring division, `Pow2`, bitwise operators, and conditionals.
//!
//! This is the logic the generated sequential programs are interpreted
//! into, mirroring the paper's integer view of bit-vectors (Listing 3).

use chicala_bigint::BigInt;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A symbol (variable or function name).
pub type Sym = String;

/// An integer term.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// Integer constant.
    Const(BigInt),
    /// Integer variable.
    Var(Sym),
    /// N-ary sum.
    Add(Vec<Term>),
    /// N-ary product.
    Mul(Vec<Term>),
    /// Flooring division; `Div(a, 0) = 0` by convention.
    Div(Box<Term>, Box<Term>),
    /// Flooring remainder; `Mod(a, 0) = a` by convention.
    Mod(Box<Term>, Box<Term>),
    /// `2^max(e, 0)`.
    Pow2(Box<Term>),
    /// Bitwise and (operands taken non-negative).
    BitAnd(Box<Term>, Box<Term>),
    /// Bitwise or.
    BitOr(Box<Term>, Box<Term>),
    /// Bitwise xor.
    BitXor(Box<Term>, Box<Term>),
    /// Conditional term.
    Ite(Box<Formula>, Box<Term>, Box<Term>),
    /// Application of a defined (possibly recursive) function.
    App(Sym, Vec<Term>),
}

/// A formula over terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// Boolean variable.
    BVar(Sym),
    /// Equality of terms.
    Eq(Term, Term),
    /// `a <= b`.
    Le(Term, Term),
    /// `a < b`.
    Lt(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
}

// Builder methods deliberately use the term language's operator names
// (`add`, `neg`, ...) rather than implementing the std::ops traits: they
// build proof terms, not values.
#[allow(clippy::should_implement_trait)]
impl Term {
    /// Integer constant.
    pub fn int(v: impl Into<BigInt>) -> Term {
        Term::Const(v.into())
    }

    /// Variable.
    pub fn var(name: impl Into<Sym>) -> Term {
        Term::Var(name.into())
    }

    /// `2^self` (clamped at 0).
    pub fn pow2(e: Term) -> Term {
        Term::Pow2(Box::new(e))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Term) -> Term {
        Term::Add(vec![self, rhs])
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Term) -> Term {
        Term::Add(vec![self, Term::Mul(vec![Term::int(-1), rhs])])
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Term) -> Term {
        Term::Mul(vec![self, rhs])
    }

    /// Flooring `self / rhs`.
    pub fn div(self, rhs: Term) -> Term {
        Term::Div(Box::new(self), Box::new(rhs))
    }

    /// Flooring `self % rhs`.
    pub fn imod(self, rhs: Term) -> Term {
        Term::Mod(Box::new(self), Box::new(rhs))
    }

    /// `-self`.
    pub fn neg(self) -> Term {
        Term::Mul(vec![Term::int(-1), self])
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Term) -> Formula {
        Formula::Eq(self, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Term) -> Formula {
        Formula::Le(self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Term) -> Formula {
        Formula::Lt(self, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Term) -> Formula {
        Formula::Le(rhs, self)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Term) -> Formula {
        Formula::Lt(rhs, self)
    }

    /// Free variables (integer and boolean, from embedded formulas).
    pub fn free_vars(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Term::Const(_) => {}
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Add(ts) | Term::Mul(ts) | Term::App(_, ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
            Term::Div(a, b) | Term::Mod(a, b) | Term::BitAnd(a, b) | Term::BitOr(a, b)
            | Term::BitXor(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Pow2(a) => a.collect_vars(out),
            Term::Ite(c, t, f) => {
                c.collect_vars(out);
                t.collect_vars(out);
                f.collect_vars(out);
            }
        }
    }

    /// Simultaneous substitution of integer variables.
    pub fn subst(&self, map: &BTreeMap<Sym, Term>) -> Term {
        match self {
            Term::Const(_) => self.clone(),
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Add(ts) => Term::Add(ts.iter().map(|t| t.subst(map)).collect()),
            Term::Mul(ts) => Term::Mul(ts.iter().map(|t| t.subst(map)).collect()),
            Term::Div(a, b) => Term::Div(Box::new(a.subst(map)), Box::new(b.subst(map))),
            Term::Mod(a, b) => Term::Mod(Box::new(a.subst(map)), Box::new(b.subst(map))),
            Term::Pow2(a) => Term::Pow2(Box::new(a.subst(map))),
            Term::BitAnd(a, b) => Term::BitAnd(Box::new(a.subst(map)), Box::new(b.subst(map))),
            Term::BitOr(a, b) => Term::BitOr(Box::new(a.subst(map)), Box::new(b.subst(map))),
            Term::BitXor(a, b) => Term::BitXor(Box::new(a.subst(map)), Box::new(b.subst(map))),
            Term::Ite(c, t, f) => Term::Ite(
                Box::new(c.subst(map)),
                Box::new(t.subst(map)),
                Box::new(f.subst(map)),
            ),
            Term::App(f, ts) => Term::App(f.clone(), ts.iter().map(|t| t.subst(map)).collect()),
        }
    }

    /// Concrete evaluation under an integer/bool assignment (for testing
    /// lemmas and VCs against random instances).
    ///
    /// Returns `None` if a variable or application is unresolved.
    pub fn eval(&self, env: &BTreeMap<Sym, BigInt>, benv: &BTreeMap<Sym, bool>) -> Option<BigInt> {
        Some(match self {
            Term::Const(c) => c.clone(),
            Term::Var(v) => env.get(v)?.clone(),
            Term::Add(ts) => {
                let mut acc = BigInt::zero();
                for t in ts {
                    acc += &t.eval(env, benv)?;
                }
                acc
            }
            Term::Mul(ts) => {
                let mut acc = BigInt::one();
                for t in ts {
                    acc *= &t.eval(env, benv)?;
                }
                acc
            }
            Term::Div(a, b) => {
                let (a, b) = (a.eval(env, benv)?, b.eval(env, benv)?);
                if b.is_zero() {
                    BigInt::zero()
                } else {
                    a.div_floor(&b)
                }
            }
            Term::Mod(a, b) => {
                let (a, b) = (a.eval(env, benv)?, b.eval(env, benv)?);
                if b.is_zero() {
                    a
                } else {
                    a.mod_floor(&b)
                }
            }
            Term::Pow2(e) => {
                let e = e.eval(env, benv)?;
                if e.is_negative() {
                    BigInt::one()
                } else {
                    BigInt::pow2(u64::try_from(&e).ok()?)
                }
            }
            Term::BitAnd(a, b) | Term::BitOr(a, b) | Term::BitXor(a, b) => {
                let (x, y) = (a.eval(env, benv)?, b.eval(env, benv)?);
                if x.is_negative() || y.is_negative() {
                    return None; // bitwise semantics are defined on naturals
                }
                match self {
                    Term::BitAnd(..) => x & y,
                    Term::BitOr(..) => x | y,
                    _ => x ^ y,
                }
            }
            Term::Ite(c, t, f) => {
                if c.eval(env, benv)? {
                    t.eval(env, benv)?
                } else {
                    f.eval(env, benv)?
                }
            }
            Term::App(..) => return None,
        })
    }

    /// Number of AST nodes — the size measure reported to telemetry for
    /// generated verification conditions.
    pub fn node_count(&self) -> usize {
        match self {
            Term::Const(_) | Term::Var(_) => 1,
            Term::Add(ts) | Term::Mul(ts) | Term::App(_, ts) => {
                1 + ts.iter().map(Term::node_count).sum::<usize>()
            }
            Term::Div(a, b)
            | Term::Mod(a, b)
            | Term::BitAnd(a, b)
            | Term::BitOr(a, b)
            | Term::BitXor(a, b) => 1 + a.node_count() + b.node_count(),
            Term::Pow2(a) => 1 + a.node_count(),
            Term::Ite(c, t, f) => 1 + c.node_count() + t.node_count() + f.node_count(),
        }
    }
}

#[allow(clippy::should_implement_trait)]
impl Formula {
    /// N-ary conjunction, flattening trivial cases.
    pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let fs: Vec<Formula> = fs.into_iter().filter(|f| *f != Formula::True).collect();
        match fs.len() {
            0 => Formula::True,
            1 => fs.into_iter().next().expect("len checked"),
            _ => Formula::And(fs),
        }
    }

    /// `self && rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::and_all([self, rhs])
    }

    /// `self || rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(vec![self, rhs])
    }

    /// `!self`.
    pub fn not(self) -> Formula {
        match self {
            Formula::Not(f) => *f,
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            f => Formula::Not(Box::new(f)),
        }
    }

    /// `self ==> rhs`.
    pub fn implies(self, rhs: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(rhs))
    }

    /// Free variables.
    pub fn free_vars(&self) -> BTreeSet<Sym> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<Sym>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::BVar(v) => {
                out.insert(v.clone());
            }
            Formula::Eq(a, b) | Formula::Le(a, b) | Formula::Lt(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Not(f) => f.collect_vars(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Simultaneous substitution of integer variables.
    pub fn subst(&self, map: &BTreeMap<Sym, Term>) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::BVar(_) => self.clone(),
            Formula::Eq(a, b) => Formula::Eq(a.subst(map), b.subst(map)),
            Formula::Le(a, b) => Formula::Le(a.subst(map), b.subst(map)),
            Formula::Lt(a, b) => Formula::Lt(a.subst(map), b.subst(map)),
            Formula::Not(f) => Formula::Not(Box::new(f.subst(map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.subst(map)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.subst(map)), Box::new(b.subst(map)))
            }
        }
    }

    /// Substitution of boolean variables by formulas.
    pub fn subst_bool(&self, map: &BTreeMap<Sym, Formula>) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::BVar(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Formula::Eq(..) | Formula::Le(..) | Formula::Lt(..) => self.clone(),
            Formula::Not(f) => Formula::Not(Box::new(f.subst_bool(map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.subst_bool(map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.subst_bool(map)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.subst_bool(map)), Box::new(b.subst_bool(map)))
            }
        }
    }

    /// Concrete evaluation (for testing).
    pub fn eval(&self, env: &BTreeMap<Sym, BigInt>, benv: &BTreeMap<Sym, bool>) -> Option<bool> {
        Some(match self {
            Formula::True => true,
            Formula::False => false,
            Formula::BVar(v) => *benv.get(v)?,
            Formula::Eq(a, b) => a.eval(env, benv)? == b.eval(env, benv)?,
            Formula::Le(a, b) => a.eval(env, benv)? <= b.eval(env, benv)?,
            Formula::Lt(a, b) => a.eval(env, benv)? < b.eval(env, benv)?,
            Formula::Not(f) => !f.eval(env, benv)?,
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(env, benv)? {
                        return Some(false);
                    }
                }
                true
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(env, benv)? {
                        return Some(true);
                    }
                }
                false
            }
            Formula::Implies(a, b) => !a.eval(env, benv)? || b.eval(env, benv)?,
        })
    }

    /// Number of AST nodes (terms included) — see [`Term::node_count`].
    pub fn node_count(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::BVar(_) => 1,
            Formula::Eq(a, b) | Formula::Le(a, b) | Formula::Lt(a, b) => {
                1 + a.node_count() + b.node_count()
            }
            Formula::Not(f) => 1 + f.node_count(),
            Formula::And(fs) | Formula::Or(fs) => {
                1 + fs.iter().map(Formula::node_count).sum::<usize>()
            }
            Formula::Implies(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Add(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Mul(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Term::Div(a, b) => write!(f, "({a} / {b})"),
            Term::Mod(a, b) => write!(f, "({a} % {b})"),
            Term::Pow2(e) => write!(f, "Pow2({e})"),
            Term::BitAnd(a, b) => write!(f, "({a} & {b})"),
            Term::BitOr(a, b) => write!(f, "({a} | {b})"),
            Term::BitXor(a, b) => write!(f, "({a} ^ {b})"),
            Term::Ite(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Term::App(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::BVar(v) => write!(f, "{v}"),
            Formula::Eq(a, b) => write!(f, "{a} == {b}"),
            Formula::Le(a, b) => write!(f, "{a} <= {b}"),
            Formula::Lt(a, b) => write!(f, "{a} < {b}"),
            Formula::Not(x) => write!(f, "!({x})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} ==> {b})"),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Term {
        Term::int(v)
    }

    #[test]
    fn eval_floor_semantics() {
        let env = BTreeMap::new();
        let benv = BTreeMap::new();
        // (-7) / 2 = -4, (-7) % 2 = 1 (floor semantics).
        assert_eq!(t(-7).div(t(2)).eval(&env, &benv), Some(BigInt::from(-4)));
        assert_eq!(t(-7).imod(t(2)).eval(&env, &benv), Some(BigInt::from(1)));
        // Division by zero conventions.
        assert_eq!(t(5).div(t(0)).eval(&env, &benv), Some(BigInt::zero()));
        assert_eq!(t(5).imod(t(0)).eval(&env, &benv), Some(BigInt::from(5)));
        // Pow2 clamps below zero.
        assert_eq!(Term::pow2(t(-3)).eval(&env, &benv), Some(BigInt::one()));
        assert_eq!(Term::pow2(t(10)).eval(&env, &benv), Some(BigInt::from(1024)));
    }

    #[test]
    fn subst_and_free_vars() {
        let e = Term::var("x").add(Term::var("y").mul(Term::pow2(Term::var("x"))));
        assert_eq!(
            e.free_vars().into_iter().collect::<Vec<_>>(),
            vec!["x".to_string(), "y".to_string()]
        );
        let m: BTreeMap<Sym, Term> = [("x".to_string(), t(3))].into_iter().collect();
        let s = e.subst(&m);
        let env: BTreeMap<Sym, BigInt> = [("y".to_string(), BigInt::from(2))].into_iter().collect();
        assert_eq!(s.eval(&env, &BTreeMap::new()), Some(BigInt::from(19)));
    }

    #[test]
    fn formula_eval() {
        let env: BTreeMap<Sym, BigInt> =
            [("a".to_string(), BigInt::from(5))].into_iter().collect();
        let f = Term::var("a").ge(t(0)).and(Term::var("a").lt(t(10)));
        assert_eq!(f.eval(&env, &BTreeMap::new()), Some(true));
        let g = Term::var("a").eq(t(6));
        assert_eq!(g.eval(&env, &BTreeMap::new()), Some(false));
    }

    #[test]
    fn and_all_flattens() {
        assert_eq!(Formula::and_all([]), Formula::True);
        assert_eq!(Formula::and_all([Formula::True, Formula::False]), Formula::False);
    }

    #[test]
    fn display() {
        let e = Term::var("R").div(Term::pow2(Term::var("w").sub(Term::var("c"))));
        assert_eq!(e.to_string(), "(R / Pow2((w + (-1 * c))))");
    }
}
