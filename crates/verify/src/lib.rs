//! A deductive verifier for the generated sequential programs — the
//! workspace's stand-in for Stainless (§3 of the paper).
//!
//! * term-level logic: nonlinear integer arithmetic with flooring
//!   division, `Pow2`, and bitwise operators (the integer view of
//!   bit-vectors, Listing 3);
//! * a proof kernel with a small trusted axiom base, an automatic
//!   core (conditional splitting, polynomial normalisation, `Div`/`Pow2`
//!   fact saturation, Fourier–Motzkin), and explicit tactics — lemma
//!   instantiation, equation chains (Listing 4), case analysis, induction,
//!   and unfolding — matching the paper's proof-refinement strategies;
//! * VC generation: symbolic execution of `Trans` and the `Init`/`Run`
//!   refinement rule (§3.1) that reduces "for all clock cycles and all bit
//!   widths" to invariant preservation plus a termination measure.

mod axioms;
pub mod cache;
mod kernel;
mod linarith;
mod poly;
pub mod store;
mod term;
mod vcgen;

pub use axioms::all as axiom_lemmas;
pub use kernel::{CalcStep, DefFn, Env, Just, Lemma, Limits, Proof, ProofError};
pub use linarith::{refute, LinCon, Refutation};

/// Bounds this thread's proof-state interners (term arena, linear-constraint
/// store, refutation memo) at a point where no interned ids are live — the
/// boundary between independent VCs in a long-running process. The kernel
/// checkpoints on its own at each `auto` entry; loops that discharge many
/// VCs (benchmarks, soak runs) should also call this between VCs so memory
/// stays flat across the whole run.
pub fn gc_checkpoint() {
    store::gc_checkpoint();
    linarith::gc_checkpoint();
}

/// Number of Fourier–Motzkin invocations so far (profiling aid).
pub fn refute_calls() -> u64 {
    linarith::REFUTE_CALLS.load(std::sync::atomic::Ordering::Relaxed)
}

/// Total microseconds spent in Fourier–Motzkin so far (profiling aid).
pub fn refute_micros() -> u64 {
    linarith::REFUTE_MICROS.load(std::sync::atomic::Ordering::Relaxed)
}
pub use poly::{assume_ite, find_ite, normalize, ItePresent, Poly};
pub use store::{normalize_cached, TermId, TermStore};
pub use term::{Formula, Sym, Term};
pub use vcgen::{
    discharge_vc, generate_vcs, prepare_env, verify_design, DesignSpec, SymState, SymValue, Vc,
    VcError, VcReport,
};
