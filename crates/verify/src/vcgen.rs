//! Verification-condition generation for generated sequential programs.
//!
//! This module implements the paper's §3.1 proof structure. A design's
//! correctness statement (`Init`'s `require`/`ensuring`) is reduced to:
//!
//! 1. **init** — the initial register state establishes the invariant;
//! 2. **preserve** — one application of `Trans` preserves the invariant
//!    whenever the run continues (the timeout has not fired on the new
//!    state), plus automatic register range bounds;
//! 3. **post** — when the timeout fires, the outputs/new registers satisfy
//!    the postcondition;
//! 4. **measure** — a user-supplied variant is non-negative and strictly
//!    decreases while the run continues, so `Run` terminates.
//!
//! `Trans` is executed *symbolically* (conditionals are merged into `Ite`
//! terms; `for` loops use user-supplied loop invariants), yielding VCs over
//! the kernel's integer logic. Every VC is discharged by the kernel with
//! either the automatic core or a user proof script keyed by VC name —
//! exactly the paper's "mostly automated, manually refined" workflow.

use crate::kernel::{DefFn, Env, Lemma, Proof, ProofError};
use crate::term::{Formula, Term};
use chicala_seq::{next_name, SBinop, SCmp, SExpr, SFunc, SStmt, SeqProgram};
use chicala_telemetry as telemetry;
use std::collections::BTreeMap;
use std::fmt;

/// A symbolic value: an integer term or a boolean formula.
#[derive(Clone, Debug)]
pub enum SymValue {
    /// Integer-valued.
    Int(Term),
    /// Boolean-valued.
    Bool(Formula),
}

impl SymValue {
    fn as_int(&self) -> Result<Term, VcError> {
        match self {
            SymValue::Int(t) => Ok(t.clone()),
            SymValue::Bool(f) => Ok(Term::Ite(
                Box::new(f.clone()),
                Box::new(Term::int(1)),
                Box::new(Term::int(0)),
            )),
        }
    }

    fn as_bool(&self) -> Result<Formula, VcError> {
        match self {
            SymValue::Bool(f) => Ok(f.clone()),
            SymValue::Int(t) => Ok(t.clone().eq(Term::int(1))),
        }
    }
}

/// A symbolic variable environment.
#[derive(Clone, Debug, Default)]
pub struct SymState {
    /// Variable bindings.
    pub vars: BTreeMap<String, SymValue>,
}

/// Errors from VC generation or discharge.
#[derive(Debug)]
pub enum VcError {
    /// Construct outside the symbolically executable subset.
    Unsupported(String),
    /// A verification condition failed to check.
    Failed {
        /// Name of the failing VC.
        vc: String,
        /// The kernel's error.
        error: ProofError,
    },
    /// A design-specific lemma failed to check.
    LemmaFailed {
        /// Lemma name.
        lemma: String,
        /// The kernel's error.
        error: ProofError,
    },
}

impl fmt::Display for VcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            VcError::Failed { vc, error } => write!(f, "VC `{vc}` failed: {error}"),
            VcError::LemmaFailed { lemma, error } => {
                write!(f, "lemma `{lemma}` failed: {error}")
            }
        }
    }
}

impl std::error::Error for VcError {}

/// A generated verification condition.
#[derive(Clone, Debug)]
pub struct Vc {
    /// Name (keys the proof-script table).
    pub name: String,
    /// Hypotheses.
    pub hyps: Vec<Formula>,
    /// Goal.
    pub goal: Formula,
}

/// Result of verifying a design: every generated VC, all proved.
#[derive(Clone, Debug)]
pub struct VcReport {
    /// All VCs, in generation order.
    pub vcs: Vec<Vc>,
    /// Names of VCs discharged by explicit proof scripts (the rest used the
    /// automatic core).
    pub scripted: Vec<String>,
}

impl VcReport {
    /// Number of VCs proved.
    pub fn proved(&self) -> usize {
        self.vcs.len()
    }
}

/// The specification and proof artefacts for one design — the paper's
/// `require`/`ensuring` annotations, invariants, timeout, measure, lemmas,
/// and proof scripts (the `#Scala-vrf` content of Table 1).
#[derive(Clone, Debug)]
pub struct DesignSpec {
    /// Preconditions over parameters and inputs (`require` in `Init`).
    pub requires: Vec<SExpr>,
    /// Run invariant over parameters, inputs, and current registers.
    pub invariant: Vec<SExpr>,
    /// Timeout condition over the *new* register state (`setTimeout`).
    pub timeout: SExpr,
    /// Postconditions over parameters, inputs, outputs, and new registers
    /// (`ensuring` in `Init`).
    pub post: Vec<SExpr>,
    /// Termination measure over parameters and current registers.
    pub measure: SExpr,
    /// Loop invariants, one list per `for` loop of `Trans` in execution
    /// order.
    pub loop_invariants: Vec<Vec<SExpr>>,
    /// Extra defined functions (ghost recursion, e.g. Booth partial sums).
    pub defs: Vec<DefFn>,
    /// Design-specific lemmas with their proofs, checked before the VCs.
    pub lemmas: Vec<(Lemma, Proof)>,
    /// Lemmas admitted without kernel proof (extending the trusted base;
    /// they must carry the same randomized-evaluation validation as the
    /// kernel's own axioms — see the design's tests).
    pub trusted: Vec<Lemma>,
    /// Proof scripts per VC name (default: the automatic core).
    pub proofs: BTreeMap<String, Proof>,
}

impl Default for DesignSpec {
    fn default() -> Self {
        DesignSpec {
            requires: Vec::new(),
            invariant: Vec::new(),
            timeout: SExpr::BoolConst(true),
            post: Vec::new(),
            measure: SExpr::Const(chicala_bigint::BigInt::zero()),
            loop_invariants: Vec::new(),
            defs: Vec::new(),
            lemmas: Vec::new(),
            trusted: Vec::new(),
            proofs: BTreeMap::new(),
        }
    }
}

impl DesignSpec {
    /// A rough line count of annotations, lemmas, and proof scripts — used
    /// for the `#Scala-vrf` column of Table 1.
    pub fn annotation_loc(&self) -> usize {
        let mut n = 0;
        n += self.requires.len() + self.invariant.len() + self.post.len() + 2; // timeout+measure
        for invs in &self.loop_invariants {
            n += invs.len();
        }
        for d in &self.defs {
            n += 1 + d.body.to_string().lines().count();
        }
        for (l, p) in &self.lemmas {
            n += 1 + l.hyps.len() + proof_loc(p);
        }
        for p in self.proofs.values() {
            n += proof_loc(p);
        }
        n
    }
}

fn proof_loc(p: &Proof) -> usize {
    match p {
        Proof::Auto => 1,
        Proof::SplitAnd(ps) => 1 + ps.iter().map(proof_loc).sum::<usize>(),
        Proof::Cases { if_true, if_false, .. } => 1 + proof_loc(if_true) + proof_loc(if_false),
        Proof::Calc(steps) => 1 + steps.len(),
        Proof::Use { rest, .. } => 1 + proof_loc(rest),
        Proof::Have { proof, rest, .. } => 1 + proof_loc(proof) + proof_loc(rest),
        Proof::Unfold { rest, .. } => 1 + proof_loc(rest),
        Proof::Induction { base_case, step_case, .. } => {
            1 + proof_loc(base_case) + proof_loc(step_case)
        }
    }
}

struct ExecCtx<'p> {
    funcs: BTreeMap<String, &'p SFunc>,
    assumptions: Vec<Formula>,
    vcs: Vec<Vc>,
    loop_invs: Vec<Vec<SExpr>>,
    loop_counter: usize,
    fresh_counter: usize,
}

impl ExecCtx<'_> {
    fn fresh(&mut self, base: &str) -> String {
        self.fresh_counter += 1;
        format!("{base}!{}", self.fresh_counter)
    }

    fn push_vc(&mut self, name: String, goal: Formula) {
        self.vcs.push(Vc { name, hyps: self.assumptions.clone(), goal });
    }
}

fn eval_sexpr(e: &SExpr, st: &SymState, ctx: &mut ExecCtx<'_>) -> Result<SymValue, VcError> {
    Ok(match e {
        SExpr::Const(c) => SymValue::Int(Term::Const(c.clone())),
        SExpr::BoolConst(b) => SymValue::Bool(if *b { Formula::True } else { Formula::False }),
        SExpr::Var(n) => st
            .vars
            .get(n)
            .cloned()
            .ok_or_else(|| VcError::Unsupported(format!("unbound variable `{n}`")))?,
        SExpr::Binop(op, a, b) => {
            let x = eval_sexpr(a, st, ctx)?.as_int()?;
            let y = eval_sexpr(b, st, ctx)?.as_int()?;
            SymValue::Int(match op {
                SBinop::Add => x.add(y),
                SBinop::Sub => x.sub(y),
                SBinop::Mul => x.mul(y),
                SBinop::Div => x.div(y),
                SBinop::Mod => x.imod(y),
                SBinop::BitAnd => Term::BitAnd(Box::new(x), Box::new(y)),
                SBinop::BitOr => Term::BitOr(Box::new(x), Box::new(y)),
                SBinop::BitXor => Term::BitXor(Box::new(x), Box::new(y)),
            })
        }
        SExpr::Pow2(a) => SymValue::Int(Term::pow2(eval_sexpr(a, st, ctx)?.as_int()?)),
        SExpr::Cmp(op, a, b) => {
            let x = eval_sexpr(a, st, ctx)?.as_int()?;
            let y = eval_sexpr(b, st, ctx)?.as_int()?;
            SymValue::Bool(match op {
                SCmp::Eq => x.eq(y),
                SCmp::Ne => x.eq(y).not(),
                SCmp::Lt => x.lt(y),
                SCmp::Le => x.le(y),
                SCmp::Gt => x.gt(y),
                SCmp::Ge => x.ge(y),
            })
        }
        SExpr::And(a, b) => SymValue::Bool(
            eval_sexpr(a, st, ctx)?.as_bool()?.and(eval_sexpr(b, st, ctx)?.as_bool()?),
        ),
        SExpr::Or(a, b) => SymValue::Bool(
            eval_sexpr(a, st, ctx)?.as_bool()?.or(eval_sexpr(b, st, ctx)?.as_bool()?),
        ),
        SExpr::Not(a) => SymValue::Bool(eval_sexpr(a, st, ctx)?.as_bool()?.not()),
        SExpr::Ite(c, t, f) => {
            let c = eval_sexpr(c, st, ctx)?.as_bool()?;
            let tv = eval_sexpr(t, st, ctx)?;
            let fv = eval_sexpr(f, st, ctx)?;
            match (&tv, &fv) {
                (SymValue::Bool(a), SymValue::Bool(b)) => SymValue::Bool(
                    c.clone().and(a.clone()).or(c.not().and(b.clone())),
                ),
                _ => SymValue::Int(Term::Ite(
                    Box::new(c),
                    Box::new(tv.as_int()?),
                    Box::new(fv.as_int()?),
                )),
            }
        }
        SExpr::Call(name, args) => {
            let f = *ctx
                .funcs
                .get(name)
                .ok_or_else(|| VcError::Unsupported(format!("unknown function `{name}`")))?;
            if !f.requires.is_empty() || !f.ensures.is_empty() {
                return Err(VcError::Unsupported(format!(
                    "symbolic call to contracted function `{name}` — model it as a kernel \
                     definition in the spec instead"
                )));
            }
            let mut sub = SymState::default();
            for (p, a) in f.params.iter().zip(args) {
                sub.vars.insert(p.clone(), eval_sexpr(a, st, ctx)?);
            }
            exec_stmts(&f.body, &mut sub, ctx)?;
            eval_sexpr(&f.result, &sub, ctx)?
        }
        SExpr::ListLit(_)
        | SExpr::ListGet(..)
        | SExpr::ListSet(..)
        | SExpr::ListLen(_)
        | SExpr::ListFill(..)
        | SExpr::ListAppend(..)
        | SExpr::Sum(_)
        | SExpr::ToZ(_) => {
            return Err(VcError::Unsupported(
                "list values are not supported symbolically; formulate the design's \
                 verified core over integer accumulators"
                    .into(),
            ))
        }
    })
}

fn assigned_names(stmts: &[SStmt], out: &mut Vec<String>) {
    for s in stmts {
        match s {
            SStmt::Let { name, .. } | SStmt::Assign { name, .. } => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            SStmt::If { then_body, else_body, .. } => {
                assigned_names(then_body, out);
                assigned_names(else_body, out);
            }
            SStmt::For { body, .. } => assigned_names(body, out),
        }
    }
}

fn exec_stmts(
    stmts: &[SStmt],
    st: &mut SymState,
    ctx: &mut ExecCtx<'_>,
) -> Result<(), VcError> {
    for s in stmts {
        match s {
            SStmt::Let { name, init } | SStmt::Assign { name, rhs: init } => {
                let v = eval_sexpr(init, st, ctx)?;
                st.vars.insert(name.clone(), v);
            }
            SStmt::If { cond, then_body, else_body } => {
                let c = eval_sexpr(cond, st, ctx)?.as_bool()?;
                let mut st_then = st.clone();
                let mut st_else = st.clone();
                exec_stmts(then_body, &mut st_then, ctx)?;
                exec_stmts(else_body, &mut st_else, ctx)?;
                // Merge: variables differing between the branches become
                // conditionals.
                let mut merged = BTreeMap::new();
                let names: Vec<String> = st_then
                    .vars
                    .keys()
                    .chain(st_else.vars.keys())
                    .cloned()
                    .collect();
                for name in names {
                    if merged.contains_key(&name) {
                        continue;
                    }
                    let v = match (st_then.vars.get(&name), st_else.vars.get(&name)) {
                        (Some(a), Some(b)) => merge_values(&c, a, b)?,
                        (Some(a), None) => a.clone(),
                        (None, Some(b)) => b.clone(),
                        (None, None) => unreachable!("key came from one of the maps"),
                    };
                    merged.insert(name, v);
                }
                st.vars = merged;
            }
            SStmt::For { var, start, end, invariants, body } => {
                exec_loop(var, start, end, invariants, body, st, ctx)?;
            }
        }
    }
    Ok(())
}

fn merge_values(c: &Formula, a: &SymValue, b: &SymValue) -> Result<SymValue, VcError> {
    match (a, b) {
        (SymValue::Bool(x), SymValue::Bool(y)) => {
            if x == y {
                return Ok(a.clone());
            }
            Ok(SymValue::Bool(
                c.clone().and(x.clone()).or(c.clone().not().and(y.clone())),
            ))
        }
        _ => {
            let (x, y) = (a.as_int()?, b.as_int()?);
            if x == y {
                return Ok(SymValue::Int(x));
            }
            Ok(SymValue::Int(Term::Ite(Box::new(c.clone()), Box::new(x), Box::new(y))))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_loop(
    var: &str,
    start: &SExpr,
    end: &SExpr,
    explicit_invs: &[SExpr],
    body: &[SStmt],
    st: &mut SymState,
    ctx: &mut ExecCtx<'_>,
) -> Result<(), VcError> {
    let k = ctx.loop_counter;
    ctx.loop_counter += 1;
    let invs: Vec<SExpr> = if !explicit_invs.is_empty() {
        explicit_invs.to_vec()
    } else {
        ctx.loop_invs.get(k).cloned().unwrap_or_default()
    };
    if invs.is_empty() {
        return Err(VcError::Unsupported(format!(
            "loop {k} has no invariants; supply them via DesignSpec::loop_invariants"
        )));
    }
    let start_t = eval_sexpr(start, st, ctx)?.as_int()?;
    let end_t = eval_sexpr(end, st, ctx)?.as_int()?;
    // Bounds VC: the loop range is well-formed.
    ctx.push_vc(format!("loop{k}:bounds"), start_t.clone().le(end_t.clone()));

    // Entry VC: invariant at var = start.
    let mut entry_st = st.clone();
    entry_st.vars.insert(var.to_string(), SymValue::Int(start_t.clone()));
    for (i, inv) in invs.iter().enumerate() {
        let g = eval_sexpr(inv, &entry_st, ctx)?.as_bool()?;
        ctx.push_vc(format!("loop{k}:entry:{i}"), g);
    }

    // Preservation: havoc the assigned variables, assume the invariant at
    // an arbitrary iteration, execute the body once, check it at var + 1.
    let mut assigned = Vec::new();
    assigned_names(body, &mut assigned);
    let mut iter_st = st.clone();
    for name in &assigned {
        let fresh = ctx.fresh(name);
        let sym = match iter_st.vars.get(name) {
            Some(SymValue::Bool(_)) => SymValue::Bool(Formula::BVar(fresh)),
            _ => SymValue::Int(Term::var(fresh)),
        };
        iter_st.vars.insert(name.clone(), sym);
    }
    let iter_var = ctx.fresh(var);
    iter_st
        .vars
        .insert(var.to_string(), SymValue::Int(Term::var(iter_var.clone())));
    let depth_before = ctx.assumptions.len();
    ctx.assumptions.push(start_t.clone().le(Term::var(iter_var.clone())));
    ctx.assumptions.push(Term::var(iter_var.clone()).lt(end_t.clone()));
    for inv in &invs {
        let f = eval_sexpr(inv, &iter_st, ctx)?.as_bool()?;
        ctx.assumptions.push(f);
    }
    let mut body_st = iter_st.clone();
    exec_stmts(body, &mut body_st, ctx)?;
    body_st.vars.insert(
        var.to_string(),
        SymValue::Int(Term::var(iter_var.clone()).add(Term::int(1))),
    );
    for (i, inv) in invs.iter().enumerate() {
        let g = eval_sexpr(inv, &body_st, ctx)?.as_bool()?;
        ctx.push_vc(format!("loop{k}:preserve:{i}"), g);
    }
    ctx.assumptions.truncate(depth_before);

    // Continue after the loop: havoc again, assume the invariant at
    // var = end.
    for name in &assigned {
        let fresh = ctx.fresh(name);
        let sym = match st.vars.get(name) {
            Some(SymValue::Bool(_)) => SymValue::Bool(Formula::BVar(fresh)),
            _ => SymValue::Int(Term::var(fresh)),
        };
        st.vars.insert(name.clone(), sym);
    }
    st.vars.insert(var.to_string(), SymValue::Int(end_t));
    for inv in &invs {
        let f = eval_sexpr(inv, st, ctx)?.as_bool()?;
        ctx.assumptions.push(f);
    }
    st.vars.remove(var);
    Ok(())
}

/// Builds the base symbolic state (parameters, inputs, current registers)
/// and the corresponding range hypotheses.
fn base_state(prog: &SeqProgram) -> (SymState, Vec<Formula>) {
    let mut st = SymState::default();
    let mut hyps = Vec::new();
    for p in &prog.params {
        st.vars.insert(p.clone(), SymValue::Int(Term::var(p.clone())));
    }
    for group in [&prog.inputs, &prog.regs] {
        for v in group {
            match &v.width {
                Some(w) => {
                    st.vars.insert(v.name.clone(), SymValue::Int(Term::var(v.name.clone())));
                    // 0 <= v < Pow2(width): registers and inputs always hold
                    // in-range raw-bits values.
                    let wt = sexpr_to_term_shallow(w);
                    hyps.push(Term::int(0).le(Term::var(v.name.clone())));
                    hyps.push(Term::var(v.name.clone()).lt(Term::pow2(wt)));
                }
                None => {
                    st.vars.insert(
                        v.name.clone(),
                        SymValue::Bool(Formula::BVar(v.name.clone())),
                    );
                }
            }
        }
    }
    (st, hyps)
}

/// Converts a parameter-only `SExpr` (widths) to a term. Widths never
/// contain lists or calls.
fn sexpr_to_term_shallow(e: &SExpr) -> Term {
    match e {
        SExpr::Const(c) => Term::Const(c.clone()),
        SExpr::Var(n) => Term::var(n.clone()),
        SExpr::Binop(op, a, b) => {
            let (x, y) = (sexpr_to_term_shallow(a), sexpr_to_term_shallow(b));
            match op {
                SBinop::Add => x.add(y),
                SBinop::Sub => x.sub(y),
                SBinop::Mul => x.mul(y),
                SBinop::Div => x.div(y),
                SBinop::Mod => x.imod(y),
                _ => Term::int(0),
            }
        }
        SExpr::Pow2(a) => Term::pow2(sexpr_to_term_shallow(a)),
        SExpr::Ite(c, t, f) => {
            // Width expressions only use integer comparisons in conditions.
            let cf = match &**c {
                SExpr::Cmp(op, a, b) => {
                    let (x, y) = (sexpr_to_term_shallow(a), sexpr_to_term_shallow(b));
                    match op {
                        SCmp::Eq => x.eq(y),
                        SCmp::Ne => x.eq(y).not(),
                        SCmp::Lt => x.lt(y),
                        SCmp::Le => x.le(y),
                        SCmp::Gt => x.gt(y),
                        SCmp::Ge => x.ge(y),
                    }
                }
                _ => Formula::True,
            };
            Term::Ite(
                Box::new(cf),
                Box::new(sexpr_to_term_shallow(t)),
                Box::new(sexpr_to_term_shallow(f)),
            )
        }
        _ => Term::int(0),
    }
}

/// Verifies a design: generates the §3.1 VCs and discharges each with the
/// automatic core or the spec's proof script.
///
/// `obligations` are the literal-fit side conditions produced by the
/// transformation; they are checked under the design's preconditions.
///
/// # Errors
///
/// Returns the first failing lemma or VC.
pub fn verify_design(
    env: &mut Env,
    prog: &SeqProgram,
    spec: &DesignSpec,
    obligations: &[SExpr],
) -> Result<VcReport, VcError> {
    prepare_env(env, spec)?;
    let vcs = generate_vcs(prog, spec, obligations)?;

    // Discharge every VC (set CHICALA_VC_DEBUG=1 for per-VC timing).
    let debug = std::env::var_os("CHICALA_VC_DEBUG").is_some();
    let mut scripted = Vec::new();
    for vc in &vcs {
        let proof = spec.proofs.get(&vc.name).cloned().unwrap_or(Proof::Auto);
        if spec.proofs.contains_key(&vc.name) {
            scripted.push(vc.name.clone());
        }
        let start = std::time::Instant::now();
        let result = discharge_vc(env, vc, &proof);
        if debug {
            eprintln!(
                "[vc] {} {} in {:.2?}",
                vc.name,
                if result.is_ok() { "proved" } else { "FAILED" },
                start.elapsed()
            );
        }
        result?;
    }
    Ok(VcReport { vcs, scripted })
}

/// Registers a spec's ghost definitions, proves its lemmas, and admits its
/// trusted lemmas — the environment-setup phase of [`verify_design`].
///
/// # Errors
///
/// Returns the first failing lemma.
pub fn prepare_env(env: &mut Env, spec: &DesignSpec) -> Result<(), VcError> {
    for d in &spec.defs {
        env.define(d.clone());
    }
    for (lemma, proof) in &spec.lemmas {
        env.prove_lemma(lemma.clone(), proof).map_err(|error| VcError::LemmaFailed {
            lemma: lemma.name.clone(),
            error,
        })?;
    }
    for lemma in &spec.trusted {
        env.assume_axiom(lemma.clone());
    }
    Ok(())
}

/// Discharges one VC with the given proof (default: [`Proof::Auto`]),
/// timing it as a `vc:{name}` span.
///
/// # Errors
///
/// Returns the kernel's error wrapped as [`VcError::Failed`].
pub fn discharge_vc(env: &Env, vc: &Vc, proof: &Proof) -> Result<(), VcError> {
    let _span = telemetry::span!("vc:{}", vc.name);
    // Content-addressed discharge cache (when installed): a hit means this
    // exact (environment, statement, script) triple was proved before.
    // Only successes are ever recorded, so failures always re-run.
    let cache = crate::cache::VcCacheEntry::open(env, vc, proof);
    if let Some(entry) = &cache {
        if entry.hit() {
            return Ok(());
        }
    }
    let result = env.prove(&vc.hyps, &vc.goal, proof);
    if result.is_ok() {
        if let Some(entry) = &cache {
            entry.record_proved();
        }
    }
    if let Err(error) = &result {
        // Capturable replacement for the old stderr-only failure path.
        telemetry::event(
            "vcgen.vc_failed",
            &[("vc", vc.name.clone()), ("error", error.message.clone())],
        );
    }
    result.map_err(|error| VcError::Failed { vc: vc.name.clone(), error })
}

/// Symbolically executes `prog` against `spec`, producing every §3.1
/// verification condition without discharging any — the generation phase
/// of [`verify_design`], separated so callers (profiling reports, future
/// incremental checkers) can budget or parallelise discharge themselves.
///
/// # Errors
///
/// Returns [`VcError::Unsupported`] on constructs outside the executable
/// subset.
pub fn generate_vcs(
    prog: &SeqProgram,
    spec: &DesignSpec,
    obligations: &[SExpr],
) -> Result<Vec<Vc>, VcError> {
    let _span = telemetry::span!("vcgen");
    let (base_st, mut base_hyps) = base_state(prog);
    let mut ctx = ExecCtx {
        funcs: prog.funcs.iter().map(|f| (f.name.clone(), f)).collect(),
        assumptions: Vec::new(),
        vcs: Vec::new(),
        loop_invs: spec.loop_invariants.clone(),
        loop_counter: 0,
        fresh_counter: 0,
    };

    // Preconditions become hypotheses.
    for r in &spec.requires {
        let f = eval_sexpr(r, &base_st, &mut ctx)?.as_bool()?;
        base_hyps.push(f);
    }
    ctx.assumptions = base_hyps.clone();

    // Literal-fit obligations.
    for (i, ob) in obligations.iter().enumerate() {
        let g = eval_sexpr(ob, &base_st, &mut ctx)?.as_bool()?;
        ctx.push_vc(format!("obligation:{i}"), g);
    }

    // 1. init: the initial register state establishes the invariant.
    {
        let mut init_st = base_st.clone();
        for r in &prog.regs {
            if let Some(init) = &r.init {
                let v = eval_sexpr(init, &base_st, &mut ctx)?;
                init_st.vars.insert(r.name.clone(), v);
            }
            // Uninitialised registers keep their symbolic value (arbitrary,
            // as in the paper's `rdInit`).
        }
        for (i, inv) in spec.invariant.iter().enumerate() {
            let g = eval_sexpr(inv, &init_st, &mut ctx)?.as_bool()?;
            ctx.push_vc(format!("init:{i}"), g);
        }
    }

    // Assume the invariant on the current registers for the remaining VCs.
    for inv in &spec.invariant {
        let f = eval_sexpr(inv, &base_st, &mut ctx)?.as_bool()?;
        ctx.assumptions.push(f);
    }

    // Symbolically execute Trans once.
    let mut st = base_st.clone();
    exec_stmts(&prog.trans, &mut st, &mut ctx)?;

    // State views: outputs plus the *new* register values under the
    // registers' own names.
    let mut post_st = st.clone();
    for r in &prog.regs {
        let v = st
            .vars
            .get(&next_name(&r.name))
            .cloned()
            .ok_or_else(|| VcError::Unsupported(format!("missing next value for `{}`", r.name)))?;
        post_st.vars.insert(r.name.clone(), v);
    }

    let timeout_new = eval_sexpr(&spec.timeout, &post_st, &mut ctx)?.as_bool()?;

    // 2. preserve: if the run continues, the invariant holds on the new
    // state; 4. measure: non-negative and strictly decreasing.
    {
        ctx.assumptions.push(timeout_new.clone().not());
        for (i, inv) in spec.invariant.iter().enumerate() {
            let g = eval_sexpr(inv, &post_st, &mut ctx)?.as_bool()?;
            ctx.push_vc(format!("preserve:{i}"), g);
        }
        let m_cur = eval_sexpr(&spec.measure, &base_st, &mut ctx)?.as_int()?;
        let m_new = eval_sexpr(&spec.measure, &post_st, &mut ctx)?.as_int()?;
        ctx.push_vc("measure:nonneg".into(), Term::int(0).le(m_cur.clone()));
        ctx.push_vc("measure:dec".into(), m_new.lt(m_cur));
        ctx.assumptions.pop();
    }

    // Register range bounds on the new state (unconditional).
    for r in &prog.regs {
        if let Some(w) = &r.width {
            let v = post_st.vars[&r.name].as_int()?;
            let wt = sexpr_to_term_shallow(w);
            ctx.push_vc(
                format!("bounds:{}", r.name),
                Formula::and_all([Term::int(0).le(v.clone()), v.lt(Term::pow2(wt))]),
            );
        }
    }

    // 3. post: when the timeout fires, the postcondition holds.
    {
        ctx.assumptions.push(timeout_new);
        for (i, p) in spec.post.iter().enumerate() {
            let g = eval_sexpr(p, &post_st, &mut ctx)?.as_bool()?;
            ctx.push_vc(format!("post:{i}"), g);
        }
        ctx.assumptions.pop();
    }

    telemetry::counter("vcgen.vcs_generated", ctx.vcs.len() as u64);
    if telemetry::enabled() {
        for vc in &ctx.vcs {
            // Through the interned store: O(1) per already-seen formula,
            // and interning here pre-warms the arena for discharge.
            let size = crate::store::formula_node_count(&vc.goal)
                + vc.hyps.iter().map(crate::store::formula_node_count).sum::<usize>();
            telemetry::record("vcgen.formula_nodes", size as u64);
        }
    }
    Ok(ctx.vcs)
}
