//! Exercises the proof kernel on representative goals: linear facts,
//! div/mod range reasoning, conditionals, lemma instantiation, calc chains,
//! and the paper's `Pow2Mul` induction.

use chicala_verify::{CalcStep, Env, Formula, Just, Lemma, Proof, Term};

fn t(v: i64) -> Term {
    Term::int(v)
}

fn v(name: &str) -> Term {
    Term::var(name)
}

fn auto(env: &Env, hyps: &[Formula], goal: Formula) -> Result<(), chicala_verify::ProofError> {
    env.prove(hyps, &goal, &Proof::Auto)
}

#[test]
fn linear_goals() {
    let env = Env::new();
    // x >= 3 && y >= x ==> y + 1 >= 4
    auto(
        &env,
        &[v("x").ge(t(3)), v("y").ge(v("x"))],
        v("y").add(t(1)).ge(t(4)),
    )
    .expect("linear chain");
    // ring identity
    auto(
        &env,
        &[],
        v("x").add(t(1)).mul(v("x").sub(t(1))).eq(v("x").mul(v("x")).sub(t(1))),
    )
    .expect("ring identity");
    // unprovable goal is rejected
    assert!(auto(&env, &[v("x").ge(t(0))], v("x").ge(t(1))).is_err());
}

#[test]
fn div_mod_range_facts() {
    let env = Env::new();
    // 0 <= a % m < m when m >= 1 (automatic Div-atom saturation).
    auto(
        &env,
        &[v("m").ge(t(1))],
        Formula::and_all([
            t(0).le(v("a").imod(v("m"))),
            v("a").imod(v("m")).lt(v("m")),
        ]),
    )
    .expect("mod range");
    // a = m*(a/m) + a%m is definitional after Mod elimination.
    auto(
        &env,
        &[],
        v("a").eq(v("m").mul(v("a").div(v("m"))).add(v("a").imod(v("m")))),
    )
    .expect("div-mod identity");
    // x % 8 < 16
    auto(&env, &[], v("x").imod(t(8)).lt(t(16))).expect("mod constant bound");
}

#[test]
fn pow2_automatic_facts() {
    let env = Env::new();
    // Pow2(n) >= 1 unconditionally (clamped semantics).
    auto(&env, &[], Term::pow2(v("n")).ge(t(1))).expect("pow2 positivity");
    // Pow2(n) >= n + 1.
    auto(&env, &[], Term::pow2(v("n")).ge(v("n").add(t(1)))).expect("pow2 vs linear");
    // Monotonicity via pairwise saturation: m <= n ==> Pow2(m) <= Pow2(n).
    auto(
        &env,
        &[v("m").le(v("n"))],
        Term::pow2(v("m")).le(Term::pow2(v("n"))),
    )
    .expect("pow2 monotone");
    // cnt < len ==> cnt + 1 < Pow2(len)  (the rotate counter never wraps).
    auto(
        &env,
        &[v("cnt").lt(v("len"))],
        v("cnt").add(t(1)).lt(Term::pow2(v("len"))),
    )
    .expect("counter no-wrap");
}

#[test]
fn conditionals_split() {
    let env = Env::new();
    // |x| >= 0 via Ite.
    let abs = Term::Ite(Box::new(v("x").ge(t(0))), Box::new(v("x")), Box::new(v("x").neg()));
    auto(&env, &[], abs.ge(t(0))).expect("abs nonneg");
    // Nested conditionals.
    let clamped = Term::Ite(
        Box::new(v("x").lt(t(0))),
        Box::new(t(0)),
        Box::new(Term::Ite(Box::new(v("x").gt(t(10))), Box::new(t(10)), Box::new(v("x")))),
    );
    auto(
        &env,
        &[],
        Formula::and_all([clamped.clone().ge(t(0)), clamped.le(t(10))]),
    )
    .expect("clamp in range");
}

#[test]
fn axiom_instantiation() {
    let env = Env::new();
    // (a*m)/m == a for m >= 1, via div_unique with q := a.
    env.prove(
        &[v("m").ge(t(1))],
        &v("a").mul(v("m")).div(v("m")).eq(v("a")),
        &Proof::Use {
            lemma: "div_unique".into(),
            args: vec![v("a").mul(v("m")), v("m"), v("a")],
            rest: Box::new(Proof::Auto),
        },
    )
    .expect("mul-div cancel");
}

#[test]
fn pow2_mul_lemma_by_induction() {
    // The paper's Pow2Mul: Pow2(x) * Pow2(y) == Pow2(x + y) for x, y >= 0,
    // by induction on y (the step uses pow2_step on both sides).
    let mut env = Env::new();
    let lemma = Lemma {
        name: "pow2_mul".into(),
        vars: vec!["x".into(), "y".into()],
        hyps: vec![v("x").ge(t(0)), v("y").ge(t(0))],
        concl: Term::pow2(v("x"))
            .mul(Term::pow2(v("y")))
            .eq(Term::pow2(v("x").add(v("y")))),
    };
    let proof = Proof::Induction {
        var: "y".into(),
        base: 0,
        base_case: Box::new(Proof::Auto),
        step_case: Box::new(Proof::Use {
            lemma: "pow2_step".into(),
            args: vec![v("y").add(t(1))],
            rest: Box::new(Proof::Use {
                lemma: "pow2_step".into(),
                args: vec![v("x").add(v("y")).add(t(1))],
                rest: Box::new(Proof::Auto),
            }),
        }),
    };
    env.prove_lemma(lemma, &proof).expect("pow2_mul by induction");
    // The proven lemma is now usable.
    env.prove(
        &[v("w").ge(t(1)), v("c").ge(t(0)), v("c").lt(v("w"))],
        &Term::pow2(v("w").sub(v("c")))
            .mul(Term::pow2(v("c")))
            .eq(Term::pow2(v("w"))),
        &Proof::Use {
            lemma: "pow2_mul".into(),
            args: vec![v("w").sub(v("c")), v("c")],
            rest: Box::new(Proof::Auto),
        },
    )
    .expect("use pow2_mul");
}

#[test]
fn calc_chain_listing4_style() {
    // A small Listing-4-style chain:
    //   (2*x + 1) * (2*x - 1)  ==  4*x*x - 1  ==  4*(x*x) - 1.
    let env = Env::new();
    let lhs = t(2).mul(v("x")).add(t(1)).mul(t(2).mul(v("x")).sub(t(1)));
    let mid = t(4).mul(v("x")).mul(v("x")).sub(t(1));
    let rhs = t(4).mul(v("x").mul(v("x"))).sub(t(1));
    env.prove(
        &[],
        &lhs.clone().eq(rhs),
        &Proof::Calc(vec![CalcStep { to: mid, just: Just::Auto }]),
    )
    .expect("calc chain");
}

#[test]
fn cases_and_splitand() {
    let env = Env::new();
    // Goal: x*x >= 0, by cases on x >= 0 (each side via mul_le_mono).
    env.prove(
        &[],
        &v("x").mul(v("x")).ge(t(0)),
        &Proof::Cases {
            on: v("x").ge(t(0)),
            if_true: Box::new(Proof::Use {
                lemma: "mul_le_mono".into(),
                args: vec![t(0), v("x"), v("x")],
                rest: Box::new(Proof::Auto),
            }),
            if_false: Box::new(Proof::Use {
                lemma: "mul_le_mono".into(),
                args: vec![v("x"), t(0), v("x").neg()],
                rest: Box::new(Proof::Auto),
            }),
        },
    )
    .expect("square nonneg");
}

#[test]
fn unsound_claims_rejected() {
    let env = Env::new();
    // Pow2 is not linear.
    assert!(auto(&env, &[], Term::pow2(v("n")).eq(v("n").mul(t(2)))).is_err());
    // Wrong induction: Pow2(n) == 2*n fails at the base case.
    let mut env2 = Env::new();
    let bad = Lemma {
        name: "bad".into(),
        vars: vec!["n".into()],
        hyps: vec![v("n").ge(t(0))],
        concl: Term::pow2(v("n")).eq(t(2).mul(v("n"))),
    };
    let proof = Proof::Induction {
        var: "n".into(),
        base: 0,
        base_case: Box::new(Proof::Auto),
        step_case: Box::new(Proof::Auto),
    };
    assert!(env2.prove_lemma(bad, &proof).is_err());
    // Induction with a disallowed hypothesis shape is rejected.
    let env3 = Env::new();
    let r = env3.prove(
        &[v("n").lt(t(10))],
        &v("n").ge(t(0)).not(),
        &Proof::Induction {
            var: "n".into(),
            base: 0,
            base_case: Box::new(Proof::Auto),
            step_case: Box::new(Proof::Auto),
        },
    );
    assert!(r.is_err());
}

#[test]
fn mod_mod_absorption() {
    // (a % Pow2(x)) % Pow2(y) == a % Pow2(y) when 0 <= y <= x —
    // the paper's flagship bit-vector lemma, provable here through
    // div_unique + pow2 facts. We check the concrete-constant instance
    // automatically and the symbolic one with a script in bvlib; here the
    // constant case suffices to validate the machinery.
    let env = Env::new();
    auto(
        &env,
        &[],
        v("a").imod(t(16)).imod(t(4)).eq(
            v("a").imod(t(16)).imod(t(4)), // trivially
        ),
    )
    .expect("reflexivity");
    // Constant instance: (a % 16) % 4 == a % 4 requires nonlinear
    // reasoning; check that Auto alone does NOT silently claim it...
    let hard = v("a").imod(t(16)).imod(t(4)).eq(v("a").imod(t(4)));
    // ...unless it can: either outcome must at least terminate quickly.
    let _ = auto(&env, &[], hard);
}
