//! Exercises the `for`-loop invariant rule of the VC generator with a
//! hand-written sequential program (Gauss sum), including the negative
//! cases: missing and wrong invariants are rejected.

use chicala_bigint::BigInt;
use chicala_seq::{next_name, SCmp, SExpr, SStmt, SeqProgram, SeqVarDecl};
use chicala_verify::{verify_design, DesignSpec, Env, Proof};
use std::collections::BTreeMap;

/// A one-shot program: in a single `Trans`, sum i for i in 0..n into `s`,
/// then latch it into register `r`.
fn gauss_program(invariants: Vec<SExpr>) -> SeqProgram {
    let v = SExpr::var;
    let i = |x: i64| SExpr::int(x);
    SeqProgram {
        name: "Gauss".into(),
        params: vec!["n".into()],
        inputs: vec![],
        outputs: vec![],
        regs: vec![SeqVarDecl {
            name: "r".into(),
            // Generous width so the range VC is linear (Pow2(x) >= x+1).
            width: Some(v("n").mul(v("n")).add(i(4))),
            init: None,
        }],
        trans: vec![
            SStmt::Let { name: next_name("r"), init: v("r") },
            SStmt::Let { name: "s".into(), init: i(0) },
            SStmt::For {
                var: "i".into(),
                start: i(0),
                end: v("n"),
                invariants,
                body: vec![SStmt::Assign { name: "s".into(), rhs: v("s").add(v("i")) }],
            },
            SStmt::Assign { name: next_name("r"), rhs: v("s") },
        ],
        timeout: None,
        funcs: vec![],
    }
}

fn spec() -> DesignSpec {
    let v = SExpr::var;
    let i = |x: i64| SExpr::int(x);
    DesignSpec {
        requires: vec![v("n").cmp(SCmp::Ge, i(1))],
        invariant: vec![],
        timeout: SExpr::BoolConst(true),
        // 2*r == n*(n-1) — Gauss.
        post: vec![i(2).mul(v("r")).eq(v("n").mul(v("n").sub(i(1))))],
        measure: i(0),
        loop_invariants: vec![],
        defs: vec![],
        lemmas: vec![],
        trusted: vec![],
        proofs: BTreeMap::new(),
    }
}

#[test]
fn gauss_sum_verifies_with_the_right_invariant() {
    let v = SExpr::var;
    let i = |x: i64| SExpr::int(x);
    // 2*s == i*(i-1)
    let prog = gauss_program(vec![i(2)
        .mul(v("s"))
        .eq(v("i").mul(v("i").sub(i(1))))]);
    let mut env = Env::new();
    let mut sp = spec();
    // The measure VC is irrelevant here (timeout immediately); the bounds
    // VC for r needs the loop result small enough, which we skip by giving
    // r a generous width.
    sp.proofs.insert("bounds:r".into(), Proof::Auto);
    let report = verify_design(&mut env, &prog, &sp, &[]).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.proved() >= 4, "{}", report.proved());
}

#[test]
fn missing_invariant_is_rejected() {
    let prog = gauss_program(vec![]);
    let mut env = Env::new();
    let err = verify_design(&mut env, &prog, &spec(), &[]).expect_err("must fail");
    assert!(err.to_string().contains("no invariants"), "{err}");
}

#[test]
fn wrong_invariant_is_rejected() {
    let v = SExpr::var;
    // Claim s == i (false from the second iteration on).
    let prog = gauss_program(vec![v("s").eq(v("i"))]);
    let mut env = Env::new();
    let err = verify_design(&mut env, &prog, &spec(), &[]).expect_err("must fail");
    let msg = err.to_string();
    assert!(msg.contains("loop0"), "{msg}");
}

#[test]
fn runtime_checks_agree_with_the_verifier() {
    // The interpreter checks the same invariant dynamically.
    use chicala_seq::SeqRunner;
    let v = SExpr::var;
    let i = |x: i64| SExpr::int(x);
    let good = gauss_program(vec![i(2).mul(v("s")).eq(v("i").mul(v("i").sub(i(1))))]);
    let runner = SeqRunner::new(&good, [("n".to_string(), BigInt::from(10))].into_iter().collect());
    let out = runner
        .init_and_run(&BTreeMap::new(), &BTreeMap::new(), 5)
        .expect("runs with the invariant holding");
    assert_eq!(out.regs["r"], chicala_seq::SValue::Int(BigInt::from(45)));

    let bad = gauss_program(vec![v("s").eq(v("i"))]);
    let runner = SeqRunner::new(&bad, [("n".to_string(), BigInt::from(10))].into_iter().collect());
    assert!(runner.init_and_run(&BTreeMap::new(), &BTreeMap::new(), 5).is_err());
}
