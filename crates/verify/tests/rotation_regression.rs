//! Regression tests distilled from the rotate-step proof development:
//! the mod/div fact chains the automatic core must close.

use chicala_verify::{Env, Term};

fn v(n: &str) -> Term { Term::var(n) }
fn t(x: i64) -> Term { Term::int(x) }

#[test]
fn modsmall_hyp_discharge() {
    let env = Env::new();
    let lo = v("io_in").imod(Term::pow2(v("cnt")));
    let pp = Term::pow2(v("len").sub(v("cnt")).sub(t(1)));
    let hi2 = v("io_in").div(Term::pow2(v("cnt"))).div(t(2));
    let goal = t(0).le(lo.mul(pp).add(hi2));
    let hyps = vec![
        t(0).le(v("io_in")),
        v("io_in").lt(Term::pow2(v("len"))),
        t(0).le(v("cnt")),
        v("cnt").lt(v("len")),
        t(1).le(v("len")),
    ];
    env.prove(&hyps, &goal, &chicala_verify::Proof::Auto).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn quotient_pinning_via_gauss() {
    // 0 <= a < m pins a/m to zero without any lemma.
    let env = Env::new();
    let goal = v("a").div(v("m")).eq(t(0));
    let hyps = vec![t(0).le(v("a")), v("a").lt(v("m"))];
    env.prove(&hyps, &goal, &chicala_verify::Proof::Auto).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn counter_increment_mod_free() {
    // (cnt+1) % 2^len == cnt + 1 under cnt < len (the no-wrap pattern).
    let env = Env::new();
    let goal = v("cnt").add(t(1)).imod(Term::pow2(v("len"))).eq(v("cnt").add(t(1)));
    let hyps = vec![t(0).le(v("cnt")), v("cnt").lt(v("len"))];
    env.prove(&hyps, &goal, &chicala_verify::Proof::Auto).unwrap_or_else(|e| panic!("{e}"));
}
