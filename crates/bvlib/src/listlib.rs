//! The list library (§3.2): operations over signal-element lists (the
//! paper reports 7 operations and 3 lemmas, used by the XiangShan
//! multiplier, which splits `UInt` signals into `Seq`s).
//!
//! Two layers are provided:
//!
//! * concrete executable operations over `Vec<BigInt>` (used by the
//!   sequential interpreter's list values and by tests);
//! * kernel-level *ghost recursions* ([`defs`]) expressing the same
//!   quantities over integers — `SumN(f-encoded list, n)` style weighted
//!   sums — together with their lemmas, so that list-shaped designs can be
//!   verified through integer accumulators (the verifier's symbolic
//!   executor is integer-only, see `chicala_verify::vcgen`).

use chicala_bigint::BigInt;
use chicala_verify::{DefFn, Env, Formula, Lemma, Proof, ProofError, Term};

/// Operation 1: `Sum(l)` — Σ elements.
pub fn sum(l: &[BigInt]) -> BigInt {
    let mut acc = BigInt::zero();
    for x in l {
        acc += x;
    }
    acc
}

/// Operation 2: `toZ(l)` — the weighted sum Σ lᵢ·2ⁱ (a bit-list's value).
pub fn to_z(l: &[BigInt]) -> BigInt {
    let mut acc = BigInt::zero();
    for (i, x) in l.iter().enumerate() {
        acc += &(x * BigInt::pow2(i as u64));
    }
    acc
}

/// Operation 3: `l.updated(i, v)`.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn updated(l: &[BigInt], i: usize, v: BigInt) -> Vec<BigInt> {
    assert!(i < l.len(), "updated index {i} out of range for length {}", l.len());
    let mut out = l.to_vec();
    out[i] = v;
    out
}

/// Operation 4: `List.fill(n)(v)`.
pub fn fill(n: usize, v: BigInt) -> Vec<BigInt> {
    vec![v; n]
}

/// Operation 5: `l ++ r`.
pub fn concat(l: &[BigInt], r: &[BigInt]) -> Vec<BigInt> {
    let mut out = l.to_vec();
    out.extend(r.iter().cloned());
    out
}

/// Operation 6: `l.take(n)`.
pub fn take(l: &[BigInt], n: usize) -> Vec<BigInt> {
    l[..n.min(l.len())].to_vec()
}

/// Operation 7: `l.drop(n)`.
pub fn drop(l: &[BigInt], n: usize) -> Vec<BigInt> {
    l[n.min(l.len())..].to_vec()
}

/// Two-dimensional helper: column-wise `Sum` of a list of rows, weighted by
/// bit position — the Wallace-tree bookkeeping quantity
/// `Σ_j 2^j · Sum(col_j)`.
pub fn grid_value(cols: &[Vec<BigInt>]) -> BigInt {
    let mut acc = BigInt::zero();
    for (j, col) in cols.iter().enumerate() {
        acc += &(sum(col) * BigInt::pow2(j as u64));
    }
    acc
}

fn v(name: &str) -> Term {
    Term::var(name)
}

fn t(x: i64) -> Term {
    Term::int(x)
}

/// Ghost recursive definitions mirroring the list operations over integers.
///
/// `bitsum(a, n)` is `toZ` of the low `n` bits of `a` — recursively
/// `bitsum(a, 0) = 0`, `bitsum(a, n) = 2*bitsum(a/2, n-1) + a%2`... here
/// encoded from the top: `bitsum(a, n) = a % Pow2(n)`, the quantity the
/// `toZ`/`Sum` lemmas relate to extraction.
pub fn defs() -> Vec<DefFn> {
    vec![
        // bitsum(a, n) = if n <= 0 then 0 else 2*bitsum(a/2, n-1) + a%2
        DefFn {
            name: "bitsum".into(),
            params: vec!["a".into(), "n".into()],
            body: Term::Ite(
                Box::new(v("n").le(t(0))),
                Box::new(t(0)),
                Box::new(
                    t(2).mul(Term::App(
                        "bitsum".into(),
                        vec![v("a").div(t(2)), v("n").sub(t(1))],
                    ))
                    .add(v("a").imod(t(2))),
                ),
            ),
        },
    ]
}

/// The list lemmas, kernel-checked. The paper reports 3; stated here over
/// the ghost encodings:
///
/// 1. `toZ_update`: updating one element changes `toZ` by the weighted
///    difference (checked concretely in tests; symbolically subsumed by
///    plain ring arithmetic once lists are integer-encoded);
/// 2. `bitsum_low`: `bitsum(a, n) == a % Pow2(n)` for `a >= 0, n >= 0`
///    (by induction; links the bit-list view to the integer view);
/// 3. `sum_weighted_bound`: a bit-list's value is bounded,
///    `0 <= a % Pow2(n) < Pow2(n)` (special case of the mod facts, stated
///    for symmetry with the paper's inventory).
pub fn lemmas() -> Vec<(Lemma, Proof)> {
    vec![
        (
            Lemma {
                name: "bitsum_low".into(),
                vars: vec!["a".into(), "n".into()],
                hyps: vec![v("a").ge(t(0)), v("n").ge(t(0))],
                concl: Term::App("bitsum".into(), vec![v("a"), v("n")])
                    .eq(v("a").imod(Term::pow2(v("n")))),
            },
            Proof::Induction {
                var: "n".into(),
                base: 0,
                base_case: Box::new(Proof::Unfold {
                    func: "bitsum".into(),
                    rest: Box::new(Proof::Auto),
                }),
                step_case: Box::new(Proof::Unfold {
                    func: "bitsum".into(),
                    rest: Box::new(Proof::Use {
                        lemma: "pow2_step".into(),
                        args: vec![v("n").add(t(1))],
                        rest: Box::new(Proof::Use {
                            lemma: "div_div".into(),
                            args: vec![v("a"), t(2), Term::pow2(v("n"))],
                            rest: Box::new(Proof::Use {
                                // Generalised IH at the shifted argument a/2.
                                lemma: "IH".into(),
                                args: vec![v("a").div(t(2))],
                                rest: Box::new(Proof::Auto),
                            }),
                        }),
                    }),
                }),
            },
        ),
        (
            Lemma {
                name: "sum_weighted_bound".into(),
                vars: vec!["a".into(), "n".into()],
                hyps: vec![v("a").ge(t(0)), v("n").ge(t(0))],
                concl: Formula::and_all([
                    t(0).le(v("a").imod(Term::pow2(v("n")))),
                    v("a").imod(Term::pow2(v("n"))).lt(Term::pow2(v("n"))),
                ]),
            },
            Proof::Auto,
        ),
    ]
}

/// Installs the list library (definitions + lemmas) into an environment.
///
/// # Errors
///
/// Returns the first failing lemma.
pub fn install(env: &mut Env) -> Result<(), (String, ProofError)> {
    for d in defs() {
        env.define(d);
    }
    for (lemma, proof) in lemmas() {
        let name = lemma.name.clone();
        env.prove_lemma(lemma, &proof).map_err(|e| (name, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(xs: &[i64]) -> Vec<BigInt> {
        xs.iter().map(|&x| BigInt::from(x)).collect()
    }

    #[test]
    fn concrete_ops() {
        let l = ints(&[1, 0, 1, 1]);
        assert_eq!(sum(&l), BigInt::from(3));
        assert_eq!(to_z(&l), BigInt::from(0b1101));
        assert_eq!(to_z(&updated(&l, 1, BigInt::one())), BigInt::from(0b1111));
        assert_eq!(fill(3, BigInt::from(7)), ints(&[7, 7, 7]));
        assert_eq!(concat(&ints(&[1, 2]), &ints(&[3])), ints(&[1, 2, 3]));
        assert_eq!(take(&l, 2), ints(&[1, 0]));
        assert_eq!(drop(&l, 2), ints(&[1, 1]));
        assert_eq!(take(&l, 99), l);
        assert_eq!(drop(&l, 99), Vec::<BigInt>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn updated_checks_range() {
        let _ = updated(&ints(&[1]), 3, BigInt::zero());
    }

    #[test]
    fn grid_value_matches_paper_quantity() {
        // Columns [1,1], [0,1], [1] → (1+1)*1 + (0+1)*2 + 1*4 = 8.
        let cols = vec![ints(&[1, 1]), ints(&[0, 1]), ints(&[1])];
        assert_eq!(grid_value(&cols), BigInt::from(8));
    }

    #[test]
    fn library_installs_and_proves() {
        let mut env = Env::new();
        crate::bitvec::install(&mut env).expect("bitvec installs");
        install(&mut env).unwrap_or_else(|(n, e)| panic!("list lemma `{n}` failed: {e}"));
        assert!(env.lemma("bitsum_low").is_some());
        assert!(env.def("bitsum").is_some());
    }

    /// The bit list encoding `pattern`'s low `len` bits (LSB first), the
    /// deterministic replacement for random bit vectors: sweeping `pattern`
    /// over `0..2^len` makes the checks below exhaustive per length.
    fn bit_list(pattern: u64, len: usize) -> Vec<BigInt> {
        (0..len).map(|i| BigInt::from((pattern >> i) & 1)).collect()
    }

    #[test]
    fn toz_update_lemma_exhaustive() {
        // Lemma 1 (toZ_update), checked concretely and exhaustively for all
        // bit lists up to length 8, all indices, both bit values:
        // toZ(l.updated(i,v)) == toZ(l) + (v - l(i)) * 2^i.
        for len in 1..=8usize {
            for pattern in 0..(1u64 << len) {
                let l = bit_list(pattern, len);
                for i in 0..len {
                    for b in 0..2i64 {
                        let upd = updated(&l, i, BigInt::from(b));
                        let expected =
                            to_z(&l) + (BigInt::from(b) - &l[i]) * BigInt::pow2(i as u64);
                        assert_eq!(to_z(&upd), expected, "len={len} pat={pattern:b} i={i} b={b}");
                    }
                }
            }
        }
    }

    #[test]
    fn toz_concat_splits_exhaustive() {
        // toZ(l ++ r) == toZ(l) + 2^len(l) * toZ(r), exhaustively over all
        // bit-list pairs with both sides up to length 5.
        for llen in 0..=5usize {
            for rlen in 0..=5usize {
                for lpat in 0..(1u64 << llen) {
                    for rpat in 0..(1u64 << rlen) {
                        let (l, r) = (bit_list(lpat, llen), bit_list(rpat, rlen));
                        let whole = to_z(&concat(&l, &r));
                        assert_eq!(
                            whole,
                            to_z(&l) + BigInt::pow2(l.len() as u64) * to_z(&r),
                            "l={lpat:b}/{llen} r={rpat:b}/{rlen}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sum_concat_adds() {
        // Deterministic value grid including negatives, empty lists, and
        // mixed lengths.
        let pool: Vec<Vec<i64>> = vec![
            vec![],
            vec![0],
            vec![-50],
            vec![49, -1],
            vec![3, -7, 11],
            vec![-50, 49, -50, 49],
            vec![1, 2, 3, 4, 5, -15],
        ];
        for xs in &pool {
            for ys in &pool {
                let (l, r) = (ints(xs), ints(ys));
                assert_eq!(
                    sum(&concat(&l, &r)),
                    sum(&l) + sum(&r),
                    "xs={xs:?} ys={ys:?}"
                );
            }
        }
    }
}
