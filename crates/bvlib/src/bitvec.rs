//! The bit-vector-as-integer library (§3.2): operation constructors over
//! the verifier's terms, and the lemma set with machine-checked proofs.
//!
//! The paper reports a library of 6 operations and 10 lemmas; the same
//! inventory is built here, each lemma *proved* in the kernel (mostly from
//! `div_unique`, `pow2_step`, and induction) rather than trusted.

use chicala_verify::{Env, Formula, Just, Lemma, Proof, ProofError, Term};

/// Operation 1: `Pow2(e)` — `2^e` (the kernel primitive).
pub fn pow2(e: Term) -> Term {
    Term::pow2(e)
}

/// Operation 2: bit extraction `x(hi, lo)` as `(x / 2^lo) mod 2^(hi-lo+1)`.
pub fn extract(x: Term, hi: Term, lo: Term) -> Term {
    x.div(Term::pow2(lo.clone())).imod(Term::pow2(hi.sub(lo).add(Term::int(1))))
}

/// Operation 3: single bit `x(i)` as `(x / 2^i) mod 2`.
pub fn bit(x: Term, i: Term) -> Term {
    x.div(Term::pow2(i)).imod(Term::int(2))
}

/// Operation 4: concatenation `Cat(hi, lo)` with `lo` of width `wlo`:
/// `hi * 2^wlo + lo`.
pub fn cat(hi: Term, lo: Term, wlo: Term) -> Term {
    hi.mul(Term::pow2(wlo)).add(lo)
}

/// Operation 5: width clamp `x mod 2^w` (connect/overflow semantics).
pub fn clamp(x: Term, w: Term) -> Term {
    x.imod(Term::pow2(w))
}

/// Operation 6: two's-complement reinterpretation of raw bits `x` of width
/// `w`: `if x < 2^(w-1) then x else x - 2^w`.
pub fn to_signed(x: Term, w: Term) -> Term {
    Term::Ite(
        Box::new(x.clone().lt(Term::pow2(w.clone().sub(Term::int(1))))),
        Box::new(x.clone()),
        Box::new(x.sub(Term::pow2(w))),
    )
}

fn v(name: &str) -> Term {
    Term::var(name)
}

fn t(x: i64) -> Term {
    Term::int(x)
}

fn lemma(name: &str, vars: &[&str], hyps: Vec<Formula>, concl: Formula) -> Lemma {
    Lemma {
        name: name.into(),
        vars: vars.iter().map(|s| s.to_string()).collect(),
        hyps,
        concl,
    }
}

fn use_lemma(name: &str, args: Vec<Term>, rest: Proof) -> Proof {
    Proof::Use { lemma: name.into(), args, rest: Box::new(rest) }
}

/// The library's lemmas, each paired with its proof, in dependency order.
// Sequential pushes (not `vec![]`) keep each lemma under its own L_n
// commentary block.
#[allow(clippy::vec_init_then_push)]
pub fn lemmas() -> Vec<(Lemma, Proof)> {
    let mut out: Vec<(Lemma, Proof)> = Vec::new();

    // L1 (the paper's Pow2Mul): Pow2(x) * Pow2(y) == Pow2(x + y), by
    // induction on y.
    out.push((
        lemma(
            "pow2_mul",
            &["x", "y"],
            vec![v("x").ge(t(0)), v("y").ge(t(0))],
            Term::pow2(v("x")).mul(Term::pow2(v("y"))).eq(Term::pow2(v("x").add(v("y")))),
        ),
        Proof::Induction {
            var: "y".into(),
            base: 0,
            base_case: Box::new(Proof::Auto),
            step_case: Box::new(use_lemma(
                "pow2_step",
                vec![v("y").add(t(1))],
                use_lemma("pow2_step", vec![v("x").add(v("y")).add(t(1))], Proof::Auto),
            )),
        },
    ));

    // L2: division of powers: x >= y >= 0 ==> Pow2(x) / Pow2(y) == Pow2(x-y).
    out.push((
        lemma(
            "pow2_div",
            &["x", "y"],
            vec![v("y").ge(t(0)), v("x").ge(v("y"))],
            Term::pow2(v("x")).div(Term::pow2(v("y"))).eq(Term::pow2(v("x").sub(v("y")))),
        ),
        use_lemma(
            "pow2_mul",
            vec![v("y"), v("x").sub(v("y"))],
            use_lemma(
                "div_unique",
                vec![Term::pow2(v("x")), Term::pow2(v("y")), Term::pow2(v("x").sub(v("y")))],
                Proof::Auto,
            ),
        ),
    ));

    // L3: a value below the modulus divides to zero.
    out.push((
        lemma(
            "div_small",
            &["a", "m"],
            vec![t(0).le(v("a")), v("a").lt(v("m"))],
            v("a").div(v("m")).eq(t(0)),
        ),
        use_lemma("div_unique", vec![v("a"), v("m"), t(0)], Proof::Auto),
    ));

    // L4: a value below the modulus is its own remainder.
    out.push((
        lemma(
            "mod_small",
            &["a", "m"],
            vec![t(0).le(v("a")), v("a").lt(v("m"))],
            v("a").imod(v("m")).eq(v("a")),
        ),
        use_lemma("div_small", vec![v("a"), v("m")], Proof::Auto),
    ));

    // L5: adding a multiple of the modulus shifts the quotient.
    out.push((
        lemma(
            "div_add_multiple",
            &["a", "k", "m"],
            vec![v("m").ge(t(1))],
            v("a").add(v("k").mul(v("m"))).div(v("m")).eq(v("a").div(v("m")).add(v("k"))),
        ),
        use_lemma(
            "div_unique",
            vec![
                v("a").add(v("k").mul(v("m"))),
                v("m"),
                v("a").div(v("m")).add(v("k")),
            ],
            Proof::Auto,
        ),
    ));

    // L6: adding a multiple of the modulus leaves the remainder unchanged.
    out.push((
        lemma(
            "mod_add_multiple",
            &["a", "k", "m"],
            vec![v("m").ge(t(1))],
            v("a").add(v("k").mul(v("m"))).imod(v("m")).eq(v("a").imod(v("m"))),
        ),
        use_lemma("div_add_multiple", vec![v("a"), v("k"), v("m")], Proof::Auto),
    ));

    // L7 (the paper's flagship): taking the low x bits then the low y bits
    // equals taking the low y bits directly, for x >= y >= 0:
    //   (a % Pow2(x)) % Pow2(y) == a % Pow2(y).
    out.push((
        lemma(
            "mod_mod_pow2",
            &["a", "x", "y"],
            vec![v("y").ge(t(0)), v("x").ge(v("y"))],
            v("a")
                .imod(Term::pow2(v("x")))
                .imod(Term::pow2(v("y")))
                .eq(v("a").imod(Term::pow2(v("y")))),
        ),
        use_lemma(
            "pow2_mul",
            vec![v("y"), v("x").sub(v("y"))],
            use_lemma(
                "div_unique",
                vec![
                    // a - Pow2(x)*(a/Pow2(x))  ==  a % Pow2(x)
                    v("a").imod(Term::pow2(v("x"))),
                    Term::pow2(v("y")),
                    // quotient: a/Pow2(y) - Pow2(x-y)*(a/Pow2(x))
                    v("a")
                        .div(Term::pow2(v("y")))
                        .sub(Term::pow2(v("x").sub(v("y"))).mul(v("a").div(Term::pow2(v("x"))))),
                ],
                Proof::Auto,
            ),
        ),
    ));

    // L8: nested division composes: (a/m)/n == a/(m*n) for m, n >= 1.
    out.push((
        lemma(
            "div_div",
            &["a", "m", "n"],
            vec![v("m").ge(t(1)), v("n").ge(t(1))],
            v("a").div(v("m")).div(v("n")).eq(v("a").div(v("m").mul(v("n")))),
        ),
        use_lemma(
            "div_unique",
            vec![
                v("a").div(v("m")),
                v("n"),
                v("a").div(v("m").mul(v("n"))),
            ],
            Proof::Auto,
        ),
    ));

    // L9: bit-range decomposition: a % (m*n) splits into the high part
    // (a/m) % n and the low part a % m:
    //   m >= 1, n >= 1 ==> a % (m*n) == m*((a/m) % n) + a % m.
    out.push((
        lemma(
            "mod_split",
            &["a", "m", "n"],
            vec![v("m").ge(t(1)), v("n").ge(t(1))],
            v("a")
                .imod(v("m").mul(v("n")))
                .eq(v("m").mul(v("a").div(v("m")).imod(v("n"))).add(v("a").imod(v("m")))),
        ),
        use_lemma("div_div", vec![v("a"), v("m"), v("n")], Proof::Auto),
    ));

    // L10: concatenation inverts: the high and low parts of
    // Cat(hi, lo) = hi*Pow2(w) + lo are recovered by division and modulus.
    out.push((
        lemma(
            "cat_div",
            &["hi", "lo", "w"],
            vec![v("w").ge(t(0)), t(0).le(v("lo")), v("lo").lt(Term::pow2(v("w")))],
            cat(v("hi"), v("lo"), v("w")).div(Term::pow2(v("w"))).eq(v("hi")),
        ),
        use_lemma(
            "div_unique",
            vec![cat(v("hi"), v("lo"), v("w")), Term::pow2(v("w")), v("hi")],
            Proof::Auto,
        ),
    ));
    out.push((
        lemma(
            "cat_mod",
            &["hi", "lo", "w"],
            vec![v("w").ge(t(0)), t(0).le(v("lo")), v("lo").lt(Term::pow2(v("w")))],
            cat(v("hi"), v("lo"), v("w")).imod(Term::pow2(v("w"))).eq(v("lo")),
        ),
        use_lemma("cat_div", vec![v("hi"), v("lo"), v("w")], Proof::Auto),
    ));

    // L11: multiply-divide cancellation: m >= 1 ==> (a*m)/m == a.
    out.push((
        lemma(
            "mul_div_cancel",
            &["a", "m"],
            vec![v("m").ge(t(1))],
            v("a").mul(v("m")).div(v("m")).eq(v("a")),
        ),
        use_lemma("div_unique", vec![v("a").mul(v("m")), v("m"), v("a")], Proof::Auto),
    ));

    // L12: extraction commutes with shifting: for x >= y >= 0,
    //   (a % Pow2(x)) / Pow2(y) == (a / Pow2(y)) % Pow2(x-y).
    out.push((
        lemma(
            "mod_div_swap",
            &["a", "x", "y"],
            vec![t(0).le(v("a")), v("y").ge(t(0)), v("x").ge(v("y"))],
            v("a")
                .imod(Term::pow2(v("x")))
                .div(Term::pow2(v("y")))
                .eq(v("a").div(Term::pow2(v("y"))).imod(Term::pow2(v("x").sub(v("y"))))),
        ),
        // a % 2^x = a - 2^x*(a/2^x); divide by 2^y and recognise the
        // shifted quotient by uniqueness.
        use_lemma(
            "pow2_mul",
            vec![v("y"), v("x").sub(v("y"))],
            use_lemma(
                "div_div",
                vec![v("a"), Term::pow2(v("y")), Term::pow2(v("x").sub(v("y")))],
                use_lemma(
                    "div_unique",
                    vec![
                        v("a").imod(Term::pow2(v("x"))),
                        Term::pow2(v("y")),
                        v("a").div(Term::pow2(v("y")))
                            .sub(Term::pow2(v("x").sub(v("y"))).mul(v("a").div(Term::pow2(v("x"))))),
                    ],
                    Proof::Auto,
                ),
            ),
        ),
    ));

    // Strict monotonicity (used for no-wrap counter arguments):
    // 0 <= x < y ==> Pow2(x) < Pow2(y).
    out.push((
        lemma(
            "pow2_lt",
            &["x", "y"],
            vec![v("x").ge(t(0)), v("x").lt(v("y"))],
            Term::pow2(v("x")).lt(Term::pow2(v("y"))),
        ),
        use_lemma(
            "pow2_step",
            vec![v("y")],
            // Pow2(y) = 2*Pow2(y-1) >= 2*Pow2(x) > Pow2(x).
            Proof::Auto,
        ),
    ));

    out
}

/// Installs the library into a kernel environment, proving every lemma.
///
/// # Errors
///
/// Returns the first lemma whose proof fails (should not happen for a
/// released library; the test suite checks all of them).
pub fn install(env: &mut Env) -> Result<(), (String, ProofError)> {
    let _span = chicala_telemetry::span!("bvlib.install");
    for (lemma, proof) in lemmas() {
        let name = lemma.name.clone();
        env.prove_lemma(lemma, &proof).map_err(|e| (name, e))?;
    }
    Ok(())
}

/// Total line count of the library's operations and lemma statements +
/// proofs (the paper reports 320 lines of Scala for 6 ops and 10 lemmas).
pub fn source_loc() -> usize {
    // Operations: one line per constructor body here.
    let ops = 6;
    let lemma_lines: usize = lemmas()
        .iter()
        .map(|(l, p)| 1 + l.hyps.len() + proof_len(p))
        .sum();
    ops + lemma_lines
}

fn proof_len(p: &Proof) -> usize {
    match p {
        Proof::Auto => 1,
        Proof::SplitAnd(ps) => 1 + ps.iter().map(proof_len).sum::<usize>(),
        Proof::Cases { if_true, if_false, .. } => 1 + proof_len(if_true) + proof_len(if_false),
        Proof::Calc(steps) => 1 + steps.len(),
        Proof::Use { rest, .. } => 1 + proof_len(rest),
        Proof::Have { proof, rest, .. } => 1 + proof_len(proof) + proof_len(rest),
        Proof::Unfold { rest, .. } => 1 + proof_len(rest),
        Proof::Induction { base_case, step_case, .. } => {
            1 + proof_len(base_case) + proof_len(step_case)
        }
    }
}

// Re-exported for the doc examples.
pub use chicala_verify::Term as VerifyTerm;

#[allow(unused_imports)]
use Just as _JustUnused;

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_bigint::BigInt;
    use std::collections::BTreeMap;

    #[test]
    fn all_lemmas_prove() {
        let mut env = Env::new();
        install(&mut env).unwrap_or_else(|(name, e)| panic!("lemma `{name}` failed: {e}"));
        for (l, _) in lemmas() {
            assert!(env.lemma(&l.name).is_some());
        }
    }

    #[test]
    fn operations_evaluate_correctly() {
        let env = BTreeMap::new();
        let benv = BTreeMap::new();
        // extract(0b110101, 4, 2) == 0b101
        let e = extract(Term::int(0b110101), Term::int(4), Term::int(2));
        assert_eq!(e.eval(&env, &benv), Some(BigInt::from(0b101)));
        // bit
        assert_eq!(
            bit(Term::int(0b100), Term::int(2)).eval(&env, &benv),
            Some(BigInt::one())
        );
        // cat(0b11, 0b01, 2) == 0b1101
        assert_eq!(
            cat(Term::int(0b11), Term::int(0b01), Term::int(2)).eval(&env, &benv),
            Some(BigInt::from(0b1101))
        );
        // clamp
        assert_eq!(
            clamp(Term::int(19), Term::int(4)).eval(&env, &benv),
            Some(BigInt::from(3))
        );
        // to_signed
        assert_eq!(
            to_signed(Term::int(15), Term::int(4)).eval(&env, &benv),
            Some(BigInt::from(-1))
        );
        assert_eq!(
            to_signed(Term::int(7), Term::int(4)).eval(&env, &benv),
            Some(BigInt::from(7))
        );
    }

    #[test]
    fn lemma_statements_hold_concretely() {
        // Sanity: evaluate each lemma at a few concrete points (guards
        // against stating a wrong lemma and proving it due to a kernel
        // bug — both layers would have to be wrong in the same way).
        for (l, _) in lemmas() {
            for seed in 0..40u64 {
                let mut env: BTreeMap<String, BigInt> = BTreeMap::new();
                for (i, var) in l.vars.iter().enumerate() {
                    let x = ((seed * 37 + i as u64 * 11) % 21) as i64 - 4;
                    env.insert(var.clone(), BigInt::from(x));
                }
                let benv = BTreeMap::new();
                let applicable =
                    l.hyps.iter().all(|h| h.eval(&env, &benv) == Some(true));
                if applicable {
                    assert_eq!(
                        l.concl.eval(&env, &benv),
                        Some(true),
                        "lemma `{}` fails at {env:?}",
                        l.name
                    );
                }
            }
        }
    }
}
