//! The paper's §3.2 proof libraries: bit-vector-as-integer operations with
//! their lemma set ([`bitvec`], 6 ops + 10 lemmas, every lemma proved in
//! the kernel), and the list library ([`listlib`], 7 ops + 3 lemmas) used
//! by designs that split signals into element sequences.

pub mod bitvec;
pub mod listlib;

pub use bitvec::install as install_bitvec;
pub use listlib::install as install_listlib;
