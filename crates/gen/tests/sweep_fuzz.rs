//! Fuzz harness: incremental width-sweep vs one-shot on *generated* cones.
//!
//! For a sweep of fuzzer seeds, the self-miter cone of each generated
//! module (original vs `when`-flattened, equal by construction) is built
//! at a family of sampled widths and driven through the incremental sweep
//! session with the A/B tripwire on: every per-width verdict must agree
//! byte-for-byte with the one-shot `prove_net_with` path. Falsified
//! variants (the property strengthened by a raw input bit) check the
//! counterexample side: the sweep must report the one-shot model bytes
//! and that model must actually falsify the cone under concrete netlist
//! evaluation.
//!
//! The injected-bug drill then retains a width-dependent clause across
//! retirement on purpose (`prove_net_sweep_drill`): a falsifiable later
//! width is wrongly reported proved by the raw session, and the A/B
//! verification must record the divergence — proving the tripwire can
//! catch exactly the class of soundness bug incremental reuse risks.

use chicala_chisel::{elaborate, flatten_whens, Bindings};
use chicala_gen::{gen_module, MITER_CYCLES};
use chicala_lowlevel::{
    fresh_inputs, nets_equal, prove_net_with, prove_net_sweep, prove_net_sweep_drill, unroll,
    Backend, BitKit, Net, Netlist, OptProfile, ProveResult, SweepItem,
};
use std::collections::BTreeMap;

/// The self-miter cone of generated module `seed` at `width`, plus one
/// raw input net for building falsified variants.
fn miter_cone(seed: u64, width: u64) -> (Netlist, Net, Net) {
    let g = gen_module(seed);
    let flat = flatten_whens(&g.module).expect("generated modules flatten");
    let b: Bindings = [("len".to_string(), width as i64)].into_iter().collect();
    let em = elaborate(&g.module, &b).expect("elaborates");
    let em_flat = elaborate(&flat, &b).expect("flattened side elaborates");
    let mut nl = Netlist::new();
    let inputs = fresh_inputs(&em, |_, _, kit: &mut Netlist| kit.input(), &mut nl);
    let st = unroll(&em, &mut nl, &inputs, &BTreeMap::new(), MITER_CYCLES).expect("unrolls");
    let st_flat =
        unroll(&em_flat, &mut nl, &inputs, &BTreeMap::new(), MITER_CYCLES).expect("unrolls");
    let mut property = nl.constant(true);
    for (name, w) in st.outputs.iter().chain(&st.regs) {
        let other = st_flat
            .outputs
            .get(name)
            .or_else(|| st_flat.regs.get(name))
            .unwrap_or_else(|| panic!("`{name}` missing from flattened side"));
        let eq = nets_equal(&mut nl, w, other);
        property = nl.and(property, eq);
    }
    let probe = inputs
        .values()
        .next()
        .and_then(|w| w.bits.first())
        .copied()
        .expect("generated modules have at least one input bit");
    (nl, property, probe)
}

/// Widths straddling the `Auto` crossover (≤ 6 goes BDD, above goes to
/// the incremental SAT session), ascending as the sweep expects.
const WIDTHS: [u64; 4] = [4, 7, 9, 12];

#[test]
fn sweep_verdicts_agree_with_oneshot_on_generated_cones() {
    let opt = OptProfile::from_env();
    for seed in [0u64, 1, 2, 3, 5, 8, 13, 21] {
        let cones: Vec<(Netlist, Net, Net)> =
            WIDTHS.iter().map(|&w| miter_cone(seed, w)).collect();
        let items: Vec<SweepItem<'_>> = cones
            .iter()
            .zip(WIDTHS)
            .map(|((nl, property, _), width)| SweepItem {
                nl,
                root: *property,
                width,
                var_order: Vec::new(),
            })
            .collect();
        let report = prove_net_sweep(&items, Backend::Auto, opt, true);
        assert_eq!(
            report.stats.divergences, 0,
            "seed {seed}: sweep disagreed with one-shot on a valid family"
        );
        for (o, (nl, property, _)) in report.outcomes.iter().zip(&cones) {
            let oneshot =
                prove_net_with(nl, *property, Backend::Auto, o.width as usize, &[], opt);
            assert_eq!(
                o.result, oneshot,
                "seed {seed} width {}: reports must be byte-identical",
                o.width
            );
            assert!(o.result.is_proved(), "seed {seed}: self-miter is valid by construction");
        }
    }
}

#[test]
fn sweep_counterexamples_agree_with_oneshot_and_falsify_the_cone() {
    let opt = OptProfile::from_env();
    for seed in [0u64, 2, 5, 9] {
        // Strengthen each cone by a raw input bit: the property is now
        // falsifiable (set that bit low), exercising the model path.
        let cones: Vec<(Netlist, Net)> = WIDTHS
            .iter()
            .map(|&w| {
                let (mut nl, property, probe) = miter_cone(seed, w);
                let broken = nl.and(property, probe);
                (nl, broken)
            })
            .collect();
        let items: Vec<SweepItem<'_>> = cones
            .iter()
            .zip(WIDTHS)
            .map(|((nl, broken), width)| SweepItem {
                nl,
                root: *broken,
                width,
                var_order: Vec::new(),
            })
            .collect();
        let report = prove_net_sweep(&items, Backend::Auto, opt, true);
        assert_eq!(report.stats.divergences, 0, "seed {seed}: cex verdicts must agree");
        for (o, (nl, broken)) in report.outcomes.iter().zip(&cones) {
            match &o.result {
                ProveResult::Counterexample { inputs, .. } => {
                    let vals = nl.eval(&|net| inputs.get(&net).copied().unwrap_or(false));
                    assert!(
                        !vals[broken.0 as usize],
                        "seed {seed} width {}: reported model must falsify the cone",
                        o.width
                    );
                }
                ProveResult::Proved { .. } => {
                    panic!("seed {seed} width {}: broken cone cannot prove", o.width)
                }
            }
        }
    }
}

/// A valid identity the strash layer cannot fold (the two sides ripple
/// through different carry networks): `a+b == (a^b) + 2*(a&b)` over `w`
/// fresh input bits per side. The drill needs a cone that actually
/// reaches the solver — generated self-miters usually fold structurally,
/// retaining nothing.
fn addxor_cone(w: usize) -> (Netlist, Net) {
    let mut nl = Netlist::new();
    let a: Vec<Net> = (0..w).map(|_| nl.input()).collect();
    let b: Vec<Net> = (0..w).map(|_| nl.input()).collect();
    let ripple = |nl: &mut Netlist, xs: &[Net], ys: &[Net]| -> Vec<Net> {
        let mut carry = nl.constant(false);
        let mut out = Vec::with_capacity(w);
        for i in 0..w {
            let s1 = nl.xor(xs[i], ys[i]);
            out.push(nl.xor(s1, carry));
            let c1 = nl.and(xs[i], ys[i]);
            let c2 = nl.and(s1, carry);
            carry = nl.or(c1, c2);
        }
        out
    };
    let lhs = ripple(&mut nl, &a, &b);
    let x: Vec<Net> = (0..w).map(|i| nl.xor(a[i], b[i])).collect();
    let and2: Vec<Net> = (0..w).map(|i| nl.and(a[i], b[i])).collect();
    let zero = nl.constant(false);
    let shifted: Vec<Net> = std::iter::once(zero).chain(and2).take(w).collect();
    let rhs = ripple(&mut nl, &x, &shifted);
    let mut property = nl.constant(true);
    for i in 0..w {
        let eq = nl.xor(lhs[i], rhs[i]);
        let eq = nl.not(eq);
        property = nl.and(property, eq);
    }
    (nl, property)
}

#[test]
fn drill_retained_clause_is_caught_by_ab_verification() {
    let opt = OptProfile::from_env();
    // A valid non-folding cone first (its root is retained unguarded by
    // the drill, poisoning the session), then a falsifiable generated one
    // at a SAT-resolved width: the raw session wrongly proves it, and
    // verify_ab must both catch the lie and report the honest one-shot
    // bytes.
    let (nl_good, good) = addxor_cone(7);
    let (mut nl_bad, property, probe) = miter_cone(1, 9);
    let broken = nl_bad.and(property, probe);
    let items = [
        SweepItem { nl: &nl_good, root: good, width: 7, var_order: Vec::new() },
        SweepItem { nl: &nl_bad, root: broken, width: 9, var_order: Vec::new() },
    ];
    let report = prove_net_sweep_drill(&items, Backend::Auto, opt, true);
    assert!(
        report.stats.divergences >= 1,
        "the A/B tripwire must catch the drill's retained clause"
    );
    // And the *reported* outcomes are still the honest one-shot ones.
    match &report.outcomes[1].result {
        ProveResult::Counterexample { .. } => {}
        ProveResult::Proved { .. } => panic!("verify_ab must repair the drill's wrong verdict"),
    }
}
