//! Property test: the self-certifying optimizer over *generated* modules.
//!
//! For a sweep of fuzzer seeds and sampled widths, the gate-level
//! self-miter cone of each generated module is lowered to an AIG and
//! pushed through every optimizer pass individually and through the
//! standard pipeline, with `CertMode::Full` — every accepted pass
//! application must prove its pre/post equivalence miter. A deliberately
//! broken rewrite (the `DropGuardRewrite` drill, the AIG sibling of the
//! fuzzer's `flatten_whens_dropping_guards` drill) is then driven over the
//! same cones with a guaranteed trigger shape attached, and the
//! certification miter must refuse it.

use chicala_chisel::{elaborate, flatten_whens, Bindings};
use chicala_gen::{gen_module, sample_widths, MITER_CYCLES, MITER_WIDTH_CAP};
use chicala_lowlevel::aig::from_netlist;
use chicala_lowlevel::opt::DropGuardRewrite;
use chicala_lowlevel::{
    fresh_inputs, nets_equal, unroll, Aig, AigRef, Balance, BitKit, CertMode, Net, Netlist, Pass,
    PassManager, Resub, Rewrite, Sweep,
};
use std::collections::BTreeMap;

/// Builds the self-miter property cone of a generated module at `width`:
/// original vs `when`-flattened form over shared inputs after
/// [`MITER_CYCLES`] cycles, as a single property net.
fn miter_cone(seed: u64, width: u64) -> (Netlist, Net) {
    let g = gen_module(seed);
    let flat = flatten_whens(&g.module).expect("generated modules flatten");
    let b: Bindings = [("len".to_string(), width as i64)].into_iter().collect();
    let em = elaborate(&g.module, &b).expect("elaborates");
    let em_flat = elaborate(&flat, &b).expect("flattened side elaborates");
    let mut nl = Netlist::new();
    let inputs = fresh_inputs(&em, |_, _, kit: &mut Netlist| kit.input(), &mut nl);
    let st = unroll(&em, &mut nl, &inputs, &BTreeMap::new(), MITER_CYCLES).expect("unrolls");
    let st_flat =
        unroll(&em_flat, &mut nl, &inputs, &BTreeMap::new(), MITER_CYCLES).expect("unrolls");
    let mut property = nl.constant(true);
    for (name, w) in st.outputs.iter().chain(&st.regs) {
        let other = st_flat
            .outputs
            .get(name)
            .or_else(|| st_flat.regs.get(name))
            .unwrap_or_else(|| panic!("`{name}` missing from flattened side"));
        let eq = nets_equal(&mut nl, w, other);
        property = nl.and(property, eq);
    }
    (nl, property)
}

const SEEDS: [u64; 6] = [0, 1, 2, 3, 5, 8];

#[test]
fn every_pass_certifies_on_generated_cones() {
    for seed in SEEDS {
        for width in sample_widths(seed, MITER_WIDTH_CAP) {
            let (nl, property) = miter_cone(seed, width);
            let (aig, roots, _) = from_netlist(&nl, &[property]);
            let passes: Vec<(&str, Box<dyn Pass>)> = vec![
                ("sweep", Box::new(Sweep)),
                ("rewrite", Box::new(Rewrite)),
                ("balance", Box::new(Balance)),
                ("resub", Box::new(Resub)),
            ];
            for (name, pass) in passes {
                let pm = PassManager::new(width as usize, CertMode::Full).with_pass(pass);
                let out = pm
                    .run(aig.clone(), roots.clone())
                    .unwrap_or_else(|e| panic!("seed {seed} width {width} pass {name}: {e}"));
                assert!(
                    out.aig.and_count() <= aig.and_count(),
                    "seed {seed} width {width}: pass {name} grew the cone"
                );
                assert!(out.aig.no_orphans(&out.roots), "seed {seed} {name}: orphans");
            }
            // And the whole pipeline, fully certified.
            let pm = PassManager::standard(width as usize, CertMode::Full);
            let out = pm
                .run(aig.clone(), roots.clone())
                .unwrap_or_else(|e| panic!("seed {seed} width {width} pipeline: {e}"));
            assert!(out.aig.and_count() <= aig.and_count());
            let applications = out.stats.iter().filter(|s| s.accepted).count();
            assert_eq!(
                out.certified_count(),
                applications,
                "seed {seed} width {width}: full mode must certify every accepted application"
            );
        }
    }
}

#[test]
fn broken_rewrite_is_refused_on_generated_cones() {
    // Attach the drill's trigger shape — (i0∧i1) ∧ ¬(i0∧i2) — to each
    // generated cone so the buggy rule is guaranteed to fire, then demand
    // that certification rejects the pass on real miter graphs.
    for seed in SEEDS {
        let width = MITER_WIDTH_CAP;
        let (nl, property) = miter_cone(seed, width);
        let (mut aig, mut roots, input_map) = from_netlist(&nl, &[property]);
        let mut ins: Vec<AigRef> = input_map.values().copied().collect();
        ins.sort_unstable();
        while ins.len() < 3 {
            ins.push(aig.input());
        }
        let guard_left = aig.and(ins[0], ins[1]);
        let guard_right = aig.and(ins[0], ins[2]);
        let trigger = aig.and(guard_left, !guard_right);
        roots.push(trigger);
        let pm =
            PassManager::new(width as usize, CertMode::Full).with_pass(Box::new(DropGuardRewrite));
        let err = pm
            .run(aig.clone(), roots.clone())
            .expect_err("the dropped guard must be caught by the certification miter");
        assert_eq!(err.pass, "drop_guard_rewrite", "seed {seed}");
        // The counterexample is a genuine disagreement witness: replay the
        // buggy pass and evaluate both graphs at the assignment — some
        // root must disagree (the buggy rule can fire inside the
        // generated cone too, so any root counts).
        let (buggy, buggy_roots, map) = DropGuardRewrite.run(&aig, &roots);
        let assign: BTreeMap<u32, bool> = err.inputs.iter().copied().collect();
        let old_of_new: BTreeMap<u32, u32> =
            map.iter().map(|(o, e)| (e.node(), *o)).collect();
        let separated = roots.iter().zip(&buggy_roots).any(|(pre_r, post_r)| {
            let pre_val = aig.eval(*pre_r, &|n| assign.get(&n).copied().unwrap_or(false));
            let post_val = buggy.eval(*post_r, &|n| {
                old_of_new
                    .get(&n)
                    .and_then(|o| assign.get(o))
                    .copied()
                    .unwrap_or(false)
            });
            pre_val != post_val
        });
        assert!(
            separated,
            "seed {seed}: certification counterexample must separate pre from post"
        );
        let _ = Aig::map_edge(&map, trigger);
    }
}
