//! Failure capture for the generative fuzzer: replays a shrunk reproducer
//! through the four executable layers with the exact deterministic input
//! schedule the soak used, records one typed [`Trace`] per layer, and
//! writes the VCD pair plus a schema-versioned replay bundle (see
//! [`chicala_trace::bundle`]) under `target/chicala-failures/`.

use crate::check::{gen_inputs, sample_widths};
use crate::generate::GenModule;
use crate::SoakDivergence;
use chicala_bigint::BigInt;
use chicala_chisel::{
    compile, elaborate, flatten_whens, Bindings, CompiledSim, ElabKind, ElabModule, Simulator,
};
use chicala_conformance::SplitMix64;
use chicala_core::transform;
use chicala_seq::{SValue, SeqRunner};
use chicala_telemetry as telemetry;
use chicala_trace::{
    capture_enabled, first_divergence, git_rev, mark_pair, Divergence, ReplayBundle, SignalKind,
    Trace, SCHEMA_VERSION,
};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Classifies a divergence message into the pipeline stage it came from
/// (the bundle's `layer` field).
pub fn stage_of(message: &str) -> &'static str {
    if message.contains("when-flattened") || message.contains("flatten") {
        "flatten"
    } else if message.contains("compiled VM") {
        "compiled"
    } else if message.contains("sequential") || message.contains("program") {
        "seq"
    } else if message.contains("miter") {
        "miter"
    } else {
        "check"
    }
}

fn scalar(v: &SValue) -> Option<BigInt> {
    match v {
        SValue::Int(i) => Some(i.clone()),
        SValue::Bool(b) => Some(BigInt::from(*b)),
        _ => None,
    }
}

/// An in-progress per-layer recording: declared signals plus a row plan
/// telling each cycle which map every value comes from.
struct Recorder {
    trace: Trace,
    plan: Vec<(String, SignalKind)>,
}

impl Recorder {
    fn from_elab(scope: &str, em: &ElabModule) -> Recorder {
        let mut trace = Trace::new(scope);
        let mut plan = Vec::new();
        // Kind-grouped declaration order: the VCD writer emits one
        // sub-scope per kind, so this keeps a parse round trip exact.
        for want in [SignalKind::Input, SignalKind::Output, SignalKind::Register] {
            for sig in &em.signals {
                let kind = match sig.kind {
                    ElabKind::Input => SignalKind::Input,
                    ElabKind::Output => SignalKind::Output,
                    ElabKind::Reg { .. } => SignalKind::Register,
                    ElabKind::Wire => continue,
                };
                if kind != want {
                    continue;
                }
                trace.declare(&sig.name, sig.width, kind);
                plan.push((sig.name.clone(), kind));
            }
        }
        Recorder { trace, plan }
    }

    fn push(
        &mut self,
        inputs: &BTreeMap<String, BigInt>,
        outputs: &BTreeMap<String, BigInt>,
        reg: impl Fn(&str) -> Option<BigInt>,
    ) {
        let row = self
            .plan
            .iter()
            .map(|(name, kind)| {
                match kind {
                    SignalKind::Input => inputs.get(name).cloned(),
                    SignalKind::Output => outputs.get(name).cloned(),
                    _ => reg(name),
                }
                .unwrap_or_else(BigInt::zero)
            })
            .collect();
        self.trace.push_cycle(row);
    }
}

/// Replays the cosim stage's exact deterministic schedule for `g` at one
/// width (same RNG derivation, same cycle count, same per-cycle inputs as
/// `check::check_cosim_width`), recording every layer that elaborates or
/// compiles. Layer errors mid-recording truncate that layer's trace rather
/// than aborting the capture.
pub fn record_width_traces(g: &GenModule, width: u64, seed: u64) -> Result<Vec<Trace>, String> {
    let b: Bindings = [("len".to_string(), width as i64)].into_iter().collect();
    let em = elaborate(&g.module, &b).map_err(|e| format!("elaborate at {width}: {e}"))?;
    let no_overrides = BTreeMap::new();
    let mut sim = Simulator::new(&em, &no_overrides).map_err(|e| format!("simulator: {e}"))?;
    let mut rec_interp = Recorder::from_elab("chisel_interp", &em);

    let flat_em = flatten_whens(&g.module).ok().and_then(|flat| elaborate(&flat, &b).ok());
    let mut flat_side = flat_em.as_ref().and_then(|em_flat| {
        let sim = Simulator::new(em_flat, &no_overrides).ok()?;
        Some((sim, Recorder::from_elab("flat_interp", em_flat)))
    });

    let cm = compile(&em).ok();
    let mut vm_side = cm.as_ref().map(|cm| {
        let mut rec = Recorder { trace: Trace::new("compiled_vm"), plan: Vec::new() };
        for i in 0..cm.inputs_len() {
            rec.trace.declare(cm.input_name(i), cm.input_width(i), SignalKind::Input);
            rec.plan.push((cm.input_name(i).to_string(), SignalKind::Input));
        }
        for i in 0..cm.outputs_len() {
            rec.trace.declare(cm.output_name(i), cm.output_width(i), SignalKind::Output);
            rec.plan.push((cm.output_name(i).to_string(), SignalKind::Output));
        }
        for i in 0..cm.regs_len() {
            rec.trace.declare(cm.reg_name(i), cm.reg_width(i), SignalKind::Register);
            rec.plan.push((cm.reg_name(i).to_string(), SignalKind::Register));
        }
        (CompiledSim::new(cm, &no_overrides), rec)
    });

    let params: BTreeMap<String, BigInt> =
        [("len".to_string(), BigInt::from(width))].into_iter().collect();
    let mut seq_side = transform(&g.module).ok().and_then(|out| {
        let prog = out.program;
        let runner = SeqRunner::new(&prog, params.clone());
        let regs = runner.init_regs(&BTreeMap::new()).ok()?;
        // The program's signals mirror the elaborated module's by name.
        let rec = Recorder::from_elab("seq_program", &em);
        Some((prog, regs, rec))
    });

    let mut rng = SplitMix64::new(seed ^ width.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let cycles = 4 + rng.below(4);
    let mut kill_flat = false;
    let mut kill_seq = false;
    for _cycle in 0..cycles {
        let inputs = gen_inputs(&mut rng, g, &em);

        match sim.step(&inputs) {
            Ok(out) => rec_interp.push(&inputs, &out, |n| sim.reg(n).cloned()),
            Err(_) => break,
        }
        if let Some((sim_flat, rec)) = &mut flat_side {
            match sim_flat.step(&inputs) {
                Ok(out) => {
                    let s = &*sim_flat;
                    rec.push(&inputs, &out, |n| s.reg(n).cloned());
                }
                Err(_) => kill_flat = true,
            }
        }
        if kill_flat {
            flat_side = None;
        }
        if let Some((vm, rec)) = &mut vm_side {
            let out = vm.step_map(&inputs);
            rec.push(&inputs, &out, |n| vm.reg(n));
        }
        if let Some((prog, regs, rec)) = &mut seq_side {
            let runner = SeqRunner::new(prog, params.clone());
            let sw_in: BTreeMap<String, SValue> =
                inputs.iter().map(|(k, v)| (k.clone(), SValue::Int(v.clone()))).collect();
            match runner.trans(&sw_in, regs) {
                Ok(sw) => {
                    let outs: BTreeMap<String, BigInt> = sw
                        .outputs
                        .iter()
                        .filter_map(|(k, v)| scalar(v).map(|b| (k.clone(), b)))
                        .collect();
                    let rmap: BTreeMap<String, BigInt> = sw
                        .regs
                        .iter()
                        .filter_map(|(k, v)| scalar(v).map(|b| (k.clone(), b)))
                        .collect();
                    rec.push(&inputs, &outs, |n| rmap.get(n).cloned());
                    *regs = sw.regs;
                }
                Err(_) => kill_seq = true,
            }
        }
        if kill_seq {
            seq_side = None;
        }
    }

    let mut traces = vec![rec_interp.trace];
    if let Some((_, rec)) = flat_side {
        traces.push(rec.trace);
    }
    if let Some((_, rec)) = vm_side {
        traces.push(rec.trace);
    }
    if let Some((_, _, rec)) = seq_side {
        traces.push(rec.trace);
    }
    Ok(traces)
}

/// Finds the earliest-diverging pair among `traces`, marks both sides, and
/// returns the divergence.
pub fn mark_earliest(traces: &mut [Trace]) -> Option<Divergence> {
    let mut best: Option<(usize, usize, Divergence)> = None;
    for i in 0..traces.len() {
        for j in (i + 1)..traces.len() {
            if let Some(div) = first_divergence(&traces[i], &traces[j]) {
                if best.as_ref().is_none_or(|(_, _, b)| div.cycle < b.cycle) {
                    best = Some((i, j, div));
                }
            }
        }
    }
    best.map(|(i, j, _)| {
        let (a, b) = traces.split_at_mut(j);
        mark_pair(&mut a[i], &mut b[0]).expect("pair diverges")
    })
}

/// Captures a shrunk soak divergence: walks the same sampled widths the
/// cosim stage used, records the executable layers at the first width
/// where any pair disagrees, and writes the VCDs plus the replay bundle.
/// Divergences outside the cosim stage (transform or self-miter failures)
/// still produce a bundle — with the shrunk module and replay line, but
/// no traces. Returns `None` when capture is disabled or writing fails.
pub fn capture_divergence(g: &GenModule, div: &SoakDivergence) -> Option<PathBuf> {
    if !capture_enabled() {
        return None;
    }
    let mut captured: Option<(u64, Vec<Trace>, Option<Divergence>)> = None;
    for width in sample_widths(div.case_seed, div.max_width) {
        let Ok(mut traces) = record_width_traces(g, width, div.case_seed) else { continue };
        if let Some(marked) = mark_earliest(&mut traces) {
            captured = Some((width, traces, Some(marked)));
            break;
        }
    }
    let (width, traces, divergence) = captured.unwrap_or((0, Vec::new(), None));
    let cycles = traces.first().map(|t| t.len() as u64).unwrap_or(0);
    let mut bundle = ReplayBundle {
        schema: SCHEMA_VERSION,
        kind: "gen".to_string(),
        design: "generated".to_string(),
        layer: stage_of(&div.shrunk_message).to_string(),
        backend: "auto".to_string(),
        sim_backend: "interp".to_string(),
        master_seed: div.case_seed,
        case_seed: div.case_seed,
        max_width: div.max_width,
        width,
        cycles,
        inputs: Vec::new(),
        message: div.shrunk_message.clone(),
        divergence,
        module: format!("{:#?}", div.shrunk),
        git_rev: git_rev(),
        replay_env: div.replay_line(),
        replay_cmd: div.replay_line(),
        vcd_files: Vec::new(),
    };
    let refs: Vec<&Trace> = traces.iter().collect();
    let path = bundle.write_with_traces(&refs).ok()?;
    telemetry::event(
        "conformance.divergence",
        &[
            ("design", "generated".to_string()),
            ("layer", bundle.layer.clone()),
            ("bundle", path.display().to_string()),
        ],
    );
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gen_module;
    use chicala_trace::vcd::{parse_vcd, write_vcd};

    #[test]
    fn recorded_layers_agree_on_green_modules() {
        for seed in [1u64, 7, 0xABCD] {
            let g = gen_module(seed);
            let traces =
                record_width_traces(&g, 4, seed).expect("generated modules elaborate at 4");
            assert!(traces.len() >= 2, "at least interpreter + one other layer");
            let mut traces = traces;
            assert_eq!(
                mark_earliest(&mut traces),
                None,
                "seed {seed}: all recorded layers agree on a green module"
            );
            for t in &traces {
                assert!(!t.is_empty(), "{}: recorded cycles", t.scope);
                assert_eq!(parse_vcd(&write_vcd(t)).expect("parses"), *t, "{}", t.scope);
            }
        }
    }

    #[test]
    fn stage_classification() {
        assert_eq!(stage_of("width 4 cycle 1: when-flattened module diverges…"), "flatten");
        assert_eq!(stage_of("width 4 cycle 0: compiled VM diverges on outputs"), "compiled");
        assert_eq!(stage_of("width 4 cycle 2: sequential program diverges"), "seq");
        assert_eq!(stage_of("self-miter falsified at width 4"), "miter");
        assert_eq!(stage_of("transform: unsupported"), "check");
    }
}
