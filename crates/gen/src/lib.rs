//! `chicala-gen`: a seeded, shrinkable generative design fuzzer for the
//! Chisel-subset IR.
//!
//! The paper proves six hand-written designs; this crate manufactures
//! thousands more. [`gen_module`] produces a random module — `when` nests,
//! registers, wires, and the full unsigned operator palette — that
//! elaborates at every width by construction (width-aware typing over a
//! small totally-ordered class set). [`check_generated`] soaks one module
//! through the whole stack: structural invariants, the
//! Chisel-to-sequential transform, four-way differential cosim
//! (interpreter vs `when`-flattened interpreter vs compiled slot-VM vs
//! sequential program) at several widths, and a gate-level self-miter of
//! the module against its pre-optimization (`when`-flattened) form that
//! must fold to constant-true.
//!
//! Divergences are greedily shrunk ([`shrink_module`]) to a minimal
//! reproducer under a strictly-decreasing `(nodes, width, depth)` measure
//! and recorded in the committed corpus
//! (`proptest-regressions/generated.txt`), replayable via
//! `CHICALA_GEN_SEED` or the `gen_soak` example's `--replay` flag.

pub mod capture;
pub mod check;
pub mod corpus;
pub mod generate;
pub mod shrink;

pub use capture::{capture_divergence, record_width_traces};
pub use check::{check_generated, sample_widths, self_miter, MITER_CYCLES, MITER_WIDTH_CAP};
pub use corpus::{corpus_entries, replay_all, GenRegression, CORPUS};
pub use generate::{gen_module, GenModule, WidthClass, MIN_LEN};
pub use shrink::{shrink_candidates, shrink_module, shrink_trace, MAX_STEPS};

use chicala_chisel::{node_count, Module};
use chicala_conformance::SplitMix64;
use chicala_par::ThreadPool;
use std::time::{Duration, Instant};

/// Reads the fuzzer master seed from `CHICALA_GEN_SEED` (decimal, or hex
/// with an `0x` prefix), falling back to `default`.
pub fn gen_seed_from_env(default: u64) -> u64 {
    chicala_trace::replay::seed_from_env("CHICALA_GEN_SEED", default)
}

/// Soak configuration.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Master seed; each module's case seed is drawn from this stream.
    pub seed: u64,
    /// Number of generated modules.
    pub modules: usize,
    /// Width ceiling for cosim sampling (the self-miter is additionally
    /// capped at [`MITER_WIDTH_CAP`]).
    pub max_width: u64,
    /// Stop at the first divergence instead of collecting all of them.
    pub stop_at_first: bool,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: gen_seed_from_env(0xC1CA_0E00),
            modules: 200,
            max_width: 16,
            stop_at_first: true,
        }
    }
}

/// One divergence found by a soak, with its shrunk reproducer.
#[derive(Clone, Debug)]
pub struct SoakDivergence {
    /// Seed that regenerates the original module.
    pub case_seed: u64,
    /// Width cap the module was soaked under.
    pub max_width: u64,
    /// The original divergence message.
    pub message: String,
    /// IR node count of the original module.
    pub original_nodes: u64,
    /// The shrunk minimal reproducer.
    pub shrunk: Module,
    /// IR node count of the reproducer.
    pub shrunk_nodes: u64,
    /// The reproducer's divergence message (stages can shift as the
    /// module shrinks).
    pub shrunk_message: String,
    /// Path of the replay bundle captured for this divergence, when trace
    /// capture is enabled (see [`capture::capture_divergence`]).
    pub bundle: Option<std::path::PathBuf>,
}

impl SoakDivergence {
    /// The corpus line pinning this divergence.
    pub fn corpus_line(&self) -> String {
        format!("gg 0x{:016X} {}", self.case_seed, self.max_width)
    }

    /// The exact CLI line replaying this one case.
    pub fn replay_line(&self) -> String {
        format!(
            "cargo run --release --example gen_soak -- --replay {} --max-width {}",
            chicala_trace::replay::format_seed(self.case_seed),
            self.max_width
        )
    }
}

/// A soak run's outcome.
#[derive(Clone, Debug, Default)]
pub struct SoakReport {
    /// Modules generated and checked.
    pub modules: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Every divergence found (shrunk).
    pub divergences: Vec<SoakDivergence>,
}

impl SoakReport {
    /// Whether the soak was clean.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Modules checked per second.
    pub fn modules_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        (secs > 0.0).then(|| self.modules as f64 / secs)
    }
}

/// Checks one case seed end-to-end and shrinks on divergence. This is the
/// per-module unit both [`soak`] and replay paths share. The divergence is
/// boxed: it carries the full shrunk module, so the `Ok` fast path should
/// not pay its size.
pub fn run_case(case_seed: u64, max_width: u64) -> Result<(), Box<SoakDivergence>> {
    let g = gen_module(case_seed);
    let Err(message) = check_generated(&g, case_seed, max_width) else {
        return Ok(());
    };
    // Shrink against the full check suite: a candidate "still fails" when
    // any stage rejects it, not necessarily the original one.
    let still_fails = |m: &Module| {
        let cand = GenModule { module: m.clone(), inputs: g.inputs.clone() };
        check_generated(&cand, case_seed, max_width).is_err()
    };
    let shrunk = shrink_module(&g.module, &still_fails);
    let cand = GenModule { module: shrunk.clone(), inputs: g.inputs.clone() };
    let shrunk_message =
        check_generated(&cand, case_seed, max_width).err().unwrap_or_else(|| message.clone());
    let mut div = SoakDivergence {
        case_seed,
        max_width,
        original_nodes: node_count(&g.module),
        shrunk_nodes: node_count(&shrunk),
        shrunk,
        message,
        shrunk_message,
        bundle: None,
    };
    div.bundle = capture::capture_divergence(&cand, &div);
    Err(Box::new(div))
}

/// Runs a full soak: `cfg.modules` generated modules through every check
/// stage, in parallel, with divergences shrunk to minimal reproducers.
pub fn soak(cfg: &SoakConfig) -> SoakReport {
    let _span = chicala_telemetry::span!("gen_soak:{}", cfg.modules);
    let start = Instant::now();
    let mut rng = SplitMix64::new(cfg.seed);
    let seeds: Vec<u64> = (0..cfg.modules).map(|_| rng.next_u64()).collect();
    let pool = ThreadPool::default();
    let mut divergences = Vec::new();
    // Chunked so stop_at_first cuts the run without racing the pool.
    let chunk = (pool.workers() * 8).max(8);
    let mut checked = 0usize;
    for batch in seeds.chunks(chunk) {
        let outcomes = pool.map_slice(batch, |&s| run_case(s, cfg.max_width));
        checked += batch.len();
        divergences.extend(outcomes.into_iter().filter_map(Result::err).map(|d| *d));
        if cfg.stop_at_first && !divergences.is_empty() {
            break;
        }
    }
    SoakReport { modules: checked, elapsed: start.elapsed(), divergences }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_soak_is_green() {
        let cfg = SoakConfig { seed: 0xC1CA_0E00, modules: 24, max_width: 12, stop_at_first: false };
        let report = soak(&cfg);
        assert_eq!(report.modules, 24);
        assert!(
            report.ok(),
            "divergences: {:?}",
            report.divergences.iter().map(|d| d.corpus_line()).collect::<Vec<_>>()
        );
    }

    /// Injected-bug drill, kept as a permanent test: run the soak's cosim
    /// oracle against the deliberately broken `when`-lowering
    /// (`flatten_whens_dropping_guards`), and require the fuzzer to (a)
    /// find a module exposing the dropped guard conjunct and (b) shrink it
    /// to a reproducer of at most 10 IR nodes.
    #[test]
    fn injected_when_lowering_bug_is_found_and_shrinks_small() {
        use chicala_bigint::BigInt;
        use chicala_chisel::{elaborate, passes, Simulator};
        use std::collections::BTreeMap;

        // The buggy-pass oracle: flatten with dropped guards and compare
        // against the reference interpreter at len=4 over a few cycles.
        let diverges = |m: &Module, inputs: &[String]| -> bool {
            let Ok(bad) = passes::flatten_whens_dropping_guards(m) else { return false };
            let bind: chicala_chisel::Bindings =
                [("len".to_string(), 4i64)].into_iter().collect();
            let (Ok(em), Ok(em_bad)) = (elaborate(m, &bind), elaborate(&bad, &bind)) else {
                return false;
            };
            let none = BTreeMap::new();
            let (Ok(mut sim), Ok(mut sim_bad)) =
                (Simulator::new(&em, &none), Simulator::new(&em_bad, &none))
            else {
                return false;
            };
            let mut rng = SplitMix64::new(0xB0B0);
            for _ in 0..6 {
                let ins: BTreeMap<String, BigInt> = inputs
                    .iter()
                    .map(|n| {
                        let w = em
                            .signals
                            .iter()
                            .find(|s| &s.name == n)
                            .map(|s| s.width)
                            .unwrap_or(1);
                        (n.clone(), rng.bits(w))
                    })
                    .collect();
                let (Ok(a), Ok(b)) = (sim.step(&ins), sim_bad.step(&ins)) else { return false };
                if a != b || sim.regs() != sim_bad.regs() {
                    return true;
                }
            }
            false
        };

        // Scan seeds until the fuzzer catches the planted bug.
        let mut found = None;
        for seed in 0..400u64 {
            let g = gen_module(seed);
            if diverges(&g.module, &g.inputs) {
                found = Some(g);
                break;
            }
        }
        let g = found.expect("fuzzer finds the planted when-lowering bug within 400 seeds");
        let inputs = g.inputs.clone();
        let shrunk = shrink_module(&g.module, &|m| diverges(m, &inputs));
        assert!(
            diverges(&shrunk, &inputs),
            "shrunk reproducer no longer exposes the bug"
        );
        assert!(
            node_count(&shrunk) <= 10,
            "reproducer too large: {} nodes",
            node_count(&shrunk)
        );
    }
}
