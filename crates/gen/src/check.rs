//! The differential soak checks one generated module goes through: the
//! full stack, cross-checked layer against layer.
//!
//! 1. **Structural invariants** — `check_module` accepts the module (the
//!    generator stays inside the transformable subset by construction).
//! 2. **Transform** — the Chisel-to-sequential transformation succeeds.
//! 3. **Cosim** — at several sampled widths, with fresh random inputs
//!    every cycle, four executions run in lockstep: the reference
//!    interpreter, the interpreter on the `when`-flattened module, the
//!    compiled slot-VM, and the generated sequential program. Any
//!    disagreement on any output or register of any cycle is a divergence.
//! 4. **Gate-level self-miter** — the module is bit-blasted against its
//!    pre-optimization self (the `when`-flattened form) over shared fresh
//!    symbolic inputs and proved equivalent for *every* input assignment
//!    at one bounded width (`Backend::Auto`); the miter must fold to
//!    constant-true.

use crate::generate::{GenModule, MIN_LEN};
use chicala_bigint::BigInt;
use chicala_chisel::{
    compile, elaborate, flatten_whens, Bindings, CompiledSim, ElabModule, Module, Simulator,
};
use chicala_conformance::SplitMix64;
use chicala_core::{check_module, transform};
use chicala_lowlevel::{
    fresh_inputs, nets_equal, prove_net, unroll, Backend, BitKit, Net, Netlist, ProveResult,
};
use chicala_seq::{SValue, SeqRunner};
use std::collections::BTreeMap;

/// Widths the cosim stage samples for one module: both ends of the range
/// plus two seed-derived interior points.
pub fn sample_widths(seed: u64, max_width: u64) -> Vec<u64> {
    let lo = MIN_LEN;
    let hi = max_width.max(lo);
    let mut rng = SplitMix64::new(seed ^ 0x57AB_1E00_D1CE_0001);
    let mut ws = vec![lo, hi];
    for _ in 0..2 {
        ws.push(rng.range(lo, hi));
    }
    ws.sort_unstable();
    ws.dedup();
    ws
}

fn bind(len: u64) -> Bindings {
    [("len".to_string(), len as i64)].into_iter().collect()
}

fn svalue_scalar(v: &SValue) -> Option<BigInt> {
    match v {
        SValue::Int(i) => Some(i.clone()),
        SValue::Bool(b) => Some(BigInt::from(*b)),
        _ => None,
    }
}

/// Random inputs for one cycle, masked to each port's elaborated width.
pub(crate) fn gen_inputs(
    rng: &mut SplitMix64,
    g: &GenModule,
    em: &ElabModule,
) -> BTreeMap<String, BigInt> {
    g.inputs
        .iter()
        .map(|name| {
            let w = em
                .signals
                .iter()
                .find(|s| &s.name == name)
                .map(|s| s.width)
                .unwrap_or(1);
            (name.clone(), rng.bits(w))
        })
        .collect()
}

/// Cosim at one width: interpreter (reference) vs flattened-module
/// interpreter vs compiled slot-VM vs sequential program, every output
/// and register of every cycle.
fn check_cosim_width(
    g: &GenModule,
    flat: &Module,
    prog: &chicala_seq::SeqProgram,
    width: u64,
    seed: u64,
) -> Result<(), String> {
    let b = bind(width);
    let em = elaborate(&g.module, &b).map_err(|e| format!("elaborate at {width}: {e}"))?;
    let em_flat =
        elaborate(flat, &b).map_err(|e| format!("flattened module fails to elaborate at {width}: {e}"))?;
    let cm = compile(&em).map_err(|e| format!("compiled VM rejects module at {width}: {e}"))?;

    let no_overrides = BTreeMap::new();
    let mut sim = Simulator::new(&em, &no_overrides).map_err(|e| format!("simulator: {e}"))?;
    let mut sim_flat =
        Simulator::new(&em_flat, &no_overrides).map_err(|e| format!("flat simulator: {e}"))?;
    let mut vm = CompiledSim::new(&cm, &no_overrides);
    let params: BTreeMap<String, BigInt> =
        [("len".to_string(), BigInt::from(width))].into_iter().collect();
    let runner = SeqRunner::new(prog, params);
    let mut sw_regs = runner
        .init_regs(&BTreeMap::new())
        .map_err(|e| format!("sequential init at {width}: {e}"))?;

    let mut rng = SplitMix64::new(seed ^ width.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let cycles = 4 + rng.below(4);
    for cycle in 0..cycles {
        let inputs = gen_inputs(&mut rng, g, &em);
        let hw_out = sim.step(&inputs).map_err(|e| format!("interp cycle {cycle}: {e}"))?;

        // Flattened module must be observationally identical.
        let flat_out =
            sim_flat.step(&inputs).map_err(|e| format!("flat interp cycle {cycle}: {e}"))?;
        if flat_out != hw_out {
            return Err(format!(
                "width {width} cycle {cycle}: when-flattened module diverges on outputs: \
                 original={hw_out:?} flattened={flat_out:?}"
            ));
        }
        for (name, v) in sim.regs() {
            let fv = sim_flat.reg(name).cloned().unwrap_or_else(BigInt::zero);
            if *v != fv {
                return Err(format!(
                    "width {width} cycle {cycle}: when-flattened module diverges on register \
                     `{name}`: original={v} flattened={fv}"
                ));
            }
        }

        // Compiled slot-VM.
        let vm_out = vm.step_map(&inputs);
        if vm_out != hw_out {
            return Err(format!(
                "width {width} cycle {cycle}: compiled VM diverges on outputs: \
                 interp={hw_out:?} compiled={vm_out:?}"
            ));
        }
        for i in 0..cm.regs_len() {
            let name = cm.reg_name(i);
            let want = sim.reg(name).cloned().unwrap_or_else(BigInt::zero);
            let got = vm.reg_value(i);
            if got != want {
                return Err(format!(
                    "width {width} cycle {cycle}: compiled VM diverges on register `{name}`: \
                     interp={want} compiled={got}"
                ));
            }
        }

        // Sequential program.
        let sw_in: BTreeMap<String, SValue> = inputs
            .iter()
            .map(|(k, v)| (k.clone(), SValue::Int(v.clone())))
            .collect();
        let sw = runner
            .trans(&sw_in, &sw_regs)
            .map_err(|e| format!("sequential cycle {cycle} at {width}: {e}"))?;
        for (name, hv) in &hw_out {
            let sv = sw
                .outputs
                .get(name)
                .and_then(svalue_scalar)
                .ok_or_else(|| format!("cycle {cycle}: output `{name}` missing from program"))?;
            if *hv != sv {
                return Err(format!(
                    "width {width} cycle {cycle}: sequential program diverges on output \
                     `{name}`: interp={hv} program={sv}"
                ));
            }
        }
        for (name, svv) in &sw.regs {
            let Some(sv) = svalue_scalar(svv) else { continue };
            let hv = sim
                .reg(name)
                .cloned()
                .ok_or_else(|| format!("cycle {cycle}: program register `{name}` unknown"))?;
            if hv != sv {
                return Err(format!(
                    "width {width} cycle {cycle}: sequential program diverges on register \
                     `{name}`: interp={hv} program={sv}"
                ));
            }
        }
        sw_regs = sw.regs;
    }
    Ok(())
}

/// Width cap for the gate-level self-miter (SAT/BDD cost, not soundness).
pub const MITER_WIDTH_CAP: u64 = 8;

/// Symbolic cycles the self-miter unrolls both sides for.
pub const MITER_CYCLES: usize = 2;

/// Bit-blasts the module and its `when`-flattened form over shared fresh
/// inputs and proves them equivalent on every output and register after
/// [`MITER_CYCLES`] cycles — for *every* input assignment at `width`.
pub fn self_miter(m: &Module, flat: &Module, width: u64) -> Result<(), String> {
    let b = bind(width);
    let em = elaborate(m, &b).map_err(|e| format!("miter elaborate: {e}"))?;
    let em_flat = elaborate(flat, &b).map_err(|e| format!("miter elaborate (flat): {e}"))?;
    let mut nl = Netlist::new();
    let inputs = fresh_inputs(&em, |_, _, kit: &mut Netlist| kit.input(), &mut nl);
    let st = unroll(&em, &mut nl, &inputs, &BTreeMap::new(), MITER_CYCLES)
        .map_err(|e| format!("miter unroll: {e}"))?;
    let st_flat = unroll(&em_flat, &mut nl, &inputs, &BTreeMap::new(), MITER_CYCLES)
        .map_err(|e| format!("miter unroll (flat): {e}"))?;
    let mut property = nl.constant(true);
    for (name, w) in st.outputs.iter().chain(&st.regs) {
        let other = st_flat
            .outputs
            .get(name)
            .or_else(|| st_flat.regs.get(name))
            .ok_or_else(|| format!("miter: `{name}` missing from flattened side"))?;
        let eq = nets_equal(&mut nl, w, other);
        property = nl.and(property, eq);
    }
    let max_w = inputs.values().map(|w| w.width()).max().unwrap_or(0);
    let mut var_order: Vec<Net> = Vec::new();
    for i in 0..max_w {
        for w in inputs.values() {
            if i < w.width() {
                var_order.push(w.bits[i]);
            }
        }
    }
    match prove_net(&nl, property, Backend::Auto, width as usize, &var_order) {
        ProveResult::Proved { .. } => Ok(()),
        ProveResult::Counterexample { backend, inputs: cex } => {
            let mut assignment: Vec<String> = Vec::new();
            for (name, w) in &inputs {
                let mut v = BigInt::zero();
                for (i, bit) in w.bits.iter().enumerate() {
                    if cex.get(bit).copied().unwrap_or(false) {
                        v = v + BigInt::pow2(i as u64);
                    }
                }
                assignment.push(format!("{name}={v}"));
            }
            Err(format!(
                "self-miter NOT constant-true at width {width} ({backend:?} counterexample: {})",
                assignment.join(" ")
            ))
        }
    }
}

/// Runs one generated module through every soak stage. `Ok` means all
/// layers agree; `Err` carries the first divergence, prefixed with the
/// stage that caught it.
pub fn check_generated(g: &GenModule, seed: u64, max_width: u64) -> Result<(), String> {
    // Stage 1: structural invariants.
    let report = check_module(&g.module);
    if !report.violations.is_empty() {
        return Err(format!("structural: {}", report.violations.join("; ")));
    }
    // Stage 2: transform passes.
    let out = transform(&g.module).map_err(|e| format!("transform: {e}"))?;
    let flat = flatten_whens(&g.module).map_err(|e| format!("flatten_whens: {e}"))?;
    // Stage 3: multi-width differential cosim.
    for width in sample_widths(seed, max_width) {
        check_cosim_width(g, &flat, &out.program, width, seed)
            .map_err(|e| format!("cosim: {e}"))?;
    }
    // Stage 4: gate-level self-miter at one bounded width.
    let miter_w = max_width.clamp(MIN_LEN, MITER_WIDTH_CAP);
    self_miter(&g.module, &flat, miter_w).map_err(|e| format!("gates: {e}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gen_module;

    #[test]
    fn a_few_generated_modules_pass_all_stages() {
        for seed in 0..12u64 {
            let g = gen_module(seed);
            check_generated(&g, seed, 12).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn sampled_widths_cover_both_ends() {
        let ws = sample_widths(7, 24);
        assert!(ws.contains(&MIN_LEN));
        assert!(ws.contains(&24));
        assert!(ws.windows(2).all(|p| p[0] < p[1]), "sorted, deduped");
    }
}
