//! The committed fuzzer regression corpus: every divergence a soak run
//! finds is recorded as a `gg <case-seed-hex> <max-width>` line in
//! `proptest-regressions/generated.txt`, regenerated from the seed and
//! re-checked through every soak stage before any random exploration. The
//! file is embedded at compile time so replay works from any directory.

use crate::check::check_generated;
use crate::generate::gen_module;

/// The embedded regression corpus.
pub const CORPUS: &str = include_str!("../../../proptest-regressions/generated.txt");

/// One parsed fuzzer regression: a module seed plus the width cap it was
/// soaked under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenRegression {
    /// Seed that regenerates the module ([`gen_module`]).
    pub case_seed: u64,
    /// Width cap the divergence was found under.
    pub max_width: u64,
}

/// Parses the corpus format: `gg <case-seed-hex> <max-width>` per line;
/// `#` starts a comment. Malformed lines are errors, not silent skips.
pub fn parse(corpus: &str) -> Result<Vec<GenRegression>, String> {
    let mut out = Vec::new();
    for (lineno, line) in corpus.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        let err = |what: &str| format!("generated corpus line {}: {what}: {line:?}", lineno + 1);
        if fields.len() != 3 || fields[0] != "gg" {
            return Err(err("expected `gg <case-seed-hex> <max-width>`"));
        }
        let case_seed = fields[1]
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| err("seed must be 0x-prefixed hex"))?;
        let max_width = fields[2].parse().map_err(|_| err("bad max-width"))?;
        out.push(GenRegression { case_seed, max_width });
    }
    Ok(out)
}

/// Parses the committed (embedded) corpus.
pub fn corpus_entries() -> Result<Vec<GenRegression>, String> {
    parse(CORPUS)
}

/// Replays one regression: regenerates the module from its seed and runs
/// the full check suite.
pub fn replay(r: GenRegression) -> Result<(), String> {
    let g = gen_module(r.case_seed);
    check_generated(&g, r.case_seed, r.max_width)
}

/// Replays every committed regression; returns the failures (empty when
/// the corpus is green).
pub fn replay_all() -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    for r in parse(CORPUS)? {
        if let Err(e) = replay(r) {
            failures.push(format!("gg 0x{:016X} {}: {e}", r.case_seed, r.max_width));
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_corpus_parses() {
        parse(CORPUS).expect("committed corpus is well-formed");
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("gg 0x12 16").is_ok());
        assert!(parse("gg 18 16").is_err(), "decimal seed rejected");
        assert!(parse("0x12 16").is_err(), "missing gg tag rejected");
        assert!(parse("gg 0x12").is_err(), "missing width rejected");
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn committed_corpus_replays_green() {
        let failures = replay_all().expect("corpus parses");
        assert!(failures.is_empty(), "regressions resurfaced: {failures:?}");
    }
}
