//! Greedy module-level shrinking of divergent generated modules.
//!
//! A shrink step is accepted only when the candidate (1) still passes the
//! structural check and elaborates at the witness widths, (2) still fails
//! the caller's oracle, and (3) strictly reduces the lexicographic measure
//! `(node_count, width_rank, when_depth)` — so every accepted step makes
//! provable progress and shrinking always terminates.

use chicala_chisel::{
    elaborate, measure, ChiselType, Expr, Module, PExpr, Stmt,
};
use chicala_core::check_module;

/// Hard cap on accepted shrink steps (the measure guarantees termination;
/// the cap bounds worst-case wall clock on adversarial oracles).
pub const MAX_STEPS: usize = 512;

/// Widths a shrink candidate must keep elaborating at.
const WITNESS_WIDTHS: [i64; 2] = [crate::generate::MIN_LEN as i64, 8];

fn elaborable(m: &Module) -> bool {
    if !check_module(m).violations.is_empty() {
        return false;
    }
    WITNESS_WIDTHS.iter().all(|&len| {
        let bind = [("len".to_string(), len)].into_iter().collect();
        elaborate(m, &bind).is_ok()
    })
}

/// A zero literal of the declared type (the constant-substitution step).
fn zero_of(ty: &ChiselType) -> Option<Expr> {
    match ty {
        ChiselType::Bool => Some(Expr::lit_b(false)),
        ChiselType::UInt(w) => Some(Expr::lit_u(0, w.clone())),
        ChiselType::SInt(w) => Some(Expr::lit_s(0, w.clone())),
        _ => None,
    }
}

/// The canonical width-class ladder; width reduction steps a declared
/// width one rung down.
fn narrower(w: &PExpr) -> Option<PExpr> {
    let len = PExpr::param("len");
    let ladder = [
        PExpr::Const(1),
        PExpr::Const(2),
        PExpr::Const(3),
        len.clone(),
        len.clone() + 1,
        len + 2,
    ];
    let pos = ladder.iter().position(|c| c == w)?;
    if pos == 0 {
        None
    } else {
        Some(ladder[pos - 1].clone())
    }
}

/// Applies `edit` to the statement at flattened position `target`
/// (depth-first over `when` bodies); returns the rewritten body and
/// whether the position was found. `edit` returning `None` deletes the
/// statement; returning a vector splices statements in place.
fn edit_stmt_at(
    body: &[Stmt],
    target: usize,
    next: &mut usize,
    edit: &mut dyn FnMut(&Stmt) -> Option<Vec<Stmt>>,
) -> (Vec<Stmt>, bool) {
    let mut out = Vec::with_capacity(body.len());
    let mut hit = false;
    for s in body {
        let here = *next;
        *next += 1;
        if here == target {
            hit = true;
            if let Some(repl) = edit(s) {
                out.extend(repl);
            }
            continue;
        }
        match s {
            Stmt::When { cond, then_body, else_body } => {
                let (tb, h1) = edit_stmt_at(then_body, target, next, edit);
                let (eb, h2) = edit_stmt_at(else_body, target, next, edit);
                hit |= h1 | h2;
                out.push(Stmt::When { cond: cond.clone(), then_body: tb, else_body: eb });
            }
            other => out.push(other.clone()),
        }
    }
    (out, hit)
}

fn stmt_positions(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::When { then_body, else_body, .. } => {
                1 + stmt_positions(then_body) + stmt_positions(else_body)
            }
            _ => 1,
        })
        .sum()
}

fn with_body(m: &Module, body: Vec<Stmt>) -> Module {
    Module { body, ..m.clone() }
}

/// Whether `name` appears anywhere in the body (read or written).
fn name_used(body: &[Stmt], name: &str) -> bool {
    body.iter().any(|s| match s {
        Stmt::Connect { lhs, rhs } => lhs.base == name || rhs.reads().iter().any(|r| r == name),
        Stmt::When { cond, then_body, else_body } => {
            cond.reads().iter().any(|r| r == name)
                || name_used(then_body, name)
                || name_used(else_body, name)
        }
        Stmt::For { body, .. } => name_used(body, name),
    })
}

/// All single-step shrink candidates of `m`, in deterministic order:
/// statement deletions, `when` flattenings (replace the block with its
/// concatenated bodies), constant substitutions (connect right-hand side
/// and `when` condition), unused-declaration removal, and declared-width
/// reduction.
pub fn shrink_candidates(m: &Module) -> Vec<Module> {
    let mut out = Vec::new();
    let n = stmt_positions(&m.body);
    // Deletion.
    for pos in 0..n {
        let (body, hit) = edit_stmt_at(&m.body, pos, &mut 0, &mut |_| Some(Vec::new()));
        if hit {
            out.push(with_body(m, body));
        }
    }
    // When-flattening and condition substitution.
    for pos in 0..n {
        let (body, hit) = edit_stmt_at(&m.body, pos, &mut 0, &mut |s| match s {
            Stmt::When { then_body, else_body, .. } => {
                let mut spliced = then_body.clone();
                spliced.extend(else_body.clone());
                Some(spliced)
            }
            _ => Some(vec![s.clone()]),
        });
        if hit {
            out.push(with_body(m, body));
        }
        for lit in [false, true] {
            let (body, hit) = edit_stmt_at(&m.body, pos, &mut 0, &mut |s| match s {
                Stmt::When { cond, then_body, else_body } if *cond != Expr::LitB(lit) => {
                    Some(vec![Stmt::When {
                        cond: Expr::LitB(lit),
                        then_body: then_body.clone(),
                        else_body: else_body.clone(),
                    }])
                }
                _ => Some(vec![s.clone()]),
            });
            if hit {
                out.push(with_body(m, body));
            }
        }
    }
    // Constant substitution of connect right-hand sides.
    for pos in 0..n {
        let (body, hit) = edit_stmt_at(&m.body, pos, &mut 0, &mut |s| match s {
            Stmt::Connect { lhs, rhs } if !matches!(rhs, Expr::LitU { .. } | Expr::LitB(_)) => {
                let zero = m.decl(&lhs.base).and_then(|d| zero_of(&d.ty));
                zero.map(|z| vec![Stmt::Connect { lhs: lhs.clone(), rhs: z }])
            }
            _ => Some(vec![s.clone()]),
        });
        if hit {
            out.push(with_body(m, body));
        }
    }
    // Unused-declaration removal.
    for (i, d) in m.decls.iter().enumerate() {
        if !name_used(&m.body, &d.name) {
            let mut decls = m.decls.clone();
            decls.remove(i);
            out.push(Module { decls, ..m.clone() });
        }
    }
    // Width reduction, one declaration at a time.
    for (i, d) in m.decls.iter().enumerate() {
        let ChiselType::UInt(w) = &d.ty else { continue };
        let Some(nw) = narrower(w) else { continue };
        let mut decls = m.decls.clone();
        decls[i].ty = ChiselType::UInt(nw);
        out.push(Module { decls, ..m.clone() });
    }
    out
}

/// Greedily shrinks `m` against `still_fails`, returning every accepted
/// intermediate (ending with the minimal reproducer). The input module is
/// not included; an empty trace means no candidate was accepted.
pub fn shrink_trace(m: &Module, still_fails: &dyn Fn(&Module) -> bool) -> Vec<Module> {
    let mut current = m.clone();
    let mut trace = Vec::new();
    for _ in 0..MAX_STEPS {
        let cur_measure = measure(&current);
        let step = shrink_candidates(&current).into_iter().find(|c| {
            measure(c) < cur_measure && elaborable(c) && still_fails(c)
        });
        match step {
            Some(next) => {
                current = next.clone();
                trace.push(next);
            }
            None => break,
        }
    }
    trace
}

/// The minimal reproducer: the last accepted shrink, or the input module
/// unchanged when nothing shrinks.
pub fn shrink_module(m: &Module, still_fails: &dyn Fn(&Module) -> bool) -> Module {
    shrink_trace(m, still_fails).pop().unwrap_or_else(|| m.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gen_module;
    use chicala_chisel::node_count;

    /// Satellite property: every *accepted* shrink step keeps the module
    /// elaborable and strictly reduces the lexicographic measure — the
    /// invariant that makes shrinking terminate.
    #[test]
    fn accepted_steps_reduce_measure_and_stay_elaborable() {
        for seed in 0..40u64 {
            let m = gen_module(seed).module;
            // The always-failing oracle drives the most aggressive shrink.
            let trace = shrink_trace(&m, &|_| true);
            let mut prev = measure(&m);
            for (i, step) in trace.iter().enumerate() {
                assert!(elaborable(step), "seed {seed} step {i}: not elaborable");
                let cur = measure(step);
                assert!(
                    cur < prev,
                    "seed {seed} step {i}: measure did not strictly decrease \
                     ({prev:?} -> {cur:?})"
                );
                prev = cur;
            }
            assert!(trace.len() <= MAX_STEPS);
        }
    }

    #[test]
    fn always_failing_oracle_shrinks_to_a_tiny_module() {
        // With everything "failing", the minimum is near-empty.
        let m = gen_module(3).module;
        let tiny = shrink_module(&m, &|_| true);
        assert!(
            node_count(&tiny) < node_count(&m),
            "shrinker made no progress on {} nodes",
            node_count(&m)
        );
        assert!(node_count(&tiny) <= m.decls.len() as u64 + 2, "near-empty body");
    }

    #[test]
    fn never_failing_oracle_returns_input_unchanged() {
        let m = gen_module(3).module;
        assert_eq!(shrink_module(&m, &|_| false), m);
    }

    #[test]
    fn candidates_include_every_family() {
        let m = gen_module(11).module;
        let cands = shrink_candidates(&m);
        assert!(!cands.is_empty());
        // At minimum, one deletion candidate per statement position.
        assert!(cands.len() >= m.body.len());
    }
}
