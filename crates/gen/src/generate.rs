//! The seeded random module generator: weighted production of `when`
//! nests, registers, wires, and the full unsigned operator palette, with
//! width-aware typing so every generated module elaborates by construction.
//!
//! Widths are drawn from a small totally-ordered set of *classes*
//! (`1 ≤ 2 ≤ 3 ≤ len ≤ len+1 ≤ len+2`, valid because generated modules
//! require `len ≥ 4`), and every operator whose natural result width
//! leaves the set (`Mul`, `Cat`, static shifts) is resized back with a
//! single `Extract` — total in every layer, zero-filling beyond-width
//! bits. Acyclicity is enforced by a strict read-ordering discipline:
//! wire and output drivers read only inputs, registers, and
//! strictly-earlier wires; register next-values may read anything.

use chicala_chisel::{BinaryOp, ChiselType, Decl, Expr, LValue, Module, PExpr, SignalKind, Stmt, UnaryOp};
use chicala_conformance::SplitMix64;

/// The smallest `len` a generated module is meant to elaborate at: the
/// width-class order above needs `len ≥ 4` so every class gap is a
/// positive width.
pub const MIN_LEN: u64 = 4;

/// One of the six canonical width classes of generated signals.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WidthClass {
    /// Constant width 1.
    C1,
    /// Constant width 2.
    C2,
    /// Constant width 3.
    C3,
    /// Width `len`.
    L0,
    /// Width `len + 1`.
    L1,
    /// Width `len + 2`.
    L2,
}

impl WidthClass {
    /// The symbolic width of this class.
    pub fn pexpr(self) -> PExpr {
        let len = PExpr::param("len");
        match self {
            WidthClass::C1 => PExpr::Const(1),
            WidthClass::C2 => PExpr::Const(2),
            WidthClass::C3 => PExpr::Const(3),
            WidthClass::L0 => len,
            WidthClass::L1 => len + 1,
            WidthClass::L2 => len + 2,
        }
    }

    /// Concrete width at parameter value `len`.
    pub fn eval(self, len: u64) -> u64 {
        match self {
            WidthClass::C1 => 1,
            WidthClass::C2 => 2,
            WidthClass::C3 => 3,
            WidthClass::L0 => len,
            WidthClass::L1 => len + 1,
            WidthClass::L2 => len + 2,
        }
    }

    /// The largest literal value safe at any `len ≥ MIN_LEN`.
    fn lit_max(self) -> u64 {
        match self {
            WidthClass::C1 => 1,
            WidthClass::C2 => 3,
            WidthClass::C3 => 7,
            // len ≥ 4 bits holds 0..15.
            WidthClass::L0 | WidthClass::L1 | WidthClass::L2 => 15,
        }
    }

    fn pick(rng: &mut SplitMix64) -> WidthClass {
        // Parameter-dependent widths dominate: that is where all-width
        // bugs live; small constants keep Cat/Fill/shift corners hot.
        match rng.below(10) {
            0 => WidthClass::C1,
            1 => WidthClass::C2,
            2 => WidthClass::C3,
            3..=6 => WidthClass::L0,
            7 | 8 => WidthClass::L1,
            _ => WidthClass::L2,
        }
    }
}

/// A signal visible to expression generation.
#[derive(Clone, Debug)]
struct Sig {
    name: String,
    class: WidthClass,
}

/// Resizes `e` to width class `w` with a single total `Extract` (truncates
/// wide values, zero-extends narrow ones — identical semantics in the
/// interpreter, the compiled VMs, the sequential program, and the
/// bit-blaster).
fn resize(e: Expr, w: WidthClass) -> Expr {
    Expr::Extract { arg: Box::new(e), hi: w.pexpr() - 1, lo: PExpr::Const(0) }
}

struct Ctx<'a> {
    rng: &'a mut SplitMix64,
}

impl Ctx<'_> {
    fn literal(&mut self, w: WidthClass) -> Expr {
        let v = self.rng.below(w.lit_max() + 1);
        Expr::lit_u(v as i64, w.pexpr())
    }

    /// A random signal from `scope`, resized to `w` when its class differs.
    fn signal(&mut self, scope: &[Sig], w: WidthClass) -> Option<Expr> {
        if scope.is_empty() {
            return None;
        }
        let s = &scope[self.rng.below(scope.len() as u64) as usize];
        let e = Expr::sig(s.name.clone());
        Some(if s.class == w { e } else { resize(e, w) })
    }

    fn atom(&mut self, scope: &[Sig], w: WidthClass) -> Expr {
        if self.rng.chance(3, 4) {
            if let Some(e) = self.signal(scope, w) {
                return e;
            }
        }
        self.literal(w)
    }

    /// A UInt expression of width class `w` over `scope`, with `depth`
    /// remaining operator levels.
    fn expr(&mut self, scope: &[Sig], w: WidthClass, depth: u32) -> Expr {
        if depth == 0 || self.rng.chance(1, 4) {
            return self.atom(scope, w);
        }
        let d = depth - 1;
        match self.rng.below(14) {
            0 => Expr::Binop(
                BinaryOp::Add,
                Box::new(self.expr(scope, w, d)),
                Box::new(self.expr(scope, w, d)),
            ),
            1 => Expr::Binop(
                BinaryOp::Sub,
                Box::new(self.expr(scope, w, d)),
                Box::new(self.expr(scope, w, d)),
            ),
            2 => Expr::Binop(
                BinaryOp::And,
                Box::new(self.expr(scope, w, d)),
                Box::new(self.expr(scope, w, d)),
            ),
            3 => Expr::Binop(
                BinaryOp::Or,
                Box::new(self.expr(scope, w, d)),
                Box::new(self.expr(scope, w, d)),
            ),
            4 => Expr::Binop(
                BinaryOp::Xor,
                Box::new(self.expr(scope, w, d)),
                Box::new(self.expr(scope, w, d)),
            ),
            5 => {
                let c = self.boolean(scope, d);
                c.mux(self.expr(scope, w, d), self.expr(scope, w, d))
            }
            // Expanding multiply, resized back into the class set.
            6 => {
                let a = self.expr(scope, w, d);
                let b = self.expr(scope, WidthClass::C2, d);
                resize(Expr::Binop(BinaryOp::Mul, Box::new(a), Box::new(b)), w)
            }
            // Concatenation, resized.
            7 => {
                let wa = WidthClass::pick(self.rng);
                let wb = WidthClass::pick(self.rng);
                let a = self.expr(scope, wa, d);
                let b = self.expr(scope, wb, d);
                resize(Expr::Binop(BinaryOp::Cat, Box::new(a), Box::new(b)), w)
            }
            // Dynamic shifts keep the left operand's width.
            8 => {
                let amt = self.expr(scope, WidthClass::C3, d);
                Expr::Binop(BinaryOp::Shl, Box::new(self.expr(scope, w, d)), Box::new(amt))
            }
            9 => {
                let amt = self.expr(scope, WidthClass::C3, d);
                Expr::Binop(BinaryOp::Shr, Box::new(self.expr(scope, w, d)), Box::new(amt))
            }
            // Static shifts, resized (ShlP expands, ShrP narrows).
            10 => {
                let k = 1 + self.rng.below(3) as i64;
                resize(
                    Expr::ShlP { arg: Box::new(self.expr(scope, w, d)), amount: PExpr::Const(k) },
                    w,
                )
            }
            11 => {
                let k = 1 + self.rng.below(3) as i64;
                resize(
                    Expr::ShrP { arg: Box::new(self.expr(scope, w, d)), amount: PExpr::Const(k) },
                    w,
                )
            }
            // Offset extract: width-exact window starting at bit `lo`.
            12 => {
                let src = WidthClass::pick(self.rng);
                let lo = self.rng.below(3) as i64;
                Expr::Extract {
                    arg: Box::new(self.expr(scope, src, d)),
                    hi: w.pexpr() - 1 + lo,
                    lo: PExpr::Const(lo),
                }
            }
            _ => Expr::Unop(UnaryOp::Not, Box::new(self.expr(scope, w, d))),
        }
    }

    /// A `Bool` expression over `scope`.
    fn boolean(&mut self, scope: &[Sig], depth: u32) -> Expr {
        if depth == 0 || self.rng.chance(1, 5) {
            return Expr::lit_b(self.rng.chance(1, 2));
        }
        let d = depth - 1;
        match self.rng.below(8) {
            0..=2 => {
                let w = WidthClass::pick(self.rng);
                let a = self.expr(scope, w, d);
                let b = self.expr(scope, w, d);
                match self.rng.below(6) {
                    0 => a.eq(b),
                    1 => a.neq(b),
                    2 => a.lt(b),
                    3 => a.le(b),
                    4 => a.gt(b),
                    _ => a.ge(b),
                }
            }
            3 => {
                let w = WidthClass::pick(self.rng);
                let idx = self.expr(scope, WidthClass::C2, d);
                Expr::BitAt { arg: Box::new(self.expr(scope, w, d)), index: Box::new(idx) }
            }
            4 => {
                let w = WidthClass::pick(self.rng);
                self.expr(scope, w, d).or_r()
            }
            5 => {
                let w = WidthClass::pick(self.rng);
                self.expr(scope, w, d).and_r()
            }
            6 => {
                let a = self.boolean(scope, d);
                let b = self.boolean(scope, d);
                a.and(b)
            }
            _ => self.boolean(scope, d).not(),
        }
    }
}

/// Everything the checker needs to drive a generated module.
pub struct GenModule {
    /// The module itself (single parameter `len`, elaborable at any
    /// `len ≥ MIN_LEN`).
    pub module: Module,
    /// Input port names in declaration order.
    pub inputs: Vec<String>,
}

/// Generates one random module, deterministically from `seed`.
pub fn gen_module(seed: u64) -> GenModule {
    let mut rng = SplitMix64::new(seed);
    let n_inputs = 1 + rng.below(3);
    let n_regs = rng.below(3);
    let n_wires = rng.below(4);
    let n_outputs = 1 + rng.below(2);

    let mut decls = Vec::new();
    let mut inputs = Vec::new();
    let mut ins = Vec::new();
    let mut regs = Vec::new();
    let mut wires = Vec::new();
    let mut outs = Vec::new();

    for i in 0..n_inputs {
        let class = WidthClass::pick(&mut rng);
        let name = format!("io_i{i}");
        decls.push(Decl {
            name: name.clone(),
            ty: ChiselType::uint(class.pexpr()),
            kind: SignalKind::Input,
        });
        inputs.push(name.clone());
        ins.push(Sig { name, class });
    }
    for i in 0..n_regs {
        let class = WidthClass::pick(&mut rng);
        let name = format!("r{i}");
        let init = if rng.chance(1, 2) {
            Some(Expr::lit_u(0, class.pexpr()))
        } else {
            None
        };
        decls.push(Decl {
            name: name.clone(),
            ty: ChiselType::uint(class.pexpr()),
            kind: SignalKind::Reg { init },
        });
        regs.push(Sig { name, class });
    }
    for i in 0..n_wires {
        let class = WidthClass::pick(&mut rng);
        let name = format!("w{i}");
        decls.push(Decl {
            name: name.clone(),
            ty: ChiselType::uint(class.pexpr()),
            kind: SignalKind::Wire,
        });
        wires.push(Sig { name, class });
    }
    for i in 0..n_outputs {
        let class = WidthClass::pick(&mut rng);
        let name = format!("io_o{i}");
        decls.push(Decl {
            name: name.clone(),
            ty: ChiselType::uint(class.pexpr()),
            kind: SignalKind::Output,
        });
        outs.push(Sig { name, class });
    }

    let mut body = Vec::new();
    let mut ctx = Ctx { rng: &mut rng };

    // Base connects, in dependency order: wire i reads inputs, registers,
    // and wires 0..i only.
    for i in 0..wires.len() {
        let scope: Vec<Sig> =
            ins.iter().chain(&regs).chain(&wires[..i]).cloned().collect();
        let rhs = ctx.expr(&scope, wires[i].class, 3);
        body.push(Stmt::Connect { lhs: LValue::new(&wires[i].name), rhs });
    }
    let full: Vec<Sig> = ins.iter().chain(&regs).chain(&wires).cloned().collect();
    for o in &outs {
        // Occasionally leave an output to its zero default + when overrides.
        if ctx.rng.chance(5, 6) {
            let rhs = ctx.expr(&full, o.class, 3);
            body.push(Stmt::Connect { lhs: LValue::new(&o.name), rhs });
        }
    }
    for r in &regs {
        if ctx.rng.chance(2, 3) {
            let rhs = ctx.expr(&full, r.class, 3);
            body.push(Stmt::Connect { lhs: LValue::new(&r.name), rhs });
        }
    }

    // `when` nests: guards read only inputs and registers (never wires),
    // so a conditional override of wire i still depends only on signals
    // earlier in the order. Overridable targets: wires, registers, outputs.
    let guard_scope: Vec<Sig> = ins.iter().chain(&regs).cloned().collect();
    let n_whens = ctx.rng.below(3);
    for _ in 0..n_whens {
        let stmt = gen_when(&mut ctx, &guard_scope, &ins, &regs, &wires, &outs, 2);
        body.push(stmt);
    }

    let module = Module {
        name: format!("Gen{seed:016X}"),
        params: vec!["len".to_string()],
        decls,
        funcs: Vec::new(),
        body,
    };
    GenModule { module, inputs }
}

fn gen_when(
    ctx: &mut Ctx,
    guard_scope: &[Sig],
    ins: &[Sig],
    regs: &[Sig],
    wires: &[Sig],
    outs: &[Sig],
    depth: u32,
) -> Stmt {
    let cond = ctx.boolean(guard_scope, 2);
    let mut then_body = gen_overrides(ctx, guard_scope, ins, regs, wires, outs, depth);
    let else_body = if ctx.rng.chance(1, 2) {
        gen_overrides(ctx, guard_scope, ins, regs, wires, outs, depth)
    } else {
        Vec::new()
    };
    if depth > 0 && ctx.rng.chance(1, 2) {
        then_body.push(gen_when(ctx, guard_scope, ins, regs, wires, outs, depth - 1));
    }
    Stmt::When { cond, then_body, else_body }
}

/// 1–2 conditional connects; a wire target's driver reads only wires
/// strictly before it.
fn gen_overrides(
    ctx: &mut Ctx,
    _guard_scope: &[Sig],
    ins: &[Sig],
    regs: &[Sig],
    wires: &[Sig],
    outs: &[Sig],
    _depth: u32,
) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let n = 1 + ctx.rng.below(2);
    for _ in 0..n {
        // Pick a target kind that exists.
        let full: Vec<Sig> = ins.iter().chain(regs).chain(wires).cloned().collect();
        let (target, scope) = match ctx.rng.below(3) {
            0 if !wires.is_empty() => {
                let i = ctx.rng.below(wires.len() as u64) as usize;
                let scope: Vec<Sig> =
                    ins.iter().chain(regs).chain(&wires[..i]).cloned().collect();
                (wires[i].clone(), scope)
            }
            1 if !regs.is_empty() => {
                let i = ctx.rng.below(regs.len() as u64) as usize;
                (regs[i].clone(), full)
            }
            _ => {
                let i = ctx.rng.below(outs.len() as u64) as usize;
                (outs[i].clone(), full)
            }
        };
        let rhs = ctx.expr(&scope, target.class, 2);
        stmts.push(Stmt::Connect { lhs: LValue::new(&target.name), rhs });
    }
    stmts
}

#[cfg(test)]
mod tests {
    use super::*;
    use chicala_chisel::elaborate;
    use chicala_core::check_module;

    #[test]
    fn generated_modules_elaborate_and_pass_structural_checks() {
        for seed in 0..200u64 {
            let g = gen_module(seed);
            let report = check_module(&g.module);
            assert!(
                report.violations.is_empty(),
                "seed {seed}: structural violations {:?}",
                report.violations
            );
            for len in [MIN_LEN as i64, 5, 9, 16] {
                let bind = [("len".to_string(), len)].into_iter().collect();
                elaborate(&g.module, &bind)
                    .unwrap_or_else(|e| panic!("seed {seed} len {len}: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_module(42);
        let b = gen_module(42);
        assert_eq!(a.module, b.module);
        assert_eq!(a.inputs, b.inputs);
        assert_ne!(a.module, gen_module(43).module, "seeds differ");
    }
}
