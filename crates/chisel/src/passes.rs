//! Module-level IR passes and structural metrics.
//!
//! [`flatten_whens`] lowers every `when`/`otherwise` block of a module to
//! explicit `Mux` connects — the same per-signal fold elaboration performs,
//! hoisted to the symbolic IR so the result is an ordinary [`Module`] with a
//! straight-line body. The pass is the fuzzer's cross-check target: a
//! flattened module must stay observationally equal to the original on
//! every layer (interpreter, compiled VM, gate-level self-miter), so any
//! divergence pins a bug in either the pass or a downstream engine.
//!
//! The metrics ([`node_count`], [`when_depth`], [`width_rank`]) define the
//! lexicographic measure the shrinker must strictly decrease on every
//! accepted step, which is what makes shrinking terminate.

use crate::expr::Expr;
use crate::module::{Module, SignalKind};
use crate::stmt::{LValue, Stmt};
use crate::types::ChiselType;
use std::collections::BTreeMap;
use std::fmt;

/// Why [`flatten_whens`] refused a module. The pass handles the scalar
/// connect subset (the one the design fuzzer emits); aggregate targets and
/// generator loops would need alias analysis to fold soundly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PassError {
    /// The body contains a generator `for` loop (fold order across unrolled
    /// iterations is not known before elaboration).
    ForLoop,
    /// A connect drives a bundle field or vector element.
    AggregateTarget(String),
    /// A connect drives a signal the module never declares.
    UndeclaredTarget(String),
    /// A connect drives an input or a node (also rejected by `check_module`).
    BadTargetKind(String),
    /// A driven wire or output has an aggregate type (no scalar default).
    AggregateDefault(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::ForLoop => write!(f, "flatten_whens: `for` loops unsupported"),
            PassError::AggregateTarget(n) => {
                write!(f, "flatten_whens: aggregate connect target `{n}`")
            }
            PassError::UndeclaredTarget(n) => {
                write!(f, "flatten_whens: undeclared connect target `{n}`")
            }
            PassError::BadTargetKind(n) => {
                write!(f, "flatten_whens: connect drives non-connectable `{n}`")
            }
            PassError::AggregateDefault(n) => {
                write!(f, "flatten_whens: driven signal `{n}` has aggregate type")
            }
        }
    }
}

impl std::error::Error for PassError {}

/// Lowers every `when` block to explicit `Mux` connects, yielding a module
/// whose body is one unconditional connect per driven signal.
///
/// The fold replicates elaboration's last-connect-wins resolution
/// symbolically: registers start from themselves (a missing connect keeps
/// the value), wires and outputs start from a zero literal of their
/// declared width, and a connect under guards `c1, …, ck` becomes
/// `Mux(c1 && … && ck, rhs, previous)`.
///
/// # Errors
///
/// Returns a [`PassError`] for constructs outside the scalar connect
/// subset; see the enum's variants.
pub fn flatten_whens(m: &Module) -> Result<Module, PassError> {
    flatten_whens_impl(m, false)
}

/// The deliberately broken variant behind the fuzzer's injected-bug drill:
/// identical to [`flatten_whens`] except that a connect nested under
/// several `when` guards keeps only the *innermost* guard — outer
/// conjuncts are dropped, so the connect fires even when an enclosing
/// `when` is false. The fuzzer must detect this divergence and shrink it
/// to a minimal nested-`when` reproducer.
#[doc(hidden)]
pub fn flatten_whens_dropping_guards(m: &Module) -> Result<Module, PassError> {
    flatten_whens_impl(m, true)
}

fn conj(conds: &[Expr], drop_outer_guards: bool) -> Option<Expr> {
    if drop_outer_guards {
        return conds.last().cloned();
    }
    conds.iter().cloned().reduce(|a, b| a.and(b))
}

/// The elaboration default a signal resolves to when no connect fires.
fn default_driver(name: &str, ty: &ChiselType, kind: &SignalKind) -> Result<Expr, PassError> {
    if matches!(kind, SignalKind::Reg { .. }) {
        // A register with no firing connect keeps its value.
        return Ok(Expr::sig(name));
    }
    match ty {
        ChiselType::Bool => Ok(Expr::lit_b(false)),
        ChiselType::UInt(w) => Ok(Expr::lit_u(0, w.clone())),
        ChiselType::SInt(w) => Ok(Expr::lit_s(0, w.clone())),
        _ => Err(PassError::AggregateDefault(name.to_string())),
    }
}

fn fold_body(
    m: &Module,
    body: &[Stmt],
    conds: &mut Vec<Expr>,
    drivers: &mut BTreeMap<String, Expr>,
    drop_outer_guards: bool,
) -> Result<(), PassError> {
    for s in body {
        match s {
            Stmt::For { .. } => return Err(PassError::ForLoop),
            Stmt::Connect { lhs, rhs } => {
                if !lhs.path.is_empty() {
                    return Err(PassError::AggregateTarget(lhs.base.clone()));
                }
                let decl = m
                    .decl(&lhs.base)
                    .ok_or_else(|| PassError::UndeclaredTarget(lhs.base.clone()))?;
                if matches!(decl.kind, SignalKind::Input | SignalKind::Node(_)) {
                    return Err(PassError::BadTargetKind(lhs.base.clone()));
                }
                let prev = match drivers.get(&lhs.base) {
                    Some(e) => e.clone(),
                    None => default_driver(&decl.name, &decl.ty, &decl.kind)?,
                };
                let folded = match conj(conds, drop_outer_guards) {
                    Some(guard) => guard.mux(rhs.clone(), prev),
                    None => rhs.clone(),
                };
                drivers.insert(lhs.base.clone(), folded);
            }
            Stmt::When { cond, then_body, else_body } => {
                conds.push(cond.clone());
                fold_body(m, then_body, conds, drivers, drop_outer_guards)?;
                conds.pop();
                conds.push(cond.clone().not());
                fold_body(m, else_body, conds, drivers, drop_outer_guards)?;
                conds.pop();
            }
        }
    }
    Ok(())
}

fn flatten_whens_impl(m: &Module, drop_outer_guards: bool) -> Result<Module, PassError> {
    let mut drivers = BTreeMap::new();
    fold_body(m, &m.body, &mut Vec::new(), &mut drivers, drop_outer_guards)?;
    // Emit in declaration order so the output is deterministic and reads
    // like a port list.
    let body = m
        .decls
        .iter()
        .filter_map(|d| {
            drivers.remove(&d.name).map(|rhs| Stmt::Connect { lhs: LValue::new(&d.name), rhs })
        })
        .collect();
    Ok(Module {
        name: format!("{}_flat", m.name),
        params: m.params.clone(),
        decls: m.decls.clone(),
        funcs: m.funcs.clone(),
        body,
    })
}

// ---------------------------------------------------------------------
// Structural metrics (the shrinker's termination measure).
// ---------------------------------------------------------------------

fn expr_nodes(e: &Expr) -> u64 {
    1 + match e {
        Expr::LitU { .. } | Expr::LitS { .. } | Expr::LitB(_) | Expr::Ref(_) => 0,
        Expr::Unop(_, a) => expr_nodes(a),
        Expr::Binop(_, a, b) => expr_nodes(a) + expr_nodes(b),
        Expr::Mux(c, t, f) => expr_nodes(c) + expr_nodes(t) + expr_nodes(f),
        Expr::Extract { arg, .. }
        | Expr::ShlP { arg, .. }
        | Expr::ShrP { arg, .. }
        | Expr::Fill { arg, .. } => expr_nodes(arg),
        Expr::BitAt { arg, index } => expr_nodes(arg) + expr_nodes(index),
        Expr::Call { args, .. } => args.iter().map(expr_nodes).sum(),
    }
}

fn stmt_nodes(s: &Stmt) -> u64 {
    match s {
        Stmt::Connect { rhs, .. } => 1 + expr_nodes(rhs),
        Stmt::When { cond, then_body, else_body } => {
            1 + expr_nodes(cond)
                + then_body.iter().map(stmt_nodes).sum::<u64>()
                + else_body.iter().map(stmt_nodes).sum::<u64>()
        }
        Stmt::For { body, .. } => 1 + body.iter().map(stmt_nodes).sum::<u64>(),
    }
}

/// Total IR size: declarations plus statement and expression nodes (loop
/// bodies counted once, not per unrolled iteration).
pub fn node_count(m: &Module) -> u64 {
    m.decls.len() as u64 + m.body.iter().map(stmt_nodes).sum::<u64>()
}

fn stmt_depth(s: &Stmt) -> u64 {
    match s {
        Stmt::Connect { .. } => 0,
        Stmt::When { then_body, else_body, .. } => {
            1 + then_body
                .iter()
                .chain(else_body)
                .map(stmt_depth)
                .max()
                .unwrap_or(0)
        }
        Stmt::For { body, .. } => body.iter().map(stmt_depth).max().unwrap_or(0),
    }
}

/// Maximum `when` nesting depth of the module body.
pub fn when_depth(m: &Module) -> u64 {
    m.body.iter().map(stmt_depth).max().unwrap_or(0)
}

/// A total order on declared widths for the shrinker's width component:
/// the width evaluated at a fixed witness parameter value (`len = 8`),
/// summed over all declarations. Strictly narrowing any declaration
/// strictly reduces the sum.
pub fn width_rank(m: &Module) -> u64 {
    let bind: crate::pexpr::Bindings = [("len".to_string(), 8i64)].into_iter().collect();
    m.decls
        .iter()
        .map(|d| match &d.ty {
            ChiselType::Bool => 1,
            ty => ty
                .width()
                .and_then(|w| w.eval(&bind).ok())
                .map(|v| v.max(1) as u64)
                .unwrap_or(1),
        })
        .sum()
}

/// The shrinker's lexicographic termination measure:
/// `(node_count, width_rank, when_depth)`.
pub fn measure(m: &Module) -> (u64, u64, u64) {
    (node_count(m), width_rank(m), when_depth(m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::elab::elaborate;
    use crate::examples::rotate_example;
    use crate::interp::Simulator;
    use chicala_bigint::BigInt;
    use std::collections::BTreeMap;

    fn step_all(m: &Module, len: i64, inputs: &[(&str, u64)], cycles: u32) -> BTreeMap<String, BigInt> {
        let bind = [("len".to_string(), len)].into_iter().collect();
        let em = elaborate(m, &bind).expect("elaborates");
        let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
        let ins: BTreeMap<String, BigInt> =
            inputs.iter().map(|(n, v)| (n.to_string(), BigInt::from(*v))).collect();
        let mut outs = BTreeMap::new();
        for _ in 0..cycles {
            outs = sim.step(&ins).expect("steps");
        }
        for (r, v) in sim.regs() {
            outs.insert(format!("reg:{r}"), v.clone());
        }
        outs
    }

    #[test]
    fn flatten_preserves_rotate_observably() {
        let m = rotate_example();
        let flat = flatten_whens(&m).expect("rotate is in the scalar subset");
        assert_eq!(when_depth(&flat), 0, "no whens survive");
        for len in [2i64, 3, 5, 8] {
            for x in [0u64, 1, 9, 0b1011] {
                for cycles in [1u32, 2, 5] {
                    let a = step_all(&m, len, &[("io_in", x)], cycles);
                    let b = step_all(&flat, len, &[("io_in", x)], cycles);
                    assert_eq!(a, b, "len={len} x={x} cycles={cycles}");
                }
            }
        }
    }

    #[test]
    fn dropping_guards_changes_nested_when_behaviour() {
        // y := 1 only when a && b; the buggy fold keeps only `b`.
        let mut mb = ModuleBuilder::new("Nest", &["len"]);
        let len = mb.param("len");
        let a = mb.input("a", ChiselType::Bool);
        let b = mb.input("b", ChiselType::Bool);
        let y = mb.output("y", ChiselType::uint(len.clone()));
        let (bc, yc, lc) = (b.clone(), y.clone(), len.clone());
        mb.when(a.e(), move |s| {
            s.when(bc.e(), move |s| s.connect(yc.lv(), Expr::lit_u(1, lc.clone())));
        });
        let m = mb.build();
        let good = flatten_whens(&m).expect("subset");
        let bad = flatten_whens_dropping_guards(&m).expect("subset");
        // a=0, b=1: correct fold keeps the default 0; buggy fold drives 1.
        let ins = [("a", 0u64), ("b", 1u64)];
        assert_eq!(step_all(&m, 4, &ins, 1), step_all(&good, 4, &ins, 1));
        assert_ne!(step_all(&m, 4, &ins, 1), step_all(&bad, 4, &ins, 1));
    }

    #[test]
    fn for_loops_and_aggregates_rejected() {
        let mut mb = ModuleBuilder::new("Loopy", &["n"]);
        let n = mb.param("n");
        let v = mb.wire("v", ChiselType::vec(ChiselType::Bool, n.clone()));
        mb.for_each("i", 0, n, |s, i| s.connect(v.lv_at(i), Expr::lit_b(false)));
        assert_eq!(flatten_whens(&mb.build()), Err(PassError::ForLoop));
    }

    #[test]
    fn metrics_are_sane() {
        let m = rotate_example();
        assert!(node_count(&m) > 10);
        assert!(when_depth(&m) >= 2, "rotate nests whens");
        assert!(width_rank(&m) > 0);
        let flat = flatten_whens(&m).expect("subset");
        assert_eq!(width_rank(&m), width_rank(&flat), "decls unchanged");
    }
}
