//! Cycle-accurate interpretation of elaborated modules.
//!
//! This is the reference semantics of the Chisel subset: each call to
//! [`Simulator::step`] evaluates every combinational driver (memoised, in
//! dependency order, detecting combinational loops) and then commits the
//! registers' next values — i.e. one clock tick. Co-simulation against the
//! generated sequential programs (the paper's future-work validation) is
//! built on this interpreter.

use crate::elab::{ElabKind, ElabModule};
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::pexpr::PExpr;
use chicala_bigint::BigInt;
use chicala_telemetry as telemetry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A value together with its concrete hardware type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypedValue {
    /// Interpreted value: in `[0, 2^width)` for unsigned, in
    /// `[-2^(width-1), 2^(width-1))` for signed.
    pub value: BigInt,
    /// Width in bits.
    pub width: u64,
    /// Signedness.
    pub signed: bool,
}

impl TypedValue {
    /// An unsigned value, clamped into range.
    pub fn uint(value: BigInt, width: u64) -> TypedValue {
        TypedValue { value: value.to_unsigned(width), width, signed: false }
    }

    /// A signed value, clamped into range.
    pub fn sint(value: BigInt, width: u64) -> TypedValue {
        TypedValue { value: value.to_signed(width), width, signed: true }
    }

    /// A boolean value.
    pub fn bool(value: bool) -> TypedValue {
        TypedValue { value: BigInt::from(value), width: 1, signed: false }
    }

    /// The raw-bits (unsigned) view of the value.
    pub fn bits(&self) -> BigInt {
        self.value.to_unsigned(self.width)
    }

    /// Whether the value is non-zero.
    pub fn is_true(&self) -> bool {
        !self.value.is_zero()
    }

    fn clamp(self, width: u64, signed: bool) -> TypedValue {
        if signed {
            TypedValue::sint(self.value, width)
        } else {
            TypedValue::uint(self.bits(), width)
        }
    }
}

/// Errors raised during simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A referenced signal does not exist.
    UnknownSignal(String),
    /// Combinational cycle through the named signal.
    CombLoop(String),
    /// A residual `Call` survived elaboration.
    ResidualCall(String),
    /// An ill-formed extraction range.
    BadExtract(i64, i64),
    /// A literal or parameter failed to evaluate.
    BadLiteral(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            SimError::CombLoop(n) => write!(f, "combinational loop through `{n}`"),
            SimError::ResidualCall(n) => write!(f, "unelaborated call to `{n}`"),
            SimError::BadExtract(hi, lo) => write!(f, "bad extraction range ({hi}, {lo})"),
            SimError::BadLiteral(e) => write!(f, "literal evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A cycle-accurate simulator over an elaborated module.
///
/// # Examples
///
/// ```
/// use chicala_chisel::{examples, elaborate, Simulator};
/// use chicala_bigint::BigInt;
/// use std::collections::BTreeMap;
///
/// let m = examples::rotate_example();
/// let bindings = [("len".to_string(), 4i64)].into_iter().collect();
/// let em = elaborate(&m, &bindings)?;
/// let mut sim = Simulator::new(&em, &BTreeMap::new())?;
/// let inputs: BTreeMap<String, BigInt> =
///     [("io_in".to_string(), BigInt::from(0b1001))].into_iter().collect();
/// // After 1 + len cycles the register regains io_in (paper §2).
/// for _ in 0..5 {
///     sim.step(&inputs)?;
/// }
/// assert_eq!(sim.reg("R").expect("declared"), &BigInt::from(0b1001));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    em: &'m ElabModule,
    regs: BTreeMap<String, BigInt>,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator; registers declared with `RegInit` take their
    /// reset value, other registers take `overrides` (or zero).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from constant reset expressions.
    pub fn new(
        em: &'m ElabModule,
        overrides: &BTreeMap<String, BigInt>,
    ) -> Result<Simulator<'m>, SimError> {
        let mut regs = BTreeMap::new();
        for sig in &em.signals {
            if let ElabKind::Reg { init } = &sig.kind {
                let v = match init {
                    Some(e) => {
                        let mut ev = Evaluator {
                            em,
                            inputs: &BTreeMap::new(),
                            regs: &BTreeMap::new(),
                            cache: BTreeMap::new(),
                            visiting: BTreeSet::new(),
                        };
                        ev.eval(e)?.clamp(sig.width, sig.signed).value
                    }
                    None => match overrides.get(&sig.name) {
                        Some(v) => {
                            if sig.signed {
                                v.to_signed(sig.width)
                            } else {
                                v.to_unsigned(sig.width)
                            }
                        }
                        None => BigInt::zero(),
                    },
                };
                regs.insert(sig.name.clone(), v);
            }
        }
        Ok(Simulator { em, regs })
    }

    /// Current value of a register.
    pub fn reg(&self, name: &str) -> Option<&BigInt> {
        self.regs.get(name)
    }

    /// All current register values.
    pub fn regs(&self) -> &BTreeMap<String, BigInt> {
        &self.regs
    }

    /// Runs one clock cycle: evaluates outputs from the current register
    /// state and the given inputs, then commits register updates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or malformed drivers.
    pub fn step(
        &mut self,
        inputs: &BTreeMap<String, BigInt>,
    ) -> Result<BTreeMap<String, BigInt>, SimError> {
        telemetry::counter("chisel.cycles", 1);
        let mut ev = Evaluator {
            em: self.em,
            inputs,
            regs: &self.regs,
            cache: BTreeMap::new(),
            visiting: BTreeSet::new(),
        };
        let mut outputs = BTreeMap::new();
        for name in self.em.output_names() {
            let tv = ev.eval_signal(&name)?;
            outputs.insert(name, tv.value);
        }
        // Evaluate all register next-values before committing any.
        let mut next = BTreeMap::new();
        for sig in &self.em.signals {
            if let ElabKind::Reg { .. } = sig.kind {
                let drv = self
                    .em
                    .drivers
                    .get(&sig.name)
                    .ok_or_else(|| SimError::UnknownSignal(sig.name.clone()))?;
                let tv = ev.eval(drv)?.clamp(sig.width, sig.signed);
                next.insert(sig.name.clone(), tv.value);
            }
        }
        self.regs = next;
        Ok(outputs)
    }

    /// Peeks a combinational signal's value for the current cycle without
    /// advancing the clock.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on combinational loops or unknown signals.
    pub fn peek(
        &self,
        name: &str,
        inputs: &BTreeMap<String, BigInt>,
    ) -> Result<BigInt, SimError> {
        let mut ev = Evaluator {
            em: self.em,
            inputs,
            regs: &self.regs,
            cache: BTreeMap::new(),
            visiting: BTreeSet::new(),
        };
        Ok(ev.eval_signal(name)?.value)
    }
}

struct Evaluator<'a> {
    em: &'a ElabModule,
    inputs: &'a BTreeMap<String, BigInt>,
    regs: &'a BTreeMap<String, BigInt>,
    cache: BTreeMap<String, TypedValue>,
    visiting: BTreeSet<String>,
}

impl Evaluator<'_> {
    fn eval_signal(&mut self, name: &str) -> Result<TypedValue, SimError> {
        if let Some(v) = self.cache.get(name) {
            return Ok(v.clone());
        }
        let sig = self
            .em
            .signal(name)
            .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?;
        let tv = match &sig.kind {
            ElabKind::Input => {
                let raw = self.inputs.get(name).cloned().unwrap_or_else(BigInt::zero);
                TypedValue { value: raw, width: sig.width, signed: sig.signed }
                    .clamp(sig.width, sig.signed)
            }
            ElabKind::Reg { .. } => {
                let raw = self.regs.get(name).cloned().unwrap_or_else(BigInt::zero);
                TypedValue { value: raw, width: sig.width, signed: sig.signed }
            }
            ElabKind::Output | ElabKind::Wire => {
                if !self.visiting.insert(name.to_string()) {
                    return Err(SimError::CombLoop(name.to_string()));
                }
                let drv = self
                    .em
                    .drivers
                    .get(name)
                    .ok_or_else(|| SimError::UnknownSignal(name.to_string()))?
                    .clone();
                let v = self.eval(&drv)?.clamp(sig.width, sig.signed);
                self.visiting.remove(name);
                v
            }
        };
        self.cache.insert(name.to_string(), tv.clone());
        Ok(tv)
    }

    fn pexpr(&self, p: &PExpr) -> Result<i64, SimError> {
        p.eval(&self.em.bindings).map_err(|e| SimError::BadLiteral(e.to_string()))
    }

    fn eval(&mut self, e: &Expr) -> Result<TypedValue, SimError> {
        Ok(match e {
            Expr::LitU { value, width } => {
                let v = BigInt::from(self.pexpr(value)?);
                let w = match width {
                    Some(w) => self.pexpr(w)? as u64,
                    None => v.bit_len().max(1),
                };
                TypedValue::uint(v, w)
            }
            Expr::LitS { value, width } => {
                let v = BigInt::from(self.pexpr(value)?);
                let w = match width {
                    Some(w) => self.pexpr(w)? as u64,
                    None => v.abs().bit_len() + 1,
                };
                TypedValue::sint(v, w)
            }
            Expr::LitB(b) => TypedValue::bool(*b),
            Expr::Ref(r) => {
                debug_assert!(r.path.is_empty(), "paths are resolved during elaboration");
                self.eval_signal(&r.base)?
            }
            Expr::Unop(op, a) => self.eval_unop(*op, a)?,
            Expr::Binop(op, a, b) => self.eval_binop(*op, a, b)?,
            Expr::Mux(c, t, f) => {
                let cv = self.eval(c)?;
                let tv = self.eval(t)?;
                let fv = self.eval(f)?;
                let width = tv.width.max(fv.width);
                let signed = tv.signed && fv.signed;
                let pick = if cv.is_true() { tv } else { fv };
                pick.clamp(width, signed)
            }
            Expr::Extract { arg, hi, lo } => {
                let a = self.eval(arg)?;
                let (hi, lo) = (self.pexpr(hi)?, self.pexpr(lo)?);
                if hi < lo || lo < 0 {
                    return Err(SimError::BadExtract(hi, lo));
                }
                let w = (hi - lo + 1) as u64;
                let u = a.bits() >> lo as u64;
                TypedValue::uint(u, w)
            }
            Expr::BitAt { arg, index } => {
                let a = self.eval(arg)?;
                let i = self.eval(index)?;
                let bit = match u64::try_from(&i.value) {
                    Ok(i) if i < a.width => a.bits().bit(i),
                    _ => false,
                };
                TypedValue::bool(bit)
            }
            Expr::ShlP { arg, amount } => {
                let a = self.eval(arg)?;
                let k = self.pexpr(amount)? as u64;
                let w = a.width + k;
                if a.signed {
                    TypedValue::sint(a.value << k, w)
                } else {
                    TypedValue::uint(a.bits() << k, w)
                }
            }
            Expr::ShrP { arg, amount } => {
                let a = self.eval(arg)?;
                let k = self.pexpr(amount)? as u64;
                if a.signed {
                    TypedValue::sint(a.value >> k, a.width)
                } else {
                    let w = a.width.saturating_sub(k).max(1);
                    TypedValue::uint(a.bits() >> k, w)
                }
            }
            Expr::Fill { times, arg } => {
                let a = self.eval(arg)?;
                let n = self.pexpr(times)? as u64;
                let u = a.bits();
                let mut acc = BigInt::zero();
                for i in 0..n {
                    acc = acc + (u.clone() << (i * a.width));
                }
                TypedValue::uint(acc, (n * a.width).max(1))
            }
            Expr::Call { func, .. } => return Err(SimError::ResidualCall(func.clone())),
        })
    }

    fn eval_unop(&mut self, op: UnaryOp, a: &Expr) -> Result<TypedValue, SimError> {
        let a = self.eval(a)?;
        Ok(match op {
            UnaryOp::Not => {
                let u = a.bits().not_within(a.width);
                if a.signed {
                    TypedValue::sint(u, a.width)
                } else {
                    TypedValue::uint(u, a.width)
                }
            }
            UnaryOp::LogicNot => TypedValue::bool(!a.is_true()),
            UnaryOp::Neg => {
                if a.signed {
                    TypedValue::sint(-a.value, a.width)
                } else {
                    TypedValue::uint(-a.bits(), a.width)
                }
            }
            UnaryOp::OrR => TypedValue::bool(!a.bits().is_zero()),
            UnaryOp::AndR => {
                TypedValue::bool(a.bits() == BigInt::pow2(a.width) - BigInt::one())
            }
            UnaryOp::XorR => TypedValue::bool(a.bits().count_ones() % 2 == 1),
            UnaryOp::AsUInt => TypedValue::uint(a.bits(), a.width),
            UnaryOp::AsSInt => TypedValue::sint(a.bits(), a.width),
            UnaryOp::AsBool => TypedValue::bool(a.is_true()),
        })
    }

    fn eval_binop(&mut self, op: BinaryOp, a: &Expr, b: &Expr) -> Result<TypedValue, SimError> {
        let a = self.eval(a)?;
        let b = self.eval(b)?;
        let wmax = a.width.max(b.width);
        let signed = a.signed && b.signed;
        Ok(match op {
            BinaryOp::Add => wrap(a.value + b.value, wmax, signed),
            BinaryOp::Sub => wrap(a.value - b.value, wmax, signed),
            BinaryOp::Mul => {
                let w = a.width + b.width;
                wrap(a.value * b.value, w, signed)
            }
            BinaryOp::Div => {
                if b.value.is_zero() {
                    wrap(BigInt::zero(), a.width, signed)
                } else if signed {
                    wrap(a.value.div_rem(&b.value).0, a.width, true)
                } else {
                    wrap(a.value.div_floor(&b.value), a.width, false)
                }
            }
            BinaryOp::Rem => {
                let w = a.width.min(b.width);
                if b.value.is_zero() {
                    wrap(a.value, w, signed)
                } else if signed {
                    wrap(a.value.div_rem(&b.value).1, w, true)
                } else {
                    wrap(a.value.mod_floor(&b.value), w, false)
                }
            }
            BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => {
                let ua = a.value.to_unsigned(wmax);
                let ub = b.value.to_unsigned(wmax);
                let u = match op {
                    BinaryOp::And => ua & ub,
                    BinaryOp::Or => ua | ub,
                    _ => ua ^ ub,
                };
                wrap(u, wmax, false).clamp(wmax, signed)
            }
            BinaryOp::LogicAnd => TypedValue::bool(a.is_true() && b.is_true()),
            BinaryOp::LogicOr => TypedValue::bool(a.is_true() || b.is_true()),
            BinaryOp::Eq => TypedValue::bool(a.value == b.value),
            BinaryOp::Neq => TypedValue::bool(a.value != b.value),
            BinaryOp::Lt => TypedValue::bool(a.value < b.value),
            BinaryOp::Le => TypedValue::bool(a.value <= b.value),
            BinaryOp::Gt => TypedValue::bool(a.value > b.value),
            BinaryOp::Ge => TypedValue::bool(a.value >= b.value),
            BinaryOp::Cat => {
                let w = a.width + b.width;
                TypedValue::uint((a.bits() << b.width) + b.bits(), w)
            }
            BinaryOp::Shl => {
                // Dynamic shift, truncating to the operand width (documented
                // simplification of Chisel's expanding dynamic shift).
                let k = u64::try_from(&b.bits()).unwrap_or(u64::MAX);
                if k >= a.width {
                    wrap(BigInt::zero(), a.width, a.signed)
                } else {
                    wrap(a.bits() << k, a.width, a.signed)
                }
            }
            BinaryOp::Shr => {
                let k = u64::try_from(&b.bits()).unwrap_or(u64::MAX);
                if a.signed {
                    wrap(a.value >> k.min(1 << 20), a.width, true)
                } else if k >= a.width {
                    wrap(BigInt::zero(), a.width, false)
                } else {
                    wrap(a.bits() >> k, a.width, false)
                }
            }
        })
    }
}

fn wrap(v: BigInt, width: u64, signed: bool) -> TypedValue {
    if signed {
        TypedValue::sint(v, width)
    } else {
        TypedValue::uint(v, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::elaborate;
    use crate::examples;

    fn bindings(len: i64) -> crate::pexpr::Bindings {
        [("len".to_string(), len)].into_iter().collect()
    }

    fn run_rotate(len: i64, input: u64, cycles: usize) -> (BigInt, BigInt) {
        let m = examples::rotate_example();
        let em = elaborate(&m, &bindings(len)).expect("elaborates");
        let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
        let inputs: BTreeMap<String, BigInt> =
            [("io_in".to_string(), BigInt::from(input))].into_iter().collect();
        let mut outs = BTreeMap::new();
        for _ in 0..cycles {
            outs = sim.step(&inputs).expect("steps");
        }
        (
            sim.reg("R").expect("declared").clone(),
            outs.remove("io_ready").unwrap_or_else(BigInt::zero),
        )
    }

    #[test]
    fn rotate_follows_paper_trace() {
        // len=4, io_in=1001: after the 1st cycle R=1001, then 1100, 0110,
        // 0011, 1001 (paper §2).
        let expected = [0b1001u64, 0b1100, 0b0110, 0b0011, 0b1001];
        for (i, &want) in expected.iter().enumerate() {
            let (r, _) = run_rotate(4, 0b1001, i + 1);
            assert_eq!(r, BigInt::from(want), "after {} cycles", i + 1);
        }
    }

    #[test]
    fn rotate_ready_goes_low_then_high() {
        let m = examples::rotate_example();
        let em = elaborate(&m, &bindings(4)).expect("elaborates");
        let mut sim = Simulator::new(&em, &BTreeMap::new()).expect("constructs");
        let inputs: BTreeMap<String, BigInt> =
            [("io_in".to_string(), BigInt::from(5))].into_iter().collect();
        // Cycle 1: ready (state) is initially true.
        let o = sim.step(&inputs).expect("steps");
        assert_eq!(o["io_ready"], BigInt::one());
        // Cycles 2..=4: busy rotating.
        for _ in 0..3 {
            let o = sim.step(&inputs).expect("steps");
            assert_eq!(o["io_ready"], BigInt::zero());
        }
        // Cycle 5: cnt reached len-1 in cycle 5's *start* state? state goes
        // true at end of cycle 5, so ready is observed true in cycle 6.
        let o = sim.step(&inputs).expect("steps");
        assert_eq!(o["io_ready"], BigInt::zero());
        let o = sim.step(&inputs).expect("steps");
        assert_eq!(o["io_ready"], BigInt::one());
    }

    #[test]
    fn typed_value_clamps() {
        assert_eq!(TypedValue::uint(BigInt::from(19), 4).value, BigInt::from(3));
        assert_eq!(TypedValue::sint(BigInt::from(9), 4).value, BigInt::from(-7));
        assert!(TypedValue::bool(true).is_true());
        assert_eq!(TypedValue::sint(BigInt::from(-3), 4).bits(), BigInt::from(13));
    }
}
