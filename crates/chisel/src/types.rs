//! The Chisel-subset type system: `UInt`, `SInt`, `Bool`, `Vec`, `Bundle`.

use crate::pexpr::PExpr;
use std::fmt;

/// A hardware type of the Chisel subset.
///
/// Widths and vector lengths are symbolic [`PExpr`]s so that a single design
/// covers all bit widths, exactly as in the paper.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum ChiselType {
    /// Unsigned bit-vector of the given width.
    UInt(PExpr),
    /// Two's-complement signed bit-vector of the given width.
    SInt(PExpr),
    /// Single boolean bit.
    Bool,
    /// Homogeneous vector of the given element type and length.
    Vec(Box<ChiselType>, PExpr),
    /// Record of named fields (order significant).
    Bundle(Vec<(String, ChiselType)>),
}

impl ChiselType {
    /// `UInt(width.W)`.
    pub fn uint(width: impl Into<PExpr>) -> ChiselType {
        ChiselType::UInt(width.into())
    }

    /// `SInt(width.W)`.
    pub fn sint(width: impl Into<PExpr>) -> ChiselType {
        ChiselType::SInt(width.into())
    }

    /// `Vec(len, elem)`.
    pub fn vec(elem: ChiselType, len: impl Into<PExpr>) -> ChiselType {
        ChiselType::Vec(Box::new(elem), len.into())
    }

    /// The width of a ground (non-aggregate) type.
    pub fn width(&self) -> Option<&PExpr> {
        match self {
            ChiselType::UInt(w) | ChiselType::SInt(w) => Some(w),
            _ => None,
        }
    }

    /// Whether this is a ground (scalar) type.
    pub fn is_ground(&self) -> bool {
        matches!(self, ChiselType::UInt(_) | ChiselType::SInt(_) | ChiselType::Bool)
    }

    /// Whether values of this type carry a sign.
    pub fn is_signed(&self) -> bool {
        matches!(self, ChiselType::SInt(_))
    }
}

impl fmt::Display for ChiselType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChiselType::UInt(w) => write!(f, "UInt({w}.W)"),
            ChiselType::SInt(w) => write!(f, "SInt({w}.W)"),
            ChiselType::Bool => write!(f, "Bool()"),
            ChiselType::Vec(e, n) => write!(f, "Vec({n}, {e})"),
            ChiselType::Bundle(fields) => {
                write!(f, "Bundle {{ ")?;
                for (i, (name, ty)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {ty}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

impl fmt::Debug for ChiselType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_queries() {
        let u = ChiselType::uint(PExpr::param("len"));
        assert!(u.is_ground());
        assert!(!u.is_signed());
        assert_eq!(u.width(), Some(&PExpr::param("len")));

        let s = ChiselType::sint(8);
        assert!(s.is_signed());

        let v = ChiselType::vec(ChiselType::Bool, PExpr::param("n"));
        assert!(!v.is_ground());
        assert_eq!(v.width(), None);
    }

    #[test]
    fn display() {
        let b = ChiselType::Bundle(vec![
            ("in".into(), ChiselType::uint(PExpr::param("len"))),
            ("ready".into(), ChiselType::Bool),
        ]);
        assert_eq!(b.to_string(), "Bundle { in: UInt(len.W), ready: Bool() }");
    }
}
