//! Expressions of the Chisel subset: literals, signal references, and the
//! arithmetic / bitwise / comparison operators the case-study designs use.

use crate::pexpr::PExpr;
use std::fmt;

/// A reference to (part of) a signal: a base name plus a path of bundle
/// fields and vector indices, e.g. `io.in` or `cols(i)(j)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SignalRef {
    /// The declared signal name.
    pub base: String,
    /// Field and index accessors applied to the base.
    pub path: Vec<Accessor>,
}

/// One step into an aggregate value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Accessor {
    /// Bundle field selection, `x.f`.
    Field(String),
    /// Vector element selection `x(i)`. Static ([`PExpr`]) indices cover
    /// loop-variable indexing; a dynamic index is an arbitrary [`Expr`].
    Index(Box<Expr>),
}

impl SignalRef {
    /// A bare signal reference.
    pub fn new(base: impl Into<String>) -> SignalRef {
        SignalRef { base: base.into(), path: Vec::new() }
    }

    /// Selects a bundle field.
    pub fn field(mut self, name: impl Into<String>) -> SignalRef {
        self.path.push(Accessor::Field(name.into()));
        self
    }

    /// Selects a vector element.
    pub fn index(mut self, idx: impl Into<Expr>) -> SignalRef {
        self.path.push(Accessor::Index(Box::new(idx.into())));
        self
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnaryOp {
    /// Bitwise complement `~x` within the operand width.
    Not,
    /// Boolean negation `!x`.
    LogicNot,
    /// Two's-complement negation `-x` (wraps within the operand width).
    Neg,
    /// OR-reduction `x.orR`.
    OrR,
    /// AND-reduction `x.andR`.
    AndR,
    /// XOR-reduction (parity) `x.xorR`.
    XorR,
    /// Bit reinterpretation to unsigned, `x.asUInt`.
    AsUInt,
    /// Bit reinterpretation to signed, `x.asSInt`.
    AsSInt,
    /// Width-1 reinterpretation to `Bool`.
    AsBool,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinaryOp {
    /// `+` (non-expanding: result width is the max of the operand widths).
    Add,
    /// `-` (non-expanding).
    Sub,
    /// `*` (expanding: result width is the sum of the operand widths).
    Mul,
    /// `/` (flooring on `UInt`, truncating on `SInt`).
    Div,
    /// `%`.
    Rem,
    /// Bitwise `&`.
    And,
    /// Bitwise `|`.
    Or,
    /// Bitwise `^`.
    Xor,
    /// Boolean `&&`.
    LogicAnd,
    /// Boolean `||`.
    LogicOr,
    /// `===`.
    Eq,
    /// `=/=`.
    Neq,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// Concatenation `Cat(hi, lo)`.
    Cat,
    /// Dynamic left shift `x << y` (truncated to the left operand's width).
    Shl,
    /// Dynamic right shift `x >> y`.
    Shr,
}

impl BinaryOp {
    /// Whether the operator yields a `Bool`.
    pub fn is_predicate(self) -> bool {
        use BinaryOp::*;
        matches!(self, LogicAnd | LogicOr | Eq | Neq | Lt | Le | Gt | Ge)
    }
}

/// An expression of the Chisel subset.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Unsigned literal `value.U(width.W)`; the value may mention parameters
    /// (e.g. `(len - 1).U`). `width: None` means the minimal width (only
    /// allowed for constant values).
    LitU {
        /// Literal value as a parameter expression.
        value: PExpr,
        /// Declared width, if any.
        width: Option<PExpr>,
    },
    /// Signed literal `value.S(width.W)`.
    LitS {
        /// Literal value as a parameter expression.
        value: PExpr,
        /// Declared width, if any.
        width: Option<PExpr>,
    },
    /// Boolean literal `true.B` / `false.B`.
    LitB(bool),
    /// Signal reference.
    Ref(SignalRef),
    /// Unary operator application.
    Unop(UnaryOp, Box<Expr>),
    /// Binary operator application.
    Binop(BinaryOp, Box<Expr>, Box<Expr>),
    /// Two-way multiplexer `Mux(cond, tval, fval)`.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Static bit-range extraction `x(hi, lo)`.
    Extract {
        /// Extracted operand.
        arg: Box<Expr>,
        /// Most significant extracted bit.
        hi: PExpr,
        /// Least significant extracted bit.
        lo: PExpr,
    },
    /// Dynamic single-bit extraction `x(i)` with a signal-valued index.
    BitAt {
        /// Extracted operand.
        arg: Box<Expr>,
        /// Bit index.
        index: Box<Expr>,
    },
    /// Static left shift `x << k` (expanding: width grows by `k`).
    ShlP {
        /// Shifted operand.
        arg: Box<Expr>,
        /// Shift amount.
        amount: PExpr,
    },
    /// Static right shift `x >> k`.
    ShrP {
        /// Shifted operand.
        arg: Box<Expr>,
        /// Shift amount.
        amount: PExpr,
    },
    /// Replication `Fill(times, x)`.
    Fill {
        /// Replication count.
        times: PExpr,
        /// Replicated operand.
        arg: Box<Expr>,
    },
    /// Invocation of a combinational module-local function.
    Call {
        /// Function name.
        func: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
}

// Builder methods deliberately mirror Chisel's operator names (`not`,
// `shl`, ...) rather than implementing the std::ops traits: they build IR
// nodes, not values.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Unsigned literal of explicit width.
    pub fn lit_u(value: impl Into<PExpr>, width: impl Into<PExpr>) -> Expr {
        Expr::LitU { value: value.into(), width: Some(width.into()) }
    }

    /// Unsigned literal of inferred (minimal) width; the value must be a
    /// constant.
    pub fn lit(value: impl Into<PExpr>) -> Expr {
        Expr::LitU { value: value.into(), width: None }
    }

    /// Signed literal of explicit width.
    pub fn lit_s(value: impl Into<PExpr>, width: impl Into<PExpr>) -> Expr {
        Expr::LitS { value: value.into(), width: Some(width.into()) }
    }

    /// Boolean literal.
    pub fn lit_b(value: bool) -> Expr {
        Expr::LitB(value)
    }

    /// Reference to a bare signal.
    pub fn sig(name: impl Into<String>) -> Expr {
        Expr::Ref(SignalRef::new(name))
    }

    fn un(op: UnaryOp, e: Expr) -> Expr {
        Expr::Unop(op, Box::new(e))
    }

    fn bin(op: BinaryOp, a: Expr, b: Expr) -> Expr {
        Expr::Binop(op, Box::new(a), Box::new(b))
    }

    /// `Cat(self, lo)` — `self` supplies the high bits.
    pub fn cat(self, lo: Expr) -> Expr {
        Expr::bin(BinaryOp::Cat, self, lo)
    }

    /// `self === other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Eq, self, other)
    }

    /// `self =/= other`.
    pub fn neq(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Neq, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Le, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Ge, self, other)
    }

    /// `self && other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::LogicAnd, self, other)
    }

    /// `self || other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::LogicOr, self, other)
    }

    /// `!self`.
    pub fn not(self) -> Expr {
        Expr::un(UnaryOp::LogicNot, self)
    }

    /// Bitwise `~self`.
    pub fn bit_not(self) -> Expr {
        Expr::un(UnaryOp::Not, self)
    }

    /// Bitwise `self & other`.
    pub fn bit_and(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::And, self, other)
    }

    /// Bitwise `self | other`.
    pub fn bit_or(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Or, self, other)
    }

    /// Bitwise `self ^ other`.
    pub fn bit_xor(self, other: Expr) -> Expr {
        Expr::bin(BinaryOp::Xor, self, other)
    }

    /// Two's-complement negation.
    pub fn neg(self) -> Expr {
        Expr::un(UnaryOp::Neg, self)
    }

    /// OR-reduction.
    pub fn or_r(self) -> Expr {
        Expr::un(UnaryOp::OrR, self)
    }

    /// AND-reduction.
    pub fn and_r(self) -> Expr {
        Expr::un(UnaryOp::AndR, self)
    }

    /// XOR-reduction.
    pub fn xor_r(self) -> Expr {
        Expr::un(UnaryOp::XorR, self)
    }

    /// Reinterpret bits as unsigned.
    pub fn as_uint(self) -> Expr {
        Expr::un(UnaryOp::AsUInt, self)
    }

    /// Reinterpret bits as signed.
    pub fn as_sint(self) -> Expr {
        Expr::un(UnaryOp::AsSInt, self)
    }

    /// Reinterpret a width-1 value as `Bool`.
    pub fn as_bool(self) -> Expr {
        Expr::un(UnaryOp::AsBool, self)
    }

    /// Static bit range `self(hi, lo)`.
    pub fn bits(self, hi: impl Into<PExpr>, lo: impl Into<PExpr>) -> Expr {
        Expr::Extract { arg: Box::new(self), hi: hi.into(), lo: lo.into() }
    }

    /// Static single bit `self(i)`.
    pub fn bit(self, i: impl Into<PExpr>) -> Expr {
        let i = i.into();
        Expr::Extract { arg: Box::new(self), hi: i.clone(), lo: i }
    }

    /// Dynamic single bit `self(idx)` where `idx` is a signal.
    pub fn bit_dyn(self, idx: Expr) -> Expr {
        Expr::BitAt { arg: Box::new(self), index: Box::new(idx) }
    }

    /// Static left shift (expanding).
    pub fn shl(self, amount: impl Into<PExpr>) -> Expr {
        Expr::ShlP { arg: Box::new(self), amount: amount.into() }
    }

    /// Static right shift.
    pub fn shr(self, amount: impl Into<PExpr>) -> Expr {
        Expr::ShrP { arg: Box::new(self), amount: amount.into() }
    }

    /// Dynamic left shift by a signal value.
    pub fn shl_dyn(self, amount: Expr) -> Expr {
        Expr::bin(BinaryOp::Shl, self, amount)
    }

    /// Dynamic right shift by a signal value.
    pub fn shr_dyn(self, amount: Expr) -> Expr {
        Expr::bin(BinaryOp::Shr, self, amount)
    }

    /// Replication `Fill(times, self)`.
    pub fn fill(self, times: impl Into<PExpr>) -> Expr {
        Expr::Fill { times: times.into(), arg: Box::new(self) }
    }

    /// Multiplexer with this expression as the condition.
    pub fn mux(self, tval: Expr, fval: Expr) -> Expr {
        Expr::Mux(Box::new(self), Box::new(tval), Box::new(fval))
    }

    /// All signal base names read by this expression.
    pub fn reads(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::LitU { .. } | Expr::LitS { .. } | Expr::LitB(_) => {}
            Expr::Ref(r) => {
                if !out.contains(&r.base) {
                    out.push(r.base.clone());
                }
                for acc in &r.path {
                    if let Accessor::Index(e) = acc {
                        e.collect_reads(out);
                    }
                }
            }
            Expr::Unop(_, a) => a.collect_reads(out),
            Expr::Binop(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Mux(c, t, f) => {
                c.collect_reads(out);
                t.collect_reads(out);
                f.collect_reads(out);
            }
            Expr::Extract { arg, .. }
            | Expr::ShlP { arg, .. }
            | Expr::ShrP { arg, .. }
            | Expr::Fill { arg, .. } => arg.collect_reads(out),
            Expr::BitAt { arg, index } => {
                arg.collect_reads(out);
                index.collect_reads(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.collect_reads(out);
                }
            }
        }
    }

    /// Substitutes a generator variable (loop index) inside all embedded
    /// [`PExpr`] positions.
    pub fn subst_pvar(&self, name: &str, value: &PExpr) -> Expr {
        let s = |e: &Expr| Box::new(e.subst_pvar(name, value));
        match self {
            Expr::LitU { value: v, width } => Expr::LitU {
                value: v.subst(name, value),
                width: width.as_ref().map(|w| w.subst(name, value)),
            },
            Expr::LitS { value: v, width } => Expr::LitS {
                value: v.subst(name, value),
                width: width.as_ref().map(|w| w.subst(name, value)),
            },
            Expr::LitB(b) => Expr::LitB(*b),
            Expr::Ref(r) => {
                let path = r
                    .path
                    .iter()
                    .map(|acc| match acc {
                        Accessor::Field(f) => Accessor::Field(f.clone()),
                        Accessor::Index(e) => Accessor::Index(s(e)),
                    })
                    .collect();
                Expr::Ref(SignalRef { base: r.base.clone(), path })
            }
            Expr::Unop(op, a) => Expr::Unop(*op, s(a)),
            Expr::Binop(op, a, b) => Expr::Binop(*op, s(a), s(b)),
            Expr::Mux(c, t, f) => Expr::Mux(s(c), s(t), s(f)),
            Expr::Extract { arg, hi, lo } => Expr::Extract {
                arg: s(arg),
                hi: hi.subst(name, value),
                lo: lo.subst(name, value),
            },
            Expr::BitAt { arg, index } => Expr::BitAt { arg: s(arg), index: s(index) },
            Expr::ShlP { arg, amount } => {
                Expr::ShlP { arg: s(arg), amount: amount.subst(name, value) }
            }
            Expr::ShrP { arg, amount } => {
                Expr::ShrP { arg: s(arg), amount: amount.subst(name, value) }
            }
            Expr::Fill { times, arg } => {
                Expr::Fill { times: times.subst(name, value), arg: s(arg) }
            }
            Expr::Call { func, args } => Expr::Call {
                func: func.clone(),
                args: args.iter().map(|a| a.subst_pvar(name, value)).collect(),
            },
        }
    }
}

impl From<SignalRef> for Expr {
    fn from(r: SignalRef) -> Expr {
        Expr::Ref(r)
    }
}

impl fmt::Display for SignalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for acc in &self.path {
            match acc {
                Accessor::Field(name) => write!(f, ".{name}")?,
                Accessor::Index(e) => write!(f, "({e})")?,
            }
        }
        Ok(())
    }
}

impl fmt::Debug for SignalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::LitU { value, width: Some(w) } => write!(f, "{value}.U({w}.W)"),
            Expr::LitU { value, width: None } => write!(f, "{value}.U"),
            Expr::LitS { value, width: Some(w) } => write!(f, "{value}.S({w}.W)"),
            Expr::LitS { value, width: None } => write!(f, "{value}.S"),
            Expr::LitB(b) => write!(f, "{b}.B"),
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::Unop(op, a) => match op {
                UnaryOp::Not => write!(f, "~{a}"),
                UnaryOp::LogicNot => write!(f, "!{a}"),
                UnaryOp::Neg => write!(f, "-{a}"),
                UnaryOp::OrR => write!(f, "{a}.orR"),
                UnaryOp::AndR => write!(f, "{a}.andR"),
                UnaryOp::XorR => write!(f, "{a}.xorR"),
                UnaryOp::AsUInt => write!(f, "{a}.asUInt"),
                UnaryOp::AsSInt => write!(f, "{a}.asSInt"),
                UnaryOp::AsBool => write!(f, "{a}.asBool"),
            },
            Expr::Binop(op, a, b) => {
                let sym = match op {
                    BinaryOp::Add => "+",
                    BinaryOp::Sub => "-",
                    BinaryOp::Mul => "*",
                    BinaryOp::Div => "/",
                    BinaryOp::Rem => "%",
                    BinaryOp::And => "&",
                    BinaryOp::Or => "|",
                    BinaryOp::Xor => "^",
                    BinaryOp::LogicAnd => "&&",
                    BinaryOp::LogicOr => "||",
                    BinaryOp::Eq => "===",
                    BinaryOp::Neq => "=/=",
                    BinaryOp::Lt => "<",
                    BinaryOp::Le => "<=",
                    BinaryOp::Gt => ">",
                    BinaryOp::Ge => ">=",
                    BinaryOp::Cat => return write!(f, "Cat({a}, {b})"),
                    BinaryOp::Shl => "<<",
                    BinaryOp::Shr => ">>",
                };
                write!(f, "({a} {sym} {b})")
            }
            Expr::Mux(c, t, e) => write!(f, "Mux({c}, {t}, {e})"),
            Expr::Extract { arg, hi, lo } => {
                if hi == lo {
                    write!(f, "{arg}({hi})")
                } else {
                    write!(f, "{arg}({hi}, {lo})")
                }
            }
            Expr::BitAt { arg, index } => write!(f, "{arg}({index})"),
            Expr::ShlP { arg, amount } => write!(f, "({arg} << {amount})"),
            Expr::ShrP { arg, amount } => write!(f, "({arg} >> {amount})"),
            Expr::Fill { times, arg } => write!(f, "Fill({times}, {arg})"),
            Expr::Call { func, args } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_produce_expected_shape() {
        let e = Expr::sig("a").bit(0).cat(Expr::sig("a").bits(PExpr::param("len") - 1, 1));
        assert_eq!(e.to_string(), "Cat(a(0), a((len - 1), 1))");
    }

    #[test]
    fn reads_collects_bases_once() {
        let e = Expr::sig("x").bit_and(Expr::sig("y")).bit_xor(Expr::sig("x"));
        assert_eq!(e.reads(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn reads_sees_dynamic_index() {
        let r = SignalRef::new("v").index(Expr::sig("i"));
        let e = Expr::Ref(r);
        assert_eq!(e.reads(), vec!["v".to_string(), "i".to_string()]);
    }

    #[test]
    fn subst_pvar_reaches_all_positions() {
        let e = Expr::sig("r").bits(PExpr::var("i"), PExpr::var("i")).shl(PExpr::var("i"));
        let s = e.subst_pvar("i", &PExpr::Const(3));
        assert_eq!(s.to_string(), "(r(3) << 3)");
    }

    #[test]
    fn display_literals() {
        assert_eq!(Expr::lit_u(PExpr::param("len") - 1, PExpr::param("len")).to_string(), "(len - 1).U(len.W)");
        assert_eq!(Expr::lit(5).to_string(), "5.U");
        assert_eq!(Expr::lit_b(true).to_string(), "true.B");
    }
}
