//! Symbolic integer expressions over module parameters.
//!
//! A parameterized Chisel design never pins its widths to numbers: `io.in`
//! has width `len`, a divider's shift register has width `2*len + 1`, a
//! Booth recoder iterates `len/2 + 1` times. [`PExpr`] is the small language
//! of such compile-time integer expressions: constants, parameters, loop
//! variables, and `+ - * / min max`. It is used for widths, literal values
//! like `(len - 1).U`, bit-extraction indices, and loop bounds.

use std::collections::BTreeMap;
use std::fmt;

/// A symbolic compile-time integer expression over parameters.
///
/// # Examples
///
/// ```
/// use chicala_chisel::PExpr;
/// let w = (PExpr::param("len") * 2 + 1).eval_with(&[("len", 64)])?;
/// assert_eq!(w, 129);
/// # Ok::<(), chicala_chisel::EvalPExprError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PExpr {
    /// An integer constant.
    Const(i64),
    /// A module parameter, e.g. `len`.
    Param(String),
    /// A generator-loop variable (bound by `Stmt::For`).
    Var(String),
    /// Sum of the operands.
    Add(Box<PExpr>, Box<PExpr>),
    /// Difference of the operands.
    Sub(Box<PExpr>, Box<PExpr>),
    /// Product of the operands.
    Mul(Box<PExpr>, Box<PExpr>),
    /// Flooring quotient (used e.g. for `len / 2` Booth digit counts).
    Div(Box<PExpr>, Box<PExpr>),
    /// Maximum, as produced by Chisel width inference for `+`/`Mux`.
    Max(Box<PExpr>, Box<PExpr>),
    /// Minimum.
    Min(Box<PExpr>, Box<PExpr>),
}

/// Error produced by [`PExpr::eval`]: an unbound name or division by zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalPExprError {
    /// A parameter or loop variable had no binding.
    Unbound(String),
    /// Division by zero.
    DivByZero,
}

impl fmt::Display for EvalPExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalPExprError::Unbound(n) => write!(f, "unbound parameter or variable `{n}`"),
            EvalPExprError::DivByZero => write!(f, "division by zero in parameter expression"),
        }
    }
}

impl std::error::Error for EvalPExprError {}

/// A binding of parameter/loop-variable names to concrete integers.
pub type Bindings = BTreeMap<String, i64>;

impl PExpr {
    /// A parameter reference.
    pub fn param(name: impl Into<String>) -> PExpr {
        PExpr::Param(name.into())
    }

    /// A loop-variable reference.
    pub fn var(name: impl Into<String>) -> PExpr {
        PExpr::Var(name.into())
    }

    /// Evaluates under the given bindings.
    ///
    /// # Errors
    ///
    /// Returns an error for unbound names or division by zero.
    pub fn eval(&self, env: &Bindings) -> Result<i64, EvalPExprError> {
        Ok(match self {
            PExpr::Const(c) => *c,
            PExpr::Param(n) | PExpr::Var(n) => {
                *env.get(n).ok_or_else(|| EvalPExprError::Unbound(n.clone()))?
            }
            PExpr::Add(a, b) => a.eval(env)? + b.eval(env)?,
            PExpr::Sub(a, b) => a.eval(env)? - b.eval(env)?,
            PExpr::Mul(a, b) => a.eval(env)? * b.eval(env)?,
            PExpr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    return Err(EvalPExprError::DivByZero);
                }
                a.eval(env)?.div_euclid(d)
            }
            PExpr::Max(a, b) => a.eval(env)?.max(b.eval(env)?),
            PExpr::Min(a, b) => a.eval(env)?.min(b.eval(env)?),
        })
    }

    /// Convenience wrapper over [`PExpr::eval`] for slice bindings.
    ///
    /// # Errors
    ///
    /// Same as [`PExpr::eval`].
    pub fn eval_with(&self, bindings: &[(&str, i64)]) -> Result<i64, EvalPExprError> {
        let env: Bindings = bindings.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        self.eval(&env)
    }

    /// All parameter and loop-variable names mentioned, in first-seen order.
    pub fn names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names(&self, out: &mut Vec<String>) {
        match self {
            PExpr::Const(_) => {}
            PExpr::Param(n) | PExpr::Var(n) => {
                if !out.contains(n) {
                    out.push(n.clone());
                }
            }
            PExpr::Add(a, b)
            | PExpr::Sub(a, b)
            | PExpr::Mul(a, b)
            | PExpr::Div(a, b)
            | PExpr::Max(a, b)
            | PExpr::Min(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
        }
    }

    /// Substitutes `name` by `value` (used when unrolling generator loops).
    pub fn subst(&self, name: &str, value: &PExpr) -> PExpr {
        match self {
            PExpr::Const(_) => self.clone(),
            PExpr::Param(n) | PExpr::Var(n) => {
                if n == name {
                    value.clone()
                } else {
                    self.clone()
                }
            }
            PExpr::Add(a, b) => PExpr::Add(a.subst(name, value).into(), b.subst(name, value).into()),
            PExpr::Sub(a, b) => PExpr::Sub(a.subst(name, value).into(), b.subst(name, value).into()),
            PExpr::Mul(a, b) => PExpr::Mul(a.subst(name, value).into(), b.subst(name, value).into()),
            PExpr::Div(a, b) => PExpr::Div(a.subst(name, value).into(), b.subst(name, value).into()),
            PExpr::Max(a, b) => PExpr::Max(a.subst(name, value).into(), b.subst(name, value).into()),
            PExpr::Min(a, b) => PExpr::Min(a.subst(name, value).into(), b.subst(name, value).into()),
        }
    }

    /// Constant-folds trivially evaluable sub-expressions.
    pub fn simplify(&self) -> PExpr {
        use PExpr::*;
        let bin = |a: &PExpr, b: &PExpr| (a.simplify(), b.simplify());
        match self {
            Const(_) | Param(_) | Var(_) => self.clone(),
            Add(a, b) => match bin(a, b) {
                (Const(x), Const(y)) => Const(x + y),
                (Const(0), y) => y,
                (x, Const(0)) => x,
                (x, y) => Add(x.into(), y.into()),
            },
            Sub(a, b) => match bin(a, b) {
                (Const(x), Const(y)) => Const(x - y),
                (x, Const(0)) => x,
                (x, y) if x == y => Const(0),
                (x, y) => Sub(x.into(), y.into()),
            },
            Mul(a, b) => match bin(a, b) {
                (Const(x), Const(y)) => Const(x * y),
                (Const(0), _) | (_, Const(0)) => Const(0),
                (Const(1), y) => y,
                (x, Const(1)) => x,
                (x, y) => Mul(x.into(), y.into()),
            },
            Div(a, b) => match bin(a, b) {
                (Const(x), Const(y)) if y != 0 => Const(x.div_euclid(y)),
                (x, Const(1)) => x,
                (x, y) => Div(x.into(), y.into()),
            },
            Max(a, b) => match bin(a, b) {
                (Const(x), Const(y)) => Const(x.max(y)),
                (x, y) if x == y => x,
                (x, y) => Max(x.into(), y.into()),
            },
            Min(a, b) => match bin(a, b) {
                (Const(x), Const(y)) => Const(x.min(y)),
                (x, y) if x == y => x,
                (x, y) => Min(x.into(), y.into()),
            },
        }
    }
}

impl From<i64> for PExpr {
    fn from(c: i64) -> PExpr {
        PExpr::Const(c)
    }
}

impl From<u64> for PExpr {
    fn from(c: u64) -> PExpr {
        PExpr::Const(c as i64)
    }
}

impl From<i32> for PExpr {
    fn from(c: i32) -> PExpr {
        PExpr::Const(c as i64)
    }
}

macro_rules! pexpr_op {
    ($trait:ident, $method:ident, $ctor:ident) => {
        impl<R: Into<PExpr>> std::ops::$trait<R> for PExpr {
            type Output = PExpr;
            fn $method(self, rhs: R) -> PExpr {
                PExpr::$ctor(self.into(), rhs.into().into())
            }
        }
        impl std::ops::$trait<PExpr> for i64 {
            type Output = PExpr;
            fn $method(self, rhs: PExpr) -> PExpr {
                PExpr::$ctor(Box::new(PExpr::Const(self)), rhs.into())
            }
        }
    };
}

pexpr_op!(Add, add, Add);
pexpr_op!(Sub, sub, Sub);
pexpr_op!(Mul, mul, Mul);
pexpr_op!(Div, div, Div);

impl fmt::Display for PExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PExpr::Const(c) => write!(f, "{c}"),
            PExpr::Param(n) | PExpr::Var(n) => write!(f, "{n}"),
            PExpr::Add(a, b) => write!(f, "({a} + {b})"),
            PExpr::Sub(a, b) => write!(f, "({a} - {b})"),
            PExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            PExpr::Div(a, b) => write!(f, "({a} / {b})"),
            PExpr::Max(a, b) => write!(f, "max({a}, {b})"),
            PExpr::Min(a, b) => write!(f, "min({a}, {b})"),
        }
    }
}

impl fmt::Debug for PExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_and_ops() {
        let e = PExpr::param("len") * 2 + 1;
        assert_eq!(e.eval_with(&[("len", 8)]).unwrap(), 17);
        let e = (PExpr::param("len") - 1) / 2;
        assert_eq!(e.eval_with(&[("len", 9)]).unwrap(), 4);
        assert_eq!(
            PExpr::param("w").eval_with(&[]),
            Err(EvalPExprError::Unbound("w".into()))
        );
    }

    #[test]
    fn div_by_zero() {
        let e = PExpr::Const(1) / PExpr::Const(0);
        assert_eq!(e.eval_with(&[]), Err(EvalPExprError::DivByZero));
    }

    #[test]
    fn subst_unrolls_loop_vars() {
        let e = PExpr::var("i") * 2 + PExpr::param("len");
        let s = e.subst("i", &PExpr::Const(3)).simplify();
        assert_eq!(s, PExpr::Add(Box::new(PExpr::Const(6)), Box::new(PExpr::param("len"))));
    }

    #[test]
    fn simplify_folds_identities() {
        let e = (PExpr::param("w") + 0) * 1;
        assert_eq!(e.simplify(), PExpr::param("w"));
        let e = PExpr::param("w") - PExpr::param("w");
        assert_eq!(e.simplify(), PExpr::Const(0));
        let e = PExpr::Max(Box::new(PExpr::Const(3)), Box::new(PExpr::Const(7)));
        assert_eq!(e.simplify(), PExpr::Const(7));
    }

    #[test]
    fn names_in_order() {
        let e = PExpr::param("a") + PExpr::var("i") * PExpr::param("a");
        assert_eq!(e.names(), vec!["a".to_string(), "i".to_string()]);
    }

    #[test]
    fn display() {
        let e = PExpr::param("len") * 2 + 1;
        assert_eq!(e.to_string(), "((len * 2) + 1)");
    }
}
